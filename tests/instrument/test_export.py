"""Exporter coverage: Chrome-trace JSON shape, timeline and metrics text."""

import json

import pytest

from repro.bench.reporting import format_metrics
from repro.core.spec import PICSpec
from repro.instrument import (
    MetricsRegistry,
    Tracer,
    dumps_chrome_trace,
    metrics_to_json,
    render_metrics_summary,
    render_rank_timeline,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.parallel import AmpiPIC, Mpi2dPIC


def traced_run(impl_cls=Mpi2dPIC, **impl_kw):
    tracer, metrics = Tracer(), MetricsRegistry()
    spec = PICSpec(cells=32, n_particles=600, steps=6, r=0.9)
    res = impl_cls(spec, 4, span_tracer=tracer, metrics=metrics, **impl_kw).run()
    assert res.verification.ok
    return tracer, metrics


class TestChromeTrace:
    def test_round_trips_through_json(self):
        tracer, _ = traced_run()
        doc = json.loads(dumps_chrome_trace(tracer))
        assert "traceEvents" in doc
        assert len(doc["traceEvents"]) > 0

    def test_required_keys_present_on_every_event(self):
        tracer, _ = traced_run()
        for event in to_chrome_trace(tracer)["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid"):
                assert key in event, f"missing {key}: {event}"
            assert event["ph"] in ("X", "M", "i")

    def test_complete_events_have_nonnegative_durations(self):
        tracer, _ = traced_run()
        complete = [
            e for e in to_chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"
        ]
        assert complete
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert "step" in event["args"]

    def test_spans_sorted_per_rank(self):
        tracer, _ = traced_run()
        events = to_chrome_trace(tracer)["traceEvents"]
        by_track = {}
        for e in events:
            if e["ph"] == "X":
                by_track.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        assert by_track
        for track, stamps in by_track.items():
            assert stamps == sorted(stamps), f"track {track} unsorted"

    def test_metadata_names_cores_and_ranks(self):
        tracer, _ = traced_run()
        meta = [e for e in to_chrome_trace(tracer)["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "core 0" in names
        assert "rank 0" in names

    def test_migration_instants_exported(self):
        tracer, _ = traced_run(AmpiPIC, overdecomposition=2, lb_interval=2)
        instants = [
            e for e in to_chrome_trace(tracer)["traceEvents"] if e["ph"] == "i"
        ]
        assert any(e["name"] == "migrate" for e in instants)
        for e in instants:
            assert e["s"] == "t"

    def test_write_chrome_trace_file(self, tmp_path):
        tracer, _ = traced_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"

    def test_empty_tracer_exports_cleanly(self):
        doc = to_chrome_trace(Tracer())
        assert doc["traceEvents"] == []
        assert render_rank_timeline(Tracer()) == "(no spans recorded)"


class TestTextExports:
    def test_timeline_lists_every_rank(self):
        tracer, _ = traced_run()
        text = render_rank_timeline(tracer)
        for rank in range(4):
            assert f"rank {rank}:" in text
        assert "compute" in text

    def test_timeline_truncation(self):
        tracer, _ = traced_run()
        text = render_rank_timeline(tracer, max_spans_per_rank=2)
        assert "more spans" in text

    def test_metrics_summary_table(self):
        _, metrics = traced_run()
        text = render_metrics_summary(metrics)
        assert "transport.messages_sent" in text
        assert "core.busy_fraction" in text
        assert render_metrics_summary(MetricsRegistry()) == "(no metrics recorded)"

    def test_metrics_json_round_trip(self, tmp_path):
        _, metrics = traced_run()
        doc = json.loads(metrics_to_json(metrics))
        assert doc["transport.messages_sent"]["kind"] == "counter"
        path = tmp_path / "metrics.json"
        write_metrics(metrics, path)
        assert json.loads(path.read_text()) == doc

    def test_bench_reporting_consumes_metrics(self):
        _, metrics = traced_run()
        block = format_metrics(metrics, title="smoke")
        assert block.startswith("== smoke ==")
        assert "run.total_time_s" in block
