"""Golden-trace determinism and the no-perturbation invariant.

The scheduler is fully deterministic, so (a) tracing the same spec twice
must produce byte-identical Chrome-trace JSON, and (b) attaching a tracer
and a metrics registry must change *nothing* about the simulated run —
identical simulated times, per-rank clocks, traffic counts and verification
results.  These tests are the correctness gate every future perf PR reports
against.
"""

import pytest

from repro.core.spec import PICSpec
from repro.instrument import MetricsRegistry, Tracer, dumps_chrome_trace
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC

IMPLS = [
    pytest.param(lambda spec, **kw: Mpi2dPIC(spec, 4, **kw), id="mpi-2d"),
    pytest.param(
        lambda spec, **kw: Mpi2dLbPIC(spec, 4, lb_interval=2, border_width=1, **kw),
        id="mpi-2d-LB",
    ),
    pytest.param(
        lambda spec, **kw: AmpiPIC(spec, 4, overdecomposition=2, lb_interval=3, **kw),
        id="ampi",
    ),
]


def spec():
    return PICSpec(cells=32, n_particles=800, steps=8, r=0.9)


class TestGoldenTrace:
    @pytest.mark.parametrize("make", IMPLS)
    def test_trace_is_byte_identical_across_runs(self, make):
        dumps = []
        for _ in range(2):
            tracer = Tracer()
            res = make(spec(), span_tracer=tracer).run()
            assert res.verification.ok
            dumps.append(dumps_chrome_trace(tracer))
        assert dumps[0] == dumps[1]

    @pytest.mark.parametrize("make", IMPLS)
    def test_tracing_does_not_perturb_simulation(self, make):
        plain = make(spec()).run()
        traced = make(
            spec(), span_tracer=Tracer(), metrics=MetricsRegistry()
        ).run()
        assert traced.total_time == plain.total_time
        assert traced.rank_times == plain.rank_times
        assert traced.messages_sent == plain.messages_sent
        assert traced.bytes_sent == plain.bytes_sent
        assert traced.collectives == plain.collectives
        assert traced.verification == plain.verification
        assert traced.final_rank_to_core == plain.final_rank_to_core

    @pytest.mark.parametrize("make", IMPLS)
    def test_metrics_are_deterministic_across_runs(self, make):
        dumps = []
        for _ in range(2):
            metrics = MetricsRegistry()
            make(spec(), metrics=metrics).run()
            dumps.append(metrics.as_dict())
        assert dumps[0] == dumps[1]

    def test_legacy_collector_still_does_not_perturb(self):
        from repro.instrument import TraceCollector

        plain = Mpi2dPIC(spec(), 4).run()
        traced = Mpi2dPIC(spec(), 4, tracer=TraceCollector()).run()
        assert traced.total_time == plain.total_time
        assert traced.verification == plain.verification
