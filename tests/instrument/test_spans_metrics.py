"""Unit tests for the Tracer/Span layer and the MetricsRegistry."""

import pytest

from repro.instrument import MetricsRegistry, Span, Tracer, validate_spans
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel
from repro.runtime.reduce_ops import SUM
from repro.runtime.scheduler import run_spmd


class TestTracerUnit:
    def test_record_and_step_stamping(self):
        tr = Tracer()
        tr.record("compute", "compute", 0, 0, 0.0, 1.0)
        tr.set_step(0, 7)
        tr.record("compute", "compute", 0, 0, 1.0, 2.0)
        tr.record("compute", "compute", 1, 1, 0.0, 0.5)  # other rank: no step
        assert [s.step for s in tr.spans] == [-1, 7, -1]
        assert tr.ranks() == [0, 1]
        assert len(tr) == 3

    def test_args_are_sorted_and_frozen(self):
        tr = Tracer()
        tr.record("send", "comm", 0, 0, 0.0, 1.0, tag=5, dst=2)
        span = tr.spans[0]
        assert span.args == (("dst", 2), ("tag", 5))
        assert span.args_dict() == {"dst": 2, "tag": 5}

    def test_seconds_by_category_and_busy_fraction(self):
        tr = Tracer()
        tr.record("compute", "compute", 0, 0, 0.0, 2.0)
        tr.record("recv_wait", "wait", 0, 0, 2.0, 3.0)
        tr.record("compute", "compute", 1, 1, 0.0, 1.0)
        assert tr.seconds_by_category() == {"compute": 3.0, "wait": 1.0}
        assert tr.seconds_by_category(rank=0) == {"compute": 2.0, "wait": 1.0}
        assert tr.busy_fraction(0, 4.0) == pytest.approx(0.5)
        assert tr.busy_fraction(0, 0.0) == 0.0

    def test_validate_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="negative"):
            validate_spans([Span("x", "compute", 0, 0, 0, 2.0, 1.0)])

    def test_validate_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="category"):
            validate_spans([Span("x", "banana", 0, 0, 0, 0.0, 1.0)])


class TestSchedulerEmission:
    """Spans emitted by the real scheduler for hand-built programs."""

    def run_traced(self, n_ranks, program, **kw):
        tracer = Tracer()
        result = run_spmd(n_ranks, program, tracer=tracer, **kw)
        validate_spans(tracer.spans)
        return tracer, result

    def test_compute_span(self):
        def program(comm):
            yield comm.compute(0.25)
            return None

        tracer, _ = self.run_traced(1, program)
        [span] = [s for s in tracer.spans if s.name == "compute"]
        assert span.cat == "compute"
        assert span.duration == pytest.approx(0.25)
        assert span.rank == 0

    def test_blocked_recv_produces_wait_span(self):
        def program(comm):
            if comm.rank == 0:
                yield comm.compute(0.5)  # delay the send
                yield comm.send(b"x" * 1000, dst=1, tag=1)
            else:
                _ = yield comm.recv(src=0, tag=1)
            return None

        tracer, _ = self.run_traced(2, program)
        waits = [s for s in tracer.spans if s.name == "recv_wait"]
        assert len(waits) == 1
        assert waits[0].rank == 1
        assert waits[0].cat == "wait"
        assert waits[0].duration > 0.4  # blocked roughly the compute delay

    def test_collective_wait_charged_to_early_arrivals(self):
        def program(comm):
            if comm.rank == 0:
                yield comm.compute(0.3)  # rank 0 is the straggler
            total = yield comm.allreduce(1, op=SUM)
            return total

        tracer, result = self.run_traced(3, program)
        assert result.returns == [3, 3, 3]
        waits = [s for s in tracer.spans if s.name == "wait:allreduce"]
        assert {s.rank for s in waits} == {1, 2}
        for s in waits:
            assert s.t_end == pytest.approx(0.3)
        colls = [s for s in tracer.spans if s.name == "coll:allreduce"]
        assert {s.rank for s in colls} == {0, 1, 2}

    def test_send_recv_spans_carry_peer_args(self):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(b"payload", dst=1, tag=9)
            else:
                _ = yield comm.recv(src=0, tag=9)
            return None

        tracer, _ = self.run_traced(2, program)
        [send] = [s for s in tracer.spans if s.name == "send"]
        assert send.args_dict()["dst"] == 1
        assert send.args_dict()["tag"] == 9
        [recv] = [s for s in tracer.spans if s.name == "recv"]
        assert recv.args_dict()["src"] == 0

    def test_step_annotation_reaches_spans(self):
        def program(comm):
            for t in range(3):
                comm.annotate_step(t)
                yield comm.compute(0.1)
            return None

        tracer, _ = self.run_traced(1, program)
        computes = [s for s in tracer.spans if s.name == "compute"]
        assert [s.step for s in computes] == [0, 1, 2]


class TestMetricsRegistry:
    def test_counter_semantics(self):
        m = MetricsRegistry()
        c = m.counter("msgs")
        c.inc()
        c.inc(4)
        assert m.counter("msgs").value == 5  # get-or-create returns same
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_semantics(self):
        m = MetricsRegistry()
        g = m.gauge("depth")
        assert g.value is None
        g.set(2.0)
        g.set_max(1.0)
        assert g.value == 2.0
        g.set_max(7.0)
        assert g.value == 7.0

    def test_histogram_summary_and_percentiles(self):
        m = MetricsRegistry()
        h = m.histogram("times")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        assert h.summary()["max"] == 4.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            m.gauge("x")

    def test_as_dict_is_sorted_and_complete(self):
        m = MetricsRegistry()
        m.gauge("b").set(1.0)
        m.counter("a").inc()
        m.histogram("c").observe(2.0)
        d = m.as_dict()
        assert list(d) == ["a", "b", "c"]
        assert d["a"] == {"kind": "counter", "value": 1}
        assert d["c"]["count"] == 1
        assert "a" in m and "z" not in m

    def test_scheduler_transport_metrics_match_result(self):
        from repro.core.spec import PICSpec
        from repro.parallel import Mpi2dPIC

        metrics = MetricsRegistry()
        res = Mpi2dPIC(
            PICSpec(cells=32, n_particles=500, steps=5, r=0.9), 4, metrics=metrics
        ).run()
        assert metrics.counter("transport.messages_sent").value == res.messages_sent
        assert metrics.counter("transport.bytes_sent").value == res.bytes_sent
        assert (
            metrics.counter("runtime.collectives_completed").value
            == res.collectives
        )
        assert metrics.counter("comm.coll.allreduce").value > 0
        assert metrics.histogram("step.imbalance_ratio").count == 5
        assert metrics.gauge("run.total_time_s").value == res.total_time
        busy = metrics.histogram("core.busy_fraction")
        assert busy.count == 4
        assert all(0.0 <= v <= 1.0 for v in busy.values)
