"""Tests for the topology-hinted balancer and the locality score."""

import numpy as np
import pytest

from repro.ampi.loadbalancer import (
    GreedyLB,
    GreedyTransferLB,
    HintedTransferLB,
    VpTopology,
    _core_loads,
    locality_score,
)


class TestVpTopology:
    def test_neighbors_interior(self):
        topo = VpTopology((4, 4))
        # vp 5 = coords (1,1): neighbors (0,1),(2,1),(1,0),(1,2)
        assert sorted(topo.neighbors(5)) == [1, 4, 6, 9]

    def test_neighbors_periodic_wrap(self):
        topo = VpTopology((4, 4))
        # vp 0 = (0,0): (3,0)=12, (1,0)=4, (0,3)=3, (0,1)=1
        assert sorted(topo.neighbors(0)) == [1, 3, 4, 12]

    def test_neighbors_degenerate_dims(self):
        topo = VpTopology((2, 1))
        # Both x-directions reach the same single neighbor; de-duplicated.
        assert topo.neighbors(0) == [1]

    def test_n_vps(self):
        assert VpTopology((3, 5)).n_vps == 15


class TestLocalityScore:
    def test_all_on_one_core(self):
        topo = VpTopology((4, 4))
        assert locality_score([0] * 16, topo) == 1.0

    def test_block_mapping_partial(self):
        topo = VpTopology((4, 4))
        mapping = [vp // 8 for vp in range(16)]  # two compact halves
        score = locality_score(mapping, topo)
        assert 0.5 < score < 1.0

    def test_scattered_mapping_low(self):
        topo = VpTopology((8, 8))
        # Compact 4x4 blocks: 0.75 of neighbor pairs co-located.
        block = [(vp // 8 // 4) * 2 + (vp % 8) // 4 for vp in range(64)]
        # Pseudo-random scatter over the same 4 cores.
        scattered = [(vp * 5 + 3) % 4 for vp in range(64)]
        assert locality_score(scattered, topo) < locality_score(block, topo)
        assert locality_score(block, topo) == pytest.approx(0.75)


class TestHintedTransferLB:
    def test_balances_load(self):
        topo = VpTopology((4, 4))
        loads = [1.0] * 16
        mapping = [0] * 16
        new = HintedTransferLB().rebalance(loads, mapping, 4, topology=topo)
        per_core = _core_loads(loads, new, 4)
        assert max(per_core) < 16.0

    def test_without_topology_degrades_gracefully(self):
        loads = [5.0, 5.0, 1.0, 1.0]
        new = HintedTransferLB().rebalance(loads, [0, 0, 0, 0], 2)
        per_core = _core_loads(loads, new, 2)
        assert max(per_core) < 12.0

    def test_preserves_locality_better_than_greedy(self):
        """The paper's point: the hinted balancer keeps subdomains compact."""
        topo = VpTopology((8, 8))
        rng = np.random.default_rng(11)
        # Skewed loads on a block (compact) initial mapping over 8 cores.
        loads = (rng.exponential(1.0, size=64) * (1 + np.arange(64) // 8)).tolist()
        mapping = [vp // 8 for vp in range(64)]
        hinted = HintedTransferLB().rebalance(loads, mapping, 8, topology=topo)
        greedy = GreedyLB().rebalance(loads, mapping, 8, topology=topo)
        assert locality_score(hinted, topo) > locality_score(greedy, topo)

    def test_only_border_vps_move(self):
        """Interior VPs of a compact core subdomain never migrate."""
        topo = VpTopology((4, 4))
        # Core 0 owns the left 2x4 block + its interior is... every VP of a
        # 2-wide block borders the other core, so use a 4x4 single-core
        # block inside a 2-core split: core0 = columns 0-1, core1 = 2-3.
        mapping = [0 if vp // 4 < 2 else 1 for vp in range(16)]
        loads = [4.0 if m == 0 else 1.0 for m in mapping]
        new = HintedTransferLB().rebalance(loads, mapping, 2, topology=topo)
        moved = [vp for vp in range(16) if new[vp] != mapping[vp]]
        for vp in moved:
            assert any(mapping[n] != mapping[vp] for n in topo.neighbors(vp))

    def test_deterministic(self):
        topo = VpTopology((4, 4))
        loads = list(np.linspace(1, 5, 16))
        mapping = [vp // 4 for vp in range(16)]
        a = HintedTransferLB().rebalance(loads, mapping, 4, topology=topo)
        b = HintedTransferLB().rebalance(loads, mapping, 4, topology=topo)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            HintedTransferLB().rebalance([1.0], [0, 1], 2)
