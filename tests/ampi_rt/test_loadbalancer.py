"""Unit tests for the AMPI load-balancing strategies."""

import numpy as np
import pytest

from repro.ampi.loadbalancer import (
    GreedyLB,
    GreedyTransferLB,
    NullLB,
    RefineLB,
    _core_loads,
)


def imbalance(loads, mapping, n_cores):
    per_core = _core_loads(loads, mapping, n_cores)
    mean = sum(per_core) / n_cores
    return max(per_core) / mean if mean else 1.0


STRATEGIES = [GreedyLB(), GreedyTransferLB(), RefineLB()]


class TestCommonProperties:
    @pytest.mark.parametrize("lb", STRATEGIES + [NullLB()])
    def test_mapping_stays_valid(self, lb):
        rng = np.random.default_rng(1)
        loads = rng.uniform(0, 10, size=32).tolist()
        mapping = rng.integers(0, 4, size=32).tolist()
        new = lb.rebalance(loads, mapping, 4)
        assert len(new) == 32
        assert all(0 <= c < 4 for c in new)

    @pytest.mark.parametrize("lb", STRATEGIES + [NullLB()])
    def test_inputs_not_mutated(self, lb):
        loads = [5.0, 1.0, 1.0, 1.0]
        mapping = [0, 0, 0, 0]
        lb.rebalance(loads, mapping, 2)
        assert mapping == [0, 0, 0, 0]

    @pytest.mark.parametrize("lb", STRATEGIES)
    def test_imbalance_never_worse(self, lb):
        rng = np.random.default_rng(7)
        for _ in range(10):
            loads = rng.exponential(5, size=24).tolist()
            mapping = rng.integers(0, 6, size=24).tolist()
            before = imbalance(loads, mapping, 6)
            after = imbalance(loads, lb.rebalance(loads, mapping, 6), 6)
            assert after <= before + 1e-9

    @pytest.mark.parametrize("lb", STRATEGIES + [NullLB()])
    def test_validation(self, lb):
        with pytest.raises(ValueError):
            lb.rebalance([1.0], [0, 1], 2)
        with pytest.raises(ValueError):
            lb.rebalance([1.0], [0], 0)
        with pytest.raises(ValueError):
            lb.rebalance([1.0], [5], 2)

    @pytest.mark.parametrize("lb", STRATEGIES + [NullLB()])
    def test_deterministic(self, lb):
        loads = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        mapping = [0, 0, 0, 0, 1, 1, 1, 1]
        a = lb.rebalance(loads, mapping, 2)
        b = lb.rebalance(loads, mapping, 2)
        assert a == b


class TestNullLB:
    def test_identity(self):
        mapping = [0, 1, 0, 1]
        assert NullLB().rebalance([9, 1, 9, 1], mapping, 2) == mapping


class TestGreedyLB:
    def test_near_optimal_balance(self):
        """Full reassignment: equal loads spread perfectly."""
        loads = [1.0] * 8
        new = GreedyLB().rebalance(loads, [0] * 8, 4)
        counts = np.bincount(new, minlength=4)
        assert counts.tolist() == [2, 2, 2, 2]

    def test_heaviest_spread_first(self):
        loads = [8.0, 7.0, 1.0, 1.0]
        new = GreedyLB().rebalance(loads, [0, 0, 0, 0], 2)
        # The two heavy VPs must land on different cores.
        assert new[0] != new[1]

    def test_ignores_current_placement(self):
        """GreedyLB migrates even already-balanced layouts (its signature
        weakness: maximal churn)."""
        loads = [4.0, 3.0, 2.0, 1.0]
        mapping = [1, 0, 0, 1]  # already perfectly balanced (5/5)
        new = GreedyLB().rebalance(loads, mapping, 2)
        per_core = _core_loads(loads, new, 2)
        assert max(per_core) == 5.0  # still balanced...
        assert new != mapping  # ...but it reshuffled anyway


class TestGreedyTransferLB:
    def test_moves_off_most_loaded_core(self):
        loads = [5.0, 5.0, 5.0, 5.0]
        mapping = [0, 0, 0, 0]
        new = GreedyTransferLB().rebalance(loads, mapping, 4)
        per_core = _core_loads(loads, new, 4)
        assert max(per_core) < 20.0

    def test_keeps_balanced_layout_intact(self):
        """Unlike GreedyLB, the transfer strategy does not churn."""
        loads = [4.0, 3.0, 2.0, 1.0]
        mapping = [1, 0, 0, 1]
        assert GreedyTransferLB().rebalance(loads, mapping, 2) == mapping

    def test_move_budget_limits_migrations(self):
        loads = [1.0] * 100
        mapping = [0] * 100
        lb = GreedyTransferLB(max_moves_fraction=0.05)
        new = lb.rebalance(loads, mapping, 10)
        moved = sum(a != b for a, b in zip(mapping, new))
        assert moved <= 5


class TestRefineLB:
    def test_trims_overloaded_core_only(self):
        loads = [6.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        mapping = [0, 0, 0, 1, 1, 1]  # core0: 8, core1: 3
        new = RefineLB().rebalance(loads, mapping, 2)
        per_core = _core_loads(loads, new, 2)
        assert max(per_core) < 8.0
        # The big VP stays put; light ones moved.
        assert new[0] == 0

    def test_no_action_when_within_tolerance(self):
        loads = [1.0, 1.0, 1.0, 1.0]
        mapping = [0, 0, 1, 1]
        assert RefineLB().rebalance(loads, mapping, 2) == mapping
