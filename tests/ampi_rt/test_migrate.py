"""Tests for the migrate() collective and PUP sizing."""

import pytest

from repro.ampi.loadbalancer import GreedyLB, NullLB
from repro.ampi.pup import BYTES_PER_CELL, VP_FIXED_BYTES, vp_state_bytes
from repro.ampi.runtime import MigrationReport, migrate
from repro.core.particles import ParticleArray
from repro.runtime import run_spmd
from repro.runtime.scheduler import Scheduler


class TestPup:
    def test_state_bytes_composition(self):
        p = ParticleArray.empty(10)
        assert vp_state_bytes(p, 100) == VP_FIXED_BYTES + 10 * 88 + 100 * BYTES_PER_CELL

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            vp_state_bytes(ParticleArray.empty(0), -1)


class TestMigrateCollective:
    def test_null_strategy_reports_no_moves(self):
        def prog(comm):
            report = yield from migrate(comm, 1.0, 1000, NullLB(), n_cores=2)
            return (report.migrated, comm.core())

        res = run_spmd(4, prog, rank_to_core=[0, 0, 1, 1])
        assert [r[0] for r in res.returns] == [0, 0, 0, 0]
        assert [r[1] for r in res.returns] == [0, 0, 1, 1]

    def test_greedy_rebalances_cores(self):
        """All VPs start on core 0; GreedyLB spreads them over both cores."""
        def prog(comm):
            load = 10.0 if comm.rank < 2 else 1.0
            report = yield from migrate(comm, load, 1000, GreedyLB(), n_cores=2)
            return (report.migrated, comm.core())

        res = run_spmd(4, prog, rank_to_core=[0, 0, 0, 0])
        cores = [r[1] for r in res.returns]
        assert sorted(cores) == [0, 0, 1, 1]
        # The two heavy VPs are separated.
        assert cores[0] != cores[1]
        # Every VP saw the same report.
        assert len({r[0] for r in res.returns}) == 1

    def test_migration_charges_time(self):
        """A migrating round costs more simulated time than a no-op round."""
        def make(strategy):
            def prog(comm):
                load = 10.0 if comm.rank == 0 else 1.0
                yield from migrate(comm, load, 10_000_000, strategy, n_cores=2)
                return comm.wtime()

            return prog

        moved = run_spmd(2, make(GreedyLB()), rank_to_core=[0, 0])
        still = run_spmd(2, make(NullLB()), rank_to_core=[0, 0])
        assert max(moved.returns) > max(still.returns)

    def test_report_moved_bytes(self):
        def prog(comm):
            report = yield from migrate(comm, float(comm.rank), 5000, GreedyLB(), n_cores=2)
            return report

        res = run_spmd(2, prog, rank_to_core=[0, 0])
        report: MigrationReport = res.returns[0]
        assert report.any_moved
        assert report.moved_bytes == 5000 * report.migrated

    def test_compute_serializes_after_migration(self):
        """After spreading over two cores, compute overlaps again."""
        def prog(comm):
            yield comm.compute(1.0)
            yield from migrate(comm, 1.0, 100, GreedyLB(), n_cores=2)
            yield comm.compute(1.0)
            yield comm.barrier()
            return comm.wtime()

        res = run_spmd(2, prog, rank_to_core=[0, 0])
        # Phase 1 serialized (2s); phase 2 parallel (1s) plus small overheads.
        assert 3.0 <= res.total_time < 3.1
