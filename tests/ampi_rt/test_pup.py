"""Byte-exact PUP round-trips (the checkpoint subsystem's foundation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ampi import pup
from repro.core.initialization import initialize
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.spec import Distribution, PICSpec
from repro.decomp.partition import BlockPartition


def _particles(n=200):
    spec = PICSpec(cells=16, n_particles=n, steps=1,
                   distribution=Distribution.UNIFORM)
    return initialize(spec, Mesh(spec.cells, spec.h, spec.q))


def _rng(draws=3):
    rng = np.random.default_rng([42, 7771, 5])
    rng.random(draws)  # advance mid-stream, as a checkpoint would find it
    return rng


def _counters():
    return {
        "removed_ids": 123,
        "max_particles": 456,
        "pushes": 789,
        "extra": {"lb_forced": 7, "migrations": 2.5},
    }


class TestRoundTrip:
    def test_pack_unpack_pack_is_identity(self):
        partition = BlockPartition.uniform(16, 2, 2)
        blob = pup.pack_vp(
            _particles(), rng=_rng(), partition=partition, counters=_counters()
        )
        state = pup.unpack_vp(blob)
        again = pup.pack_vp(
            state.particles,
            rng=state.rng_state,
            partition=state.partition,
            counters=state.counters,
        )
        assert again == blob

    def test_particles_bitwise(self):
        particles = _particles()
        state = pup.unpack_vp(pup.pack_vp(particles))
        assert state.particles.pack().tobytes() == particles.pack().tobytes()

    def test_empty_population(self):
        state = pup.unpack_vp(pup.pack_vp(ParticleArray.empty(0)))
        assert len(state.particles) == 0
        assert state.rng_state is None
        assert state.partition is None

    def test_counters_round_trip(self):
        state = pup.unpack_vp(pup.pack_vp(_particles(5), counters=_counters()))
        assert state.counters == _counters()

    def test_rng_stream_continues_identically(self):
        rng = _rng()
        blob = pup.pack_vp(ParticleArray.empty(0), rng=rng)
        expected = rng.random(8)  # what the live generator produces next
        restored = pup.rng_from_state(pup.unpack_vp(blob).rng_state)
        assert np.array_equal(restored.random(8), expected)

    def test_partition_round_trip(self):
        partition = BlockPartition.uniform(32, 4, 2)
        got = pup.unpack_vp(
            pup.pack_vp(ParticleArray.empty(0), partition=partition)
        ).partition
        assert got.cells == partition.cells
        assert np.array_equal(got.xsplits, partition.xsplits)
        assert np.array_equal(got.ysplits, partition.ysplits)


class TestMalformedBlobs:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="bad magic"):
            pup.unpack_vp(b"NOPE" + b"\x00" * 32)

    def test_bad_version(self):
        blob = bytearray(pup.pack_vp(_particles(3)))
        blob[4] = 99  # little-endian u16 version field
        with pytest.raises(ValueError, match="version"):
            pup.unpack_vp(bytes(blob))

    def test_truncated_body(self):
        blob = pup.pack_vp(_particles(3))
        with pytest.raises(ValueError, match="truncated"):
            pup.unpack_vp(blob[:-8])
