"""Bitwise determinism of the executor x kernel-backend matrix.

A fig6-shape config is run under every cell of {serial, batched,
process --workers 4} x {python, compiled, compiled-parallel}; every
cell must produce
identical final particle positions, id checksums, simulated times, golden
traces and *checkpoint files* — not merely equal within one backend.
Compiled cells skip cleanly when numba (the ``repro[compiled]`` extra) is
not installed.

Worker (wall-clock) spans are structurally excluded from the comparison:
they live in a separate :class:`repro.instrument.ExecutorTrace`, never in
the simulated-time :class:`~repro.instrument.Tracer` that golden traces
are built from.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.workloads import FIG6_CELLS, rescale_r
from repro.core.kernel_compiled import COMPILED_EXTRA, HAVE_NUMBA
from repro.core.spec import PICSpec
from repro.instrument import ExecutorTrace, Tracer, dumps_chrome_trace
from repro.parallel.mpi2d import Mpi2dPIC
from repro.resilience import Checkpointer, ResilienceConfig
from repro.runtime.executor import make_executor

_SPEC = PICSpec(
    cells=FIG6_CELLS,
    n_particles=6_000,
    steps=3,
    r=rescale_r(0.999, 2998, FIG6_CELLS),
)
_CORES = 4
_CKPT_EVERY = 2

requires_numba = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason=f"compiled kernel backend needs numba (pip install '{COMPILED_EXTRA}')",
)

_EXECUTORS = [("serial", 0), ("batched", 0), ("process", 4)]
_BACKENDS = ["python"] + (
    ["compiled", "compiled-parallel"] if HAVE_NUMBA else []
)

_CELLS = [
    pytest.param(
        (ex, w, backend),
        id=f"{ex}-{backend}",
        marks=() if backend == "python" else (requires_numba,),
    )
    for ex, w in _EXECUTORS
    for backend in ["python", "compiled", "compiled-parallel"]
]
#: Cells compared against the serial/python reference (which is excluded).
_OTHER_CELLS = [
    p
    for p in _CELLS
    if (p.values[0][0], p.values[0][2]) != ("serial", "python")
]


class _CapturingPIC(Mpi2dPIC):
    """Stashes each rank's final particle set for bitwise comparison."""

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        self.final = {}

    def _verify(self, comm, state):
        self.final[comm.rank] = state.particles.copy()
        return (yield from super()._verify(comm, state))


def _run(executor_name, workers, backend, ckpt_dir, exec_tracer=None):
    ex = make_executor(
        executor_name, workers=workers, exec_tracer=exec_tracer,
        kernel_backend=backend,
    )
    tracer = Tracer()
    resilience = ResilienceConfig(
        checkpointer=Checkpointer(str(ckpt_dir), every=_CKPT_EVERY)
    )
    impl = _CapturingPIC(
        _SPEC, _CORES, span_tracer=tracer, executor=ex, resilience=resilience
    )
    try:
        result = impl.run()
    finally:
        ex.close()
    assert result.verification.ok
    ckpts = {
        name: open(os.path.join(ckpt_dir, name), "rb").read()
        for name in sorted(os.listdir(ckpt_dir))
    }
    assert ckpts, "expected at least one checkpoint file"
    return result, impl.final, dumps_chrome_trace(tracer), ckpts


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    out = {}
    for ex, workers in _EXECUTORS:
        for backend in _BACKENDS:
            exec_tracer = (
                ExecutorTrace()
                if (ex, backend) == ("process", "python")
                else None
            )
            ckpt = tmp_path_factory.mktemp(f"ckpt-{ex}-{backend}")
            out[(ex, backend)] = _run(ex, workers, backend, ckpt, exec_tracer)
            if exec_tracer is not None:
                out["exec_tracer"] = exec_tracer
    return out


@pytest.mark.parametrize("cell", _OTHER_CELLS)
class TestBitwiseAgainstSerialPython:
    def _pick(self, runs, cell):
        ex, _w, backend = cell
        return runs[("serial", "python")], runs[(ex, backend)]

    def test_final_positions_identical(self, runs, cell):
        (_, ref, _, _), (_, got, _, _) = self._pick(runs, cell)
        assert sorted(ref) == sorted(got)
        for rank in ref:
            for f in ("x", "y", "vx", "vy", "q", "pid"):
                np.testing.assert_array_equal(
                    getattr(ref[rank], f), getattr(got[rank], f),
                    err_msg=f"rank {rank} field {f} diverged ({cell})",
                )

    def test_id_checksums_identical(self, runs, cell):
        (ref_res, *_), (got_res, *_) = self._pick(runs, cell)
        assert (
            got_res.verification.id_checksum == ref_res.verification.id_checksum
        )
        assert got_res.verification.n_particles == ref_res.verification.n_particles
        assert got_res.verification.max_abs_error == ref_res.verification.max_abs_error

    def test_simulated_times_identical(self, runs, cell):
        (ref_res, *_), (got_res, *_) = self._pick(runs, cell)
        assert got_res.total_time == ref_res.total_time
        assert got_res.rank_times == ref_res.rank_times

    def test_golden_traces_identical(self, runs, cell):
        """Byte-identical Chrome traces: neither the executor nor the
        kernel backend is visible in simulated time (worker spans live
        elsewhere, see module docstring)."""
        (*_, ref_trace, _), (*_, got_trace, _) = self._pick(runs, cell)
        assert got_trace == ref_trace

    def test_checkpoint_files_identical(self, runs, cell):
        """Checkpoints taken mid-run come out byte-for-byte the same in
        every matrix cell — the executor/backend choice must not leak into
        persisted state (this is what makes cross-backend resume sound)."""
        (*_, ref_ckpts), (*_, got_ckpts) = self._pick(runs, cell)
        assert sorted(got_ckpts) == sorted(ref_ckpts)
        for name, blob in ref_ckpts.items():
            assert got_ckpts[name] == blob, f"{name} differs in cell {cell}"


def test_worker_spans_recorded_outside_the_golden_trace(runs):
    tr = runs["exec_tracer"]
    assert len(tr) > 0
    phases = {s.phase for s in tr.spans}
    # "task" spans (per-rank wall timings, the measured work-rate evidence)
    # joined the original three in the kernel-backend PR.
    assert phases == {"dispatch", "execute", "merge", "task"}
    by_phase = tr.seconds_by_phase()
    assert all(v >= 0.0 for v in by_phase.values())
    assert -1 in tr.workers() and max(tr.workers()) >= 0
    # Every task span names the world rank it measured.
    task_ranks = {
        dict(s.args)["rank"] for s in tr.spans if s.phase == "task"
    }
    assert task_ranks <= set(range(_CORES)) and task_ranks
