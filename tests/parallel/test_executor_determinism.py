"""Bitwise determinism of the executor backends (ISSUE 3 satellite).

A fig6-shape config is run with ``serial``, ``batched`` and ``process
--workers 4``; every backend must produce identical final particle
positions, id checksums, simulated times and golden traces.  Worker
(wall-clock) spans are structurally excluded from the comparison: they live
in a separate :class:`repro.instrument.ExecutorTrace`, never in the
simulated-time :class:`~repro.instrument.Tracer` that golden traces are
built from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import FIG6_CELLS, rescale_r
from repro.core.spec import PICSpec
from repro.instrument import ExecutorTrace, Tracer, dumps_chrome_trace
from repro.parallel.mpi2d import Mpi2dPIC
from repro.runtime.executor import make_executor

_SPEC = PICSpec(
    cells=FIG6_CELLS,
    n_particles=6_000,
    steps=3,
    r=rescale_r(0.999, 2998, FIG6_CELLS),
)
_CORES = 4


class _CapturingPIC(Mpi2dPIC):
    """Stashes each rank's final particle set for bitwise comparison."""

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        self.final = {}

    def _verify(self, comm, state):
        self.final[comm.rank] = state.particles.copy()
        return (yield from super()._verify(comm, state))


def _run(executor_name: str, workers: int = 0, exec_tracer=None):
    ex = make_executor(executor_name, workers=workers, exec_tracer=exec_tracer)
    tracer = Tracer()
    impl = _CapturingPIC(_SPEC, _CORES, span_tracer=tracer, executor=ex)
    try:
        result = impl.run()
    finally:
        ex.close()
    assert result.verification.ok
    return result, impl.final, dumps_chrome_trace(tracer)


@pytest.fixture(scope="module")
def runs():
    serial = _run("serial")
    batched = _run("batched")
    exec_tracer = ExecutorTrace()
    process = _run("process", workers=4, exec_tracer=exec_tracer)
    return {"serial": serial, "batched": batched, "process": process,
            "exec_tracer": exec_tracer}


@pytest.mark.parametrize("other", ["batched", "process"])
class TestBitwiseAgainstSerial:
    def test_final_positions_identical(self, runs, other):
        _, ref, _ = runs["serial"]
        _, got, _ = runs[other]
        assert sorted(ref) == sorted(got)
        for rank in ref:
            for f in ("x", "y", "vx", "vy", "q", "pid"):
                np.testing.assert_array_equal(
                    getattr(ref[rank], f), getattr(got[rank], f),
                    err_msg=f"rank {rank} field {f} diverged ({other})",
                )

    def test_id_checksums_identical(self, runs, other):
        ref_res, *_ = runs["serial"]
        got_res, *_ = runs[other]
        assert (
            got_res.verification.id_checksum == ref_res.verification.id_checksum
        )
        assert got_res.verification.n_particles == ref_res.verification.n_particles
        assert got_res.verification.max_abs_error == ref_res.verification.max_abs_error

    def test_simulated_times_identical(self, runs, other):
        ref_res, *_ = runs["serial"]
        got_res, *_ = runs[other]
        assert got_res.total_time == ref_res.total_time
        assert got_res.rank_times == ref_res.rank_times

    def test_golden_traces_identical(self, runs, other):
        """Byte-identical Chrome traces: the executor is invisible in
        simulated time (worker spans live elsewhere, see module docstring)."""
        *_, ref_trace = runs["serial"]
        *_, got_trace = runs[other]
        assert got_trace == ref_trace


def test_worker_spans_recorded_outside_the_golden_trace(runs):
    tr = runs["exec_tracer"]
    assert len(tr) > 0
    phases = {s.phase for s in tr.spans}
    assert phases == {"dispatch", "execute", "merge"}
    # One dispatch+merge per batch (= per step here), executes per worker.
    by_phase = tr.seconds_by_phase()
    assert all(v >= 0.0 for v in by_phase.values())
    assert -1 in tr.workers() and max(tr.workers()) >= 0
