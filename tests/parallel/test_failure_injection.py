"""Failure injection: the self-verification must catch induced bugs.

The PRK's value as a benchmark rests on §III-D's claim that verification is
"sensitive enough to reveal any relevant implementation or runtime error,
even as minor as a single particle miscalculation in a single time step".
These tests *inject* such errors into the parallel machinery and assert the
run fails verification — guarding against the verification itself rotting
into a rubber stamp.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.base as base_mod
from repro.core.spec import Distribution, PICSpec
from repro.parallel import Mpi2dPIC
from repro.parallel.base import exchange_particles as real_exchange


def spec():
    return PICSpec(
        cells=32, n_particles=400, steps=10, distribution=Distribution.UNIFORM
    )


@pytest.fixture()
def restore_exchange():
    yield
    base_mod.exchange_particles = real_exchange


class TestInjectedFaultsAreDetected:
    def test_clean_run_passes(self):
        assert Mpi2dPIC(spec(), 4).run().verification.ok

    def test_dropped_particle_fails_checksum(self, restore_exchange):
        state = {"dropped": False}

        def dropping_exchange(comm, cart, partition, mesh, particles, cost,
                              scratch=None):
            result = yield from real_exchange(
                comm, cart, partition, mesh, particles, cost, scratch
            )
            if not state["dropped"] and cart.rank == 0 and len(result) > 0:
                state["dropped"] = True
                result = result.select(np.arange(len(result)) != 0)
            return result

        base_mod.exchange_particles = dropping_exchange
        res = Mpi2dPIC(spec(), 4).run()
        assert not res.verification.checksum_ok
        assert not res.verification.ok

    def test_duplicated_particle_fails_checksum(self, restore_exchange):
        state = {"done": False}

        def duplicating_exchange(comm, cart, partition, mesh, particles, cost,
                                 scratch=None):
            result = yield from real_exchange(
                comm, cart, partition, mesh, particles, cost, scratch
            )
            if not state["done"] and cart.rank == 1 and len(result) > 0:
                state["done"] = True
                result = result.append(result.select(np.array([0])))
            return result

        base_mod.exchange_particles = duplicating_exchange
        res = Mpi2dPIC(spec(), 4).run()
        assert not res.verification.checksum_ok

    def test_single_step_position_corruption_fails(self, restore_exchange):
        """Mimic one force miscalculation on one rank in one step."""
        state = {"done": False}

        def corrupting_exchange(comm, cart, partition, mesh, particles, cost,
                                scratch=None):
            result = yield from real_exchange(
                comm, cart, partition, mesh, particles, cost, scratch
            )
            if not state["done"] and cart.rank == 2 and len(result) > 0:
                state["done"] = True
                result.x[0] = (result.x[0] + 0.125) % mesh.L
            return result

        base_mod.exchange_particles = corrupting_exchange
        res = Mpi2dPIC(spec(), 4).run()
        assert not res.verification.positions_ok
        assert res.verification.checksum_ok  # nothing lost, "just" wrong

    def test_velocity_corruption_compounds_and_fails(self, restore_exchange):
        """A corrupted velocity derails every subsequent step."""
        state = {"done": False}

        def corrupting_exchange(comm, cart, partition, mesh, particles, cost,
                                scratch=None):
            result = yield from real_exchange(
                comm, cart, partition, mesh, particles, cost, scratch
            )
            if not state["done"] and cart.rank == 0 and len(result) > 0:
                state["done"] = True
                result.vx[0] += 0.25
            return result

        base_mod.exchange_particles = corrupting_exchange
        res = Mpi2dPIC(spec(), 4).run()
        assert not res.verification.positions_ok
