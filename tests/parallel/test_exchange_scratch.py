"""Coverage for :class:`repro.parallel.base.ExchangeScratch` wire buffers.

Pins the growth policy (``cap = max(n, 2 * prev, 16)``), the per
``(axis, direction)`` keying, and reuse without reallocation when the
existing capacity suffices — the invariants the zero-churn exchange in
``ParallelPICBase._exchange`` relies on.
"""

from __future__ import annotations

import numpy as np

from repro.constants import PARTICLE_RECORD_FIELDS
from repro.parallel.base import ExchangeScratch


class TestWire:
    def test_shape_and_dtype(self):
        buf = ExchangeScratch().wire(0, +1, 5)
        assert buf.dtype == np.float64
        assert buf.ndim == 2 and buf.shape[1] == PARTICLE_RECORD_FIELDS

    def test_minimum_capacity_is_16(self):
        s = ExchangeScratch()
        assert s.wire(0, +1, 0).shape[0] == 16
        assert s.wire(1, -1, 3).shape[0] == 16

    def test_reuse_without_realloc_when_capacity_suffices(self):
        s = ExchangeScratch()
        first = s.wire(0, +1, 10)
        again = s.wire(0, +1, 7)
        assert again is first  # same object: zero-churn steady state

    def test_growth_doubles_previous_capacity(self):
        s = ExchangeScratch()
        assert s.wire(0, +1, 10).shape[0] == 16
        assert s.wire(0, +1, 17).shape[0] == 32  # 2*16 > 17
        assert s.wire(0, +1, 100).shape[0] == 100  # n > 2*32

    def test_axis_direction_pairs_are_independent(self):
        s = ExchangeScratch()
        bufs = {
            key: s.wire(*key, 20)
            for key in ((0, +1), (0, -1), (1, +1), (1, -1))
        }
        assert len({id(b) for b in bufs.values()}) == 4
        # Growing one pair leaves the others untouched.
        grown = s.wire(0, +1, 200)
        assert grown is not bufs[(0, +1)]
        for key in ((0, -1), (1, +1), (1, -1)):
            assert s.wire(*key, 20) is bufs[key]

    def test_contents_survive_reuse_up_to_n(self):
        """A smaller follow-up request must not clear previously packed rows."""
        s = ExchangeScratch()
        buf = s.wire(1, +1, 16)
        buf[:4] = 7.5
        assert np.all(s.wire(1, +1, 4)[:4] == 7.5)
