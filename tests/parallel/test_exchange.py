"""Unit tests for the multi-hop particle exchange protocol."""

import numpy as np
import pytest

from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.decomp.partition import BlockPartition
from repro.parallel.base import exchange_particles
from repro.runtime import run_spmd
from repro.runtime.costmodel import CostModel


def make_particles(xs, ys, pids):
    p = ParticleArray.empty(len(xs))
    p.x[:] = xs
    p.y[:] = ys
    p.pid[:] = pids
    return p


def run_exchange(cells, dims, placed):
    """Run one exchange over a dims cart; ``placed[rank]`` = initial set.

    Returns {rank: sorted pids after exchange}.
    """
    mesh = Mesh(cells)
    part = BlockPartition.uniform(cells, *dims)
    cost = CostModel()
    n = dims[0] * dims[1]

    def prog(comm):
        cart = yield comm.create_cart(dims)
        mine = placed.get(cart.rank, ParticleArray.empty(0))
        mine = yield from exchange_particles(comm, cart, part, mesh, mine, cost)
        return sorted(mine.pid.tolist())

    res = run_spmd(n, prog)
    return dict(enumerate(res.returns))


class TestExchange:
    def test_single_rank_noop(self):
        p = make_particles([1.5, 3.5], [0.5, 2.5], [1, 2])
        out = run_exchange(8, (1, 1), {0: p})
        assert out[0] == [1, 2]

    def test_settled_particles_stay(self):
        # 2x1: rank 0 owns x in [0,4), rank 1 owns [4,8).
        out = run_exchange(
            8, (2, 1),
            {0: make_particles([1.5], [0.5], [1]),
             1: make_particles([5.5], [0.5], [2])},
        )
        assert out == {0: [1], 1: [2]}

    def test_one_hop_right(self):
        out = run_exchange(
            8, (2, 1),
            {0: make_particles([5.5], [0.5], [7])},  # belongs to rank 1
        )
        assert out == {0: [], 1: [7]}

    def test_wraparound_shorter_direction(self):
        # 4x1: a particle on rank 3 belonging to rank 0 goes forward (one
        # hop right with periodic wrap), not three hops left.
        out = run_exchange(
            16, (4, 1),
            {3: make_particles([1.5], [0.5], [9])},
        )
        assert out[0] == [9]

    def test_multi_hop_distant_destination(self):
        # 8x1 over 16 cells: blocks are 2 wide.  A particle 3 blocks away
        # needs 3 forwarding rounds.
        out = run_exchange(
            16, (8, 1),
            {0: make_particles([7.5], [0.5], [5])},  # block 3
        )
        assert out[3] == [5]
        assert all(out[r] == [] for r in out if r != 3)

    def test_diagonal_move_resolves_in_one_iteration(self):
        # 2x2 over 8 cells: particle on rank 0 (x<4, y<4) belongs to rank 3
        # (x>=4, y>=4): x-phase then y-phase of the same iteration.
        out = run_exchange(
            8, (2, 2),
            {0: make_particles([6.5], [6.5], [4])},
        )
        assert out[3] == [4]

    def test_vertical_only_move(self):
        out = run_exchange(
            8, (1, 2),
            {0: make_particles([0.5], [6.5], [2])},
        )
        assert out[1] == [2]

    def test_many_particles_all_directions(self):
        cells, dims = 16, (4, 4)
        mesh = Mesh(cells)
        part = BlockPartition.uniform(cells, *dims)
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 16, size=64)
        ys = rng.uniform(0, 16, size=64)
        all_p = make_particles(xs, ys, np.arange(1, 65))
        # Dump everything on rank 5; exchange must scatter it correctly.
        out = run_exchange(cells, dims, {5: all_p})
        owners = part.owner_rank(mesh.cell_of(xs), mesh.cell_of(ys))
        for rank in range(16):
            expected = sorted((np.arange(1, 65)[owners == rank]).tolist())
            assert out[rank] == expected

    def test_conservation_under_exchange(self):
        out = run_exchange(
            16, (4, 2),
            {r: make_particles([r * 2 + 0.5], [0.5], [r + 1]) for r in range(8)},
        )
        got = sorted(pid for pids in out.values() for pid in pids)
        assert got == list(range(1, 9))
