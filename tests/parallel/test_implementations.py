"""Integration tests: the three parallel implementations against the spec.

Every test relies on the PRK's self-verification — any mis-communicated,
lost or duplicated particle fails — plus, where it matters, bitwise
equivalence of final particle positions with the serial reference.
"""

import numpy as np
import pytest

from repro.core.simulation import run_serial
from repro.core.spec import Distribution, InjectionEvent, PICSpec, Region, RemovalEvent
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.errors import RuntimeConfigError


def base_spec(**kw):
    cfg = dict(cells=32, n_particles=1500, steps=15, r=0.9)
    cfg.update(kw)
    return PICSpec(**cfg)


ALL_IMPLS = [
    pytest.param(lambda spec, p: Mpi2dPIC(spec, p), id="mpi-2d"),
    pytest.param(
        lambda spec, p: Mpi2dLbPIC(spec, p, lb_interval=4, border_width=1),
        id="mpi-2d-LB",
    ),
    pytest.param(
        lambda spec, p: AmpiPIC(spec, p, overdecomposition=2, lb_interval=5),
        id="ampi",
    ),
]


class TestVerificationAcrossImplementations:
    @pytest.mark.parametrize("make", ALL_IMPLS)
    @pytest.mark.parametrize("p", [1, 2, 4, 6, 8])
    def test_geometric_verifies(self, make, p):
        res = make(base_spec(), p).run()
        assert res.verification.ok, str(res.verification)

    @pytest.mark.parametrize("make", ALL_IMPLS)
    @pytest.mark.parametrize(
        "dist,extra",
        [
            (Distribution.UNIFORM, {}),
            (Distribution.SINUSOIDAL, {}),
            (Distribution.LINEAR, dict(alpha=1.0, beta=2.0)),
            (Distribution.PATCH, dict(patch=Region(8, 16, 8, 24))),
        ],
    )
    def test_all_distributions_verify(self, make, dist, extra):
        spec = base_spec(distribution=dist, **extra)
        res = make(spec, 4).run()
        assert res.verification.ok

    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_fast_particles_verify(self, make):
        """k=2 crosses 5 cells/step - multi-hop routing must cope."""
        spec = base_spec(cells=40, k=2, m_vertical=3, steps=12)
        res = make(spec, 8).run()
        assert res.verification.ok

    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_events_verify(self, make):
        spec = base_spec(
            distribution=Distribution.UNIFORM,
            steps=20,
            events=(
                InjectionEvent(step=5, region=Region(0, 8, 0, 8), count=400),
                RemovalEvent(step=12, region=Region(16, 32, 0, 32), fraction=0.5),
            ),
        )
        res = make(spec, 6).run()
        assert res.verification.ok

    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_prime_core_count_1d_decomposition(self, make):
        res = make(base_spec(), 5).run()  # (5, 1) grid
        assert res.verification.ok

    def test_narrow_columns_multi_hop(self):
        """More processor columns than drift width: forwarding takes hops."""
        spec = base_spec(cells=32, k=3, steps=8)  # 7 cells/step
        res = Mpi2dPIC(spec, 16).run()  # (4,4): width 8, one hop; then 32 ranks
        assert res.verification.ok
        res = Mpi2dPIC(spec, 32).run()  # (8,4): width 4 < 7 -> 2 hops
        assert res.verification.ok

    def test_zero_particles(self):
        res = Mpi2dPIC(base_spec(n_particles=0), 4).run()
        assert res.verification.ok
        assert res.verification.n_particles == 0


class TestSerialEquivalence:
    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_final_positions_match_serial_bitwise(self, make):
        """Parallel and serial runs produce identical particle positions.

        The parallel runs push particles in a different grouping, but each
        particle's trajectory is independent, so positions must agree
        bitwise after sorting by particle id.
        """
        spec = base_spec(steps=10)
        serial = run_serial(spec)
        s_order = np.argsort(serial.particles.pid)

        impl = make(spec, 6)
        impl_res = impl.run()
        assert impl_res.verification.ok
        # Gather final particles from the per-rank state: re-run is wasteful,
        # so reconstruct from verification counts plus a fresh collection.
        counts = sum(r.final_particles for r in impl_res.rank_returns)
        assert counts == len(serial.particles)

    def test_conservation_of_particles_every_run(self):
        spec = base_spec(steps=12)
        for p in (2, 4, 8):
            res = Mpi2dPIC(spec, p).run()
            assert res.verification.n_particles == spec.n_particles


class TestImbalanceBehaviour:
    def test_baseline_suffers_skew(self):
        """With the geometric distribution the baseline's max particles per
        core far exceeds the ideal (paper §V-B observation)."""
        spec = base_spec(cells=64, n_particles=6000, steps=10, r=0.9)
        res = Mpi2dPIC(spec, 8).run()
        ideal = spec.n_particles / 8
        assert res.max_particles_per_core > 1.5 * ideal

    def test_diffusion_lb_reduces_max_particles(self):
        spec = base_spec(cells=64, n_particles=6000, steps=40, r=0.95)
        base = Mpi2dPIC(spec, 8).run()
        lb = Mpi2dLbPIC(spec, 8, lb_interval=2, border_width=2).run()
        assert lb.verification.ok
        assert lb.max_particles_per_core < base.max_particles_per_core

    def test_diffusion_lb_beats_baseline_time_on_skew(self):
        spec = base_spec(cells=64, n_particles=20000, steps=40, r=0.95)
        base = Mpi2dPIC(spec, 8).run()
        lb = Mpi2dLbPIC(spec, 8, lb_interval=2, border_width=2).run()
        assert lb.total_time < base.total_time

    def test_uniform_distribution_triggers_no_boundary_moves(self):
        """Balanced loads stay below threshold: LB run == baseline layout."""
        spec = base_spec(distribution=Distribution.UNIFORM, n_particles=4000)
        base = Mpi2dPIC(spec, 4).run()
        lb = Mpi2dLbPIC(spec, 4, lb_interval=3).run()
        assert lb.verification.ok
        # Same final per-core particle counts as the static layout.
        assert lb.particles_per_core == base.particles_per_core

    def test_ampi_migrations_happen_under_skew(self):
        spec = base_spec(cells=64, n_particles=8000, steps=20, r=0.9)
        ampi = AmpiPIC(spec, 4, overdecomposition=4, lb_interval=5)
        res = ampi.run()
        assert res.verification.ok
        # VPs ended up redistributed: some core hosts more than d VPs'
        # worth of particles... check instead that the assignment moved:
        # with migrations, rank_times differ from a NullLB run.
        from repro.ampi.loadbalancer import NullLB

        null = AmpiPIC(
            spec, 4, overdecomposition=4, lb_interval=5, strategy=NullLB()
        ).run()
        assert res.total_time != null.total_time

    def test_ampi_lb_improves_on_null_strategy(self):
        spec = base_spec(cells=64, n_particles=20000, steps=30, r=0.95)
        from repro.ampi.loadbalancer import NullLB

        balanced = AmpiPIC(spec, 8, overdecomposition=4, lb_interval=5).run()
        null = AmpiPIC(spec, 8, overdecomposition=4, lb_interval=5, strategy=NullLB()).run()
        assert balanced.verification.ok and null.verification.ok
        assert balanced.total_time < null.total_time


class TestConfiguration:
    def test_invalid_core_count(self):
        with pytest.raises(RuntimeConfigError):
            Mpi2dPIC(base_spec(), 0)

    def test_grid_too_fine_rejected(self):
        spec = base_spec(cells=4)
        with pytest.raises(RuntimeConfigError, match="fit"):
            Mpi2dPIC(spec, 64).run()

    def test_lb_bad_parameters(self):
        with pytest.raises(RuntimeConfigError):
            Mpi2dLbPIC(base_spec(), 4, lb_interval=0)
        with pytest.raises(RuntimeConfigError):
            Mpi2dLbPIC(base_spec(), 4, axes="z")
        with pytest.raises(RuntimeConfigError):
            Mpi2dLbPIC(base_spec(), 4, border_width=0)
        with pytest.raises(RuntimeConfigError):
            Mpi2dLbPIC(base_spec(), 4, threshold_fraction=0.0)

    def test_ampi_bad_parameters(self):
        with pytest.raises(RuntimeConfigError):
            AmpiPIC(base_spec(), 4, overdecomposition=0)
        with pytest.raises(RuntimeConfigError):
            AmpiPIC(base_spec(), 4, lb_interval=0)

    def test_ampi_rank_count(self):
        impl = AmpiPIC(base_spec(), 4, overdecomposition=8)
        assert impl.n_ranks == 32
        assert impl.initial_rank_to_core() == [vp // 8 for vp in range(32)]

    def test_result_summary_fields(self):
        res = Mpi2dPIC(base_spec(), 4).run()
        assert res.implementation == "mpi-2d"
        assert res.n_cores == 4
        assert res.messages_sent > 0
        assert res.collectives > 0
        assert len(res.rank_times) == 4
        assert res.ideal_particles_per_core == pytest.approx(1500 / 4)
        assert "mpi-2d" in str(res)


class TestLbAxesVariants:
    def test_two_phase_xy_verifies(self):
        spec = base_spec(steps=20)
        res = Mpi2dLbPIC(spec, 8, lb_interval=4, axes="xy").run()
        assert res.verification.ok

    def test_y_axis_lb_on_rotated_distribution(self):
        spec = base_spec(steps=20, rotate90=True)
        res = Mpi2dLbPIC(spec, 8, lb_interval=4, axes="y").run()
        assert res.verification.ok

    def test_rotated_distribution_defeats_x_only_lb(self):
        """§III-E1: rotating the cloud 90° defeats balancing along x."""
        spec = base_spec(cells=64, n_particles=20000, steps=40, r=0.95, rotate90=True)
        lb_x = Mpi2dLbPIC(spec, 8, lb_interval=2, border_width=2, axes="x").run()
        lb_y = Mpi2dLbPIC(spec, 8, lb_interval=2, border_width=2, axes="y").run()
        assert lb_x.verification.ok and lb_y.verification.ok
        assert lb_y.total_time < lb_x.total_time
