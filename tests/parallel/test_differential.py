"""Differential test harness: the three implementations against each other.

The paper's self-verification checks each run against the closed form; this
harness additionally checks the implementations against *each other*.  For
any spec, `mpi-2d`, `mpi-2d-LB` and `ampi` push the same particles through
the same physics, so all three must pass verification AND agree exactly on
the final global state: particle count, id checksum, and (bitwise) the
maximum position error — regardless of decomposition, diffusion balancing
or VP migration.  A load balancer that drops, duplicates or corrupts a
single particle breaks the agreement.
"""

import pytest

from repro.core.spec import Distribution, InjectionEvent, PICSpec, Region
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC

CORES = 4

DISTRIBUTIONS = [
    pytest.param(dict(distribution=Distribution.GEOMETRIC, r=0.9), id="geometric"),
    pytest.param(dict(distribution=Distribution.SINUSOIDAL), id="sinusoidal"),
    pytest.param(
        dict(distribution=Distribution.PATCH, patch=Region(4, 16, 4, 20)),
        id="patch",
    ),
]

INJECTIONS = [
    pytest.param((), id="no-injection"),
    pytest.param(
        (InjectionEvent(step=3, region=Region(0, 8, 0, 8), count=150),),
        id="injection",
    ),
]


def make_spec(dist_kwargs, events) -> PICSpec:
    return PICSpec(
        cells=32,
        n_particles=900,
        steps=8,
        events=tuple(events),
        **dist_kwargs,
    )


def run_all_impls(spec):
    """One result per implementation, identical spec and core count."""
    return {
        "mpi-2d": Mpi2dPIC(spec, CORES).run(),
        "mpi-2d-LB": Mpi2dLbPIC(
            spec, CORES, lb_interval=2, border_width=1
        ).run(),
        "ampi": AmpiPIC(
            spec, CORES, overdecomposition=2, lb_interval=3
        ).run(),
    }


class TestDifferentialMatrix:
    @pytest.mark.parametrize("events", INJECTIONS)
    @pytest.mark.parametrize("dist_kwargs", DISTRIBUTIONS)
    def test_all_impls_verify_and_agree(self, dist_kwargs, events):
        spec = make_spec(dist_kwargs, events)
        results = run_all_impls(spec)

        for name, res in results.items():
            assert res.verification.ok, f"{name}: {res.verification}"

        checksums = {r.verification.id_checksum for r in results.values()}
        assert len(checksums) == 1, f"checksums diverge: {results}"
        counts = {r.verification.n_particles for r in results.values()}
        assert len(counts) == 1, f"particle counts diverge: {counts}"
        # Bitwise agreement on the reduced maximum position error: every
        # particle's trajectory is independent of the decomposition.
        errors = {r.verification.max_abs_error for r in results.values()}
        assert len(errors) == 1, f"max errors diverge: {errors}"

    @pytest.mark.parametrize("events", INJECTIONS)
    def test_checksum_matches_analytic_expectation(self, events):
        spec = make_spec(dict(distribution=Distribution.GEOMETRIC, r=0.9), events)
        injected = sum(e.count for e in events)
        n_total = spec.n_particles + injected
        expected = n_total * (n_total + 1) // 2
        for name, res in run_all_impls(spec).items():
            assert res.verification.id_checksum == expected, name
            assert res.verification.n_particles == n_total, name

    def test_agreement_is_load_balancer_independent(self):
        """Different LB tunables change timing, never the physics."""
        spec = make_spec(dict(distribution=Distribution.GEOMETRIC, r=0.9), ())
        aggressive = Mpi2dLbPIC(spec, CORES, lb_interval=1, border_width=3).run()
        lazy = Mpi2dLbPIC(spec, CORES, lb_interval=7, border_width=1).run()
        assert aggressive.verification.ok and lazy.verification.ok
        assert (
            aggressive.verification.id_checksum == lazy.verification.id_checksum
        )
        assert (
            aggressive.verification.max_abs_error
            == lazy.verification.max_abs_error
        )
