"""Tests for explicit decomposition shapes (paper Fig. 3: 1D columns)."""

import pytest

from repro.core.spec import Distribution, PICSpec
from repro.parallel import Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.errors import RuntimeConfigError


def spec(**kw):
    cfg = dict(cells=32, n_particles=1200, steps=12, r=0.9)
    cfg.update(kw)
    return PICSpec(**cfg)


class TestExplicitDims:
    def test_1d_column_decomposition_verifies(self):
        res = Mpi2dPIC(spec(), 6, dims=(6, 1)).run()
        assert res.verification.ok

    def test_1d_row_decomposition_verifies(self):
        res = Mpi2dPIC(spec(), 6, dims=(1, 6)).run()
        assert res.verification.ok

    def test_fig3_1d_diffusion_scheme(self):
        """The paper's Fig. 3: diffusion over a 1D block-column layout."""
        res = Mpi2dLbPIC(
            spec(steps=30), 4, dims=(4, 1), lb_interval=2, border_width=2
        ).run()
        assert res.verification.ok

    def test_mismatched_dims_rejected(self):
        with pytest.raises(RuntimeConfigError, match="dims"):
            Mpi2dPIC(spec(), 6, dims=(2, 2)).run()

    def test_1d_row_decomposition_defeated_by_column_drift(self):
        """§III-E1: a block-row layout never sees the x-skew, so its load is
        balanced; but rotating the cloud defeats it."""
        skew = spec(cells=64, n_particles=8000, steps=10, r=0.9)
        rows = Mpi2dPIC(skew, 4, dims=(1, 4)).run()
        cols = Mpi2dPIC(skew, 4, dims=(4, 1)).run()
        # Row layout is balanced for a column-skewed cloud...
        assert rows.max_particles_per_core < cols.max_particles_per_core
        # ...until the cloud is rotated 90 degrees.
        from dataclasses import replace

        rotated = replace(skew, rotate90=True)
        rows_rot = Mpi2dPIC(rotated, 4, dims=(1, 4)).run()
        assert rows_rot.max_particles_per_core > 1.5 * rows.max_particles_per_core
