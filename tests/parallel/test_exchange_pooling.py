"""Tests for the pooled, zero-churn particle exchange.

Three concerns:

* **Zero-migration safety** — the seed's ``_route_axis`` only defined
  ``go_fwd``/``go_bwd`` inside the ``if len(particles)`` branch; the pooled
  rewrite restructured that path, and these tests pin the regression: a
  non-empty, fully-settled population must route as a no-op, repeatedly,
  with a shared scratch.

* **Steady-state allocation freedom** — the acceptance criterion "zero
  per-step full-population array allocations": with every particle settled,
  repeated exchanges must not allocate anything proportional to the
  population (tracemalloc sees numpy buffers).

* **Differential equivalence** — the pooled exchange and the verbatim seed
  implementation (:mod:`repro.bench.legacy`) must deliver identical
  particles, including the int64 fields, for arbitrary migration patterns.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.bench.legacy import exchange_particles_legacy
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.decomp.partition import BlockPartition
from repro.parallel.base import ExchangeScratch, _count_misplaced, exchange_particles
from repro.runtime import run_spmd
from repro.runtime.costmodel import CostModel

_FIELDS = ("x", "y", "vx", "vy", "q", "pid", "x0", "y0", "kdisp", "mdisp", "birth")


def make_population(n, mesh, seed, *, x_range=None, y_range=None):
    """Particles with all 11 fields populated, optionally confined to a block."""
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    xlo, xhi = x_range if x_range else (0.0, mesh.L)
    ylo, yhi = y_range if y_range else (0.0, mesh.L)
    p.x[:] = rng.uniform(xlo, xhi, n)
    p.y[:] = rng.uniform(ylo, yhi, n)
    p.vx[:] = rng.normal(size=n)
    p.vy[:] = rng.normal(size=n)
    p.q[:] = rng.choice([-1.0, 1.0], size=n)
    p.pid[:] = rng.integers(0, 2**40, size=n)
    p.x0[:] = p.x
    p.y0[:] = p.y
    p.kdisp[:] = rng.integers(-5, 5, size=n)
    p.mdisp[:] = rng.integers(-5, 5, size=n)
    p.birth[:] = rng.integers(0, 1000, size=n)
    return p


def run_exchange(cells, dims, placed, exchange=exchange_particles, rounds=1):
    """Run ``rounds`` exchanges over a cart; returns {rank: ParticleArray}."""
    mesh = Mesh(cells)
    part = BlockPartition.uniform(cells, *dims)
    cost = CostModel()
    n = dims[0] * dims[1]
    scratches = {}

    def prog(comm):
        cart = yield comm.create_cart(dims)
        scratch = scratches.setdefault(cart.rank, ExchangeScratch())
        mine = placed.get(cart.rank, ParticleArray.empty(0))
        for _ in range(rounds):
            mine = yield from exchange(
                comm, cart, part, mesh, mine, cost, scratch
            )
        return mine

    res = run_spmd(n, prog)
    return dict(enumerate(res.returns))


def sort_key(p):
    return np.argsort(p.pid)


def assert_same_particles(a: ParticleArray, b: ParticleArray):
    assert len(a) == len(b)
    ka, kb = sort_key(a), sort_key(b)
    for name in _FIELDS:
        fa, fb = getattr(a, name)[ka], getattr(b, name)[kb]
        assert fa.dtype == fb.dtype, name
        np.testing.assert_array_equal(fa, fb, err_msg=name)


# ----------------------------------------------------------------------
# Zero-migration regression (the go_fwd/go_bwd hazard)
# ----------------------------------------------------------------------
class TestZeroMigration:
    def test_settled_population_repeated_exchanges(self):
        """Non-empty settled sets through many exchanges with one scratch."""
        cells, dims = 16, (2, 2)
        mesh = Mesh(cells)
        part = BlockPartition.uniform(cells, *dims)
        placed = {}
        for rank in range(4):
            cx, cy = divmod(rank, 2)
            placed[rank] = make_population(
                200, mesh, seed=rank,
                x_range=part.x_range(cx), y_range=part.y_range(cy),
            )
        before = {r: p.copy() for r, p in placed.items()}
        out = run_exchange(cells, dims, placed, rounds=5)
        for rank in range(4):
            assert_same_particles(out[rank], before[rank])

    def test_one_axis_migrates_other_is_clean(self):
        """x-phase moves particles while the y-phase sees zero movers —
        exercising the clean-axis skip with a non-empty population."""
        cells, dims = 16, (2, 2)
        mesh = Mesh(cells)
        part = BlockPartition.uniform(cells, *dims)
        # Rank 0 holds particles that belong in rank 2's block (x moves,
        # y already correct) plus some of its own.
        stay = make_population(50, mesh, 1, x_range=(0, 8), y_range=(0, 8))
        move = make_population(30, mesh, 2, x_range=(8, 16), y_range=(0, 8))
        placed = {0: ParticleArray.concatenate([stay, move])}
        out = run_exchange(cells, dims, placed)
        assert len(out[0]) == 50
        assert len(out[2]) == 30
        assert_same_particles(out[0], stay)
        assert_same_particles(out[2], move)

    def test_count_misplaced_clean_flags(self):
        cells, dims = 16, (2, 2)
        mesh = Mesh(cells)
        part = BlockPartition.uniform(cells, *dims)

        def prog(comm):
            cart = yield comm.create_cart(dims)
            if cart.rank == 0:
                p = make_population(64, mesh, 3, x_range=(0, 8), y_range=(0, 8))
                scratch = ExchangeScratch()
                full = _count_misplaced(cart, part, mesh, p, scratch=scratch)
                legacy = _count_misplaced(cart, part, mesh, p)
                assert full == legacy == 0
                # Clean flags short-circuit the per-axis scans entirely.
                assert _count_misplaced(
                    cart, part, mesh, p,
                    scratch=scratch, x_clean=True, y_clean=True,
                ) == 0
            return None

        run_spmd(4, prog)


# ----------------------------------------------------------------------
# Steady-state allocation freedom
# ----------------------------------------------------------------------
def test_steady_state_exchange_allocates_no_population_arrays():
    """After warm-up, settled exchanges allocate nothing proportional to n.

    With 100k particles per rank, a single legacy-style full-population
    temporary (select / pack / searchsorted output) would be ~8.8 MB; the
    budget below is two orders of magnitude under one such array, while
    leaving room for the scheduler's small per-op bookkeeping objects.
    """
    cells, dims, n_per_rank = 16, (2, 1), 100_000
    mesh = Mesh(cells)
    part = BlockPartition.uniform(cells, *dims)
    cost = CostModel()
    placed = {
        0: make_population(n_per_rank, mesh, 10, x_range=(0, 8)),
        1: make_population(n_per_rank, mesh, 11, x_range=(8, 16)),
    }
    scratches = {0: ExchangeScratch(), 1: ExchangeScratch()}
    measured = {}

    def prog(comm):
        cart = yield comm.create_cart(dims)
        scratch = scratches[cart.rank]
        mine = placed[cart.rank]
        # Warm-up: sizes the scratch buffers and the workspace.
        for _ in range(2):
            mine = yield from exchange_particles(
                comm, cart, part, mesh, mine, cost, scratch
            )
        if cart.rank == 0:
            gc.collect()
            tracemalloc.start()
        for _ in range(5):
            mine = yield from exchange_particles(
                comm, cart, part, mesh, mine, cost, scratch
            )
        if cart.rank == 0:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            measured["peak"] = peak
        return len(mine)

    res = run_spmd(2, prog)
    assert res.returns == [n_per_rank, n_per_rank]
    # Both ranks' steady-state work (plus scheduler bookkeeping) ran inside
    # the measured window; a population-sized allocation is ~8.8 MB.
    assert measured["peak"] < 256 * 1024, f"allocated {measured['peak']} bytes"


# ----------------------------------------------------------------------
# Differential: pooled vs verbatim seed implementation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("dims", [(2, 1), (4, 2), (3, 3)])
def test_pooled_exchange_matches_legacy(dims, seed):
    cells = 18
    mesh = Mesh(cells)
    rng = np.random.default_rng(seed)
    n_ranks = dims[0] * dims[1]
    placed = {
        r: make_population(int(rng.integers(0, 120)), mesh, seed=100 * seed + r)
        for r in range(n_ranks)
    }
    pooled = run_exchange(
        cells, dims, {r: p.copy() for r, p in placed.items()}, rounds=2
    )
    legacy = run_exchange(
        cells, dims, {r: p.copy() for r, p in placed.items()},
        exchange=exchange_particles_legacy, rounds=2,
    )
    for rank in range(n_ranks):
        assert_same_particles(pooled[rank], legacy[rank])
