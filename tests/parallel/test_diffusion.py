"""Unit tests for the diffusion LB decision function (§IV-B)."""

import numpy as np
import pytest

from repro.parallel.diffusion import default_threshold, diffuse_splits, imbalance_ratio


class TestDiffuseSplits:
    def test_balanced_loads_do_nothing(self):
        splits = np.array([0, 4, 8, 12, 16])
        out = diffuse_splits(np.array([10, 10, 10, 10]), splits, threshold=1, width=1)
        np.testing.assert_array_equal(out, splits)

    def test_left_heavy_donates_to_right(self):
        splits = np.array([0, 8, 16])
        out = diffuse_splits(np.array([100, 0]), splits, threshold=10, width=2)
        np.testing.assert_array_equal(out, [0, 6, 16])

    def test_right_heavy_donates_to_left(self):
        splits = np.array([0, 8, 16])
        out = diffuse_splits(np.array([0, 100]), splits, threshold=10, width=2)
        np.testing.assert_array_equal(out, [0, 10, 16])

    def test_threshold_gates_movement(self):
        splits = np.array([0, 8, 16])
        out = diffuse_splits(np.array([55, 45]), splits, threshold=20, width=1)
        np.testing.assert_array_equal(out, splits)

    def test_min_width_respected(self):
        splits = np.array([0, 2, 16])
        out = diffuse_splits(np.array([100, 0]), splits, threshold=1, width=5, min_width=1)
        # Left block has width 2; it can donate at most 1 column.
        np.testing.assert_array_equal(out, [0, 1, 16])

    def test_never_creates_empty_block(self):
        splits = np.array([0, 1, 16])
        out = diffuse_splits(np.array([100, 0]), splits, threshold=1, width=3)
        assert np.all(np.diff(out) >= 1)
        np.testing.assert_array_equal(out, splits)

    def test_endpoints_fixed(self):
        splits = np.array([0, 5, 10, 16])
        out = diffuse_splits(np.array([0, 0, 100]), splits, threshold=1, width=2)
        assert out[0] == 0 and out[-1] == 16

    def test_interior_boundaries_move_independently(self):
        splits = np.array([0, 4, 8, 12, 16])
        loads = np.array([100, 0, 0, 100])
        out = diffuse_splits(loads, splits, threshold=10, width=1)
        np.testing.assert_array_equal(out, [0, 3, 8, 13, 16])

    def test_repeated_application_converges(self):
        """Iterating diffusion on a static skewed profile balances columns."""
        cells = 64
        profile = np.zeros(cells)
        profile[:8] = 100.0  # all the load in the first 8 columns
        splits = np.array([0, 16, 32, 48, 64])

        def loads_for(splits):
            return np.add.reduceat(profile, splits[:-1])

        for _ in range(200):
            splits = diffuse_splits(loads_for(splits), splits, threshold=40, width=1)
        assert imbalance_ratio(loads_for(splits)) < 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="splits"):
            diffuse_splits(np.array([1, 2]), np.array([0, 16]), 1, 1)

    def test_bad_parameters_rejected(self):
        splits = np.array([0, 8, 16])
        loads = np.array([1, 2])
        with pytest.raises(ValueError):
            diffuse_splits(loads, splits, threshold=-1, width=1)
        with pytest.raises(ValueError):
            diffuse_splits(loads, splits, threshold=1, width=0)
        with pytest.raises(ValueError):
            diffuse_splits(loads, splits, threshold=1, width=1, min_width=0)


class TestTraversalOrder:
    """Pin the left-to-right width-clamping order of ``diffuse_splits``.

    Movement decisions are Jacobi (pre-step loads), but each boundary's
    ``min_width`` clamp reads the *partially updated* split vector in
    left-to-right order — these hand-computed cases fail under any other
    traversal, so a reordering cannot slip through as a "refactor".
    """

    def test_left_move_sees_updated_left_neighbor(self):
        # loads [1, 100, 1]: boundary 1 moves right (block 1 donates left),
        # boundary 2 wants to move left (block 1 donates right).
        #
        # Boundary 1: donation = round(99/2 / (100/4)) = 2,
        #   room = new[2] - new[1] - min_width = 8 - 4 - 3 = 1 -> new[1] = 5.
        # Boundary 2: donation = 2, but its clamp reads the *updated*
        #   new[1] = 5: room = 8 - 5 - 3 = 0 -> no move.
        out = diffuse_splits(
            np.array([1, 100, 1]), np.array([0, 4, 8, 12]),
            threshold=0.5, width=5, min_width=3,
        )
        np.testing.assert_array_equal(out, [0, 5, 8, 12])
        # A stale (Jacobi) clamp would have allowed room = 8 - 4 - 3 = 1 and
        # produced [0, 5, 7, 12], squeezing block 1 to width 2 < min_width.
        assert np.all(np.diff(out) >= 3)

    def test_right_move_sees_stale_right_neighbor(self):
        # loads [0, 10, 100]: both boundaries move right.
        #
        # Boundary 1: donation = round(5 / (10/4)) = 2, but the clamp reads
        #   the *not yet updated* new[2] = 8: room = 8 - 4 - 3 = 1
        #   -> new[1] = 5 (conservative).
        # Boundary 2: donation = round(45 / (100/4)) = 2,
        #   room = 12 - 8 - 3 = 1 -> new[2] = 9.
        out = diffuse_splits(
            np.array([0, 10, 100]), np.array([0, 4, 8, 12]),
            threshold=0.5, width=5, min_width=3,
        )
        np.testing.assert_array_equal(out, [0, 5, 9, 12])
        # A right-to-left (or final-position) clamp would have given
        # boundary 1 room = 9 - 4 - 3 = 2 and produced [0, 6, 9, 12].

    def test_min_width_invariant_under_two_sided_squeeze(self):
        # Random-ish stress: the sequential clamp must never produce a block
        # thinner than min_width, whatever the load pattern.
        rng = np.random.default_rng(7)
        splits = np.array([0, 5, 10, 15, 20, 25, 30])
        for _ in range(200):
            loads = rng.integers(0, 1000, size=6).astype(float)
            splits = diffuse_splits(loads, splits, threshold=1, width=4, min_width=3)
            assert splits[0] == 0 and splits[-1] == 30
            assert np.all(np.diff(splits) >= 3)


class TestHelpers:
    def test_default_threshold(self):
        assert default_threshold(1000, 10, fraction=0.1) == pytest.approx(10.0)

    def test_default_threshold_bad_blocks(self):
        with pytest.raises(ValueError):
            default_threshold(100, 0)

    def test_imbalance_ratio(self):
        assert imbalance_ratio(np.array([1, 1, 1, 1])) == 1.0
        assert imbalance_ratio(np.array([4, 0, 0, 0])) == 4.0
        assert imbalance_ratio(np.array([0, 0])) == 1.0
