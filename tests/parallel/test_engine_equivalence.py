"""The engine-core acceptance matrix: every drive mode is bitwise equal.

For all three implementations, under both the serial and the process-pool
executor, the following four ways of driving a run must agree byte-for-byte
on final particle positions, id checksums, simulated clocks, golden traces
and checkpoint files:

* ``run()`` — the classic blocking drive (reference);
* ``tick()``-stepped — the engine advanced with a small bounded budget and
  explicit flushes;
* checkpoint-pause/resume — ``SimEngine.pause()`` to the first scheduled
  cut, then a fresh process state resumed from that file;
* EngineGroup-interleaved — all three implementations time-sliced in one
  group over a *shared* executor pool, with a shuffled slice order.

This is the non-negotiable invariant of the virtual-time engine core: the
incremental drive API changes where control returns, never what is
simulated.
"""

from __future__ import annotations

import os

import pytest

from repro.core.spec import Distribution, PICSpec
from repro.instrument import Tracer, dumps_chrome_trace
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import Checkpointer, ResilienceConfig, Snapshot
from repro.runtime import ENGINE_BLOCKED, ENGINE_FINISHED, EngineGroup
from repro.runtime.executor import make_executor

SPEC = PICSpec(
    cells=32, n_particles=900, steps=12,
    distribution=Distribution.UNIFORM,
)
CORES = 4
EVERY = 4  # cuts after steps 3/7/11 -> files 000004/000008/000012
PAUSE_FILE = "ckpt_step000004.ckpt"
LATER_FILES = ("ckpt_step000008.ckpt", "ckpt_step000012.ckpt")
CUT = EVERY
TICK_BUDGET = 7  # deliberately awkward: never aligned with a step boundary


def _capturing(cls):
    class Capturing(cls):
        def __init__(self, *args, **kw):
            super().__init__(*args, **kw)
            self.final = {}

        def _verify(self, comm, state):
            self.final[comm.world_rank] = state.particles.copy()
            return (yield from super()._verify(comm, state))

    return Capturing


IMPLS = [
    pytest.param("mpi-2d", _capturing(Mpi2dPIC), {}, id="mpi-2d"),
    pytest.param(
        "mpi-2d-LB", _capturing(Mpi2dLbPIC),
        dict(lb_interval=3, border_width=1), id="mpi-2d-LB",
    ),
    pytest.param(
        "ampi", _capturing(AmpiPIC),
        dict(overdecomposition=2, lb_interval=4), id="ampi",
    ),
]
_IMPL_TRIPLES = [p.values for p in IMPLS]

EXECUTORS = [
    pytest.param(("serial", 0), id="serial"),
    pytest.param(("process", 2), id="process-2"),
]


def _build(cls, params, ckpt_dir, executor, tracer, resume=None):
    cfg = ResilienceConfig(
        checkpointer=Checkpointer(str(ckpt_dir), every=EVERY), resume=resume
    )
    return cls(
        SPEC, CORES, span_tracer=tracer, executor=executor,
        resilience=cfg, **params,
    )


def _collect(impl, result, tracer, ckpt_dir):
    assert result.verification.ok, str(result.verification)
    ckpts = {
        name: open(os.path.join(ckpt_dir, name), "rb").read()
        for name in sorted(os.listdir(ckpt_dir))
    }
    return dict(
        result=result,
        final=impl.final,
        trace=dumps_chrome_trace(tracer),
        spans=list(tracer.spans),
        instants=list(tracer.instants),
        ckpts=ckpts,
    )


@pytest.fixture(scope="module", params=EXECUTORS)
def matrix(request, tmp_path_factory):
    """All four drive modes for every implementation under one executor."""
    kind, workers = request.param
    root = tmp_path_factory.mktemp(f"engine-eq-{kind}")
    out = {"executor": (kind, workers)}

    for key, cls, params in _IMPL_TRIPLES:
        # --- reference: classic blocking run() --------------------------
        ex = make_executor(kind, workers=workers)
        tracer = Tracer()
        ckpt = str(root / f"run-{key}")
        impl = _build(cls, params, ckpt, ex, tracer)
        try:
            result = impl.run()
        finally:
            ex.close()
        out[("run", key)] = _collect(impl, result, tracer, ckpt)

        # --- tick()-stepped with an awkward budget ----------------------
        ex = make_executor(kind, workers=workers)
        tracer = Tracer()
        ckpt = str(root / f"tick-{key}")
        impl = _build(cls, params, ckpt, ex, tracer)
        engine = impl.build_engine()
        try:
            while True:
                status = engine.tick(TICK_BUDGET)
                if status == ENGINE_FINISHED:
                    break
                if status == ENGINE_BLOCKED:
                    engine.flush()
            result = engine.result()
        finally:
            ex.close()
        out[("tick", key)] = _collect(impl, result, tracer, ckpt)

        # --- pause at the first scheduled cut, resume fresh -------------
        ex = make_executor(kind, workers=workers)
        ckpt = str(root / f"pause-{key}")
        impl = _build(cls, params, ckpt, ex, Tracer())
        engine = impl.build_engine()
        try:
            pause_path = engine.pause()
        finally:
            ex.close()
        assert pause_path is not None and pause_path.endswith(PAUSE_FILE)
        pause_bytes = open(pause_path, "rb").read()

        ex = make_executor(kind, workers=workers)
        tracer = Tracer()
        resumed_ckpt = str(root / f"resumed-{key}")
        impl = _build(
            cls, params, resumed_ckpt, ex, tracer,
            resume=Snapshot.load(pause_path),
        )
        try:
            result = impl.run()
        finally:
            ex.close()
        out[("pause", key)] = dict(
            _collect(impl, result, tracer, resumed_ckpt),
            pause_bytes=pause_bytes,
        )

    # --- all three implementations interleaved in one EngineGroup -------
    shared = make_executor(kind, workers=workers)
    group = EngineGroup(
        policy="fair", slice_ticks=48, order_seed=3, executor=shared
    )
    staged = {}
    try:
        for key, cls, params in _IMPL_TRIPLES:
            tracer = Tracer()
            ckpt = str(root / f"group-{key}")
            impl = _build(cls, params, ckpt, group.handle(key), tracer)
            group.add(key, impl.build_engine(engine_id=key))
            staged[key] = (impl, tracer, ckpt)
        results = group.run_all()
        for key, (impl, tracer, ckpt) in staged.items():
            out[("group", key)] = _collect(impl, results[key], tracer, ckpt)
        out["tag_stats"] = {k: dict(v) for k, v in shared.tag_stats.items()}
    finally:
        group.close()
    return out


def _assert_same_finals(ref, got, context):
    assert set(got) == set(ref)
    for rank, particles in ref.items():
        assert got[rank].pack().tobytes() == particles.pack().tobytes(), (
            f"rank {rank} particle state diverged ({context})"
        )


def _assert_same_clocks_and_counters(ref, got):
    assert got.total_time == ref.total_time
    assert got.rank_times == ref.rank_times
    assert got.messages_sent == ref.messages_sent
    assert got.bytes_sent == ref.bytes_sent
    assert got.collectives == ref.collectives
    assert got.verification.id_checksum == ref.verification.id_checksum
    assert got.verification.n_particles == ref.verification.n_particles


@pytest.mark.parametrize("mode", ["tick", "group"])
@pytest.mark.parametrize("key,cls,params", IMPLS)
class TestFullDriveModes:
    """tick()-stepped and group-interleaved agree with run() *in full*:
    clocks, positions, the whole golden trace, every checkpoint byte."""

    def test_clocks_and_counters(self, matrix, mode, key, cls, params):
        _assert_same_clocks_and_counters(
            matrix[("run", key)]["result"], matrix[(mode, key)]["result"]
        )

    def test_final_positions(self, matrix, mode, key, cls, params):
        _assert_same_finals(
            matrix[("run", key)]["final"], matrix[(mode, key)]["final"],
            f"{mode} vs run, {key}, {matrix['executor']}",
        )

    def test_golden_trace_bytes(self, matrix, mode, key, cls, params):
        assert matrix[(mode, key)]["trace"] == matrix[("run", key)]["trace"]

    def test_checkpoint_bytes(self, matrix, mode, key, cls, params):
        ref, got = matrix[("run", key)]["ckpts"], matrix[(mode, key)]["ckpts"]
        assert sorted(got) == sorted(ref)
        for name, blob in ref.items():
            assert got[name] == blob, f"{name} differs ({mode} vs run, {key})"


@pytest.mark.parametrize("key,cls,params", IMPLS)
class TestPauseResume:
    """pause() stops at a state byte-identical to the uninterrupted run's
    checkpoint; resuming from it reproduces everything from the cut on."""

    def test_pause_file_matches_uninterrupted_checkpoint(
        self, matrix, key, cls, params
    ):
        ref = matrix[("run", key)]["ckpts"][PAUSE_FILE]
        assert matrix[("pause", key)]["pause_bytes"] == ref

    def test_clocks_and_counters(self, matrix, key, cls, params):
        ref = matrix[("run", key)]["result"]
        got = matrix[("pause", key)]["result"]
        assert got.total_time == ref.total_time
        assert got.rank_times == ref.rank_times

    def test_final_positions(self, matrix, key, cls, params):
        _assert_same_finals(
            matrix[("run", key)]["final"], matrix[("pause", key)]["final"],
            f"pause/resume vs run, {key}",
        )

    def test_trace_from_cut_onward(self, matrix, key, cls, params):
        ref, got = matrix[("run", key)], matrix[("pause", key)]
        assert [s for s in got["spans"] if s.step >= CUT] == [
            s for s in ref["spans"] if s.step >= CUT
        ]
        assert [e for e in got["instants"] if e.step >= CUT] == [
            e for e in ref["instants"] if e.step >= CUT
        ]

    def test_later_checkpoints_identical(self, matrix, key, cls, params):
        ref, got = matrix[("run", key)]["ckpts"], matrix[("pause", key)]["ckpts"]
        assert sorted(got) == sorted(LATER_FILES)
        for name in LATER_FILES:
            assert got[name] == ref[name], f"{name} differs after resume ({key})"


def test_shared_pool_accounted_every_engine(matrix):
    stats = matrix["tag_stats"]
    assert set(stats) == {k for k, _, _ in _IMPL_TRIPLES}
    for key, entry in stats.items():
        assert entry["batches"] > 0, f"engine {key} never used the shared pool"
        assert entry["particles"] > 0
