"""Behavioural tests specific to the AMPI implementation."""

import numpy as np
import pytest

from repro.ampi.loadbalancer import GreedyLB, HintedTransferLB, NullLB, VpTopology, locality_score
from repro.core.spec import Distribution, PICSpec
from repro.decomp.grid import factor_2d
from repro.parallel import AmpiPIC


def spec(**kw):
    cfg = dict(cells=48, n_particles=2000, steps=20, r=0.9)
    cfg.update(kw)
    return PICSpec(**cfg)


class TestVpMechanics:
    def test_vp_count_and_initial_mapping(self):
        impl = AmpiPIC(spec(), 6, overdecomposition=4)
        assert impl.n_ranks == 24
        mapping = impl.initial_rank_to_core()
        # Contiguous blocks: each core hosts exactly d consecutive VPs.
        counts = np.bincount(mapping, minlength=6)
        assert counts.tolist() == [4] * 6
        assert mapping == sorted(mapping)

    def test_initial_mapping_is_compact(self):
        impl = AmpiPIC(spec(), 6, overdecomposition=4)
        topo = VpTopology(factor_2d(24))
        # Contiguous VP blocks form stripes: every y-neighbor pair is
        # co-located (score exactly 0.5 on a (6,4) grid with d=4); any
        # scattered mapping scores strictly less.
        assert locality_score(impl.initial_rank_to_core(), topo) >= 0.5

    def test_d1_equals_plain_mpi_rank_count(self):
        impl = AmpiPIC(spec(), 8, overdecomposition=1)
        assert impl.n_ranks == 8

    def test_per_step_overhead_costs_time(self):
        """With NullLB, higher d only adds VP scheduling/message overhead."""
        uniform = spec(distribution=Distribution.UNIFORM)
        t1 = AmpiPIC(uniform, 4, overdecomposition=1, lb_interval=1000,
                     strategy=NullLB()).run().total_time
        t4 = AmpiPIC(uniform, 4, overdecomposition=4, lb_interval=1000,
                     strategy=NullLB()).run().total_time
        assert t4 > t1

    def test_greedylb_fragments_the_mapping(self):
        """Full greedy reassignment destroys the compact initial layout."""
        impl = AmpiPIC(spec(steps=30), 6, overdecomposition=4,
                       lb_interval=10, strategy=GreedyLB())
        res = impl.run()
        assert res.verification.ok
        topo = VpTopology(factor_2d(24))
        initial = locality_score(impl.initial_rank_to_core(), topo)
        final = locality_score(res.final_rank_to_core, topo)
        assert final < initial

    def test_hinted_preserves_more_locality_end_to_end(self):
        kwargs = dict(overdecomposition=4, lb_interval=10)
        topo = VpTopology(factor_2d(24))
        greedy = AmpiPIC(spec(steps=30), 6, strategy=GreedyLB(), **kwargs).run()
        hinted = AmpiPIC(spec(steps=30), 6, strategy=HintedTransferLB(), **kwargs).run()
        assert hinted.verification.ok and greedy.verification.ok
        assert locality_score(hinted.final_rank_to_core, topo) >= locality_score(
            greedy.final_rank_to_core, topo
        )

    def test_nulllb_never_changes_mapping(self):
        impl = AmpiPIC(spec(steps=15), 4, overdecomposition=4,
                       lb_interval=5, strategy=NullLB())
        res = impl.run()
        assert res.final_rank_to_core == impl.initial_rank_to_core()

    def test_particles_per_core_sums_vps(self):
        res = AmpiPIC(spec(), 4, overdecomposition=4, lb_interval=1000,
                      strategy=NullLB()).run()
        assert sum(res.particles_per_core.values()) == 2000
        assert set(res.particles_per_core) <= set(range(4))

    def test_events_with_migration(self):
        from repro.core.spec import InjectionEvent, Region

        s = spec(
            steps=25,
            events=(InjectionEvent(step=8, region=Region(0, 8, 0, 8), count=500),),
        )
        res = AmpiPIC(s, 6, overdecomposition=4, lb_interval=5).run()
        assert res.verification.ok
        assert res.verification.n_particles == 2500
