"""Unit tests for the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench.reporting import (
    ascii_loglog,
    dispatch_breakdown,
    format_dispatch_breakdown,
    format_series,
    format_table,
    speedup_table,
)
from repro.instrument import ExecutorTrace
from repro.bench.runner import (
    IMPLEMENTATIONS,
    RunRecord,
    run_implementation,
    serial_model_time,
)
from repro.bench.sweep import SweepPoint, grid_points, run_sweep
from repro.bench.workloads import (
    fig5_workload,
    fig6_workload,
    fig7_workload,
    rescale_r,
    scaled_cost,
)
from repro.core.spec import PICSpec
from repro.runtime.machine import MachineModel


class TestScaling:
    def test_rescale_r_preserves_cloud_shape(self):
        """r**cells is the invariant: the cloud's extent relative to L."""
        r2 = rescale_r(0.999, 5998, 480)
        assert r2**480 == pytest.approx(0.999**5998, rel=1e-9)

    def test_rescale_r_identity(self):
        assert rescale_r(0.99, 100, 100) == pytest.approx(0.99)

    def test_scaled_cost_compensates_particles(self):
        m = MachineModel()
        c = scaled_cost(m, particle_scale=10.0)
        base = scaled_cost(m, particle_scale=1.0)
        # 10x fewer particles at 10x the rate = same compute time.
        assert c.push_time(100) == pytest.approx(base.push_time(1000))
        assert c.particle_byte_scale == 10.0

    def test_scaled_cost_cell_scale(self):
        m = MachineModel()
        c = scaled_cost(m, 1.0, cell_scale=4.0)
        assert c.subgrid_wire_bytes(10) == 4 * 10 * 8
        assert c.subgrid_migration_time(10) == pytest.approx(
            4 * 10 * c.cell_handling_s
        )

    def test_workloads_construct(self):
        for factory in (fig5_workload, fig6_workload, fig7_workload):
            w = factory()
            spec = w.spec_for(48)
            assert isinstance(spec, PICSpec)
            assert spec.cells % 2 == 0
            assert w.cost.machine is w.machine

    def test_fig7_weak_scaling_particles(self):
        w = fig7_workload()
        assert w.spec_for(96).n_particles == 2 * w.spec_for(48).n_particles


class TestRunner:
    def test_known_implementations(self):
        assert set(IMPLEMENTATIONS) == {"mpi-2d", "mpi-2d-LB", "ampi"}

    def test_unknown_implementation_rejected(self):
        w = fig6_workload()
        with pytest.raises(ValueError, match="unknown implementation"):
            run_implementation("x", "nope", w.spec_for(4), 4, w.machine, w.cost)

    def test_run_implementation_records(self):
        w = fig6_workload()
        spec = PICSpec(cells=32, n_particles=200, steps=5)
        rec = run_implementation("t", "mpi-2d", spec, 4, w.machine, w.cost)
        assert rec.verified
        assert rec.cores == 4
        assert rec.sim_time > 0
        assert rec.wall_time > 0
        row = rec.as_row()
        assert row["impl"] == "mpi-2d"

    def test_serial_model_time(self):
        w = fig6_workload()
        spec = PICSpec(cells=32, n_particles=100, steps=10)
        assert serial_model_time(spec, w.cost) == pytest.approx(
            1000 * w.cost.particle_push_s
        )


class TestReporting:
    def records(self):
        return [
            RunRecord("f", "mpi-2d", c, t, 0.1, True, 100, 50.0, 10, 100)
            for c, t in [(4, 2.0), (8, 1.0), (16, 0.6)]
        ] + [
            RunRecord("f", "mpi-2d-LB", c, t, 0.1, True, 60, 50.0, 10, 100)
            for c, t in [(4, 1.8), (8, 0.8), (16, 0.4)]
        ]

    def test_format_table_contains_all_rows(self):
        table = format_table(self.records())
        assert table.count("mpi-2d-LB") == 3
        assert "sim_time_s" in table

    def test_format_series_sorted(self):
        series = format_series(self.records())
        assert series["mpi-2d"] == [(4.0, 2.0), (8.0, 1.0), (16.0, 0.6)]

    def test_ascii_loglog_renders(self):
        chart = ascii_loglog(format_series(self.records()), title="t")
        assert "A=mpi-2d" in chart
        assert "B=mpi-2d-LB" in chart
        assert chart.count("|") >= 18

    def test_ascii_loglog_empty(self):
        assert ascii_loglog({}) == "(no data)"

    def test_speedup_table(self):
        out = speedup_table(self.records(), serial_time=4.0)
        assert "2.0x" in out  # 4.0 / 2.0 at 4 cores


class TestSweep:
    def test_grid_points(self):
        pts = grid_points("ampi", 8, dict(lb_interval=5), "overdecomposition", [1, 2])
        assert len(pts) == 2
        assert pts[1].impl_kwargs == dict(lb_interval=5, overdecomposition=2)
        assert pts[1].label == {"overdecomposition": 2}

    def test_run_sweep_executes_and_labels(self):
        w = fig6_workload()

        class Tiny:
            machine = w.machine
            cost = w.cost

            @staticmethod
            def spec_for(cores):
                return PICSpec(cells=32, n_particles=100, steps=3)

        msgs = []
        pts = [SweepPoint("mpi-2d", 4, {}, {"case": "a"})]
        records = run_sweep("t", Tiny, pts, progress=msgs.append)
        assert len(records) == 1
        assert records[0].params["case"] == "a"
        assert msgs and "cores=4" in msgs[0]


class TestDispatchBreakdown:
    """dispatch_breakdown / format_dispatch_breakdown over ExecSpans."""

    def _trace(self):
        tr = ExecutorTrace()
        # Batch 1: dispatch 10ms wall / 2ms cpu, 4 tasks, 30ms kernel.
        tr.record("dispatch", -1, 1, 0.00, 0.01, tasks=4, cpu_s=0.002)
        tr.record("execute", 0, 1, 0.01, 0.04, tasks=4)
        tr.record("merge", -1, 1, 0.01, 0.05, tasks=1)
        # Batch 2 (steady): dispatch 4ms wall / 1ms cpu after a 5ms gap.
        tr.record("dispatch", -1, 2, 0.10, 0.104, tasks=4, cpu_s=0.001)
        tr.record("execute", 0, 2, 0.104, 0.14, tasks=4)
        tr.record("merge", -1, 2, 0.104, 0.15, tasks=1)
        return tr

    def test_per_batch_rows(self):
        b = dispatch_breakdown(self._trace().spans)
        assert [r["batch"] for r in b["rows"]] == [1, 2]
        r1, r2 = b["rows"]
        assert r1["dispatch_s"] == pytest.approx(0.01)
        assert r1["dispatch_cpu_s"] == pytest.approx(0.002)
        assert r1["kernel_s"] == pytest.approx(0.03)
        assert r1["exchange_s"] == 0.0  # no previous batch
        # Gap between batch 1's merge end (0.05) and batch 2's dispatch
        # start (0.10) is the exchange window.
        assert r2["exchange_s"] == pytest.approx(0.05)

    def test_totals_and_steady_state_cpu_per_task(self):
        t = dispatch_breakdown(self._trace().spans)["totals"]
        assert t["batches"] == 2 and t["tasks"] == 8
        assert t["dispatch_cpu_s"] == pytest.approx(0.003)
        assert t["dispatch_cpu_s_per_task"] == pytest.approx(0.003 / 8)
        # Steady state excludes batch 1 (where the plan is resolved).
        assert t["steady_dispatch_cpu_s_per_task"] == pytest.approx(0.001 / 4)
        assert t["steady_dispatch_s_per_task"] == pytest.approx(0.004 / 4)

    def test_cpu_falls_back_to_wall_without_cpu_arg(self):
        tr = ExecutorTrace()
        tr.record("dispatch", -1, 1, 0.0, 0.01, tasks=2)
        t = dispatch_breakdown(tr.spans)["totals"]
        assert t["dispatch_cpu_s"] == pytest.approx(0.01)

    def test_format_renders_cpu_column_and_footer(self):
        out = format_dispatch_breakdown(dispatch_breakdown(self._trace().spans))
        lines = out.splitlines()
        assert "cpu_ms" in lines[0]
        assert "dispatch cpu per task:" in lines[-1]
        assert "steady state:" in lines[-1]
        # 1ms cpu over 4 steady tasks = 250 us/task in the footer.
        assert "250.00 us" in lines[-1]

    def test_format_truncates_long_runs(self):
        tr = ExecutorTrace()
        for b in range(1, 20):
            tr.record("dispatch", -1, b, b * 1.0, b * 1.0 + 0.001, tasks=1)
        out = format_dispatch_breakdown(dispatch_breakdown(tr.spans), max_rows=5)
        assert "... 14 more batches" in out
