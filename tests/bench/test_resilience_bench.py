"""Schema/gate logic of the straggler-recovery bench, plus a tiny live run."""

from __future__ import annotations

import pytest

from repro.bench import resilience as bench


def _entry(impl, *, recovery=0.7, gate=0.5, verified=True, ckpts=("a",)):
    return {
        "impl": impl,
        "clean_time_s": 0.05,
        "fault_time_s": 0.08,
        "slowdown_s": 0.03,
        "recovery_fraction": None if impl == "mpi-2d" else recovery,
        "gate_min_recovery": None if impl == "mpi-2d" else gate,
        "verification_ok": verified,
        "checkpoints_written": list(ckpts),
    }


def _doc(entries=None):
    return {
        "schema": bench.SCHEMA_VERSION,
        "preset": "smoke",
        "machine": bench.machine_fingerprint(),
        "scenario": {"cores": 4},
        "entries": entries
        if entries is not None
        else [_entry("mpi-2d"), _entry("mpi-2d-LB"), _entry("ampi")],
    }


class TestSchema:
    def test_valid_doc(self):
        assert bench.check_schema(_doc()) == []

    def test_wrong_schema_version(self):
        doc = _doc()
        doc["schema"] = 99
        assert any("schema" in e for e in bench.check_schema(doc))

    def test_missing_entry_key(self):
        doc = _doc()
        del doc["entries"][1]["slowdown_s"]
        assert any("slowdown_s" in e for e in bench.check_schema(doc))

    def test_missing_implementation(self):
        doc = _doc([_entry("mpi-2d"), _entry("mpi-2d-LB")])
        assert any("ampi" in e for e in bench.check_schema(doc))


class TestGates:
    def test_all_pass(self):
        assert bench.check_gates(_doc()) == []

    def test_below_recovery_gate(self):
        doc = _doc([
            _entry("mpi-2d"),
            _entry("mpi-2d-LB", recovery=0.3, gate=0.5),
            _entry("ampi"),
        ])
        (msg,) = bench.check_gates(doc)
        assert "mpi-2d-LB" in msg and "30%" in msg and "50%" in msg

    def test_verification_failure(self):
        doc = _doc([
            _entry("mpi-2d", verified=False), _entry("mpi-2d-LB"), _entry("ampi")
        ])
        assert any("verification" in m for m in bench.check_gates(doc))

    def test_missing_checkpoints(self):
        doc = _doc([
            _entry("mpi-2d", ckpts=()), _entry("mpi-2d-LB"), _entry("ampi")
        ])
        assert any("no checkpoints" in m for m in bench.check_gates(doc))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "out" / "BENCH_resilience.json")
        doc = _doc()
        bench.save_bench(doc, path)
        assert bench.load_bench(path) == doc

    def test_load_rejects_invalid(self, tmp_path):
        path = str(tmp_path / "bad.json")
        doc = _doc()
        doc["schema"] = 99
        bench.save_bench(doc, path)
        with pytest.raises(ValueError, match="schema"):
            bench.load_bench(path)


class TestLiveScenario:
    def test_tiny_scenario_produces_valid_entries(self):
        """End-to-end sanity at toy scale (no recovery gate enforced)."""
        # steps > CHECKPOINT_EVERY so the faulted runs write a checkpoint.
        scenario, entries = bench.run_scenario(
            cells=32, particles=600, steps=30, cores=4,
            gate_min_recovery=None, progress=lambda _line: None,
        )
        doc = {
            "schema": bench.SCHEMA_VERSION, "preset": "tiny",
            "machine": bench.machine_fingerprint(),
            "scenario": scenario, "entries": entries,
        }
        assert bench.check_schema(doc) == []
        for e in entries:
            assert e["verification_ok"]
            assert e["checkpoints_written"]
            assert e["fault_time_s"] > e["clean_time_s"]
