"""Unit tests for the wall-clock perf harness (:mod:`repro.bench.perf`)."""

from __future__ import annotations

import json

import pytest

from repro.bench import perf
from repro.core import kernel


def _doc(entries):
    return dict(
        schema=perf.SCHEMA_VERSION, preset="smoke",
        machine=perf.machine_fingerprint(), entries=entries,
    )


def _entry(name, speedup, gate=None, **extra):
    e = dict(
        name=name, kind="kernel", params={}, baseline_s=speedup,
        optimized_s=1.0, speedup=speedup, pushes_per_sec=1e6,
        gate_min_speedup=gate,
    )
    e.update(extra)
    return e


class TestGates:
    def test_pass(self):
        doc = _doc([_entry("a", 3.5, gate=3.0), _entry("b", 1.2)])
        assert perf.check_gates(doc) == []

    def test_absolute_gate_failure(self):
        doc = _doc([_entry("a", 2.4, gate=3.0)])
        (msg,) = perf.check_gates(doc)
        assert "a" in msg and "2.40" in msg and "3.0" in msg

    def test_sim_time_divergence_is_a_failure(self):
        doc = _doc([_entry("a", 9.0, sim_time_match=False)])
        assert any("diverged" in m for m in perf.check_gates(doc))


class TestRegression:
    def test_within_tolerance(self):
        base = _doc([_entry("a", 2.0)])
        new = _doc([_entry("a", 1.6)])  # -20% < 25% tolerance
        assert perf.check_regression(new, base) == []

    def test_regression_detected(self):
        base = _doc([_entry("a", 2.0)])
        new = _doc([_entry("a", 1.4)])  # -30%
        (msg,) = perf.check_regression(new, base)
        assert "a" in msg and "regressed" in msg

    def test_missing_entry_detected(self):
        base = _doc([_entry("a", 2.0)])
        new = _doc([])
        (msg,) = perf.check_regression(new, base)
        assert "not in this run" in msg

    def test_custom_tolerance(self):
        base = _doc([_entry("a", 2.0)])
        new = _doc([_entry("a", 1.6)])
        assert perf.check_regression(new, base, tolerance=0.1) != []


class TestPersist:
    def test_round_trip(self, tmp_path):
        doc = _doc([_entry("a", 2.0)])
        path = str(tmp_path / "bench.json")
        perf.save_bench(doc, path)
        assert perf.load_bench(path) == doc

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            perf.load_bench(str(path))


class TestDrivers:
    def test_bench_kernel_entry_shape(self):
        entry = perf.bench_kernel(2_000, steps=2, cells=16)
        assert entry["kind"] == "kernel"
        assert entry["optimized_s"] > 0 and entry["baseline_s"] > 0
        assert entry["speedup"] == entry["baseline_s"] / entry["optimized_s"]
        assert entry["pushes_per_sec"] > 0

    def test_bench_end_to_end_verifies_and_matches_sim_time(self):
        entry = perf.bench_end_to_end(1_000, steps=3, cores=2)
        assert entry["sim_time_match"] is True
        assert entry["sim_time_s"] > 0

    def test_bench_exchange_verifies_and_matches_sim_time(self):
        entry = perf.bench_exchange(1_000, steps=3, cores=2)
        assert entry["sim_time_match"] is True

    def test_legacy_kernel_patch_restores(self):
        orig = kernel.advance
        with perf.use_legacy_kernel():
            assert kernel.advance is not orig
        assert kernel.advance is orig

    def test_legacy_exchange_patch_restores(self):
        import repro.parallel.base as base_mod

        orig = base_mod.exchange_particles
        with perf.use_legacy_exchange():
            assert base_mod.exchange_particles is not orig
        assert base_mod.exchange_particles is orig

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            perf.run_suite("huge")

    def test_bench_worker_sweep_entry_shape(self):
        entry = perf.bench_worker_sweep(
            2_000, steps=2, cores=2, workers=(1, 2), reps=1
        )
        assert entry["kind"] == "workers"
        assert entry["sim_time_match"] is True
        assert [r["workers"] for r in entry["rows"]] == [1, 2]
        for row in entry["rows"]:
            assert row["wall_s"] > 0
            assert row["pool_startup_s"] > 0  # reported, never in wall_s
        assert entry["speedup"] == entry["baseline_s"] / entry["optimized_s"]

    def test_entries_carry_environment_stamp(self):
        """Every entry records cpu_count / python / resolved backend, so a
        gate_skipped in a checked-in BENCH file is auditable."""
        import platform

        from repro.core.kernel_compiled import resolve_backend

        entry = perf.bench_kernel(1_000, steps=2, cells=16)
        env = entry["env"]
        assert env["cpu_count"] >= 1
        assert env["python"] == platform.python_version()
        assert env["kernel_backend"] == resolve_backend("auto")

    def test_bench_dispatch_gates_on_steady_cpu_per_task(self):
        entry = perf.bench_dispatch(800, steps=4, cores=4, workers=2)
        assert entry["kind"] == "dispatch"
        assert entry["sim_time_match"] is True
        assert entry["gate_min_speedup"] == 5.0
        # The gated ratio is the steady-state parent-CPU cost per task.
        ring = entry["ring_totals"]["steady_dispatch_cpu_s_per_task"]
        pipe = entry["pipe_totals"]["steady_dispatch_cpu_s_per_task"]
        assert entry["optimized_s"] == ring
        assert entry["baseline_s"] == pipe
        assert entry["speedup"] == pytest.approx(pipe / ring)
        # The ring side really ran on its cached plan.
        assert entry["plan_hits"] >= 1
        assert entry["plan_misses"] >= 1  # the cold batch

    def test_bench_worker_sweep_gate_skipped_without_enough_cpus(self, monkeypatch):
        """On a host with fewer cpus than the top worker count the speedup
        gate is recorded as skipped, not failed."""
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        entry = perf.bench_worker_sweep(
            1_000, steps=2, cores=2, workers=(1, 2), reps=1
        )
        assert entry["gate_min_speedup"] is None
        assert "2 workers" in entry["gate_skipped"]


def test_cli_profile_flag(capsys):
    """`run --profile` completes and prints the cProfile table."""
    from repro.cli import main

    rc = main([
        "run", "--impl", "mpi-2d", "--cores", "2", "--cells", "16",
        "--particles", "40", "--steps", "2", "--profile",
        # Pin the executor: profiling rejects the process backend, and the
        # CI matrix leg sets REPRO_EXECUTOR=process as the default.
        "--executor", "serial",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cProfile: top 20" in out
    assert "cumulative" in out


class TestCampaignBench:
    def test_entry_shape_and_audits(self):
        # Small live run: 4 points over 2 fabric jobs, serial-ish inner
        # executors.  The ratio is host-dependent; the audits are not.
        entry = perf.bench_campaign_throughput(
            points=4, jobs=2, inner_workers=1, gate=1.0
        )
        assert entry["kind"] == "campaign"
        assert entry["params"]["points"] == 4
        assert entry["bitwise_match"] is True
        assert entry["cache_coherent"] is True
        assert entry["startup_once_per_worker"] is True
        assert entry["speedup"] > 0
        assert len(entry["rows"]) >= 2
        for row in entry["rows"]:
            assert len(row["pool_startup_s"]) == 1

    def test_cache_incoherence_is_a_failure(self):
        doc = _doc([_entry("c", 5.0, kind="campaign", cache_coherent=False)])
        assert any("re-executed" in m for m in perf.check_gates(doc))

    def test_per_point_startup_is_a_failure(self):
        doc = _doc(
            [_entry("c", 5.0, kind="campaign", startup_once_per_worker=False)]
        )
        assert any("once per worker" in m for m in perf.check_gates(doc))

    def test_run_suite_only_filters_by_kind(self):
        with pytest.raises(ValueError, match="entries of kind"):
            perf.run_suite("smoke", only="nonexistent")


class TestMultiplexBench:
    def test_entry_shape_and_audit(self):
        # Small live run: 4 engines interleaved vs sequential.  The ratio
        # is host-dependent; the simulated-time audit is not.
        entry = perf.bench_multiplex(engines=4, cores=2, gate=0.1)
        assert entry["kind"] == "multiplex"
        assert entry["params"]["engines"] == 4
        assert entry["sim_time_match"] is True
        assert entry["speedup"] > 0
        assert entry["engines_per_sec_sequential"] > 0
        assert entry["engines_per_sec_interleaved"] > 0
        assert entry["slices"] >= 4

    def test_sim_time_divergence_fails_the_gate_audit(self):
        doc = _doc([_entry("m", 5.0, kind="multiplex", sim_time_match=False)])
        assert any("simulated time" in m for m in perf.check_gates(doc))
