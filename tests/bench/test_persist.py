"""Tests for benchmark record persistence and comparison."""

import pytest

from repro.ampi.loadbalancer import GreedyLB
from repro.bench.persist import (
    SCHEMA_VERSION,
    compare_records,
    load_records,
    record_key,
    save_records,
)
from repro.bench.runner import RunRecord


def rec(impl="mpi-2d", cores=4, sim_time=1.0, **params):
    return RunRecord(
        figure="f", implementation=impl, cores=cores, sim_time=sim_time,
        wall_time=0.1, verified=True, max_particles_per_core=10,
        ideal_particles_per_core=5.0, messages_sent=3, bytes_sent=100,
        params=params,
    )


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        records = [rec(), rec(impl="ampi", cores=8, sim_time=0.5, F=25)]
        path = save_records(records, tmp_path / "out.json")
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[1].implementation == "ampi"
        assert loaded[1].params == {"F": 25}
        assert loaded[0].sim_time == 1.0

    def test_strategy_objects_serialized_by_name(self, tmp_path):
        records = [rec(strategy=GreedyLB())]
        path = save_records(records, tmp_path / "s.json")
        loaded = load_records(path)
        assert loaded[0].params["strategy"] == "GreedyLB"

    def test_schema_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999, "records": []}')
        with pytest.raises(ValueError, match="schema"):
            load_records(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_records([rec()], tmp_path / "a" / "b" / "c.json")
        assert path.exists()


class TestCompare:
    def test_identical_runs_report_nothing(self):
        a = [rec(), rec(cores=8)]
        b = [rec(), rec(cores=8)]
        assert compare_records(a, b) == []

    def test_time_change_reported(self):
        diffs = compare_records([rec(sim_time=1.0)], [rec(sim_time=1.1)])
        assert len(diffs) == 1
        assert "+10.00%" in diffs[0]

    def test_tolerance_suppresses_noise(self):
        diffs = compare_records(
            [rec(sim_time=1.0)], [rec(sim_time=1.0001)], rel_tolerance=1e-3
        )
        assert diffs == []

    def test_missing_points_reported(self):
        diffs = compare_records([rec()], [rec(), rec(cores=16)])
        assert any("only in new" in d for d in diffs)

    def test_key_distinguishes_params(self):
        assert record_key(rec(F=1)) != record_key(rec(F=2))
