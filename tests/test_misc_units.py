"""Edge-case unit tests across small helpers."""

import numpy as np
import pytest

from repro.bench.figures import write_report
from repro.runtime import ops
from repro.runtime.reduce_ops import MAX, MIN, PROD, SUM, ReduceOp


class TestReduceOps:
    def test_reduce_list(self):
        assert SUM.reduce([1, 2, 3]) == 6
        assert MAX.reduce([3, 1, 2]) == 3
        assert MIN.reduce([3, 1, 2]) == 1
        assert PROD.reduce([2, 3, 4]) == 24

    def test_reduce_empty_rejected(self):
        with pytest.raises(ValueError):
            SUM.reduce([])

    def test_elementwise_on_arrays(self):
        a, b = np.array([1.0, 5.0]), np.array([4.0, 2.0])
        np.testing.assert_array_equal(MAX(a, b), [4.0, 5.0])
        np.testing.assert_array_equal(MIN(a, b), [1.0, 2.0])

    def test_custom_op(self):
        first = ReduceOp("FIRST", lambda a, b: a)
        assert first.reduce([7, 8, 9]) == 7

    def test_callable(self):
        assert SUM(2, 3) == 5


class TestOps:
    def test_compute_op_rejects_negative(self):
        with pytest.raises(ValueError):
            ops.ComputeOp(-1.0)

    def test_compute_op_zero_allowed(self):
        assert ops.ComputeOp(0.0).seconds == 0.0


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report("unit", "hello\nworld", tmp_path)
        assert path.read_text() == "hello\nworld\n"
        assert path.name == "unit.txt"

    def test_creates_directory(self, tmp_path):
        out = tmp_path / "nested" / "dir"
        path = write_report("x", "y", out)
        assert path.exists()
