"""Tests for block partitions with movable boundaries."""

import numpy as np
import pytest

from repro.decomp.partition import BlockPartition, even_splits


class TestEvenSplits:
    def test_exact_division(self):
        np.testing.assert_array_equal(even_splits(12, 4), [0, 3, 6, 9, 12])

    def test_uneven_division_balanced(self):
        s = even_splits(10, 3)
        widths = np.diff(s)
        assert widths.sum() == 10
        assert widths.max() - widths.min() <= 1

    def test_more_parts_than_cells_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            even_splits(4, 5)

    def test_single_part(self):
        np.testing.assert_array_equal(even_splits(7, 1), [0, 7])


class TestPartitionValidation:
    def test_uniform_construction(self):
        p = BlockPartition.uniform(16, 4, 2)
        assert p.px == 4 and p.py == 2
        assert p.widths().tolist() == [4, 4, 4, 4]
        assert p.heights().tolist() == [8, 8]

    def test_bad_endpoints_rejected(self):
        with pytest.raises(ValueError, match="start at 0"):
            BlockPartition(16, np.array([1, 16]), np.array([0, 16]))

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            BlockPartition(16, np.array([0, 8, 8, 16]), np.array([0, 16]))

    def test_decreasing_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            BlockPartition(16, np.array([0, 10, 6, 16]), np.array([0, 16]))


class TestOwnership:
    def test_x_owner_uniform(self):
        p = BlockPartition.uniform(16, 4, 1)
        cols = np.array([0, 3, 4, 7, 8, 15])
        assert p.x_owner(cols).tolist() == [0, 0, 1, 1, 2, 3]

    def test_owner_rank_row_major(self):
        p = BlockPartition.uniform(8, 2, 2)
        # cell (0,0) -> rank 0; (0,4) -> rank 1; (4,0) -> rank 2; (4,4) -> 3
        assert p.owner_rank(np.array([0, 0, 4, 4]), np.array([0, 4, 0, 4])).tolist() == [0, 1, 2, 3]

    def test_owner_after_boundary_move(self):
        p = BlockPartition.uniform(16, 4, 1)
        moved = p.with_xsplits([0, 2, 8, 12, 16])
        assert moved.x_owner(np.array([3])).tolist() == [1]
        assert p.x_owner(np.array([3])).tolist() == [0]

    def test_every_cell_owned_exactly_once(self):
        p = BlockPartition(12, np.array([0, 1, 5, 12]), np.array([0, 6, 12]))
        cols = np.arange(12)
        owners = p.x_owner(cols)
        counts = np.bincount(owners, minlength=3)
        assert counts.tolist() == [1, 4, 7]


class TestGeometry:
    def test_block_shape_and_cells(self):
        p = BlockPartition(12, np.array([0, 4, 12]), np.array([0, 3, 12]))
        assert p.block_shape(0, 0) == (4, 3)
        assert p.block_cells(1, 1) == 8 * 9

    def test_ranges(self):
        p = BlockPartition.uniform(16, 4, 2)
        assert p.x_range(1) == (4, 8)
        assert p.y_range(1) == (8, 16)


class TestBoundaryMoves:
    def test_with_xsplits_immutably(self):
        p = BlockPartition.uniform(16, 4, 1)
        q = p.with_xsplits([0, 2, 8, 12, 16])
        assert p.xsplits.tolist() == [0, 4, 8, 12, 16]
        assert q.xsplits.tolist() == [0, 2, 8, 12, 16]

    def test_moved_cells_x(self):
        p = BlockPartition.uniform(16, 4, 1)
        new = [0, 2, 8, 13, 16]  # boundary 1 moved by 2, boundary 3 by 1
        assert p.moved_cells_x(new) == 3 * 16

    def test_moved_cells_length_mismatch(self):
        p = BlockPartition.uniform(16, 4, 1)
        with pytest.raises(ValueError):
            p.moved_cells_x([0, 8, 16])

    def test_equality(self):
        a = BlockPartition.uniform(16, 4, 2)
        b = BlockPartition.uniform(16, 4, 2)
        c = a.with_xsplits([0, 2, 8, 12, 16])
        assert a == b
        assert a != c
