"""Tests for processor-grid factorization."""

import pytest

from repro.decomp.grid import factor_2d, grid_fits_mesh


class TestFactor2D:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (1, (1, 1)),
            (2, (2, 1)),
            (4, (2, 2)),
            (6, (3, 2)),
            (12, (4, 3)),
            (24, (6, 4)),
            (48, (8, 6)),
            (192, (16, 12)),
            (384, (24, 16)),
            (3072, (64, 48)),
            (7, (7, 1)),  # prime -> 1D column decomposition
        ],
    )
    def test_known_factorizations(self, p, expected):
        assert factor_2d(p) == expected

    def test_product_invariant(self):
        for p in range(1, 200):
            px, py = factor_2d(p)
            assert px * py == p
            assert px >= py >= 1

    def test_near_square(self):
        """No other factorization is closer to square."""
        for p in (12, 36, 60, 96):
            px, py = factor_2d(p)
            best = min(
                abs(a - p // a) for a in range(1, p + 1) if p % a == 0
            )
            assert abs(px - py) == best

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            factor_2d(0)


class TestGridFitsMesh:
    def test_fits(self):
        assert grid_fits_mesh(100, 10, 5)

    def test_too_many_columns(self):
        assert not grid_fits_mesh(4, 5, 1)
