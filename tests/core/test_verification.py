"""Tests for the §III-D self-verification (Eqs. 5-6 + id checksum)."""

import numpy as np
import pytest

from repro.core import verification as vf
from repro.core.initialization import place_particles
from repro.core.kernel import advance
from repro.core.mesh import Mesh
from repro.core.spec import Distribution, InjectionEvent, PICSpec, Region, RemovalEvent


def run_particles(mesh, p, steps, dt=1.0):
    for _ in range(steps):
        advance(mesh, p, dt)
    return p


class TestExpectedPositions:
    def test_matches_kernel_basic(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.array([0]), np.array([0]),
                            dt=1.0, k=0, m_vertical=1, start_id=1)
        run_particles(mesh, p, 5)
        xs, ys = vf.expected_final_positions(mesh, p, 5)
        assert xs[0] == pytest.approx(p.x[0], abs=1e-10)
        assert ys[0] == p.y[0]

    def test_wraps_periodically(self):
        mesh = Mesh(4)
        p = place_particles(mesh, np.array([0]), np.array([0]),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        xs, _ = vf.expected_final_positions(mesh, p, 9)
        assert xs[0] == pytest.approx((0.5 + 9) % 4.0)

    def test_birth_reduces_participation(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.array([0]), np.array([0]),
                            dt=1.0, k=0, m_vertical=0, start_id=1, birth=3)
        xs, _ = vf.expected_final_positions(mesh, p, 5)
        assert xs[0] == pytest.approx(0.5 + 2)  # only 2 steps participated

    def test_birth_beyond_total_rejected(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.array([0]), np.array([0]),
                            dt=1.0, k=0, m_vertical=0, start_id=1, birth=9)
        with pytest.raises(ValueError):
            vf.expected_final_positions(mesh, p, 5)


class TestPositionErrors:
    def test_periodic_error_metric(self):
        """A particle at ~L and expected at ~0 has tiny periodic error."""
        mesh = Mesh(8)
        p = place_particles(mesh, np.array([0]), np.array([0]),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        p.x[0] = 8.0 - 1e-9
        p.x0[0] = 8.0 - 1e-9  # expected = x0 for 0 steps
        p.x0[0] = -1e-9 % 8.0
        err = vf.position_errors(mesh, p, 0)
        assert err[0] < 1e-8

    def test_detects_single_cell_error(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.array([0, 1]), np.array([0, 0]),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        run_particles(mesh, p, 3)
        p.x[1] += 1.0  # corrupt one particle by one cell
        err = vf.position_errors(mesh, p, 3)
        assert err[0] < 1e-10
        assert err[1] == pytest.approx(1.0)


class TestChecksums:
    def test_initial_checksum(self):
        assert vf.initial_checksum(100) == 5050
        assert vf.initial_checksum(0) == 0

    def test_expected_checksum_no_events(self):
        spec = PICSpec(cells=8, n_particles=10, steps=2)
        assert vf.expected_checksum(spec) == 55

    def test_expected_checksum_with_injection(self):
        spec = PICSpec(
            cells=8, n_particles=10, steps=5,
            events=(InjectionEvent(step=1, region=Region(0, 2, 0, 2), count=5),),
        )
        # ids 11..15 added
        assert vf.expected_checksum(spec) == 55 + sum(range(11, 16))

    def test_expected_checksum_with_removals(self):
        spec = PICSpec(
            cells=8, n_particles=10, steps=5,
            events=(RemovalEvent(step=1, region=Region(0, 2, 0, 2)),),
        )
        assert vf.expected_checksum(spec, removed_ids_sum=7) == 48

    def test_two_injections_sequential_ids(self):
        spec = PICSpec(
            cells=8, n_particles=10, steps=5,
            events=(
                InjectionEvent(step=1, region=Region(0, 2, 0, 2), count=3),
                InjectionEvent(step=2, region=Region(0, 2, 0, 2), count=2),
            ),
        )
        assert vf.expected_checksum(spec) == 55 + (11 + 12 + 13) + (14 + 15)


class TestVerify:
    def test_pass(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.arange(4), np.zeros(4, dtype=int),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        run_particles(mesh, p, 4)
        res = vf.verify(mesh, p, 4, expected_ids=10)
        assert res.ok
        assert res.positions_ok and res.checksum_ok
        assert "PASS" in str(res)

    def test_position_failure_detected(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.arange(4), np.zeros(4, dtype=int),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        run_particles(mesh, p, 4)
        p.x[2] += 0.5
        res = vf.verify(mesh, p, 4, expected_ids=10)
        assert not res.positions_ok
        assert res.checksum_ok
        assert not res.ok

    def test_checksum_failure_detected(self):
        """A dropped particle fails the checksum even if positions pass."""
        mesh = Mesh(8)
        p = place_particles(mesh, np.arange(4), np.zeros(4, dtype=int),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        run_particles(mesh, p, 4)
        p = p.select(np.array([0, 1, 2]))  # lose particle 4
        res = vf.verify(mesh, p, 4, expected_ids=10)
        assert res.positions_ok
        assert not res.checksum_ok

    def test_duplicated_particle_detected(self):
        mesh = Mesh(8)
        p = place_particles(mesh, np.arange(4), np.zeros(4, dtype=int),
                            dt=1.0, k=0, m_vertical=0, start_id=1)
        run_particles(mesh, p, 4)
        p = p.append(p.select(np.array([0])))
        res = vf.verify(mesh, p, 4, expected_ids=10)
        assert not res.checksum_ok

    def test_empty_population(self):
        mesh = Mesh(8)
        from repro.core.particles import ParticleArray

        res = vf.verify(mesh, ParticleArray.empty(0), 4, expected_ids=0)
        assert res.ok

    def test_verify_distributed_assembles_reductions(self):
        mesh = Mesh(8)
        from repro.core.particles import ParticleArray

        res = vf.verify_distributed(
            mesh, ParticleArray.empty(0), 4, expected_ids=10,
            global_max_error=1e-9, global_count=4, global_id_sum=10,
        )
        assert res.ok
        res_bad = vf.verify_distributed(
            mesh, ParticleArray.empty(0), 4, expected_ids=10,
            global_max_error=0.5, global_count=4, global_id_sum=10,
        )
        assert not res_bad.ok
