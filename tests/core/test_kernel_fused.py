"""Bitwise identity of the fused kernel against the reference implementation.

``kernel.advance`` is the fused, workspace-backed, cache-blocked hot path;
``kernel.advance_reference`` is the seed's textbook implementation, kept as
the perf baseline.  The optimisation's whole claim is that they are
*bit-for-bit* interchangeable — the §III-D axis-of-symmetry verification
depends on exact IEEE-754 reproducibility, not approximate agreement — so
every comparison here is on ``tobytes()``, never ``allclose``.

Covered regimes:

* ``h == 1.0`` (the divide-free fast path) and ``h != 1.0``;
* populations below, at, straddling and spanning several ``KERNEL_BLOCK``
  chunks (the blocked loop must not perturb results at chunk seams);
* velocities large enough that particles cross the periodic boundary every
  step (the selective-wrap path) and small enough that none do;
* repeated workspace reuse across different population sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernel
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray

B = kernel.KERNEL_BLOCK


def make_particles(n, mesh, seed=11, v_scale=0.05):
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    p.x[:] = rng.uniform(0.0, mesh.L, n)
    p.y[:] = rng.uniform(0.0, mesh.L, n)
    p.vx[:] = rng.normal(size=n) * v_scale
    p.vy[:] = rng.normal(size=n) * v_scale
    p.q[:] = np.where(rng.integers(0, 2, n) == 0, 1.0, -1.0)
    return p


def assert_bitwise_equal(a: ParticleArray, b: ParticleArray, context=""):
    for name in ("x", "y", "vx", "vy"):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), (
            f"{name} diverged {context}"
        )


@pytest.mark.parametrize("h", [1.0, 0.73])
@pytest.mark.parametrize("v_scale", [0.05, 4.0])
@pytest.mark.parametrize("n", [0, 1, 7, 1000, B, B + 1, 3 * B + 17])
def test_fused_matches_reference_bitwise(h, v_scale, n):
    mesh = Mesh(cells=32, h=h)
    fused = make_particles(n, mesh, v_scale=v_scale)
    ref = make_particles(n, mesh, v_scale=v_scale)
    for step in range(5):
        kernel.advance(mesh, fused, 0.05)
        kernel.advance_reference(mesh, ref, 0.05)
        assert_bitwise_equal(fused, ref, f"(h={h}, n={n}, step={step})")


def test_workspace_reuse_across_sizes():
    """One shared workspace serving shrinking/growing populations stays exact."""
    mesh = Mesh(cells=16)
    ws = kernel.KernelWorkspace()
    for n in (5000, 17, 40_000, 0, 1, 12_345):
        fused = make_particles(n, mesh, seed=n + 1, v_scale=2.0)
        ref = make_particles(n, mesh, seed=n + 1, v_scale=2.0)
        kernel.advance(mesh, fused, 0.1, workspace=ws)
        kernel.advance_reference(mesh, ref, 0.1)
        assert_bitwise_equal(fused, ref, f"(n={n})")


def test_positions_stay_in_domain_through_wrap_path():
    mesh = Mesh(cells=8)
    p = make_particles(3000, mesh, v_scale=10.0)  # most escape every step
    for _ in range(10):
        kernel.advance(mesh, p, 0.1)
        assert np.all((p.x >= 0.0) & (p.x < mesh.L))
        assert np.all((p.y >= 0.0) & (p.y < mesh.L))


def test_fused_preserves_vertical_force_cancellation():
    """§III-D: at mid-cell height the two corner forces of each column are
    exact mirror images, so the pairwise accumulation cancels vertically
    bit-for-bit.  The fused path must preserve this — it is what keeps the
    PRK's analytic verification exact."""
    mesh = Mesh(cells=8)
    p = ParticleArray.empty(3)
    p.x[:] = [4.5, 0.25, 7.9]
    p.y[:] = [4.5, 0.5, 2.5]  # all at ry == 0.5
    p.q[:] = [1.0, -2.0, 3.0]
    p.vx[:] = 0.5
    for _ in range(20):
        kernel.advance(mesh, p, 0.05)
        assert np.array_equal(p.y, [4.5, 0.5, 2.5])  # exact, no tolerance
        assert np.array_equal(p.vy, [0.0, 0.0, 0.0])
