"""Tests for statistical diagnostics — including the paper's §III-C point
that they are *not* sufficient for verification."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    PopulationStats,
    column_histogram,
    histogram_l1_distance,
    imbalance_over_columns,
    population_stats,
)
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.simulation import run_serial
from repro.core.spec import Distribution, PICSpec
from repro.core.verification import position_errors


def uniform_run(n=2000, steps=20):
    spec = PICSpec(
        cells=64, n_particles=n, steps=steps, distribution=Distribution.UNIFORM
    )
    return spec, run_serial(spec)


class TestPopulationStats:
    def test_empty_population(self):
        s = population_stats(ParticleArray.empty(0))
        assert s.count == 0
        assert s.kinetic_energy == 0.0

    def test_basic_quantities(self):
        p = ParticleArray.empty(2)
        p.x[:] = [1.0, 3.0]
        p.y[:] = [2.0, 2.0]
        p.vx[:] = [1.0, -1.0]
        p.q[:] = [0.5, -0.5]
        s = population_stats(p)
        assert s.mean_x == 2.0
        assert s.var_y == 0.0
        assert s.kinetic_energy == pytest.approx(1.0)
        assert s.total_charge == 0.0

    def test_close_to_tolerates_small_drift(self):
        a = PopulationStats(10, 1.0, 1.0, 2.0, 2.0, 5.0, 0.0)
        b = PopulationStats(10, 1.0005, 1.0, 2.0, 2.0, 5.0, 0.0)
        assert a.close_to(b, rtol=1e-3)

    def test_close_to_rejects_count_change(self):
        a = PopulationStats(10, 1.0, 1.0, 2.0, 2.0, 5.0, 0.0)
        b = PopulationStats(9, 1.0, 1.0, 2.0, 2.0, 5.0, 0.0)
        assert not a.close_to(b)


class TestHistogram:
    def test_column_histogram_counts(self):
        mesh = Mesh(8)
        p = ParticleArray.empty(3)
        p.x[:] = [0.5, 0.7, 5.5]
        hist = column_histogram(mesh, p)
        assert hist.tolist() == [2, 0, 0, 0, 0, 1, 0, 0]

    def test_l1_distance(self):
        a = np.array([10, 0])
        b = np.array([0, 10])
        assert histogram_l1_distance(a, a) == 0.0
        assert histogram_l1_distance(a, b) == 2.0

    def test_l1_shape_mismatch(self):
        with pytest.raises(ValueError):
            histogram_l1_distance(np.zeros(3), np.zeros(4))

    def test_imbalance_uniform_near_one(self):
        spec, result = uniform_run()
        mesh = Mesh(spec.cells)
        assert imbalance_over_columns(mesh, result.particles) < 1.5

    def test_imbalance_geometric_large(self):
        spec = PICSpec(cells=64, n_particles=5000, steps=1, r=0.8)
        result = run_serial(spec)
        mesh = Mesh(spec.cells)
        assert imbalance_over_columns(mesh, result.particles) > 5.0


class TestStatisticalVerificationIsInsufficient:
    """The paper's §III-C claim, demonstrated.

    A single-particle position error is a needle the statistical haystack
    cannot find: every moment shifts by O(1/n), far inside the tolerance
    such checks must grant — while the exact Eq. 5-6 check pinpoints it.
    """

    def test_single_particle_error_invisible_statistically(self):
        spec, result = uniform_run(n=2000)
        mesh = Mesh(spec.cells)
        clean = result.particles
        before = population_stats(clean)

        corrupted = clean.copy()
        corrupted.x[7] = (corrupted.x[7] + 1.0) % mesh.L  # one cell off

        after = population_stats(corrupted)
        # Statistical verification (loose tolerance): passes.
        assert before.close_to(after, rtol=1e-3)
        # Histogram comparison at a statistical tolerance: also passes.
        d = histogram_l1_distance(
            column_histogram(mesh, clean), column_histogram(mesh, corrupted)
        )
        assert d < 0.01

        # The PRK's exact verification: caught, and localized.
        errors = position_errors(mesh, corrupted, spec.steps)
        assert errors[7] == pytest.approx(1.0)
        assert np.count_nonzero(errors > 1e-5) == 1

    def test_exact_check_beats_energy_conservation(self):
        """Swapping two particles' velocities conserves energy exactly but
        derails both trajectories — only the exact check notices later."""
        spec, result = uniform_run(n=500, steps=10)
        p = result.particles
        before = population_stats(p)
        p.vx[[0, 1]] = p.vx[[1, 0]]
        after = population_stats(p)
        assert before.kinetic_energy == pytest.approx(after.kinetic_energy)
