"""Cross-backend bitwise conformance suite (tentpole of the kernel-backend PR).

Built on :mod:`tests.core.backend_conformance`.  Four layers of claims:

1. **Kernel level** — the compiled ``advance_arrays`` and its
   thread-parallel ``compiled-parallel`` variant are bit-for-bit equal
   to the python fused path *and* the textbook ``advance_reference``,
   across mesh spacings, velocity regimes, block seams and pooled
   (capacity-managed view) buffers.
2. **Full-run matrix** — every implementation (mpi-2d, mpi-2d-LB, ampi)
   under every executor (serial, batched, process) under every backend
   (python, compiled, compiled-parallel) produces identical positions,
   checksums, simulated clocks, golden traces and checkpoint files.
3. **Graceful degradation** — without numba, ``compiled`` fails loudly
   naming the ``repro[compiled]`` extra, ``auto`` falls back to python
   with exactly one logged notice, and the whole suite still passes
   (compiled legs skip).
4. **Identity exclusion** — ``kernel_backend`` does not participate in
   ``spec_hash``, and layers 1-2 are what make that exclusion sound.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from tests.core.backend_conformance import (
    BACKENDS,
    CKPT_EVERY,
    EXECUTORS,
    IMPLS,
    advance_arrays_backend,
    assert_bitwise_equal,
    assert_scenarios_identical,
    make_particles,
    requires_numba,
    run_scenario,
)
from repro.config import ConfigError
from repro.config.runspec import ExecutorConfig, ImplConfig, RunSpec
from repro.core import kernel, kernel_compiled
from repro.core.kernel_compiled import (
    COMPILED_EXTRA,
    HAVE_NUMBA,
    CompiledKernelUnavailable,
    resolve_backend,
)
from repro.core.mesh import Mesh
from repro.core.spec import PICSpec
from repro.runtime.executor import make_executor

B = kernel.KERNEL_BLOCK


# ----------------------------------------------------------------------
# 1. Kernel level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("h", [1.0, 0.73])
@pytest.mark.parametrize("v_scale", [0.05, 4.0])
@pytest.mark.parametrize("n", [0, 1, 1000, B + 1])
class TestKernelConformance:
    def test_matches_reference_bitwise(self, backend, h, v_scale, n):
        mesh = Mesh(cells=32, h=h)
        got = make_particles(n, mesh, v_scale=v_scale)
        ref = make_particles(n, mesh, v_scale=v_scale)
        for step in range(5):
            advance_arrays_backend(
                backend, mesh, got.x, got.y, got.vx, got.vy, got.q, 0.05
            )
            kernel.advance_reference(mesh, ref, 0.05)
            assert_bitwise_equal(
                got, ref, f"({backend}, h={h}, n={n}, step={step})"
            )
        assert got.id_checksum() == ref.id_checksum()


@pytest.mark.parametrize("backend", BACKENDS)
def test_pooled_buffers_conform(backend):
    """The kernel must be exact on capacity-managed *views*, not just on
    freshly-allocated arrays: grow a container through the amortized-
    doubling path so every field is a prefix view into a larger backing
    array, then push through the backend under test."""
    mesh = Mesh(cells=16)
    pooled = make_particles(300, mesh, seed=3, v_scale=2.0)
    pooled.reserve(5000)  # capacity >> n: fields become prefix views
    pooled.extend(make_particles(137, mesh, seed=4, v_scale=2.0))
    ref = pooled.copy()  # compact owning arrays, same logical content
    for step in range(4):
        advance_arrays_backend(
            backend, mesh, pooled.x, pooled.y, pooled.vx, pooled.vy,
            pooled.q, 0.1,
        )
        kernel.advance_reference(mesh, ref, 0.1)
        assert_bitwise_equal(pooled, ref, f"({backend}, pooled, step={step})")


@pytest.mark.parametrize("backend", BACKENDS)
def test_workspace_argument_accepted(backend):
    """Both backends take (and the compiled one ignores) a workspace, so
    call sites can thread one unconditionally."""
    mesh = Mesh(cells=8)
    ws = kernel.KernelWorkspace()
    got = make_particles(500, mesh, seed=9)
    ref = make_particles(500, mesh, seed=9)
    advance_arrays_backend(
        backend, mesh, got.x, got.y, got.vx, got.vy, got.q, 0.05,
        workspace=ws,
    )
    kernel.advance_reference(mesh, ref, 0.05)
    assert_bitwise_equal(got, ref, f"({backend}, workspace)")


@requires_numba
def test_vertical_force_cancellation_compiled():
    """§III-D: the compiled pairwise accumulation must preserve the exact
    mirror-image cancellation at mid-cell height, like the fused path."""
    from repro.core.particles import ParticleArray

    mesh = Mesh(cells=8)
    p = ParticleArray.empty(3)
    p.x[:] = [4.5, 0.25, 7.9]
    p.y[:] = [4.5, 0.5, 2.5]  # all at ry == h/2
    p.q[:] = [1.0, -2.0, 3.0]
    p.vx[:] = 0.5
    for _ in range(20):
        kernel_compiled.advance_compiled(mesh, p, 0.05)
        assert np.array_equal(p.y, [4.5, 0.5, 2.5])  # exact, no tolerance
        assert np.array_equal(p.vy, [0.0, 0.0, 0.0])


# ----------------------------------------------------------------------
# 2. Full-run matrix
# ----------------------------------------------------------------------
_AVAILABLE = ["python"] + (
    ["compiled", "compiled-parallel"] if HAVE_NUMBA else []
)

_MATRIX = [
    pytest.param(
        (impl_name, ex, workers, backend),
        id=f"{impl_name}-{ex}-{backend}",
        marks=() if backend == "python" else (requires_numba,),
    )
    for impl_name, _cls, _params in IMPLS
    for ex, workers in EXECUTORS
    for backend in ("python", "compiled", "compiled-parallel")
]
#: Cells compared against their impl's serial/python reference cell.
_OTHER = [
    p
    for p in _MATRIX
    if (p.values[0][1], p.values[0][3]) != ("serial", "python")
]


@pytest.fixture(scope="module")
def matrix(tmp_path_factory):
    out = {}
    for impl_name, cls, params in IMPLS:
        for ex, workers in EXECUTORS:
            for backend in _AVAILABLE:
                ckpt = tmp_path_factory.mktemp(
                    f"ckpt-{impl_name}-{ex}-{backend}"
                )
                out[(impl_name, ex, backend)] = run_scenario(
                    cls, params, ex, workers, backend, ckpt
                )
    return out


@pytest.mark.parametrize("cell", _OTHER)
def test_full_run_conforms_to_serial_python(matrix, cell):
    impl_name, ex, _workers, backend = cell
    ref = matrix[(impl_name, "serial", "python")]
    got = matrix[(impl_name, ex, backend)]
    assert_scenarios_identical(ref, got, f"in cell {cell}")


def test_verification_identical_across_implementations(matrix):
    """Same workload ⇒ same global verification regardless of topology or
    balancing strategy; pins that the matrix cells above really ran the
    same problem."""
    ref = matrix[(IMPLS[0][0], "serial", "python")]
    for impl_name, _cls, _params in IMPLS[1:]:
        got = matrix[(impl_name, "serial", "python")]
        for key in ("id_checksum", "n_particles", "max_abs_error"):
            assert got[key] == ref[key], f"{key} diverged for {impl_name}"


def test_auto_backend_end_to_end(matrix, tmp_path):
    """``auto`` must land bitwise on the reference whichever concrete
    backend it resolves to on this host."""
    impl_name, cls, params = IMPLS[0]
    got = run_scenario(cls, params, "serial", 0, "auto", tmp_path)
    assert_scenarios_identical(
        matrix[(impl_name, "serial", "python")], got, "in the auto cell"
    )


# ----------------------------------------------------------------------
# 3. Graceful degradation (both directions, via monkeypatched HAVE_NUMBA)
# ----------------------------------------------------------------------
class TestWithoutNumba:
    @pytest.fixture(autouse=True)
    def _no_numba(self, monkeypatch):
        monkeypatch.setattr(kernel_compiled, "HAVE_NUMBA", False)
        monkeypatch.setattr(kernel_compiled, "_FALLBACK_LOGGED", False)

    def test_explicit_compiled_raises_naming_the_extra(self):
        for backend in ("compiled", "compiled-parallel"):
            with pytest.raises(CompiledKernelUnavailable) as exc:
                resolve_backend(backend)
            assert COMPILED_EXTRA in str(exc.value)
            assert "auto" in str(exc.value)  # points at the escape hatch

    def test_executor_construction_fails_eagerly(self):
        """A compiled request dies at make_executor time, not mid-run."""
        for name in ("serial", "batched", "process"):
            with pytest.raises(CompiledKernelUnavailable):
                make_executor(name, workers=2, kernel_backend="compiled")

    def test_advance_arrays_compiled_raises(self):
        mesh = Mesh(cells=8)
        p = make_particles(4, mesh)
        with pytest.raises(CompiledKernelUnavailable):
            kernel_compiled.advance_arrays_compiled(
                mesh, p.x, p.y, p.vx, p.vy, p.q, 0.05
            )

    def test_auto_falls_back_and_logs_exactly_once(self, caplog):
        with caplog.at_level(logging.INFO, logger=kernel_compiled.__name__):
            assert resolve_backend("auto") == "python"
            assert resolve_backend("auto") == "python"
            assert resolve_backend(None) == "python"
        notices = [r for r in caplog.records if COMPILED_EXTRA in r.message]
        assert len(notices) == 1

    def test_python_backend_unaffected(self):
        assert resolve_backend("python") == "python"


class TestWithNumba:
    @pytest.fixture(autouse=True)
    def _with_numba(self, monkeypatch):
        monkeypatch.setattr(kernel_compiled, "HAVE_NUMBA", True)

    def test_auto_resolves_to_compiled(self):
        """``auto`` never picks the parallel backend: its threads would
        fight the process pool's workers for cores, so it stays an
        explicit opt-in."""
        assert resolve_backend("auto") == "compiled"
        assert resolve_backend(None) == "compiled"

    def test_explicit_requests_resolve_verbatim(self):
        assert resolve_backend("compiled") == "compiled"
        assert resolve_backend("compiled-parallel") == "compiled-parallel"
        assert resolve_backend("python") == "python"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("fortran")


def test_warmup_python_is_free():
    assert kernel_compiled.warmup("python") == 0.0


@requires_numba
def test_warmup_compiled_returns_wall_seconds():
    assert kernel_compiled.warmup("compiled") >= 0.0


# ----------------------------------------------------------------------
# 4. spec_hash exclusion
# ----------------------------------------------------------------------
def _runspec(**executor_kw):
    return RunSpec(
        workload=PICSpec(cells=32, n_particles=600, steps=8),
        impl=ImplConfig(name="mpi-2d", cores=4),
        executor=ExecutorConfig(**executor_kw),
    )


def test_kernel_backend_excluded_from_spec_hash():
    """The backend can never change what a run computes (layers 1-2 above),
    so it must not change the run's identity: cached results and
    checkpoints stay valid across backends."""
    hashes = {
        _runspec(kernel_backend=kb).spec_hash()
        for kb in (None, "python", "compiled", "compiled-parallel", "auto")
    }
    assert len(hashes) == 1
    # ... while identity-relevant knobs do move the hash.
    base = _runspec(kernel_backend="python")
    different = RunSpec(
        workload=PICSpec(cells=32, n_particles=600, steps=9),
        impl=base.impl,
        executor=base.executor,
    )
    assert different.spec_hash() != base.spec_hash()


def test_kernel_backend_round_trips_through_runspec_doc():
    rs = _runspec(kind="process", workers=2, kernel_backend="compiled")
    doc = rs.to_dict()
    assert doc["executor"]["kernel_backend"] == "compiled"
    assert RunSpec.from_dict(doc).executor.kernel_backend == "compiled"
    assert "executor" not in rs.identity_dict()


def test_executor_config_validates_kernel_backend():
    with pytest.raises(ConfigError):
        ExecutorConfig(kernel_backend="fortran")
