"""Tests for the PICSpec problem description (paper §III knobs)."""

import pytest

from repro.core.spec import (
    Distribution,
    InjectionEvent,
    PICSpec,
    Region,
    RemovalEvent,
    paper_grid_for_cores,
    validated_even_cells,
)


def make_spec(**kw):
    base = dict(cells=32, n_particles=100, steps=10)
    base.update(kw)
    return PICSpec(**base)


class TestSpecValidation:
    def test_basic_spec_is_valid(self):
        spec = make_spec()
        assert spec.L == 32.0
        assert spec.drift_cells_per_step == 1

    def test_odd_cells_rejected(self):
        with pytest.raises(ValueError, match="even"):
            make_spec(cells=31)

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError):
            make_spec(cells=0)

    def test_negative_particles_rejected(self):
        with pytest.raises(ValueError):
            make_spec(n_particles=-1)

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            make_spec(steps=0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            make_spec(k=-1)

    def test_drift_cells_per_step_follows_k(self):
        assert make_spec(k=3).drift_cells_per_step == 7

    def test_patch_requires_region(self):
        with pytest.raises(ValueError, match="patch"):
            make_spec(distribution=Distribution.PATCH)

    def test_patch_region_must_fit_mesh(self):
        with pytest.raises(ValueError, match="exceeds"):
            make_spec(
                distribution=Distribution.PATCH,
                patch=Region(0, 64, 0, 8),
            )

    def test_geometric_requires_positive_r(self):
        with pytest.raises(ValueError, match="r must be positive"):
            make_spec(r=0.0)

    def test_linear_requires_nonnegative_density(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_spec(distribution=Distribution.LINEAR, alpha=5.0, beta=1.0)

    def test_event_outside_simulation_rejected(self):
        ev = InjectionEvent(step=50, region=Region(0, 4, 0, 4), count=10)
        with pytest.raises(ValueError, match="outside"):
            make_spec(events=(ev,))

    def test_event_region_must_fit_mesh(self):
        ev = RemovalEvent(step=5, region=Region(0, 64, 0, 4))
        with pytest.raises(ValueError, match="exceeds"):
            make_spec(events=(ev,))

    def test_nonpositive_h_dt_q_rejected(self):
        for field in ("h", "dt", "q"):
            with pytest.raises(ValueError):
                make_spec(**{field: 0.0})


class TestRegion:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Region(4, 4, 0, 2)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Region(-1, 4, 0, 2)

    def test_n_cells(self):
        assert Region(2, 6, 1, 3).n_cells == 8

    def test_contains_vectorized(self):
        import numpy as np

        r = Region(2, 4, 0, 2)
        cx = np.array([1, 2, 3, 4])
        cy = np.array([0, 1, 1, 0])
        assert r.contains(cx, cy).tolist() == [False, True, True, False]


class TestEvents:
    def test_injection_count_must_be_positive(self):
        with pytest.raises(ValueError):
            InjectionEvent(step=0, region=Region(0, 2, 0, 2), count=0)

    def test_removal_fraction_bounds(self):
        with pytest.raises(ValueError):
            RemovalEvent(step=0, region=Region(0, 2, 0, 2), fraction=0.0)
        with pytest.raises(ValueError):
            RemovalEvent(step=0, region=Region(0, 2, 0, 2), fraction=1.5)


class TestHelpers:
    def test_with_events_returns_copy(self):
        spec = make_spec()
        ev = InjectionEvent(step=1, region=Region(0, 2, 0, 2), count=5)
        spec2 = spec.with_events([ev])
        assert spec.events == ()
        assert spec2.events == (ev,)

    def test_scaled_preserves_minimums(self):
        spec = make_spec(n_particles=10, steps=10)
        tiny = spec.scaled(particle_factor=0.0001, step_factor=0.0001)
        assert tiny.n_particles == 1
        assert tiny.steps == 1

    def test_scaled_rounds(self):
        spec = make_spec(n_particles=100, steps=10)
        half = spec.scaled(particle_factor=0.5)
        assert half.n_particles == 50
        assert half.steps == 10

    def test_validated_even_cells(self):
        assert validated_even_cells(10) == 10
        assert validated_even_cells(11) == 12

    def test_paper_grid_for_cores_even(self):
        side = paper_grid_for_cores(cells_per_core=10000, cores=24)
        assert side % 2 == 0
        assert side > 0

    def test_describe_mentions_distribution(self):
        assert "geometric" in make_spec().describe()
