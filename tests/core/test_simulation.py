"""End-to-end tests of the serial reference simulation."""

import numpy as np
import pytest

from repro.core.simulation import SerialSimulation, run_serial, serial_work_profile
from repro.core.spec import Distribution, InjectionEvent, PICSpec, Region, RemovalEvent


class TestSerialRuns:
    @pytest.mark.parametrize(
        "dist,extra",
        [
            (Distribution.GEOMETRIC, dict(r=0.95)),
            (Distribution.GEOMETRIC, dict(r=1.0)),
            (Distribution.SINUSOIDAL, {}),
            (Distribution.LINEAR, dict(alpha=1.0, beta=3.0)),
            (Distribution.UNIFORM, {}),
            (Distribution.PATCH, dict(patch=Region(4, 12, 4, 12))),
        ],
    )
    def test_all_distributions_verify(self, dist, extra):
        spec = PICSpec(
            cells=32, n_particles=500, steps=25, distribution=dist, **extra
        )
        result = run_serial(spec)
        assert result.verification.ok, str(result.verification)

    @pytest.mark.parametrize("k", [0, 1, 3])
    @pytest.mark.parametrize("m", [0, 1, 2])
    def test_speed_knobs_verify(self, k, m):
        spec = PICSpec(cells=64, n_particles=200, steps=30, k=k, m_vertical=m)
        result = run_serial(spec)
        assert result.verification.ok

    def test_particle_pushes_accumulates_work(self):
        spec = PICSpec(cells=16, n_particles=100, steps=10,
                       distribution=Distribution.UNIFORM)
        result = run_serial(spec)
        assert result.particle_pushes == 1000

    def test_injection_event_verifies(self):
        spec = PICSpec(
            cells=32, n_particles=300, steps=40,
            distribution=Distribution.UNIFORM,
            events=(InjectionEvent(step=10, region=Region(0, 8, 0, 8), count=150),),
        )
        result = run_serial(spec)
        assert result.verification.ok
        assert result.verification.n_particles == 450

    def test_removal_event_verifies(self):
        spec = PICSpec(
            cells=32, n_particles=300, steps=40,
            distribution=Distribution.UNIFORM,
            events=(RemovalEvent(step=10, region=Region(0, 16, 0, 32)),),
        )
        result = run_serial(spec)
        assert result.verification.ok
        assert result.verification.n_particles < 300
        assert result.removed_ids_sum > 0

    def test_injection_and_removal_combined(self):
        spec = PICSpec(
            cells=32, n_particles=200, steps=30,
            distribution=Distribution.UNIFORM,
            events=(
                InjectionEvent(step=5, region=Region(0, 8, 0, 8), count=100),
                RemovalEvent(step=15, region=Region(8, 24, 0, 32), fraction=0.5),
                InjectionEvent(step=20, region=Region(24, 32, 24, 32), count=50),
            ),
        )
        result = run_serial(spec)
        assert result.verification.ok

    def test_event_on_step_zero(self):
        spec = PICSpec(
            cells=32, n_particles=100, steps=10,
            distribution=Distribution.UNIFORM,
            events=(InjectionEvent(step=0, region=Region(0, 4, 0, 4), count=50),),
        )
        result = run_serial(spec)
        assert result.verification.ok
        # Injected at step 0 => participates in all steps.
        assert result.verification.n_particles == 150

    def test_rotate90_verifies(self):
        spec = PICSpec(cells=32, n_particles=400, steps=20, r=0.9, rotate90=True)
        assert run_serial(spec).verification.ok

    def test_noninteger_h_and_dt_verify(self):
        spec = PICSpec(cells=32, n_particles=200, steps=20, h=0.5, dt=0.25)
        result = run_serial(spec)
        assert result.verification.ok

    def test_geometric_aggressive_skew_verifies(self):
        spec = PICSpec(cells=64, n_particles=1000, steps=15, r=0.5)
        assert run_serial(spec).verification.ok


class TestWorkProfile:
    def test_profile_matches_distribution(self):
        spec = PICSpec(cells=16, n_particles=1600, steps=1,
                       distribution=Distribution.UNIFORM)
        profile = serial_work_profile(spec)
        assert profile.sum() == 1600
        assert profile.min() == profile.max()

    def test_profile_geometric_skew(self):
        spec = PICSpec(cells=16, n_particles=10000, steps=1, r=0.7)
        profile = serial_work_profile(spec)
        assert profile[0] == profile.max()


class TestStepGranularity:
    def test_manual_stepping_equals_run(self):
        spec = PICSpec(cells=16, n_particles=50, steps=5,
                       distribution=Distribution.UNIFORM)
        sim = SerialSimulation(spec)
        for t in range(spec.steps):
            sim.step(t)
        result_manual = sim.particles.x.copy()
        result_run = run_serial(spec).particles.x
        np.testing.assert_array_equal(result_manual, result_run)
