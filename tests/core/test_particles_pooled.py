"""Equivalence of the pooled ``ParticleArray`` storage with the legacy ops.

The zero-churn hot path replaced select/append/pack/from_packed (fresh
allocations every call) with in-place compact/extend/pack_into/extend_packed
over a capacity-managed backing store.  These property tests pin the
contract the exchange and event paths rely on: for *any* population and
*any* mask, the pooled operations produce element-for-element (and
dtype-for-dtype) the same particles as the legacy ones — including the
int64 fields' value round-trip through the float64 wire format.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.particles import PARTICLE_RECORD_FIELDS, ParticleArray

_FIELDS = ("x", "y", "vx", "vy", "q", "pid", "x0", "y0", "kdisp", "mdisp", "birth")
_INT_FIELDS = ("pid", "kdisp", "mdisp", "birth")


def random_particles(n: int, seed: int) -> ParticleArray:
    """A population with non-trivial values in every field.

    Int64 fields get values up to 2**52 — within the float64-exact integer
    range the wire format guarantees, and far beyond what int32 could hold.
    """
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    for name in _FIELDS:
        if name in _INT_FIELDS:
            getattr(p, name)[:] = rng.integers(-(2**52), 2**52, size=n)
        else:
            getattr(p, name)[:] = rng.normal(scale=100.0, size=n)
    return p


def assert_same(a: ParticleArray, b: ParticleArray) -> None:
    assert len(a) == len(b)
    for name in _FIELDS:
        fa, fb = getattr(a, name), getattr(b, name)
        assert fa.dtype == fb.dtype, name
        np.testing.assert_array_equal(fa, fb, err_msg=name)


pop = st.integers(0, 200)
seeds = st.integers(0, 2**31)


@given(n=pop, seed=seeds, mask_seed=seeds)
@settings(max_examples=60, deadline=None)
def test_compact_equals_select(n, seed, mask_seed):
    p_new = random_particles(n, seed)
    p_old = random_particles(n, seed)
    keep = np.random.default_rng(mask_seed).integers(0, 2, size=n).astype(bool)
    expected = p_old.select(keep)
    p_new.compact(keep)
    assert_same(p_new, expected)


@given(n=pop, m=pop, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_extend_equals_append(n, m, seed):
    p_new = random_particles(n, seed)
    other = random_particles(m, seed + 1)
    expected = random_particles(n, seed).append(other)
    p_new.extend(other)
    assert_same(p_new, expected)


@given(n=pop, seed=seeds, mask_seed=seeds, headroom=st.integers(0, 50))
@settings(max_examples=60, deadline=None)
def test_pack_into_equals_pack(n, seed, mask_seed, headroom):
    p = random_particles(n, seed)
    mask = np.random.default_rng(mask_seed).integers(0, 2, size=n).astype(bool)
    k = int(np.count_nonzero(mask))
    out = np.full((k + headroom, PARTICLE_RECORD_FIELDS), np.nan)
    got = p.pack_into(mask, out)
    expected = p.pack(mask)
    assert got.shape == expected.shape
    assert got.dtype == expected.dtype
    np.testing.assert_array_equal(got, expected)
    assert got.base is out or got is out  # a view of the caller's buffer


@given(n=pop, m=pop, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_extend_packed_equals_from_packed_roundtrip(n, m, seed):
    p_new = random_particles(n, seed)
    wire = random_particles(m, seed + 1).pack()
    expected = random_particles(n, seed).append(ParticleArray.from_packed(wire))
    p_new.extend_packed(wire)
    assert_same(p_new, expected)
    # Int64 values survive the float64 wire format exactly.
    for name in _INT_FIELDS:
        assert getattr(p_new, name).dtype == np.int64


@given(n=pop, seed=seeds, mask_seed=seeds, m=pop)
@settings(max_examples=40, deadline=None)
def test_compact_then_extend_chain(n, seed, mask_seed, m):
    """The exchange's per-hop sequence: compact survivors, extend arrivals."""
    p_new = random_particles(n, seed)
    keep = np.random.default_rng(mask_seed).integers(0, 2, size=n).astype(bool)
    arrivals = random_particles(m, seed + 2)
    expected = random_particles(n, seed).select(keep).append(arrivals)
    p_new.compact(keep)
    p_new.extend(arrivals)
    assert_same(p_new, expected)


def test_reserve_is_amortized():
    p = ParticleArray.empty(4)
    grows = 0
    last_cap = p.capacity
    for _ in range(200):
        p.extend(random_particles(3, 1))
        if p.capacity != last_cap:
            grows += 1
            assert p.capacity >= 2 * last_cap or last_cap < 16
            last_cap = p.capacity
    assert len(p) == 4 + 600
    assert grows <= 10  # doubling: O(log n) reallocations, not O(n)


def test_compact_all_survivors_is_noop():
    p = random_particles(50, 9)
    backing = [getattr(p, name) for name in _FIELDS]
    p.compact(np.ones(50, dtype=bool))
    for name, arr in zip(_FIELDS, backing):
        assert getattr(p, name) is arr  # no copy, no new views


def test_extend_within_capacity_does_not_reallocate():
    p = random_particles(10, 3)
    p.reserve(1000)
    store_before = list(p._backing())
    p.extend(random_particles(500, 4))
    assert [a is b for a, b in zip(store_before, p._backing())] == [True] * 11


def test_concatenate_single_part_fast_path():
    p = random_particles(20, 5)
    assert ParticleArray.concatenate([p], copy=False) is p
    copied = ParticleArray.concatenate([p], copy=True)
    assert copied is not p
    assert_same(copied, p)
    # Empty inputs are dropped before the single-survivor check.
    assert ParticleArray.concatenate([ParticleArray.empty(0), p], copy=False) is p


def test_pack_into_rejects_undersized_buffer():
    p = random_particles(8, 6)
    out = np.empty((4, PARTICLE_RECORD_FIELDS))
    try:
        p.pack_into(np.ones(8, dtype=bool), out)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError for undersized wire buffer")
