"""Tests for the §III-E initial particle distributions."""

import numpy as np
import pytest

from repro.core.initialization import (
    column_weights,
    geometric_weights,
    initialize,
    integer_counts,
    linear_weights,
    place_particles,
    sinusoidal_weights,
)
from repro.core.mesh import Mesh
from repro.core.spec import Distribution, PICSpec, Region


def column_histogram(spec):
    mesh = Mesh(spec.cells, spec.h, spec.q)
    p = initialize(spec, mesh)
    return np.bincount(p.cell_columns(mesh), minlength=spec.cells), p


class TestIntegerCounts:
    def test_sums_to_n(self):
        w = np.array([1.0, 2.0, 3.0])
        assert integer_counts(w, 100).sum() == 100

    def test_proportionality(self):
        counts = integer_counts(np.array([1.0, 3.0]), 400)
        assert counts.tolist() == [100, 300]

    def test_zero_items(self):
        assert integer_counts(np.array([1.0, 1.0]), 0).sum() == 0

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            integer_counts(np.zeros(3), 5)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            integer_counts(np.array([1.0, -1.0]), 5)

    def test_largest_remainder_determinism(self):
        w = np.ones(7)
        a = integer_counts(w, 10)
        b = integer_counts(w, 10)
        np.testing.assert_array_equal(a, b)
        assert a.sum() == 10
        assert a.max() - a.min() <= 1

    def test_n_less_than_bins(self):
        counts = integer_counts(np.ones(10), 3)
        assert counts.sum() == 3
        assert counts.max() == 1


class TestWeightProfiles:
    def test_geometric_ratio(self):
        w = geometric_weights(10, 0.5)
        np.testing.assert_allclose(w[1:] / w[:-1], 0.5, rtol=1e-12)

    def test_geometric_r_one_is_uniform(self):
        np.testing.assert_allclose(geometric_weights(10, 1.0), 1.0)

    def test_geometric_no_overflow_for_extreme_r(self):
        w = geometric_weights(12000, 0.999)
        assert np.all(np.isfinite(w))
        w2 = geometric_weights(2000, 1.01)
        assert np.all(np.isfinite(w2))

    def test_sinusoidal_endpoints_heavy(self):
        w = sinusoidal_weights(101)
        assert w[0] == pytest.approx(2.0)
        assert w[50] == pytest.approx(0.0, abs=1e-12)

    def test_linear_decreasing(self):
        w = linear_weights(10, alpha=1.0, beta=2.0)
        assert w[0] == 2.0
        assert w[-1] == 1.0
        assert np.all(np.diff(w) < 0)

    def test_linear_negative_rejected(self):
        with pytest.raises(ValueError):
            linear_weights(10, alpha=3.0, beta=1.0)

    def test_column_weights_dispatch(self):
        for dist in (
            Distribution.GEOMETRIC,
            Distribution.SINUSOIDAL,
            Distribution.LINEAR,
            Distribution.UNIFORM,
        ):
            spec = PICSpec(cells=16, n_particles=10, steps=1, distribution=dist,
                           alpha=1.0, beta=2.0)
            assert len(column_weights(spec)) == 16

    def test_patch_weights_zero_outside(self):
        spec = PICSpec(
            cells=16, n_particles=10, steps=1,
            distribution=Distribution.PATCH, patch=Region(4, 8, 0, 16),
        )
        w = column_weights(spec)
        assert np.all(w[:4] == 0) and np.all(w[8:] == 0) and np.all(w[4:8] == 1)


class TestInitialize:
    def test_total_count(self):
        spec = PICSpec(cells=32, n_particles=777, steps=1)
        _, p = column_histogram(spec)
        assert len(p) == 777

    def test_unique_consecutive_ids(self):
        spec = PICSpec(cells=32, n_particles=100, steps=1)
        _, p = column_histogram(spec)
        assert sorted(p.pid.tolist()) == list(range(1, 101))

    def test_particles_at_cell_centres(self):
        spec = PICSpec(cells=32, n_particles=500, steps=1)
        _, p = column_histogram(spec)
        assert np.all(p.x - np.floor(p.x) == 0.5)
        assert np.all(p.y - np.floor(p.y) == 0.5)

    def test_geometric_histogram_decreasing(self):
        spec = PICSpec(cells=16, n_particles=20000, steps=1, r=0.8)
        hist, _ = column_histogram(spec)
        # The geometric profile must be (weakly) decreasing left to right.
        assert np.all(np.diff(hist.astype(int)) <= 0)
        assert hist[0] > 10 * max(hist[-1], 1)

    def test_geometric_block_ratio_eq8(self):
        """Per-block counts form a geometric series with ratio r**(c/P) (Eq. 8)."""
        c, P, r = 64, 4, 0.9
        spec = PICSpec(cells=c, n_particles=200000, steps=1, r=r)
        hist, _ = column_histogram(spec)
        blocks = hist.reshape(P, c // P).sum(axis=1)
        measured = blocks[1:] / blocks[:-1]
        np.testing.assert_allclose(measured, r ** (c / P), rtol=0.02)

    def test_uniform_distribution_flat(self):
        spec = PICSpec(
            cells=16, n_particles=16000, steps=1, distribution=Distribution.UNIFORM
        )
        hist, _ = column_histogram(spec)
        assert hist.min() == hist.max() == 1000

    def test_patch_contains_all_particles(self):
        region = Region(2, 6, 3, 9)
        spec = PICSpec(
            cells=16, n_particles=1000, steps=1,
            distribution=Distribution.PATCH, patch=region,
        )
        mesh = Mesh(16)
        p = initialize(spec, mesh)
        cx, cy = p.cell_columns(mesh), p.cell_rows(mesh)
        assert np.all(region.contains(cx, cy))

    def test_determinism_same_seed(self):
        spec = PICSpec(cells=32, n_particles=100, steps=1, seed=7)
        _, p1 = column_histogram(spec)
        _, p2 = column_histogram(spec)
        np.testing.assert_array_equal(p1.x, p2.x)
        np.testing.assert_array_equal(p1.y, p2.y)

    def test_different_seed_differs(self):
        base = dict(cells=32, n_particles=1000, steps=1)
        _, p1 = column_histogram(PICSpec(seed=1, **base))
        _, p2 = column_histogram(PICSpec(seed=2, **base))
        assert not np.array_equal(p1.y, p2.y)

    def test_rotate90_swaps_axes(self):
        spec = PICSpec(cells=16, n_particles=8000, steps=1, r=0.7, rotate90=True)
        mesh = Mesh(16)
        p = initialize(spec, mesh)
        row_hist = np.bincount(p.cell_rows(mesh), minlength=16)
        col_hist = np.bincount(p.cell_columns(mesh), minlength=16)
        # Profile now lives on rows; columns look ~uniform.
        assert np.all(np.diff(row_hist.astype(int)) <= 0)
        assert col_hist.max() < row_hist.max()

    def test_zero_particles(self):
        spec = PICSpec(cells=16, n_particles=0, steps=1)
        _, p = column_histogram(spec)
        assert len(p) == 0

    def test_charges_follow_birth_column_parity(self):
        spec = PICSpec(cells=16, n_particles=1000, steps=1)
        mesh = Mesh(16)
        p = initialize(spec, mesh)
        signs = np.where(p.cell_columns(mesh) % 2 == 0, 1.0, -1.0)
        assert np.all(np.sign(p.q) == signs)

    def test_initial_velocity_from_m(self):
        spec = PICSpec(cells=16, n_particles=10, steps=1, m_vertical=4)
        mesh = Mesh(16)
        p = initialize(spec, mesh)
        assert np.all(p.vx == 0.0)
        assert np.all(p.vy == 4.0)


class TestPlaceParticles:
    def test_metadata_recorded(self):
        mesh = Mesh(8)
        p = place_particles(
            mesh, np.array([1, 2]), np.array([3, 4]),
            dt=1.0, k=1, m_vertical=2, start_id=10, birth=5,
        )
        assert p.pid.tolist() == [10, 11]
        assert p.kdisp.tolist() == [3, 3]
        assert p.mdisp.tolist() == [2, 2]
        assert p.birth.tolist() == [5, 5]
        np.testing.assert_array_equal(p.x0, p.x)
