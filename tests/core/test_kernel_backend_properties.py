"""Property-based conformance of kernel backends against the reference.

Hypothesis drives randomized populations through the python fused kernel
and (when numba is installed) the compiled kernel, asserting *bitwise*
agreement with ``advance_reference`` — positions, velocities and id
checksums, never ``allclose``.

The generator deliberately lands particles on the numerically nasty
loci the uniform draws almost never hit:

* exactly on a vertical cell boundary (``x == k*h``: ``rx`` is the
  ``0.0``/``-0.0`` and charge-parity edge of the ``floor`` path);
* exactly on a horizontal cell boundary (``y == k*h``);
* on the mid-cell horizontal axis (``y == (k + 0.5)*h``, the §III-D
  cancellation locus);

and drives ``dt`` over five orders of magnitude up to 10.0, where a
single step flings most particles through the periodic-wrap path many
cells at a time.  A particle is given at most one special coordinate so
``r2 == 0`` (a particle exactly on a mesh node, undefined in the model)
cannot be constructed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.backend_conformance import (
    BACKENDS,
    advance_arrays_backend,
    assert_bitwise_equal,
)
from repro.core import kernel
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray

_CELLS = 16


def _population(mesh: Mesh, n: int, seed: int, v_scale: float) -> ParticleArray:
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    hi = np.nextafter(mesh.L, 0.0)  # largest representable in-domain coord
    p.x[:] = rng.uniform(0.0, mesh.L, n).clip(0.0, hi)
    p.y[:] = rng.uniform(0.0, mesh.L, n).clip(0.0, hi)
    # One special coordinate per draw, never both (keeps r2 > 0).
    kind = rng.integers(0, 4, n)
    k = rng.integers(0, mesh.cells, n).astype(np.float64)
    p.x[kind == 0] = (k[kind == 0] * mesh.h).clip(0.0, hi)
    p.y[kind == 1] = (k[kind == 1] * mesh.h).clip(0.0, hi)
    p.y[kind == 2] = ((k[kind == 2] + 0.5) * mesh.h).clip(0.0, hi)
    # kind == 3: fully uniform
    p.vx[:] = rng.normal(size=n) * v_scale
    p.vy[:] = rng.normal(size=n) * v_scale
    p.q[:] = np.where(rng.integers(0, 2, n) == 0, 1.0, -1.0)
    p.pid[:] = np.arange(1, n + 1)
    return p


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(
    h=st.sampled_from([1.0, 0.73]),
    n=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    dt=st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
    v_scale=st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
)
def test_backend_matches_reference_bitwise(backend, h, n, seed, dt, v_scale):
    mesh = Mesh(cells=_CELLS, h=h)
    got = _population(mesh, n, seed, v_scale)
    ref = _population(mesh, n, seed, v_scale)
    for step in range(3):
        advance_arrays_backend(
            backend, mesh, got.x, got.y, got.vx, got.vy, got.q, dt
        )
        kernel.advance_reference(mesh, ref, dt)
        assert_bitwise_equal(
            got, ref,
            f"({backend}, h={h}, n={n}, seed={seed}, dt={dt}, step={step})",
        )
        assert np.all((got.x >= 0.0) & (got.x < mesh.L))
        assert np.all((got.y >= 0.0) & (got.y < mesh.L))
    assert got.id_checksum() == ref.id_checksum()
