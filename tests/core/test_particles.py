"""Tests for particle storage, packing, and Eq. 3 charge assignment."""

import numpy as np
import pytest

from repro.core.mesh import Mesh
from repro.core.particles import (
    ParticleArray,
    assign_charges,
    charge_magnitude,
)


def sample_particles(n=5):
    p = ParticleArray.empty(n)
    p.x[:] = np.arange(n) + 0.5
    p.y[:] = 0.5
    p.vx[:] = 0.0
    p.vy[:] = 1.0
    p.q[:] = np.where(np.arange(n) % 2 == 0, 1.0, -1.0)
    p.pid[:] = np.arange(1, n + 1)
    p.x0[:] = p.x
    p.y0[:] = p.y
    p.kdisp[:] = 1
    p.mdisp[:] = 1
    p.birth[:] = 0
    return p


class TestParticleArray:
    def test_empty(self):
        p = ParticleArray.empty(0)
        assert len(p) == 0
        assert p.nbytes == 0

    def test_length_mismatch_rejected(self):
        p = sample_particles(3)
        with pytest.raises(ValueError, match="length"):
            ParticleArray(
                x=p.x, y=p.y, vx=p.vx, vy=p.vy, q=p.q,
                pid=p.pid[:2], x0=p.x0, y0=p.y0,
                kdisp=p.kdisp, mdisp=p.mdisp, birth=p.birth,
            )

    def test_select_copies(self):
        p = sample_particles(5)
        sel = p.select(np.array([0, 2]))
        sel.x[0] = 99.0
        assert p.x[0] == 0.5  # original untouched

    def test_select_by_mask(self):
        p = sample_particles(5)
        sel = p.select(p.q > 0)
        assert len(sel) == 3

    def test_append(self):
        a, b = sample_particles(3), sample_particles(2)
        c = a.append(b)
        assert len(c) == 5
        assert c.pid.tolist() == [1, 2, 3, 1, 2]

    def test_concatenate_empty_list(self):
        assert len(ParticleArray.concatenate([])) == 0

    def test_concatenate_skips_empty(self):
        c = ParticleArray.concatenate([ParticleArray.empty(0), sample_particles(2)])
        assert len(c) == 2

    def test_copy_is_deep(self):
        p = sample_particles(2)
        c = p.copy()
        c.y[0] = -1.0
        assert p.y[0] == 0.5

    def test_id_checksum(self):
        assert sample_particles(5).id_checksum() == 15


class TestPacking:
    def test_pack_roundtrip(self):
        p = sample_particles(7)
        buf = p.pack()
        assert buf.shape == (7, 11)
        q = ParticleArray.from_packed(buf)
        for name in ("x", "y", "vx", "vy", "q", "x0", "y0"):
            np.testing.assert_array_equal(getattr(p, name), getattr(q, name))
        for name in ("pid", "kdisp", "mdisp", "birth"):
            np.testing.assert_array_equal(getattr(p, name), getattr(q, name))
            assert getattr(q, name).dtype == np.int64

    def test_pack_subset(self):
        p = sample_particles(5)
        buf = p.pack(np.array([1, 3]))
        q = ParticleArray.from_packed(buf)
        assert q.pid.tolist() == [2, 4]

    def test_from_packed_empty(self):
        q = ParticleArray.from_packed(np.empty((0, 11)))
        assert len(q) == 0

    def test_from_packed_bad_shape(self):
        with pytest.raises(ValueError, match="11"):
            ParticleArray.from_packed(np.zeros((3, 5)))

    def test_nbytes(self):
        assert sample_particles(10).nbytes == 10 * 11 * 8

    def test_large_pid_roundtrip(self):
        p = sample_particles(1)
        p.pid[0] = 2**52  # below the float64 exact-integer limit
        q = ParticleArray.from_packed(p.pack())
        assert q.pid[0] == 2**52


class TestChargeAssignment:
    def test_charge_magnitude_center(self):
        """At rel_x = 1/2 with h = dt = q = 1 Eq. 3 reduces to 1/(2*sqrt(2))... * scaling."""
        m = Mesh(cells=8)
        qpi = charge_magnitude(m, dt=1.0, rel_x=0.5)
        # d1 = d2 = sqrt(1/2); cos = (1/2)/d1; denom = 2 * cos/d1^2 = 2 * (1/2) / d1^3
        d1 = np.sqrt(0.5)
        expected = 1.0 / (2 * 0.5 / d1**3)
        assert qpi == pytest.approx(expected, rel=1e-15)

    def test_charge_magnitude_rejects_boundary(self):
        m = Mesh(cells=8)
        with pytest.raises(ValueError):
            charge_magnitude(m, dt=1.0, rel_x=0.0)
        with pytest.raises(ValueError):
            charge_magnitude(m, dt=1.0, rel_x=1.0)

    def test_assign_charges_sign_by_column_parity(self):
        m = Mesh(cells=8)
        cols = np.array([0, 1, 2, 3])
        q = assign_charges(m, dt=1.0, cell_col=cols, k=0)
        assert np.all(q[::2] > 0)
        assert np.all(q[1::2] < 0)

    def test_assign_charges_odd_multiples(self):
        m = Mesh(cells=8)
        cols = np.zeros(1, dtype=np.int64)
        q0 = assign_charges(m, dt=1.0, cell_col=cols, k=0)[0]
        q2 = assign_charges(m, dt=1.0, cell_col=cols, k=2)[0]
        assert q2 == pytest.approx(5 * q0, rel=1e-15)

    def test_charge_scales_with_mesh_charge(self):
        """Doubling the mesh charge halves the particle charge (Eq. 3)."""
        cols = np.zeros(1, dtype=np.int64)
        q1 = assign_charges(Mesh(cells=8, q=1.0), dt=1.0, cell_col=cols, k=0)[0]
        q2 = assign_charges(Mesh(cells=8, q=2.0), dt=1.0, cell_col=cols, k=0)[0]
        assert q1 == pytest.approx(2 * q2, rel=1e-15)

    def test_charge_scales_with_dt_squared(self):
        cols = np.zeros(1, dtype=np.int64)
        m = Mesh(cells=8)
        qa = assign_charges(m, dt=1.0, cell_col=cols, k=0)[0]
        qb = assign_charges(m, dt=2.0, cell_col=cols, k=0)[0]
        assert qa == pytest.approx(4 * qb, rel=1e-15)
