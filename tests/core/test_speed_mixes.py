"""Tests for per-particle speed variation (§III-E charge/velocity facility)."""

import numpy as np
import pytest

from repro.core.initialization import initialize, speed_choice
from repro.core.mesh import Mesh
from repro.core.simulation import run_serial
from repro.core.spec import Distribution, InjectionEvent, PICSpec, Region
from repro.parallel import Mpi2dLbPIC, Mpi2dPIC


def mixed_spec(**kw):
    cfg = dict(
        cells=48, n_particles=600, steps=12,
        distribution=Distribution.UNIFORM,
        k_choices=(0, 1, 2), m_choices=(0, 1),
    )
    cfg.update(kw)
    return PICSpec(**cfg)


class TestSpecValidation:
    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError, match="k_choices"):
            mixed_spec(k_choices=())
        with pytest.raises(ValueError, match="m_choices"):
            mixed_spec(m_choices=())

    def test_negative_k_choice_rejected(self):
        with pytest.raises(ValueError, match="k_choices"):
            mixed_spec(k_choices=(0, -1))


class TestSpeedChoice:
    def test_cycles_by_pid(self):
        pids = np.array([1, 2, 3, 4, 5])
        out = speed_choice(pids, (10, 20, 30))
        assert out.tolist() == [10, 20, 30, 10, 20]

    def test_independent_of_order(self):
        a = speed_choice(np.array([5, 1, 3]), (7, 8))
        b = speed_choice(np.array([1, 3, 5]), (7, 8))
        assert sorted(zip([5, 1, 3], a)) == sorted(zip([1, 3, 5], b))


class TestMixedPopulation:
    def test_initialization_assigns_mixed_speeds(self):
        spec = mixed_spec()
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        assert set(p.kdisp.tolist()) == {1, 3, 5}
        assert set(p.mdisp.tolist()) == {0, 1}
        # Charge magnitude scales with the particle's own (2k+1).
        base = np.abs(p.q[p.kdisp == 1][0])
        assert np.abs(p.q[p.kdisp == 5][0]) == pytest.approx(5 * base)

    def test_serial_run_verifies(self):
        result = run_serial(mixed_spec())
        assert result.verification.ok

    def test_parallel_run_verifies(self):
        res = Mpi2dPIC(mixed_spec(), 6).run()
        assert res.verification.ok

    def test_parallel_with_lb_verifies(self):
        res = Mpi2dLbPIC(mixed_spec(steps=20), 6, lb_interval=4).run()
        assert res.verification.ok

    def test_injected_particles_use_choice_rule(self):
        spec = mixed_spec(
            steps=15,
            events=(InjectionEvent(step=5, region=Region(0, 8, 0, 8), count=30),),
        )
        result = run_serial(spec)
        assert result.verification.ok
        injected = result.particles.select(result.particles.birth == 5)
        assert len(injected) == 30
        assert set(injected.kdisp.tolist()) <= {1, 3, 5}

    def test_mixture_smears_the_cloud(self):
        """Different drift speeds spread an initially tight distribution."""
        tight = PICSpec(
            cells=64, n_particles=2000, steps=15,
            distribution=Distribution.PATCH, patch=Region(0, 4, 0, 64),
        )
        mixed = PICSpec(
            cells=64, n_particles=2000, steps=15,
            distribution=Distribution.PATCH, patch=Region(0, 4, 0, 64),
            k_choices=(0, 1, 3),
        )
        mesh = Mesh(64)
        tight_cols = np.unique(run_serial(tight).particles.cell_columns(mesh))
        mixed_cols = np.unique(run_serial(mixed).particles.cell_columns(mesh))
        assert len(mixed_cols) > len(tight_cols)
