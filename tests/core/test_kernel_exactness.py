"""Long-horizon exactness tests of the kernel (the §III-C guarantees).

The PRK's verification tolerance is 1e-5, but the implementation is built
to do far better: exact vertical positions forever, and horizontal error
bounded by accumulated round-off.  These tests pin the actual guarantees so
a regression (e.g. a reordered summation) is caught long before it eats the
verification margin.
"""

import numpy as np
import pytest

from repro.core.initialization import initialize
from repro.core.kernel import advance, compute_acceleration
from repro.core.mesh import Mesh
from repro.core.simulation import run_serial
from repro.core.spec import Distribution, PICSpec
from repro.core.verification import position_errors


class TestVerticalExactness:
    @pytest.mark.parametrize("k,m", [(0, 0), (1, 2), (2, 1), (3, 3)])
    def test_ordinate_bitwise_exact_500_steps(self, k, m):
        spec = PICSpec(
            cells=64, n_particles=50, steps=1, k=k, m_vertical=m,
            distribution=Distribution.UNIFORM,
        )
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        y_expected = p.y.copy()
        for step in range(1, 501):
            advance(mesh, p, spec.dt)
            y_expected = np.mod(y_expected + m, mesh.L)
            # Bitwise: no tolerance at all.
            assert np.array_equal(p.y, y_expected), f"step {step}"

    def test_vertical_velocity_never_drifts(self):
        spec = PICSpec(cells=32, n_particles=20, steps=1, m_vertical=3,
                       distribution=Distribution.UNIFORM)
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        v0 = p.vy.copy()
        for _ in range(300):
            advance(mesh, p, spec.dt)
        assert np.array_equal(p.vy, v0)


class TestHorizontalAccuracy:
    def test_error_growth_is_subnanometer_over_1000_steps(self):
        spec = PICSpec(cells=64, n_particles=100, steps=1, k=1,
                       distribution=Distribution.UNIFORM)
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        for _ in range(1000):
            advance(mesh, p, spec.dt)
        expected = np.mod(p.x0 + p.kdisp * 1000.0, mesh.L)
        delta = np.abs(p.x - expected)
        delta = np.minimum(delta, mesh.L - delta)
        assert float(delta.max()) < 1e-9

    def test_displacement_per_step_is_2k_plus_1(self):
        for k in (0, 1, 2, 4):
            spec = PICSpec(cells=128, n_particles=30, steps=1, k=k,
                           distribution=Distribution.UNIFORM)
            mesh = Mesh(spec.cells)
            p = initialize(spec, mesh)
            x_before = p.x.copy()
            advance(mesh, p, spec.dt)
            moved = np.mod(p.x - x_before, mesh.L)
            np.testing.assert_allclose(moved, 2 * k + 1, atol=1e-10)

    def test_velocity_returns_to_rest_every_other_step(self):
        spec = PICSpec(cells=32, n_particles=25, steps=1,
                       distribution=Distribution.UNIFORM)
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        for step in range(1, 21):
            advance(mesh, p, spec.dt)
            if step % 2 == 0:
                np.testing.assert_allclose(p.vx, 0.0, atol=1e-10)
            else:
                assert np.all(np.abs(p.vx) > 0.1)


class TestForceField:
    def test_acceleration_antisymmetric_under_column_shift(self):
        """Shifting a particle one column flips the sign of its
        acceleration (mirrored charges, Fig. 2)."""
        mesh = Mesh(16)
        x = np.array([3.25])
        y = np.array([5.5])
        q = np.array([1.0])
        ax1, _ = compute_acceleration(mesh, x, y, q)
        ax2, _ = compute_acceleration(mesh, x + 1.0, y, q)
        assert ax1[0] == pytest.approx(-ax2[0], rel=1e-12)

    def test_acceleration_periodic_in_two_columns(self):
        mesh = Mesh(16)
        x = np.array([0.7])
        y = np.array([2.5])
        q = np.array([-2.0])
        ax1, ay1 = compute_acceleration(mesh, x, y, q)
        ax2, ay2 = compute_acceleration(mesh, x + 2.0, y, q)
        assert ax1[0] == pytest.approx(ax2[0], rel=1e-12)

    def test_verification_margin_for_long_runs(self):
        """Even 2,000 steps leave 4+ orders of magnitude of margin to the
        1e-5 verification tolerance."""
        spec = PICSpec(cells=32, n_particles=40, steps=2000, r=0.9)
        result = run_serial(spec)
        assert result.verification.ok
        assert result.verification.max_abs_error < 1e-9
