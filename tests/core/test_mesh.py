"""Tests for the periodic alternating-charge mesh (paper §III-B/C)."""

import numpy as np
import pytest

from repro.core.mesh import Mesh


class TestMeshConstruction:
    def test_valid_mesh(self):
        m = Mesh(cells=8, h=1.0, q=1.0)
        assert m.L == 8.0
        assert m.n_points == 64

    def test_odd_cells_rejected(self):
        with pytest.raises(ValueError, match="even"):
            Mesh(cells=7)

    def test_nonpositive_h_rejected(self):
        with pytest.raises(ValueError):
            Mesh(cells=8, h=0.0)

    def test_nonpositive_q_rejected(self):
        with pytest.raises(ValueError):
            Mesh(cells=8, q=-1.0)

    def test_noninteger_h_scales_L(self):
        m = Mesh(cells=8, h=0.5)
        assert m.L == 4.0


class TestCharges:
    def test_alternating_pattern(self):
        m = Mesh(cells=8, q=2.0)
        i = np.arange(8)
        charges = m.point_charge(i)
        assert charges.tolist() == [2.0, -2.0] * 4

    def test_periodic_wrap_preserves_parity(self):
        m = Mesh(cells=8)
        # Column 8 wraps to column 0 (even): even cell count keeps the
        # pattern consistent across the seam.
        assert m.point_charge(8) == m.point_charge(0)
        assert m.point_charge(-1) == m.point_charge(7)

    def test_column_sign_matches_charge(self):
        m = Mesh(cells=16, q=3.5)
        i = np.arange(-16, 32)
        np.testing.assert_allclose(m.point_charge(i), m.column_sign(i) * 3.5)


class TestGeometry:
    def test_wrap_position(self):
        m = Mesh(cells=8)
        np.testing.assert_allclose(
            m.wrap_position(np.array([-0.5, 0.0, 8.0, 8.5])),
            [7.5, 0.0, 0.0, 0.5],
        )

    def test_wrap_cell(self):
        m = Mesh(cells=8)
        assert m.wrap_cell(np.array([-1, 0, 7, 8])).tolist() == [7, 0, 7, 0]

    def test_cell_of_interior_points(self):
        m = Mesh(cells=8)
        x = np.array([0.1, 0.9, 1.0, 7.999])
        assert m.cell_of(x).tolist() == [0, 0, 1, 7]

    def test_cell_of_respects_h(self):
        m = Mesh(cells=8, h=0.5)
        assert m.cell_of(np.array([0.6, 1.2])).tolist() == [1, 2]

    def test_cell_of_wraps(self):
        m = Mesh(cells=8)
        assert m.cell_of(np.array([8.1, -0.1])).tolist() == [0, 7]

    def test_cell_center_y(self):
        m = Mesh(cells=8, h=2.0)
        np.testing.assert_allclose(m.cell_center_y(np.array([0, 3])), [1.0, 7.0])

    def test_stored_bytes(self):
        m = Mesh(cells=8)
        assert m.stored_bytes_for_cells(100) == 800
        assert m.stored_bytes_for_cells(100, bytes_per_point=4) == 400
