"""Tests for particle injection/removal events (paper §III-E5)."""

import numpy as np
import pytest

from repro.core import events as ev
from repro.core.initialization import initialize
from repro.core.mesh import Mesh
from repro.core.spec import Distribution, InjectionEvent, PICSpec, Region, RemovalEvent


def uniform_spec(**kw):
    base = dict(
        cells=16, n_particles=200, steps=20, distribution=Distribution.UNIFORM
    )
    base.update(kw)
    return PICSpec(**base)


class TestInjectionIds:
    def test_base_id_first_event(self):
        spec = uniform_spec(
            events=(InjectionEvent(step=2, region=Region(0, 4, 0, 4), count=50),)
        )
        assert ev.injection_base_id(spec, 0) == 201

    def test_base_id_second_event_after_injection(self):
        spec = uniform_spec(
            events=(
                InjectionEvent(step=2, region=Region(0, 4, 0, 4), count=50),
                InjectionEvent(step=5, region=Region(4, 8, 0, 4), count=30),
            )
        )
        assert ev.injection_base_id(spec, 1) == 251

    def test_removals_do_not_consume_ids(self):
        spec = uniform_spec(
            events=(
                RemovalEvent(step=2, region=Region(0, 4, 0, 4)),
                InjectionEvent(step=5, region=Region(4, 8, 0, 4), count=30),
            )
        )
        assert ev.injection_base_id(spec, 1) == 201

    def test_bad_index(self):
        spec = uniform_spec()
        with pytest.raises(IndexError):
            ev.injection_base_id(spec, 0)


class TestMaterializeInjection:
    def test_particles_inside_region(self):
        region = Region(2, 6, 1, 5)
        event = InjectionEvent(step=3, region=region, count=100)
        spec = uniform_spec(events=(event,))
        mesh = Mesh(spec.cells)
        newp = ev.materialize_injection(spec, mesh, event, 0)
        assert len(newp) == 100
        assert np.all(region.contains(newp.cell_columns(mesh), newp.cell_rows(mesh)))
        assert np.all(newp.birth == 3)

    def test_deterministic(self):
        event = InjectionEvent(step=3, region=Region(0, 4, 0, 4), count=10)
        spec = uniform_spec(events=(event,))
        mesh = Mesh(spec.cells)
        a = ev.materialize_injection(spec, mesh, event, 0)
        b = ev.materialize_injection(spec, mesh, event, 0)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.pid, b.pid)


class TestRemoval:
    def test_full_removal_in_region(self):
        spec = uniform_spec()
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        event = RemovalEvent(step=0, region=Region(0, 8, 0, 16))
        mask = ev.removal_mask(event, mesh, p)
        assert mask.sum() == np.sum(p.cell_columns(mesh) < 8)

    def test_fractional_removal_decomposition_independent(self):
        spec = uniform_spec(n_particles=2000)
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        event = RemovalEvent(step=0, region=Region(0, 16, 0, 16), fraction=0.5)
        mask_full = ev.removal_mask(event, mesh, p)
        # Split particles arbitrarily in two halves: the same ids must be chosen.
        left = p.select(np.arange(len(p)) < 1000)
        right = p.select(np.arange(len(p)) >= 1000)
        got = set()
        for part in (left, right):
            m = ev.removal_mask(event, mesh, part)
            got.update(part.pid[m].tolist())
        assert got == set(p.pid[mask_full].tolist())

    def test_fraction_roughly_respected(self):
        spec = uniform_spec(n_particles=5000)
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        event = RemovalEvent(step=0, region=Region(0, 16, 0, 16), fraction=0.3)
        frac = ev.removal_mask(event, mesh, p).mean()
        assert 0.2 < frac < 0.4


class TestApplyEventsLocally:
    def test_injection_updates_population_and_ids(self):
        event = InjectionEvent(step=4, region=Region(0, 4, 0, 4), count=25)
        spec = uniform_spec(events=(event,))
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        p2, outcome = ev.apply_events_locally(spec, mesh, p, step=4)
        assert len(p2) == 225
        assert outcome.added == 25
        assert outcome.added_ids_sum == sum(range(201, 226))

    def test_no_event_at_other_steps(self):
        event = InjectionEvent(step=4, region=Region(0, 4, 0, 4), count=25)
        spec = uniform_spec(events=(event,))
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        p2, outcome = ev.apply_events_locally(spec, mesh, p, step=3)
        assert len(p2) == 200
        assert outcome.added == outcome.removed == 0

    def test_subdomain_filter(self):
        event = InjectionEvent(step=0, region=Region(0, 16, 0, 16), count=100)
        spec = uniform_spec(events=(event,))
        mesh = Mesh(spec.cells)
        p0 = initialize(spec, mesh).select(np.zeros(200, dtype=bool))  # empty
        keep_left = lambda cx, cy: cx < 8
        p2, outcome = ev.apply_events_locally(
            spec, mesh, p0, step=0, in_subdomain=keep_left
        )
        assert np.all(p2.cell_columns(mesh) < 8)
        assert 0 < len(p2) < 100

    def test_removal_outcome_records_ids(self):
        event = RemovalEvent(step=1, region=Region(0, 16, 0, 16))
        spec = uniform_spec(events=(event,))
        mesh = Mesh(spec.cells)
        p = initialize(spec, mesh)
        p2, outcome = ev.apply_events_locally(spec, mesh, p, step=1)
        assert len(p2) == 0
        assert outcome.removed == 200
        assert outcome.removed_ids_sum == 200 * 201 // 2

    def test_has_events_at(self):
        event = RemovalEvent(step=7, region=Region(0, 2, 0, 2))
        spec = uniform_spec(events=(event,))
        assert ev.has_events_at(spec, 7)
        assert not ev.has_events_at(spec, 6)
