"""Shared harness for the cross-backend bitwise conformance suite.

Not collected directly (pytest only collects ``test_*.py``); imported by
``tests/core/test_backend_conformance.py`` and anything else that wants
to run a kernel-touching scenario under both kernel backends.

Everything here funnels into one claim: the python fused kernel, the
numba-compiled kernel, its thread-parallel ``compiled-parallel``
variant and the textbook ``advance_reference`` are *bit-for-bit*
interchangeable — positions, checksums, simulated clocks, golden traces
and checkpoint files, never ``allclose``.  When numba is absent the
compiled legs must skip cleanly (``requires_numba``) and ``auto`` must
fall back to python, so the suite passes both with and without the
``repro[compiled]`` extra installed.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.core import kernel, kernel_compiled
from repro.core.kernel_compiled import COMPILED_EXTRA, HAVE_NUMBA
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.spec import Distribution, PICSpec
from repro.instrument import Tracer, dumps_chrome_trace
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import Checkpointer, ResilienceConfig
from repro.runtime.executor import make_executor

requires_numba = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason=f"compiled kernel backend needs numba (pip install '{COMPILED_EXTRA}')",
)

#: All kernel backends, the compiled ones skip-marked where numba is
#: absent.  ``compiled-parallel`` must agree bitwise with the others even
#: though it splits the loop across threads: chunk boundaries are fixed
#: (``PARALLEL_CHUNK``) and each particle's arithmetic is untouched.
BACKENDS = [
    pytest.param("python", id="python"),
    pytest.param("compiled", id="compiled", marks=requires_numba),
    pytest.param(
        "compiled-parallel", id="compiled-parallel", marks=requires_numba
    ),
]

#: The three parallel implementations, smallest meaningful configs.
IMPLS = [
    ("mpi-2d", Mpi2dPIC, {}),
    ("mpi-2d-LB", Mpi2dLbPIC, dict(lb_interval=3, border_width=1)),
    ("ampi", AmpiPIC, dict(overdecomposition=2, lb_interval=4)),
]

#: Executor backends crossed with the kernel backends in the full matrix.
EXECUTORS = [("serial", 0), ("batched", 0), ("process", 2)]

#: Small but non-trivial: enough particles/steps that every rank computes,
#: exchanges across subgrid borders, checkpoints mid-run and rebalances.
SPEC = PICSpec(
    cells=32, n_particles=600, steps=8, distribution=Distribution.UNIFORM
)
CORES = 4
CKPT_EVERY = 4


# ----------------------------------------------------------------------
# Kernel-level helpers
# ----------------------------------------------------------------------
def advance_arrays_backend(backend, mesh, x, y, vx, vy, q, dt, workspace=None):
    """Dispatch an ``advance_arrays`` call to the named kernel backend."""
    if backend == "python":
        kernel.advance_arrays(mesh, x, y, vx, vy, q, dt, workspace=workspace)
    elif backend == "compiled":
        kernel_compiled.advance_arrays_compiled(
            mesh, x, y, vx, vy, q, dt, workspace=workspace
        )
    elif backend == "compiled-parallel":
        kernel_compiled.advance_arrays_parallel(
            mesh, x, y, vx, vy, q, dt, workspace=workspace
        )
    else:  # pragma: no cover - harness misuse
        raise ValueError(f"unknown backend {backend!r}")


def make_particles(n, mesh, seed=11, v_scale=0.05):
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    p.x[:] = rng.uniform(0.0, mesh.L, n)
    p.y[:] = rng.uniform(0.0, mesh.L, n)
    p.vx[:] = rng.normal(size=n) * v_scale
    p.vy[:] = rng.normal(size=n) * v_scale
    p.q[:] = np.where(rng.integers(0, 2, n) == 0, 1.0, -1.0)
    return p


def assert_bitwise_equal(a: ParticleArray, b: ParticleArray, context=""):
    for name in ("x", "y", "vx", "vy"):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), (
            f"{name} diverged {context}"
        )


# ----------------------------------------------------------------------
# Full-run harness
# ----------------------------------------------------------------------
class _Capturing:
    """Mixin factory: stash each rank's final particles for comparison."""

    _cache: dict = {}

    @classmethod
    def wrap(cls, impl_cls):
        got = cls._cache.get(impl_cls)
        if got is None:

            class Capturing(impl_cls):
                def __init__(self, *args, **kw):
                    super().__init__(*args, **kw)
                    self.final = {}

                def _verify(self, comm, state):
                    self.final[comm.world_rank] = state.particles.copy()
                    return (yield from super()._verify(comm, state))

            got = cls._cache[impl_cls] = Capturing
        return got


def trace_hash(tracer: Tracer) -> str:
    """Stable digest of a golden (simulated-time) trace."""
    return hashlib.sha256(
        dumps_chrome_trace(tracer).encode("utf-8")
    ).hexdigest()


def run_scenario(impl_cls, params, executor_name, workers, backend, ckpt_dir):
    """One full run; returns every artifact the conformance claim covers.

    The result dict is directly comparable across matrix cells: positions
    are per-rank packed bytes, the golden trace is a sha256, checkpoint
    files are raw bytes keyed by file name.
    """
    ex = make_executor(executor_name, workers=workers, kernel_backend=backend)
    tracer = Tracer()
    resilience = ResilienceConfig(
        checkpointer=Checkpointer(str(ckpt_dir), every=CKPT_EVERY)
    )
    impl = _Capturing.wrap(impl_cls)(
        SPEC, CORES, span_tracer=tracer, executor=ex, resilience=resilience,
        **params,
    )
    try:
        result = impl.run()
    finally:
        ex.close()
    assert result.verification.ok, str(result.verification)
    ckpts = {
        name: open(os.path.join(ckpt_dir, name), "rb").read()
        for name in sorted(os.listdir(ckpt_dir))
    }
    assert ckpts, "expected at least one checkpoint file"
    return {
        "positions": {
            rank: p.pack().tobytes() for rank, p in impl.final.items()
        },
        "id_checksum": result.verification.id_checksum,
        "max_abs_error": result.verification.max_abs_error,
        "n_particles": result.verification.n_particles,
        "total_time": result.total_time,
        "rank_times": tuple(result.rank_times),
        "trace_hash": trace_hash(tracer),
        "checkpoints": ckpts,
    }


def assert_scenarios_identical(ref: dict, got: dict, context=""):
    """Every conformance artifact, byte-for-byte."""
    assert sorted(got["positions"]) == sorted(ref["positions"]), context
    for rank, blob in ref["positions"].items():
        assert got["positions"][rank] == blob, (
            f"rank {rank} particle bytes diverged {context}"
        )
    for key in ("id_checksum", "max_abs_error", "n_particles"):
        assert got[key] == ref[key], f"{key} diverged {context}"
    assert got["total_time"] == ref["total_time"], context
    assert got["rank_times"] == ref["rank_times"], context
    assert got["trace_hash"] == ref["trace_hash"], (
        f"golden trace diverged {context}"
    )
    assert sorted(got["checkpoints"]) == sorted(ref["checkpoints"]), context
    for name, blob in ref["checkpoints"].items():
        assert got["checkpoints"][name] == blob, (
            f"checkpoint {name} diverged {context}"
        )
