"""Tests for the force/integration kernel (paper §III-B, Fig. 2 motion)."""

import numpy as np
import pytest

from repro.core.kernel import advance, compute_acceleration, flops_per_particle_step
from repro.core.mesh import Mesh
from repro.core.initialization import place_particles
from repro.core.particles import ParticleArray


def single_particle(mesh, col=0, row=0, k=0, m_vertical=0, dt=1.0):
    return place_particles(
        mesh,
        np.array([col]),
        np.array([row]),
        dt=dt,
        k=k,
        m_vertical=m_vertical,
        start_id=1,
    )


class TestAcceleration:
    def test_vertical_force_cancels_exactly_on_axis(self):
        """On the cell axis of symmetry the y-force is *bitwise* zero."""
        mesh = Mesh(cells=8)
        x = np.array([0.3, 0.5, 0.7, 1.2])
        y = np.array([0.5, 0.5, 1.5, 3.5])
        q = np.array([1.0, -2.0, 0.5, 3.0])
        _, ay = compute_acceleration(mesh, x, y, q)
        assert np.all(ay == 0.0)

    def test_positive_particle_even_column_accelerates_right(self):
        mesh = Mesh(cells=8)
        ax, _ = compute_acceleration(
            mesh, np.array([0.5]), np.array([0.5]), np.array([1.0])
        )
        assert ax[0] > 0

    def test_positive_particle_odd_column_accelerates_left(self):
        mesh = Mesh(cells=8)
        ax, _ = compute_acceleration(
            mesh, np.array([1.5]), np.array([0.5]), np.array([1.0])
        )
        assert ax[0] < 0

    def test_negative_particle_flips_force(self):
        mesh = Mesh(cells=8)
        pos = (np.array([0.5]), np.array([0.5]))
        ax_pos, _ = compute_acceleration(mesh, *pos, np.array([2.0]))
        ax_neg, _ = compute_acceleration(mesh, *pos, np.array([-2.0]))
        assert ax_pos[0] == -ax_neg[0]

    def test_force_linear_in_particle_charge(self):
        mesh = Mesh(cells=8)
        pos = (np.array([0.5]), np.array([0.5]))
        a1, _ = compute_acceleration(mesh, *pos, np.array([1.0]))
        a3, _ = compute_acceleration(mesh, *pos, np.array([3.0]))
        assert a3[0] == pytest.approx(3 * a1[0], rel=1e-15)

    def test_off_axis_particle_feels_vertical_force(self):
        # x must be off-centre too: at x = h/2 the left-pair repulsion and
        # right-pair attraction cancel vertically by symmetry.
        mesh = Mesh(cells=8)
        _, ay = compute_acceleration(
            mesh, np.array([0.2]), np.array([0.3]), np.array([1.0])
        )
        assert ay[0] != 0.0

    def test_empty_input(self):
        mesh = Mesh(cells=8)
        ax, ay = compute_acceleration(mesh, np.array([]), np.array([]), np.array([]))
        assert len(ax) == 0 and len(ay) == 0


class TestAdvance:
    def test_one_step_moves_exactly_one_cell(self):
        """Eq. 3 charge => from rest, one step crosses exactly (2k+1)=1 cell."""
        mesh = Mesh(cells=8)
        p = single_particle(mesh, col=2, row=3)
        advance(mesh, p, dt=1.0)
        assert p.x[0] == pytest.approx(3.5, abs=1e-12)
        assert p.y[0] == 3.5  # exact

    def test_one_step_k1_moves_three_cells(self):
        mesh = Mesh(cells=16)
        p = single_particle(mesh, col=0, row=0, k=1)
        advance(mesh, p, dt=1.0)
        assert p.x[0] == pytest.approx(3.5, abs=1e-12)

    def test_two_step_oscillation_pattern(self):
        """Velocity alternates a*dt, 0, a*dt, 0 ... (Fig. 2)."""
        mesh = Mesh(cells=8)
        p = single_particle(mesh, col=0, row=0)
        advance(mesh, p, dt=1.0)
        v1 = p.vx[0]
        assert v1 > 0
        advance(mesh, p, dt=1.0)
        assert p.vx[0] == pytest.approx(0.0, abs=1e-12)
        assert p.x[0] == pytest.approx(2.5, abs=1e-12)

    def test_periodic_wrap_in_x(self):
        mesh = Mesh(cells=4)
        p = single_particle(mesh, col=3, row=0)
        advance(mesh, p, dt=1.0)
        assert p.x[0] == pytest.approx(0.5, abs=1e-12)

    def test_vertical_advection_is_exact(self):
        mesh = Mesh(cells=8)
        p = single_particle(mesh, col=0, row=0, m_vertical=3)
        for _ in range(5):
            advance(mesh, p, dt=1.0)
        # 5 steps of 3 cells, wrapped into [0, 8)
        assert p.y[0] == (0.5 + 15) % 8.0

    def test_vertical_position_stays_exactly_on_axis(self):
        """The ordinate remains *bitwise* k+1/2 for many steps (exactness)."""
        mesh = Mesh(cells=8)
        p = single_particle(mesh, col=0, row=2, m_vertical=1)
        for _ in range(50):
            advance(mesh, p, dt=1.0)
        frac = p.y[0] - np.floor(p.y[0])
        assert frac == 0.5

    def test_advance_empty_noop(self):
        mesh = Mesh(cells=8)
        p = ParticleArray.empty(0)
        advance(mesh, p, dt=1.0)  # must not raise
        assert len(p) == 0

    def test_long_run_error_stays_tiny(self):
        mesh = Mesh(cells=8)
        p = single_particle(mesh, col=0, row=0)
        for _ in range(1000):
            advance(mesh, p, dt=1.0)
        expected = (0.5 + 1000) % 8.0
        assert p.x[0] == pytest.approx(expected, abs=1e-9)

    def test_noninteger_dt_still_moves_one_cell(self):
        """Eq. 3 compensates dt: displacement per step is h regardless of dt."""
        mesh = Mesh(cells=8)
        p = single_particle(mesh, col=0, row=0, dt=0.25)
        advance(mesh, p, dt=0.25)
        assert p.x[0] == pytest.approx(1.5, abs=1e-10)

    def test_flops_estimate_positive(self):
        assert flops_per_particle_step() > 0
