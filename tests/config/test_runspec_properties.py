"""Property tests for RunSpec: round-trip identity and hash stability.

Three properties the whole config layer rests on:

* spec -> JSON -> spec is the identity for every constructible spec;
* the content hash is stable across *process boundaries* (a fresh
  interpreter hashing the same document gets the same digest — nothing
  id()/order/PYTHONHASHSEED-dependent leaks in);
* documents with unknown or invalid fields are rejected, never silently
  dropped.
"""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ConfigError, ImplConfig, RunSpec, canonical_json
from repro.core.spec import PICSpec

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
workloads = st.builds(
    PICSpec,
    cells=st.sampled_from([16, 32, 64, 128]),
    n_particles=st.integers(min_value=1, max_value=10_000),
    steps=st.integers(min_value=1, max_value=200),
    r=st.floats(min_value=0.5, max_value=1.5, allow_nan=False),
    k=st.integers(min_value=0, max_value=3),
    m_vertical=st.integers(min_value=0, max_value=3),
    rotate90=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)

mpi2d_impls = st.builds(
    ImplConfig,
    name=st.just("mpi-2d"),
    cores=st.integers(min_value=1, max_value=512),
)

lb_impls = st.builds(
    ImplConfig,
    name=st.just("mpi-2d-LB"),
    cores=st.integers(min_value=1, max_value=512),
    lb_interval=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
    threshold_fraction=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    ),
    border_width=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    axes=st.one_of(st.none(), st.sampled_from(["x", "y", "xy"])),
)

ampi_impls = st.builds(
    ImplConfig,
    name=st.just("ampi"),
    cores=st.integers(min_value=1, max_value=512),
    overdecomposition=st.one_of(st.none(), st.integers(min_value=1, max_value=32)),
    lb_interval=st.one_of(st.none(), st.integers(min_value=1, max_value=200)),
    strategy=st.one_of(
        st.none(),
        st.sampled_from(["NullLB", "GreedyLB", "GreedyTransferLB", "RefineLB"]),
    ),
)

specs = st.builds(
    RunSpec,
    workload=workloads,
    impl=st.one_of(mpi2d_impls, lb_impls, ampi_impls),
)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
class TestRoundTripProperty:
    @given(rs=specs)
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_identity(self, rs):
        assert RunSpec.from_json(rs.to_json()) == rs

    @given(rs=specs)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_hash(self, rs):
        assert RunSpec.from_dict(rs.to_dict()).spec_hash() == rs.spec_hash()

    @given(rs=specs)
    @settings(max_examples=30, deadline=None)
    def test_canonical_json_is_order_independent(self, rs):
        doc = rs.identity_dict()
        shuffled = json.loads(json.dumps(doc))  # dict order may differ
        assert canonical_json(doc) == canonical_json(shuffled)


# ----------------------------------------------------------------------
# Hash stability across process boundaries
# ----------------------------------------------------------------------
class TestHashStability:
    def test_hash_stable_in_fresh_interpreter(self):
        rs = RunSpec(
            workload=PICSpec(cells=32, n_particles=400, steps=8),
            impl=ImplConfig(
                name="ampi", cores=4, overdecomposition=4,
                lb_interval=100, strategy="GreedyLB",
            ),
        )
        code = (
            "import sys, json\n"
            "from repro.config import RunSpec\n"
            "rs = RunSpec.from_json(sys.stdin.read())\n"
            "print(rs.spec_hash())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            input=rs.to_json(),
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == rs.spec_hash()

    def test_hash_ignores_pythonhashseed(self):
        rs = RunSpec(
            workload=PICSpec(cells=32, n_particles=400, steps=8),
            impl=ImplConfig(name="mpi-2d", cores=4),
        )
        code = (
            "import sys\n"
            "from repro.config import RunSpec\n"
            "print(RunSpec.from_json(sys.stdin.read()).spec_hash())\n"
        )
        digests = set()
        for seed in ("0", "1", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                input=rs.to_json(),
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": ":".join(sys.path)},
            )
            digests.add(out.stdout.strip())
        assert digests == {rs.spec_hash()}


# ----------------------------------------------------------------------
# Rejection of unknown / invalid fields
# ----------------------------------------------------------------------
SECTIONS = ("workload", "impl", "machine", "cost", "executor", "resilience",
            "tracing")


class TestRejection:
    @given(section=st.sampled_from(SECTIONS), junk=st.text(min_size=1).filter(
        lambda s: s.isidentifier()))
    @settings(max_examples=40, deadline=None)
    def test_unknown_field_in_any_section_rejected(self, section, junk):
        rs = RunSpec(
            workload=PICSpec(cells=32, n_particles=100, steps=2),
            impl=ImplConfig(name="mpi-2d", cores=2),
        )
        doc = rs.to_dict()
        if junk in doc[section]:
            return
        doc[section][junk] = 1
        with pytest.raises(ConfigError):
            RunSpec.from_dict(doc)

    def test_non_numeric_cost_rejected(self):
        doc = RunSpec(
            workload=PICSpec(cells=32, n_particles=100, steps=2),
            impl=ImplConfig(name="mpi-2d", cores=2),
        ).to_dict()
        doc["cost"]["particle_push_s"] = "fast"
        with pytest.raises(ConfigError, match="number"):
            RunSpec.from_dict(doc)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError, match="cores"):
            ImplConfig(name="mpi-2d", cores=0)

    def test_nan_never_hashable(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
