"""Tests for REPRO_EXECUTOR / REPRO_WORKERS / REPRO_KERNEL_BACKEND /
REPRO_DISPATCH / REPRO_RING_SLOTS parsing."""

import pytest

from repro.config.env import (
    EnvConfigError,
    env_dispatch,
    env_executor,
    env_kernel_backend,
    env_ring_slots,
    env_workers,
    resolve_dispatch,
    resolve_executor,
    resolve_kernel_backend,
    resolve_ring_slots,
    resolve_workers,
)


class TestEnvParsing:
    def test_unset_is_none(self):
        assert env_executor({}) is None
        assert env_workers({}) is None

    def test_empty_and_whitespace_are_none(self):
        assert env_executor({"REPRO_EXECUTOR": ""}) is None
        assert env_executor({"REPRO_EXECUTOR": "  "}) is None
        assert env_workers({"REPRO_WORKERS": ""}) is None

    def test_valid_values(self):
        for kind in ("serial", "batched", "process"):
            assert env_executor({"REPRO_EXECUTOR": kind}) == kind
        assert env_workers({"REPRO_WORKERS": "4"}) == 4
        assert env_workers({"REPRO_WORKERS": "0"}) == 0

    def test_invalid_executor_raises(self):
        with pytest.raises(EnvConfigError, match="gpu"):
            env_executor({"REPRO_EXECUTOR": "gpu"})

    def test_invalid_workers_raise(self):
        with pytest.raises(EnvConfigError, match="integer"):
            env_workers({"REPRO_WORKERS": "many"})
        with pytest.raises(EnvConfigError, match=">= 0"):
            env_workers({"REPRO_WORKERS": "-1"})

    def test_default_executor_reads_process_environ(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        assert env_executor() == "batched"


class TestPrecedence:
    """CLI > environment > spec > default, None falls through."""

    ENV = {"REPRO_EXECUTOR": "batched", "REPRO_WORKERS": "3"}

    def test_cli_wins_over_everything(self):
        assert resolve_executor("process", "serial", environ=self.ENV) == "process"
        assert resolve_workers(7, 1, environ=self.ENV) == 7

    def test_env_wins_over_spec(self):
        assert resolve_executor(None, "serial", environ=self.ENV) == "batched"
        assert resolve_workers(None, 1, environ=self.ENV) == 3

    def test_spec_wins_over_default(self):
        assert resolve_executor(None, "process", environ={}) == "process"
        assert resolve_workers(None, 5, environ={}) == 5

    def test_default_when_nothing_set(self):
        assert resolve_executor(environ={}) == "serial"
        assert resolve_workers(environ={}) == 0

    def test_cli_zero_workers_is_explicit_not_fallthrough(self):
        assert resolve_workers(0, 5, environ=self.ENV) == 0


class TestKernelBackendChain:
    """Same CLI > env > spec > default chain for --kernel-backend."""

    ENV = {"REPRO_KERNEL_BACKEND": "compiled"}

    def test_env_parsing(self):
        assert env_kernel_backend({}) is None
        assert env_kernel_backend({"REPRO_KERNEL_BACKEND": "  "}) is None
        for name in ("python", "compiled", "compiled-parallel", "auto"):
            assert env_kernel_backend({"REPRO_KERNEL_BACKEND": name}) == name
        with pytest.raises(EnvConfigError, match="fortran"):
            env_kernel_backend({"REPRO_KERNEL_BACKEND": "fortran"})

    def test_cli_wins(self):
        assert (
            resolve_kernel_backend("python", "auto", environ=self.ENV)
            == "python"
        )

    def test_env_wins_over_spec(self):
        assert (
            resolve_kernel_backend(None, "python", environ=self.ENV)
            == "compiled"
        )

    def test_spec_wins_over_default(self):
        assert resolve_kernel_backend(None, "python", environ={}) == "python"

    def test_default_is_auto(self):
        assert resolve_kernel_backend(environ={}) == "auto"

    def test_resolution_yields_a_request_not_a_backend(self):
        """The chain picks the *request* (possibly ``auto``); mapping auto
        to a concrete backend is kernel_compiled.resolve_backend's job, so
        the numba probe happens exactly once, at executor construction."""
        assert resolve_kernel_backend(None, None, environ={}) == "auto"


class TestDispatchChain:
    """REPRO_DISPATCH / REPRO_RING_SLOTS: validators + the same chain."""

    def test_env_dispatch_parsing(self):
        assert env_dispatch({}) is None
        assert env_dispatch({"REPRO_DISPATCH": "  "}) is None
        for kind in ("ring", "pipe"):
            assert env_dispatch({"REPRO_DISPATCH": kind}) == kind
        with pytest.raises(EnvConfigError, match="carrier-pigeon"):
            env_dispatch({"REPRO_DISPATCH": "carrier-pigeon"})

    def test_env_ring_slots_parsing(self):
        assert env_ring_slots({}) is None
        assert env_ring_slots({"REPRO_RING_SLOTS": ""}) is None
        assert env_ring_slots({"REPRO_RING_SLOTS": "128"}) == 128
        with pytest.raises(EnvConfigError, match="integer"):
            env_ring_slots({"REPRO_RING_SLOTS": "lots"})
        with pytest.raises(EnvConfigError, match=">= 1"):
            env_ring_slots({"REPRO_RING_SLOTS": "0"})

    def test_precedence_chain(self):
        env = {"REPRO_DISPATCH": "pipe", "REPRO_RING_SLOTS": "32"}
        assert resolve_dispatch("ring", "pipe", environ=env) == "ring"
        assert resolve_dispatch(None, "ring", environ=env) == "pipe"
        assert resolve_dispatch(None, "pipe", environ={}) == "pipe"
        assert resolve_dispatch(environ={}) == "ring"  # default is the rings
        assert resolve_ring_slots(16, 8, environ=env) == 16
        assert resolve_ring_slots(None, 8, environ=env) == 32
        assert resolve_ring_slots(None, 8, environ={}) == 8
        assert resolve_ring_slots(environ={}) == 64

    def test_executor_construction_honours_env(self, monkeypatch):
        from repro.runtime.executor import ProcessExecutor

        monkeypatch.setenv("REPRO_DISPATCH", "pipe")
        monkeypatch.setenv("REPRO_RING_SLOTS", "7")
        ex = ProcessExecutor(workers=1)
        assert ex.dispatch == "pipe"
        assert ex.ring_slots == 7
        ex.close()


class TestDefaultExecutorUsesChain:
    def test_default_executor_honours_env(self, monkeypatch):
        from repro.runtime import executor as executor_mod

        monkeypatch.setattr(executor_mod, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        ex = executor_mod.default_executor()
        assert type(ex).__name__ == "BatchedExecutor"
        ex.close()

    def test_default_executor_rejects_bad_env(self, monkeypatch):
        from repro.runtime import executor as executor_mod

        monkeypatch.setattr(executor_mod, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum")
        with pytest.raises(EnvConfigError):
            executor_mod.default_executor()
