"""Unit tests for the declarative RunSpec layer (repro.config)."""

import json

import pytest

from repro.config import (
    ConfigError,
    CostConfig,
    ExecutorConfig,
    ImplConfig,
    MachineConfig,
    ResilienceSpec,
    RunSpec,
    apply_overrides,
    diff_docs,
)
from repro.core.spec import PICSpec


def small_spec(**impl) -> RunSpec:
    impl.setdefault("name", "mpi-2d")
    impl.setdefault("cores", 4)
    return RunSpec(
        workload=PICSpec(cells=32, n_particles=400, steps=8),
        impl=ImplConfig(**impl),
    )


class TestValidation:
    def test_unknown_top_level_field_rejected(self):
        doc = small_spec().to_dict()
        doc["extra"] = 1
        with pytest.raises(ConfigError, match="extra"):
            RunSpec.from_dict(doc)

    def test_unknown_impl_field_rejected(self):
        doc = small_spec().to_dict()
        doc["impl"]["bogus"] = 1
        with pytest.raises(ConfigError, match="bogus"):
            RunSpec.from_dict(doc)

    def test_unknown_workload_field_rejected(self):
        doc = small_spec().to_dict()
        doc["workload"]["gravity"] = 9.8
        with pytest.raises(ConfigError, match="gravity"):
            RunSpec.from_dict(doc)

    def test_param_must_apply_to_impl(self):
        with pytest.raises(ConfigError, match="does not apply"):
            ImplConfig(name="mpi-2d", overdecomposition=4)
        with pytest.raises(ConfigError, match="does not apply"):
            ImplConfig(name="mpi-2d-LB", strategy="GreedyLB")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="UltraLB"):
            ImplConfig(name="ampi", strategy="UltraLB")

    def test_missing_required_sections(self):
        with pytest.raises(ConfigError, match="workload"):
            RunSpec.from_dict({"impl": {"name": "mpi-2d"}})
        with pytest.raises(ConfigError, match="impl"):
            RunSpec.from_dict({"workload": {"cells": 32}})

    def test_wrong_schema_rejected(self):
        doc = small_spec().to_dict()
        doc["schema"] = 99
        with pytest.raises(ConfigError, match="schema"):
            RunSpec.from_dict(doc)

    def test_executor_kind_validated(self):
        with pytest.raises(ConfigError, match="gpu"):
            ExecutorConfig(kind="gpu")

    def test_bad_fault_plan_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="faults"):
            ResilienceSpec(faults={"seed": 1, "faults": [{"kind": "meteor"}]})

    def test_unknown_machine_tier_rejected(self):
        cfg = MachineConfig(tiers=(("warp", 1e-6, 1e9),))
        with pytest.raises(ConfigError, match="warp"):
            cfg.build()


class TestRoundTrip:
    def test_dict_round_trip_identity(self):
        rs = small_spec()
        assert RunSpec.from_dict(rs.to_dict()) == rs

    def test_json_round_trip_identity(self):
        rs = small_spec(
            name="ampi", overdecomposition=4, lb_interval=10, strategy="GreedyLB"
        )
        assert RunSpec.from_json(rs.to_json()) == rs

    def test_save_load_round_trip(self, tmp_path):
        rs = small_spec(name="mpi-2d-LB", lb_interval=5, border_width=2)
        path = str(tmp_path / "spec.json")
        rs.save(path)
        assert RunSpec.load(path) == rs

    def test_sparse_doc_fills_defaults(self):
        rs = RunSpec.from_dict(
            {"workload": {"cells": 32, "n_particles": 400, "steps": 8},
             "impl": {"name": "mpi-2d", "cores": 4}}
        )
        assert rs == small_spec()


class TestIdentityHash:
    def test_executor_and_tracing_are_not_identity(self):
        a = small_spec()
        b = a.with_overrides(executor=ExecutorConfig(kind="process", workers=4))
        assert a.spec_hash() == b.spec_hash()

    def test_checkpoint_dir_is_not_identity(self):
        a = small_spec()
        b = a.with_overrides(
            resilience=ResilienceSpec(checkpoint_dir="/elsewhere")
        )
        assert a.spec_hash() == b.spec_hash()

    def test_checkpoint_every_is_identity(self):
        a = small_spec()
        b = a.with_overrides(resilience=ResilienceSpec(checkpoint_every=5))
        assert a.spec_hash() != b.spec_hash()

    def test_workload_change_changes_hash(self):
        a = small_spec()
        b = a.with_overrides(
            workload=PICSpec(cells=32, n_particles=401, steps=8)
        )
        assert a.spec_hash() != b.spec_hash()

    def test_diff_identity_names_the_field(self):
        a = small_spec(name="mpi-2d-LB", lb_interval=2)
        b = small_spec(name="mpi-2d-LB", lb_interval=5)
        diffs = a.diff_identity(b)
        assert diffs == ["impl.lb_interval: 2 != 5"]


class TestCanonicalization:
    def test_sparse_and_derived_hash_equal(self):
        from repro.config.build import canonical_hash

        sparse = small_spec(name="ampi")  # every ampi tunable defaulted
        full = small_spec(
            name="ampi", overdecomposition=4, lb_interval=100,
            strategy="GreedyTransferLB", stats_s_per_vp=4e-06,
        )
        assert canonical_hash(sparse) == canonical_hash(full)

    def test_driver_runspec_matches_canonical(self):
        from repro.config.build import build_impl, canonical_runspec

        rs = small_spec(name="mpi-2d-LB", lb_interval=5)
        assert build_impl(rs).runspec() == canonical_runspec(rs)


class TestOverrides:
    def test_apply_overrides_sets_nested_leaf(self):
        doc = apply_overrides({"impl": {"name": "mpi-2d"}}, {"impl.cores": 8})
        assert doc["impl"] == {"name": "mpi-2d", "cores": 8}

    def test_apply_overrides_does_not_mutate_input(self):
        base = {"impl": {"name": "mpi-2d"}}
        apply_overrides(base, {"impl.cores": 8})
        assert base == {"impl": {"name": "mpi-2d"}}

    def test_typoed_path_caught_by_from_dict(self):
        doc = apply_overrides(
            small_spec().to_dict(), {"impl.coress": 8}
        )
        with pytest.raises(ConfigError, match="coress"):
            RunSpec.from_dict(doc)


class TestDiffDocs:
    def test_absent_keys_reported(self):
        assert diff_docs({"a": 1}, {}) == ["a: 1 != <absent>"]
        assert diff_docs({}, {"a": 1}) == ["a: <absent> != 1"]

    def test_nested_path_reported(self):
        assert diff_docs({"a": {"b": 1}}, {"a": {"b": 2}}) == ["a.b: 1 != 2"]

    def test_equal_docs_empty(self):
        doc = small_spec().to_dict()
        assert diff_docs(doc, json.loads(json.dumps(doc))) == []
