"""Tests for the deterministic SPMD scheduler: semantics and timing."""

import numpy as np
import pytest

from repro.runtime import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    MachineModel,
    CostModel,
    MAX,
    MIN,
    SUM,
    Scheduler,
    run_spmd,
)
from repro.runtime.errors import CollectiveMismatchError, RuntimeConfigError
from repro.runtime.reduce_ops import LAND, LOR, PROD


class TestPointToPoint:
    def test_simple_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("payload", dst=1, tag=5)
                return None
            got = yield comm.recv(src=0, tag=5)
            return got

        res = run_spmd(2, prog)
        assert res.returns[1] == "payload"

    def test_ring_exchange(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield comm.send(comm.rank, dst=right, tag=0)
            got = yield comm.recv(src=left, tag=0)
            return got

        res = run_spmd(5, prog)
        assert res.returns == [4, 0, 1, 2, 3]

    def test_sendrecv_exchange(self):
        def prog(comm):
            partner = 1 - comm.rank
            got = yield comm.sendrecv(comm.rank * 10, dst=partner, src=partner)
            return got

        res = run_spmd(2, prog)
        assert res.returns == [10, 0]

    def test_tag_selectivity(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("a", dst=1, tag=1)
                yield comm.send("b", dst=1, tag=2)
                return None
            second = yield comm.recv(src=0, tag=2)
            first = yield comm.recv(src=0, tag=1)
            return (first, second)

        res = run_spmd(2, prog)
        assert res.returns[1] == ("a", "b")

    def test_non_overtaking_same_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield comm.send(i, dst=1, tag=9)
                return None
            got = []
            for _ in range(5):
                got.append((yield comm.recv(src=0, tag=9)))
            return got

        res = run_spmd(2, prog)
        assert res.returns[1] == [0, 1, 2, 3, 4]

    def test_any_source_wildcard(self):
        def prog(comm):
            if comm.rank == 0:
                got = []
                for _ in range(comm.size - 1):
                    payload, src, tag = yield comm.recv(src=ANY_SOURCE, tag=0, status=True)
                    got.append((src, payload))
                return sorted(got)
            yield comm.send(comm.rank * 100, dst=0, tag=0)
            return None

        res = run_spmd(4, prog)
        assert res.returns[0] == [(1, 100), (2, 200), (3, 300)]

    def test_any_tag_wildcard(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("x", dst=1, tag=42)
                return None
            payload, src, tag = yield comm.recv(src=0, tag=ANY_TAG, status=True)
            return (payload, tag)

        res = run_spmd(2, prog)
        assert res.returns[1] == ("x", 42)

    def test_recv_before_send_blocks_then_completes(self):
        def prog(comm):
            if comm.rank == 1:
                got = yield comm.recv(src=0, tag=0)
                return got
            yield comm.compute(0.01)
            yield comm.send("late", dst=1, tag=0)
            return None

        res = run_spmd(2, prog)
        assert res.returns[1] == "late"
        assert res.times[1] >= 0.01  # receiver waited for the sender

    def test_peer_out_of_range(self):
        def prog(comm):
            yield comm.send("x", dst=5)

        with pytest.raises(ValueError, match="out of range"):
            run_spmd(2, prog)


class TestDeadlock:
    def test_recv_without_send_deadlocks(self):
        def prog(comm):
            yield comm.recv(src=(comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(DeadlockError, match="recv"):
            run_spmd(2, prog)

    def test_mismatched_collective_participation_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            return None

        with pytest.raises(DeadlockError, match="collective"):
            run_spmd(2, prog)

    def test_wrong_tag_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("x", dst=1, tag=1)
                return None
            yield comm.recv(src=0, tag=2)

        with pytest.raises(DeadlockError):
            run_spmd(2, prog)


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            yield comm.compute(0.001 * (comm.rank + 1))
            yield comm.barrier()
            return comm.wtime()

        res = run_spmd(4, prog)
        assert len(set(res.returns)) == 1
        assert res.returns[0] >= 0.004

    def test_bcast(self):
        def prog(comm):
            got = yield comm.bcast("root-data" if comm.rank == 2 else None, root=2)
            return got

        res = run_spmd(4, prog)
        assert res.returns == ["root-data"] * 4

    def test_reduce_to_root(self):
        def prog(comm):
            got = yield comm.reduce(comm.rank + 1, op=SUM, root=1)
            return got

        res = run_spmd(4, prog)
        assert res.returns == [None, 10, None, None]

    @pytest.mark.parametrize(
        "op,expect", [(SUM, 10), (MAX, 4), (MIN, 1), (PROD, 24)]
    )
    def test_allreduce_ops(self, op, expect):
        def prog(comm):
            got = yield comm.allreduce(comm.rank + 1, op=op)
            return got

        assert run_spmd(4, prog).returns == [expect] * 4

    def test_allreduce_numpy_arrays(self):
        def prog(comm):
            got = yield comm.allreduce(np.full(3, comm.rank, dtype=np.int64), op=SUM)
            return got.tolist()

        assert run_spmd(3, prog).returns == [[3, 3, 3]] * 3

    def test_logical_ops(self):
        def prog(comm):
            a = yield comm.allreduce(comm.rank > 0, op=LAND)
            o = yield comm.allreduce(comm.rank > 0, op=LOR)
            return (a, o)

        assert run_spmd(3, prog).returns == [(False, True)] * 3

    def test_gather(self):
        def prog(comm):
            got = yield comm.gather(comm.rank * 2, root=0)
            return got

        res = run_spmd(3, prog)
        assert res.returns[0] == [0, 2, 4]
        assert res.returns[1] is None

    def test_allgather(self):
        def prog(comm):
            got = yield comm.allgather(chr(ord("a") + comm.rank))
            return "".join(got)

        assert run_spmd(3, prog).returns == ["abc"] * 3

    def test_alltoall(self):
        def prog(comm):
            out = [f"{comm.rank}->{j}" for j in range(comm.size)]
            got = yield comm.alltoall(out)
            return got

        res = run_spmd(3, prog)
        assert res.returns[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            yield comm.alltoall([1])

        with pytest.raises(ValueError, match="alltoall"):
            run_spmd(3, prog)

    def test_scan(self):
        def prog(comm):
            got = yield comm.scan(comm.rank + 1, op=SUM)
            return got

        assert run_spmd(4, prog).returns == [1, 3, 6, 10]

    def test_kind_mismatch_detected(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1, op=SUM)

        with pytest.raises(CollectiveMismatchError, match="mixes"):
            run_spmd(2, prog)

    def test_successive_collectives_do_not_mix(self):
        def prog(comm):
            a = yield comm.allreduce(1, op=SUM)
            b = yield comm.allreduce(10, op=SUM)
            return (a, b)

        assert run_spmd(3, prog).returns == [(3, 30)] * 3


class TestSplitAndCart:
    def test_split_groups_by_color(self):
        def prog(comm):
            sub = yield comm.split(color=comm.rank % 2)
            total = yield sub.allreduce(comm.rank, op=SUM)
            return (sub.size, total)

        res = run_spmd(4, prog)
        assert res.returns == [(2, 2), (2, 4), (2, 2), (2, 4)]

    def test_split_with_none_color_opts_out(self):
        def prog(comm):
            sub = yield comm.split(color=None if comm.rank == 0 else 7)
            if sub is None:
                return "out"
            return sub.size

        res = run_spmd(3, prog)
        assert res.returns == ["out", 2, 2]

    def test_split_key_orders_ranks(self):
        def prog(comm):
            sub = yield comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run_spmd(3, prog)
        assert res.returns == [2, 1, 0]

    def test_cart_coords_and_shift(self):
        def prog(comm):
            cart = yield comm.create_cart((2, 2))
            src, dst = cart.shift(0)
            return (cart.coords, src, dst)

        res = run_spmd(4, prog)
        # row-major: rank = cx * py + cy
        assert res.returns[0] == ((0, 0), 2, 2)
        assert res.returns[3] == ((1, 1), 1, 1)

    def test_cart_bad_dims(self):
        def prog(comm):
            yield comm.create_cart((2, 2))

        with pytest.raises(ValueError, match="dims"):
            run_spmd(3, prog)

    def test_cart_neighbors8_unique_on_3x3(self):
        def prog(comm):
            cart = yield comm.create_cart((3, 3))
            return sorted(set(cart.neighbors8().values()))

        res = run_spmd(9, prog)
        assert res.returns[4] == [0, 1, 2, 3, 5, 6, 7, 8]

    def test_cart_sub_communicators(self):
        def prog(comm):
            cart = yield comm.create_cart((2, 3))
            row = yield cart.sub_x()   # ranks sharing cy, size = px = 2
            col = yield cart.sub_y()   # ranks sharing cx, size = py = 3
            return (row.size, col.size)

        assert run_spmd(6, prog).returns == [(2, 3)] * 6


class TestTiming:
    def test_compute_advances_clock(self):
        def prog(comm):
            yield comm.compute(0.5)
            return comm.wtime()

        res = run_spmd(1, prog)
        assert res.returns[0] == pytest.approx(0.5)
        assert res.total_time == pytest.approx(0.5)

    def test_shared_core_serializes_compute(self):
        """Two ranks pinned to one core cannot overlap compute (AMPI model)."""
        def prog(comm):
            yield comm.compute(1.0)
            return comm.wtime()

        shared = run_spmd(2, prog, rank_to_core=[0, 0])
        assert shared.total_time == pytest.approx(2.0)
        separate = run_spmd(2, prog, rank_to_core=[0, 1])
        assert separate.total_time == pytest.approx(1.0)

    def test_remote_message_slower_than_local(self):
        machine = MachineModel(cores_per_socket=2, sockets_per_node=1)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.zeros(1_000_000), dst=1, tag=0)
                return None
            yield comm.recv(src=0, tag=0)
            return comm.wtime()

        local = run_spmd(2, prog, machine=machine, rank_to_core=[0, 1])
        remote = run_spmd(2, prog, machine=machine, rank_to_core=[0, 2])
        assert remote.returns[1] > local.returns[1]

    def test_message_stats_counted(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.zeros(16), dst=1, tag=0)
                return None
            yield comm.recv(src=0, tag=0)
            return None

        res = run_spmd(2, prog)
        assert res.messages_sent == 1
        assert res.bytes_sent == 128

    def test_collective_count(self):
        def prog(comm):
            yield comm.barrier()
            yield comm.allreduce(1, op=SUM)
            return None

        assert run_spmd(3, prog).collectives == 2

    def test_wtime_monotone(self):
        def prog(comm):
            t0 = comm.wtime()
            yield comm.compute(0.001)
            t1 = comm.wtime()
            yield comm.barrier()
            t2 = comm.wtime()
            return t0 <= t1 <= t2

        assert all(run_spmd(3, prog).returns)


class TestSchedulerConfig:
    def test_zero_ranks_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Scheduler(0)

    def test_wrong_program_count(self):
        s = Scheduler(2)
        with pytest.raises(RuntimeConfigError):
            s.run([lambda c: None])

    def test_bad_rank_to_core_length(self):
        with pytest.raises(RuntimeConfigError):
            Scheduler(3, rank_to_core=[0, 1])

    def test_non_generator_program(self):
        res = run_spmd(2, lambda comm: None)
        assert res.returns == [None, None]

    def test_per_rank_programs(self):
        def a(comm):
            yield comm.send(1, dst=1)
            return "a"

        def b(comm):
            got = yield comm.recv(src=0)
            return got

        res = run_spmd(2, [a, b])
        assert res.returns == ["a", 1]

    def test_determinism(self):
        def prog(comm):
            partner = (comm.rank + 1) % comm.size
            yield comm.send(np.arange(10), dst=partner, tag=0)
            got = yield comm.recv(tag=0)
            t = yield comm.allreduce(comm.wtime(), op=MAX)
            return t

        r1 = run_spmd(8, prog)
        r2 = run_spmd(8, prog)
        assert r1.returns == r2.returns
        assert r1.times == r2.times

    def test_yielding_garbage_raises(self):
        def prog(comm):
            yield "not-an-op"

        with pytest.raises(TypeError, match="not a runtime operation"):
            run_spmd(1, prog)
