"""EngineGroup: interleaving-invariance, policies, shared-pool tagging.

The multiplexer's contract: *any* slice order produces byte-identical
per-engine results, because each engine's virtual time is decoupled from
wall-clock drive order.  These scheduler-level tests drive heterogeneous
rank programs; the full-driver matrix (all three PIC implementations
interleaved, positions/traces/checkpoints compared) lives in
``tests/parallel/test_engine_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    DeadlockError,
    EngineGroup,
    RuntimeConfigError,
    Scheduler,
    SimEngine,
    run_spmd,
)
from repro.runtime.executor import ExecutorHandle, make_executor


class _FakeTask:
    particles = ()

    def run(self, workspace=None) -> None:
        pass


def _make_program(steps: int, weight: float):
    def program(comm):
        total = 0
        for step in range(steps):
            yield comm.compute(weight * (comm.rank + 1), _FakeTask())
            yield comm.send(step, dst=(comm.rank + 1) % comm.size)
            total += yield comm.recv(src=(comm.rank - 1) % comm.size)
            yield comm.barrier()
        return (comm.rank, total)

    return program


#: Heterogeneous workloads: different lengths, weights and rank counts so
#: the engines genuinely finish at different (virtual and slice) times.
_WORKLOADS = {
    "short": (2, 3, 1e-4),
    "medium": (3, 4, 5e-5),
    "long": (4, 7, 2e-5),
}


def _solo_results():
    out = {}
    for name, (n, steps, weight) in _WORKLOADS.items():
        out[name] = run_spmd(
            n, _make_program(steps, weight), executor=make_executor("serial")
        )
    return out


def _build_group(**group_kw):
    group = EngineGroup(**group_kw)
    for name, (n, steps, weight) in _WORKLOADS.items():
        executor = (
            group.handle(name) if group.executor is not None
            else make_executor("serial")
        )
        sched = Scheduler(n, executor=executor)
        group.add(
            name, SimEngine(sched, [_make_program(steps, weight)] * n,
                            engine_id=name)
        )
    return group


def _key(res):
    return (
        res.total_time, tuple(res.times), res.messages_sent,
        res.bytes_sent, res.collectives, tuple(res.returns),
    )


@pytest.mark.parametrize(
    "group_kw",
    [
        pytest.param(dict(policy="fair", slice_ticks=3), id="fair"),
        pytest.param(
            dict(policy="fair", slice_ticks=2, order_seed=7), id="fair-shuffled"
        ),
        pytest.param(dict(policy="deadline", slice_ticks=4), id="deadline"),
        pytest.param(dict(policy="fair", slice_ticks=1000), id="coarse-slices"),
    ],
)
def test_interleaved_results_match_solo_runs(group_kw):
    solo = _solo_results()
    group = _build_group(**group_kw)
    results = group.run_all()
    assert set(results) == set(_WORKLOADS)
    for name in _WORKLOADS:
        assert _key(results[name]) == _key(solo[name]), (
            f"engine {name!r} diverged under {group_kw}"
        )
    assert group.slices >= len(_WORKLOADS)


def test_different_order_seeds_agree():
    a = _build_group(policy="fair", slice_ticks=2, order_seed=1).run_all()
    b = _build_group(policy="fair", slice_ticks=2, order_seed=2).run_all()
    for name in _WORKLOADS:
        assert _key(a[name]) == _key(b[name])


def test_shared_pool_tags_batches_per_engine():
    shared = make_executor("serial")
    group = _build_group(policy="fair", slice_ticks=3, executor=shared)
    with group:
        group.run_all()
        assert set(shared.tag_stats) == set(_WORKLOADS)
        for name, stats in shared.tag_stats.items():
            assert stats["batches"] > 0
            assert stats["tasks"] >= stats["batches"]


def test_executor_handle_delegates_and_never_closes_the_pool():
    shared = make_executor("serial")
    handle = ExecutorHandle(shared, tag="eng-a")
    handle.start_batch([(0, _FakeTask())])
    handle.start_batch([(0, _FakeTask())], tag="override")
    assert shared.tag_stats["eng-a"]["batches"] == 1
    assert shared.tag_stats["override"]["batches"] == 1
    assert handle.name == shared.name
    assert handle.kernel_backend == shared.kernel_backend
    assert handle.stats() == shared.stats()
    handle.close()  # a no-op: the owner closes the pool
    handle.start_batch([(0, _FakeTask())])
    assert shared.tag_stats["eng-a"]["batches"] == 2


def test_deadlock_inside_a_slice_names_the_engine():
    """Satellite: the deadlock diagnosis survives multiplexing — blocked
    ranks are still named, and the note says which engine stalled."""

    def bad(comm):
        yield comm.recv(src=(comm.rank + 1) % comm.size, tag=0)

    group = EngineGroup(policy="fair", slice_ticks=4)
    sched = Scheduler(2, executor=make_executor("serial"))
    group.add("bad", SimEngine(sched, [bad] * 2, engine_id="bad"))
    with pytest.raises(DeadlockError, match=r"blocked ranks: \[0, 1\]") as ei:
        group.run_all()
    assert "rank 0: parked on recv" in str(ei.value)
    notes = getattr(ei.value, "__notes__", [])
    assert any("engine 'bad' in an EngineGroup slice" in n for n in notes)


class TestGuards:
    def test_unknown_policy(self):
        with pytest.raises(RuntimeConfigError, match="unknown multiplex policy"):
            EngineGroup(policy="lottery")

    def test_nonpositive_slice(self):
        with pytest.raises(RuntimeConfigError, match="slice_ticks"):
            EngineGroup(slice_ticks=0)

    def test_empty_group(self):
        with pytest.raises(RuntimeConfigError, match="no engines"):
            EngineGroup().run_all()

    def test_duplicate_name(self):
        group = _build_group()
        sched = Scheduler(2, executor=make_executor("serial"))
        eng = SimEngine(sched, [_make_program(1, 1e-5)] * 2)
        with pytest.raises(RuntimeConfigError, match="already in group"):
            group.add("short", eng)

    def test_handle_without_shared_executor(self):
        with pytest.raises(RuntimeConfigError, match="no shared executor"):
            EngineGroup().handle("x")

    def test_membership_introspection(self):
        group = _build_group()
        assert len(group) == len(_WORKLOADS)
        assert set(group) == set(_WORKLOADS)
        assert set(group.unfinished) == set(_WORKLOADS)
        assert group.engine("short") is not None
        group.run_all()
        assert group.unfinished == []
