"""The runtime's error taxonomy: payloads and diagnostic messages."""

from __future__ import annotations

import pytest

from repro.runtime import run_spmd
from repro.runtime.errors import (
    CheckpointCorruptError,
    DeadlockError,
    RankFailedError,
)


class TestRankFailedError:
    def test_carries_coordinates(self):
        err = RankFailedError(3, 17)
        assert err.rank == 3
        assert err.step == 17
        assert str(err) == "rank 3 crashed at step 17 (fault plan)"

    def test_detail_is_appended(self):
        err = RankFailedError(0, 2, "no recovery policy configured")
        assert str(err).endswith(": no recovery policy configured")

    def test_is_a_runtime_error(self):
        assert issubclass(RankFailedError, RuntimeError)


class TestCheckpointCorruptError:
    def test_is_a_runtime_error(self):
        assert issubclass(CheckpointCorruptError, RuntimeError)


class TestDeadlockDiagnostics:
    def test_names_blocked_ranks_and_parked_op(self):
        def prog(comm):
            if comm.rank == 0:
                return None
            yield comm.recv(src=0, tag=7)

        with pytest.raises(DeadlockError) as exc:
            run_spmd(2, prog)
        msg = str(exc.value)
        assert "blocked ranks: [1]" in msg
        assert "rank 1: parked on recv(src=0, tag=7" in msg
        assert exc.value.blocked_ranks == [1]

    def test_names_blocked_collective(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            return None

        with pytest.raises(DeadlockError) as exc:
            run_spmd(2, prog)
        msg = str(exc.value)
        assert "parked on collective barrier" in msg
        assert exc.value.blocked_ranks == [0]
