"""Tests for the hierarchical machine model (Edison substitute)."""

import pytest

from repro.runtime.errors import RuntimeConfigError
from repro.runtime.machine import (
    MachineModel,
    Tier,
    TierCosts,
    edison_model,
    laptop_model,
)


class TestTierCosts:
    def test_transfer_time(self):
        tc = TierCosts(latency=1e-6, bandwidth=1e9)
        assert tc.transfer_time(0) == 1e-6
        assert tc.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_invalid_costs_rejected(self):
        with pytest.raises(RuntimeConfigError):
            TierCosts(latency=-1.0, bandwidth=1e9)
        with pytest.raises(RuntimeConfigError):
            TierCosts(latency=1e-6, bandwidth=0.0)


class TestTopology:
    def test_edison_geometry(self):
        m = edison_model()
        assert m.cores_per_node == 24

    def test_socket_and_node_mapping(self):
        m = MachineModel(cores_per_socket=2, sockets_per_node=2)
        assert [m.socket_of(c) for c in range(6)] == [0, 0, 1, 1, 2, 2]
        assert [m.node_of(c) for c in range(6)] == [0, 0, 0, 0, 1, 1]

    def test_tier_between(self):
        m = MachineModel(cores_per_socket=2, sockets_per_node=2)
        assert m.tier_between(0, 0) is Tier.SELF
        assert m.tier_between(0, 1) is Tier.SOCKET
        assert m.tier_between(0, 2) is Tier.NODE
        assert m.tier_between(0, 4) is Tier.NETWORK

    def test_tier_symmetry(self):
        m = edison_model()
        for a, b in [(0, 5), (0, 13), (3, 40)]:
            assert m.tier_between(a, b) is m.tier_between(b, a)

    def test_tier_ordering_costs_increase(self):
        """The cost hierarchy must be monotone: SELF < SOCKET < NODE < NETWORK."""
        m = edison_model()
        lat = [m.costs(t).latency for t in Tier]
        assert lat == sorted(lat)
        bw = [m.costs(t).bandwidth for t in Tier]
        assert bw == sorted(bw, reverse=True)

    def test_nodes_for_cores(self):
        m = edison_model()
        assert m.nodes_for_cores(1) == 1
        assert m.nodes_for_cores(24) == 1
        assert m.nodes_for_cores(25) == 2
        assert m.nodes_for_cores(384) == 16

    def test_worst_tier(self):
        m = MachineModel(cores_per_socket=2, sockets_per_node=2)
        assert m.worst_tier([0]) is Tier.SELF
        assert m.worst_tier([0, 1]) is Tier.SOCKET
        assert m.worst_tier([0, 1, 2]) is Tier.NODE
        assert m.worst_tier([0, 1, 2, 5]) is Tier.NETWORK

    def test_transfer_time_cheaper_within_socket(self):
        m = edison_model()
        n = 8192
        assert m.transfer_time(0, 1, n) < m.transfer_time(0, 13, n) < m.transfer_time(0, 25, n)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(RuntimeConfigError):
            MachineModel(cores_per_socket=0)

    def test_missing_tier_rejected(self):
        with pytest.raises(RuntimeConfigError):
            MachineModel(tier_costs={Tier.SELF: TierCosts(1e-9, 1e9)})

    def test_laptop_model_small(self):
        assert laptop_model().cores_per_node == 8
