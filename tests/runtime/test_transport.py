"""Direct unit tests for the message transport and matching rules."""

import pytest

from repro.runtime.message import Message
from repro.runtime.transport import ANY_SOURCE, ANY_TAG, Transport


def msg(transport, comm_id=0, src=0, tag=0, payload="x", nbytes=8):
    return Message(
        comm_id=comm_id, src=src, tag=tag, payload=payload,
        nbytes=nbytes, t_avail=0.0, seq=transport.next_seq(),
    )


class TestTransport:
    def test_requires_ranks(self):
        with pytest.raises(ValueError):
            Transport(0)

    def test_deliver_and_match(self):
        t = Transport(2)
        t.deliver(1, msg(t, src=0, tag=5, payload="hello"))
        got = t.match(1, comm_id=0, src=0, tag=5)
        assert got.payload == "hello"
        assert t.pending_count(1) == 0

    def test_no_match_returns_none(self):
        t = Transport(2)
        t.deliver(1, msg(t, src=0, tag=5))
        assert t.match(1, comm_id=0, src=0, tag=6) is None
        assert t.match(1, comm_id=0, src=1, tag=5) is None
        assert t.match(1, comm_id=7, src=0, tag=5) is None
        assert t.pending_count(1) == 1

    def test_wildcard_source(self):
        t = Transport(3)
        t.deliver(2, msg(t, src=1, tag=9))
        got = t.match(2, comm_id=0, src=ANY_SOURCE, tag=9)
        assert got.src == 1

    def test_wildcard_tag(self):
        t = Transport(2)
        t.deliver(1, msg(t, src=0, tag=42))
        got = t.match(1, comm_id=0, src=0, tag=ANY_TAG)
        assert got.tag == 42

    def test_fifo_within_stream(self):
        t = Transport(2)
        t.deliver(1, msg(t, src=0, tag=1, payload="first"))
        t.deliver(1, msg(t, src=0, tag=1, payload="second"))
        assert t.match(1, 0, 0, 1).payload == "first"
        assert t.match(1, 0, 0, 1).payload == "second"

    def test_tag_selection_skips_earlier_nonmatching(self):
        t = Transport(2)
        t.deliver(1, msg(t, src=0, tag=1, payload="a"))
        t.deliver(1, msg(t, src=0, tag=2, payload="b"))
        assert t.match(1, 0, 0, 2).payload == "b"
        assert t.match(1, 0, 0, 1).payload == "a"

    def test_comm_scoping(self):
        t = Transport(2)
        t.deliver(1, msg(t, comm_id=3, src=0, tag=0, payload="subcomm"))
        t.deliver(1, msg(t, comm_id=0, src=0, tag=0, payload="world"))
        assert t.match(1, comm_id=0, src=0, tag=0).payload == "world"
        assert t.match(1, comm_id=3, src=0, tag=0).payload == "subcomm"

    def test_statistics(self):
        t = Transport(2)
        t.deliver(1, msg(t, nbytes=100))
        t.deliver(0, msg(t, nbytes=50))
        assert t.messages_sent == 2
        assert t.bytes_sent == 150
        assert t.total_pending() == 2

    def test_describe_pending(self):
        t = Transport(2)
        assert "no pending" in t.describe_pending()
        t.deliver(1, msg(t, src=0, tag=7))
        assert "dst=1" in t.describe_pending()

    def test_seq_monotone(self):
        t = Transport(1)
        assert t.next_seq() < t.next_seq() < t.next_seq()
