"""Unit tests for the compute-execution backends (:mod:`repro.runtime.executor`)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.kernel import KernelWorkspace, advance, advance_arrays
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.runtime import ops
from repro.runtime.executor import (
    BatchedExecutor,
    ProcessExecutor,
    PushTask,
    SerialExecutor,
    ShmArena,
    _partition,
    make_executor,
)
from repro.core.kernel_compiled import HAVE_NUMBA, CompiledKernelUnavailable
from repro.instrument import ExecutorTrace
from repro.runtime.costmodel import WorkRateMeter
from repro.runtime.scheduler import run_spmd


def _particles(n: int, mesh: Mesh, seed: int = 3) -> ParticleArray:
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    p.x[:] = rng.uniform(0.0, mesh.L, n)
    p.y[:] = rng.uniform(0.0, mesh.L, n)
    p.vx[:] = rng.normal(size=n) * 0.1
    p.vy[:] = rng.normal(size=n) * 0.1
    p.q[:] = np.where(rng.integers(0, 2, n) == 0, 1.0, -1.0)
    return p


def _push_batch(mesh, dt, sizes, seed0=10):
    return [
        (r, PushTask(mesh, _particles(n, mesh, seed=seed0 + r), dt))
        for r, n in enumerate(sizes)
    ]


def _serial_oracle(mesh, dt, sizes, seed0=10):
    out = []
    for r, n in enumerate(sizes):
        p = _particles(n, mesh, seed=seed0 + r)
        advance(mesh, p, dt)
        out.append(p)
    return out


def _assert_fields_equal(p, q):
    for f in ("x", "y", "vx", "vy", "q", "pid"):
        np.testing.assert_array_equal(getattr(p, f), getattr(q, f))


class TestAdvanceArrays:
    def test_matches_advance_on_container(self):
        mesh = Mesh(cells=8)
        a = _particles(500, mesh)
        b = a.copy()
        advance(mesh, a, 0.01)
        advance_arrays(mesh, b.x, b.y, b.vx, b.vy, b.q, 0.01)
        _assert_fields_equal(a, b)

    def test_segments_of_concatenation_match(self):
        """Pushing a concatenation equals pushing the parts: chunk-invariant."""
        mesh = Mesh(cells=8)
        parts = [_particles(n, mesh, seed=20 + i) for i, n in enumerate((7, 300, 40))]
        fused = ParticleArray.concatenate(parts)
        advance_arrays(mesh, fused.x, fused.y, fused.vx, fused.vy, fused.q, 0.01)
        o = 0
        for p in parts:
            advance(mesh, p, 0.01)
            n = len(p)
            np.testing.assert_array_equal(fused.x[o : o + n], p.x)
            np.testing.assert_array_equal(fused.vy[o : o + n], p.vy)
            o += n

    def test_own_workspace_is_independent(self):
        mesh = Mesh(cells=8)
        a = _particles(100, mesh)
        b = a.copy()
        advance_arrays(mesh, a.x, a.y, a.vx, a.vy, a.q, 0.01)
        advance_arrays(
            mesh, b.x, b.y, b.vx, b.vy, b.q, 0.01, workspace=KernelWorkspace()
        )
        _assert_fields_equal(a, b)


class TestPartition:
    def test_covers_all_items_exactly_once(self):
        bins = _partition([5, 1, 9, 3, 3, 7], 3)
        flat = sorted(i for b in bins for i in b)
        assert flat == list(range(6))

    def test_deterministic(self):
        sizes = [17, 17, 4, 9, 0, 25]
        assert _partition(sizes, 4) == _partition(sizes, 4)

    def test_largest_first_balance(self):
        bins = _partition([10, 10, 1, 1], 2)
        loads = [sum([10, 10, 1, 1][i] for i in b) for b in bins]
        assert sorted(loads) == [11, 11]

    def test_more_workers_than_tasks(self):
        bins = _partition([3], 4)
        assert bins[0] == [0] and all(not b for b in bins[1:])


class TestShmArena:
    def test_alloc_is_writable_and_located(self):
        arena = ShmArena(min_segment_bytes=1 << 12)
        try:
            a = arena.alloc(100, np.float64)
            a[:] = np.arange(100.0)
            loc = arena.locate(a)
            assert loc is not None
            name, off = loc
            assert isinstance(name, str) and off >= 0
            assert arena.locate(np.zeros(4)) is None
        finally:
            del a
            arena.close()

    def test_offsets_are_aligned(self):
        arena = ShmArena(min_segment_bytes=1 << 12)
        try:
            arrs = [arena.alloc(3, np.float64) for _ in range(4)]
            offs = [arena.locate(a)[1] for a in arrs]
            assert all(o % 64 == 0 for o in offs)
            assert len(set(offs)) == len(offs)  # distinct allocations
        finally:
            del arrs
            arena.close()

    def test_recycles_when_all_arrays_dead(self):
        arena = ShmArena(min_segment_bytes=1 << 12)
        try:
            a = arena.alloc(64, np.float64)
            first_off = arena.locate(a)[1]
            bytes_before = arena.total_bytes
            del a
            b = arena.alloc(64, np.float64)
            # Same bump offset reused, no new segment.
            assert arena.locate(b)[1] == first_off
            assert arena.total_bytes == bytes_before
        finally:
            del b
            arena.close()

    def test_grows_new_segment_when_full(self):
        arena = ShmArena(min_segment_bytes=1 << 12)
        try:
            a = arena.alloc(400, np.float64)  # ~3.2 KB of the 4 KB segment
            b = arena.alloc(400, np.float64)  # must open a second segment
            assert arena.total_bytes > 1 << 12
            assert arena.locate(a)[0] != arena.locate(b)[0]
        finally:
            del a, b
            arena.close()

    def test_closed_arena_rejects_alloc(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.alloc(8, np.float64)


class TestRebaseBacking:
    def test_rebase_preserves_content_and_future_growth(self):
        arena = ShmArena(min_segment_bytes=1 << 14)
        try:
            mesh = Mesh(cells=8)
            p = _particles(50, mesh)
            ref = p.copy()
            p.rebase_backing(arena.alloc)
            _assert_fields_equal(p, ref)
            assert arena.locate(p.x) is not None
            # Growth after rebasing stays arena-resident.
            p.extend(_particles(300, mesh, seed=9))
            assert arena.locate(p.x) is not None
            assert len(p) == 350
        finally:
            del p
            arena.close()


class TestBackends:
    @pytest.mark.parametrize("name", ["serial", "batched"])
    def test_backend_matches_serial_oracle(self, name):
        mesh = Mesh(cells=8)
        sizes = (40, 0, 333, 17)
        batch = _push_batch(mesh, 0.01, sizes)
        make_executor(name).run_batch(batch)
        for (_, task), oracle in zip(batch, _serial_oracle(mesh, 0.01, sizes)):
            _assert_fields_equal(task.particles, oracle)

    def test_process_backend_matches_serial_oracle(self):
        mesh = Mesh(cells=8)
        sizes = (40, 0, 333, 17)
        batch = _push_batch(mesh, 0.01, sizes)
        ex = ProcessExecutor(workers=2)
        try:
            ex.run_batch(batch)
        finally:
            stats = ex.stats()
            ex.close()
        for (_, task), oracle in zip(batch, _serial_oracle(mesh, 0.01, sizes)):
            _assert_fields_equal(task.particles, oracle)
        assert stats["tasks_executed"] == 3  # empty task skipped
        assert stats["particles_pushed"] == sum(sizes)
        assert stats["pool_startup_s"] > 0.0

    def test_process_pool_reused_across_batches(self):
        mesh = Mesh(cells=8)
        ex = ProcessExecutor(workers=2)
        try:
            ex.run_batch(_push_batch(mesh, 0.01, (50, 60)))
            startup = ex.pool_startup_s
            ex.run_batch(_push_batch(mesh, 0.01, (50, 60), seed0=40))
            assert ex.pool_startup_s == startup  # no re-spawn
            assert ex.stats()["batches"] == 2
        finally:
            ex.close()

    def test_close_is_idempotent(self):
        ex = ProcessExecutor(workers=1)
        ex.run_batch(_push_batch(Mesh(cells=8), 0.01, (10,)))
        ex.close()
        ex.close()

    def test_batched_stats_count_fusions(self):
        mesh = Mesh(cells=8)
        ex = BatchedExecutor()
        ex.run_batch(_push_batch(mesh, 0.01, (30, 30, 30)))
        assert ex.stats() == {"batches": 1, "fused_tasks": 3}

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")


class TestRingDispatch:
    """Zero-copy ring path: bitwise parity, plan cache, chunking, knobs."""

    @pytest.mark.parametrize("dispatch", ["ring", "pipe"])
    def test_both_paths_match_serial_oracle(self, dispatch):
        mesh = Mesh(cells=8)
        sizes = (40, 0, 333, 17)
        batch = _push_batch(mesh, 0.01, sizes)
        ex = ProcessExecutor(workers=2, dispatch=dispatch)
        try:
            ex.run_batch(batch)
        finally:
            ex.close()
        for (_, task), oracle in zip(batch, _serial_oracle(mesh, 0.01, sizes)):
            _assert_fields_equal(task.particles, oracle)

    def test_plan_cache_hits_and_generation_invalidation(self):
        mesh = Mesh(cells=8)
        batch = _push_batch(mesh, 0.01, (50, 60, 70))
        ex = ProcessExecutor(workers=2, dispatch="ring")
        try:
            for _ in range(3):
                ex.run_batch(batch)
            stats = ex.stats()
            assert stats["plan_misses"] == 1  # cold plan only
            assert stats["plan_hits"] == 2
            # Growth past capacity bumps the container generation: the
            # next batch must re-resolve that task's field locations
            # (a partial-refresh miss), and the results stay exact.
            p = batch[0][1].particles
            gen0 = p.generation
            p.reserve(len(p) * 10)
            assert p.generation > gen0
            ex.run_batch(batch)
            assert ex.stats()["plan_misses"] == 2
            ex.run_batch(batch)  # steady again
            assert ex.stats()["plan_hits"] == 3
        finally:
            ex.close()
        # 5 pushes of the same batch vs 5 serial pushes.
        oracles = [
            _particles(n, mesh, seed=10 + r) for r, n in enumerate((50, 60, 70))
        ]
        for p in oracles:
            for _ in range(5):
                advance(mesh, p, 0.01)
        for (_, task), oracle in zip(batch, oracles):
            _assert_fields_equal(task.particles, oracle)

    def test_drift_triggers_repartition(self):
        """A cached plan whose sizes went lopsided re-runs LPT (counted as
        a miss) instead of dispatching against a stale partition."""
        mesh = Mesh(cells=8)
        batch = _push_batch(mesh, 0.01, (100, 100, 100, 100))
        ex = ProcessExecutor(workers=2, dispatch="ring")
        try:
            ex.run_batch(batch)
            ex.run_batch(batch)
            assert ex.stats()["plan_hits"] == 1
            # Shrink two tasks sharing a bin: loads go 200 vs 20.
            bins = ex._plan_bins
            w = max(range(len(bins)), key=lambda j: len(bins[j]))
            for i in bins[w]:
                p = batch[i][1].particles
                keep = np.zeros(len(p), dtype=bool)
                keep[:10] = True
                p.compact(keep)
            misses0 = ex.stats()["plan_misses"]
            ex.run_batch(batch)
            assert ex.stats()["plan_misses"] == misses0 + 1
        finally:
            ex.close()

    def test_tiny_ring_publishes_in_chunks(self):
        """A bin larger than the ring drains through follow-on chunks."""
        mesh = Mesh(cells=8)
        sizes = (30, 31, 32, 33, 34, 35, 36)
        batch = _push_batch(mesh, 0.01, sizes)
        ex = ProcessExecutor(workers=1, dispatch="ring", ring_slots=2)
        try:
            for _ in range(2):  # second pass exercises chunked re-publish
                ex.run_batch(batch)
        finally:
            ex.close()
        oracles = _serial_oracle(mesh, 0.01, sizes)
        for p in oracles:
            advance(mesh, p, 0.01)
        for (_, task), oracle in zip(batch, oracles):
            _assert_fields_equal(task.particles, oracle)

    def test_stats_report_dispatch_knobs(self):
        ex = ProcessExecutor(workers=1, dispatch="ring", ring_slots=16)
        try:
            stats = ex.stats()
        finally:
            ex.close()
        assert stats["dispatch"] == "ring"
        assert stats["ring_slots"] == 16
        assert {"plan_epoch", "plan_hits", "plan_misses"} <= set(stats)

    def test_invalid_dispatch_and_ring_slots_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            ProcessExecutor(workers=1, dispatch="carrier-pigeon")
        with pytest.raises(ValueError, match="ring_slots"):
            ProcessExecutor(workers=1, dispatch="ring", ring_slots=0)

    def test_ensure_ready_is_idempotent(self):
        ex = ProcessExecutor(workers=1, dispatch="ring")
        try:
            ex.ensure_ready()
            startup = ex.pool_startup_s
            assert startup > 0.0
            ex.ensure_ready()
            assert ex.pool_startup_s == startup
        finally:
            ex.close()

    def test_dispatch_spans_carry_cpu_seconds(self):
        """Both paths attach parent CPU seconds to their dispatch spans —
        the figure the ring-vs-pipe gate compares (wall time would
        double-count worker kernel time on oversubscribed hosts)."""
        mesh = Mesh(cells=8)
        for dispatch in ("ring", "pipe"):
            tr = ExecutorTrace()
            ex = ProcessExecutor(workers=1, dispatch=dispatch, exec_tracer=tr)
            try:
                ex.run_batch(_push_batch(mesh, 0.01, (40, 50)))
            finally:
                ex.close()
            spans = [s for s in tr.spans if s.phase == "dispatch"]
            assert spans, dispatch
            for s in spans:
                assert s.args_dict()["cpu_s"] >= 0.0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="needs >= 4 cores to see overlap"
)
def test_concurrent_prewarm_startup_is_flat():
    """Worker boot overlaps: a 4-worker pool must not cost 4x a 1-worker
    pool's startup (generous 2.5x bound for scheduler noise)."""
    t_one = t_four = None
    for workers in (1, 4):
        ex = ProcessExecutor(workers=workers, dispatch="ring")
        try:
            ex.ensure_ready()
            if workers == 1:
                t_one = ex.pool_startup_s
            else:
                t_four = ex.pool_startup_s
        finally:
            ex.close()
    assert t_four < 2.5 * t_one, (t_one, t_four)


class TestSchedulerBatching:
    def test_compute_tasks_flush_as_one_batch(self):
        """All ranks parked on the same step's push reach the executor together."""
        mesh = Mesh(cells=8)
        seen: list[list[int]] = []

        class Spy(SerialExecutor):
            def run_batch(self, batch):
                seen.append([r for r, _ in batch])
                super().run_batch(batch)

        def program(comm):
            p = _particles(20, mesh, seed=comm.rank)
            for _ in range(2):
                yield comm.compute(1e-6, task=PushTask(mesh, p, 0.01))
                yield comm.barrier()
            return len(p)

        result = run_spmd(3, program, executor=Spy())
        assert result.returns == [20, 20, 20]
        assert seen == [[0, 1, 2], [0, 1, 2]]

    def test_taskless_compute_unchanged(self):
        def program(comm):
            yield comm.compute(1.0)
            return comm.rank

        result = run_spmd(2, program, executor=SerialExecutor())
        assert result.total_time == 1.0

    def test_task_runs_before_rank_resumes(self):
        """The rank observes its own push done immediately after the yield."""
        mesh = Mesh(cells=8)

        def program(comm):
            p = _particles(10, mesh, seed=5)
            before = p.x.copy()
            yield comm.compute(1e-6, task=PushTask(mesh, p, 0.01))
            return bool(np.any(p.x != before))

        result = run_spmd(2, program, executor=BatchedExecutor())
        assert result.returns == [True, True]

    def test_compute_op_carries_task(self):
        op = ops.ComputeOp(1.0, task="marker")
        assert op.task == "marker"
        assert ops.ComputeOp(1.0).task is None


class TestKernelBackendPlumbing:
    """Backend selection, work-rate metering and warm-up accounting."""

    def test_default_backend_is_python(self):
        for ex in (SerialExecutor(), BatchedExecutor(), ProcessExecutor(workers=1)):
            assert ex.kernel_backend == "python"
            ex.close()

    def test_auto_resolves_eagerly_to_a_concrete_backend(self):
        ex = SerialExecutor(kernel_backend="auto")
        assert ex.kernel_backend == ("compiled" if HAVE_NUMBA else "python")

    @pytest.mark.skipif(HAVE_NUMBA, reason="needs a numba-less environment")
    def test_compiled_without_numba_fails_at_construction(self):
        for name in ("serial", "batched", "process"):
            with pytest.raises(CompiledKernelUnavailable):
                make_executor(name, workers=1, kernel_backend="compiled")
        with pytest.raises(CompiledKernelUnavailable):
            SerialExecutor(backend_map={2: "compiled"})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor(kernel_backend="fortran")

    def test_backend_map_overrides_fleet_default(self):
        ex = SerialExecutor(kernel_backend="python", backend_map={1: "auto"})
        assert ex._backend_for(0) == "python"
        assert ex._backend_for(1) == ("compiled" if HAVE_NUMBA else "python")

    @pytest.mark.parametrize("name,workers", [("serial", 0), ("batched", 0), ("process", 2)])
    def test_work_meter_records_per_rank_rates(self, name, workers):
        mesh = Mesh(cells=8)
        meter = WorkRateMeter()
        ex = make_executor(name, workers=workers, work_meter=meter)
        try:
            ex.run_batch(_push_batch(mesh, 0.05, [5000, 8000]))
        finally:
            ex.close()
        rates = meter.rates()
        assert set(rates) == {0, 1}
        assert all(r > 0.0 for r in rates.values())

    def test_metered_run_stays_bitwise_exact(self):
        mesh = Mesh(cells=8)
        ex = SerialExecutor(work_meter=WorkRateMeter())
        batch = _push_batch(mesh, 0.05, [3000, 700])
        ex.run_batch(batch)
        for (_, task), oracle in zip(batch, _serial_oracle(mesh, 0.05, [3000, 700])):
            _assert_fields_equal(task.particles, oracle)

    def test_process_stats_report_backend_and_warmup(self):
        ex = ProcessExecutor(workers=1)
        ex.start()
        try:
            stats = ex.stats()
        finally:
            ex.close()
        assert stats["kernel_backend"] == "python"
        assert stats["jit_warmup_s"] == 0.0  # python backend: no JIT to warm

    def test_serial_task_spans_carry_ranks(self):
        mesh = Mesh(cells=8)
        tr = ExecutorTrace()
        ex = SerialExecutor(exec_tracer=tr)
        ex.run_batch(_push_batch(mesh, 0.05, [500, 600, 700]))
        task_spans = [s for s in tr.spans if s.phase == "task"]
        assert {s.args_dict()["rank"] for s in task_spans} == {0, 1, 2}
        assert all(s.duration >= 0.0 for s in task_spans)
