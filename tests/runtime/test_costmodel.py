"""Tests for the simulated-time cost model."""

import numpy as np
import pytest

from repro.runtime.costmodel import (
    CostModel,
    WorkRateMeter,
    nominal_backend_rate,
    payload_nbytes,
    predicted_point_pushes,
    predicted_point_seconds,
)
from repro.runtime.machine import MachineModel, Tier


class TestComputeCosts:
    def test_push_time_linear(self):
        cm = CostModel()
        assert cm.push_time(2000) == pytest.approx(2 * cm.push_time(1000))

    def test_pack_and_subgrid_linear(self):
        cm = CostModel()
        assert cm.pack_time(100) == pytest.approx(100 * cm.particle_pack_s)
        assert cm.subgrid_time(100) == pytest.approx(100 * cm.cell_handling_s)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CostModel(particle_push_s=-1.0)

    def test_calibration_magnitude(self):
        """Default push rate reproduces the paper's serial scale:
        600k particles x 6000 steps should be O(hundreds of seconds)."""
        cm = CostModel()
        serial = cm.push_time(600_000) * 6000
        assert 100 < serial < 2000


class TestMessageCosts:
    def test_message_time_uses_tiers(self):
        m = MachineModel(cores_per_socket=2, sockets_per_node=2)
        cm = CostModel(machine=m)
        n = 65536
        assert cm.message_time(0, 1, n) < cm.message_time(0, 2, n) < cm.message_time(0, 4, n)

    def test_overheads_split(self):
        cm = CostModel()
        assert cm.send_overhead() + cm.recv_overhead() == pytest.approx(
            cm.message_overhead_s
        )


class TestCollectiveCosts:
    def test_single_rank_is_free(self):
        cm = CostModel()
        assert cm.collective_time("allreduce", [3], 8) == 0.0

    def test_log_scaling(self):
        cm = CostModel()
        # Both groups span the NETWORK tier (one core per node) so only the
        # log2(P) stage count differs.
        cores4 = [24 * i for i in range(4)]
        cores16 = [24 * i for i in range(16)]
        t4 = cm.collective_time("barrier", cores4, 0)
        t16 = cm.collective_time("barrier", cores16, 0)
        assert t16 == pytest.approx(2 * t4)  # log2(16)=4 vs log2(4)=2

    def test_wider_tier_costs_more(self):
        m = MachineModel(cores_per_socket=4, sockets_per_node=2)
        cm = CostModel(machine=m)
        same_socket = cm.collective_time("allreduce", [0, 1, 2, 3], 64)
        cross_node = cm.collective_time("allreduce", [0, 1, 8, 9], 64)
        assert cross_node > same_socket

    def test_alltoall_scales_with_p(self):
        cm = CostModel()
        p8 = cm.collective_time("alltoall", list(range(8)), 4096)
        bcast8 = cm.collective_time("bcast", list(range(8)), 4096)
        assert p8 > bcast8


class TestPayloadBytes:
    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(100)) == 800

    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_containers_recursive(self):
        assert payload_nbytes([np.zeros(10), np.zeros(10)]) == 160
        assert payload_nbytes({"a": np.zeros(2), "b": None}) == 16

    def test_scalar_default(self):
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(42) == 8


class TestWorkRateMeter:
    def test_first_sample_sets_rate(self):
        m = WorkRateMeter()
        m.record(0, 1000, 0.001)  # 1e6 pushes/sec
        assert m.rate(0) == pytest.approx(1.0e6)
        assert m.samples == 1

    def test_ewma_smoothing(self):
        m = WorkRateMeter(alpha=0.5)
        m.record(0, 1000, 0.001)  # 1e6
        m.record(0, 2000, 0.001)  # 2e6 -> 0.5*2e6 + 0.5*1e6
        assert m.rate(0) == pytest.approx(1.5e6)

    def test_nonpositive_samples_ignored(self):
        m = WorkRateMeter()
        m.record(0, 0, 1.0)
        m.record(0, 10, 0.0)
        assert m.rate(0) is None
        assert m.samples == 0

    def test_seed_installs_rates_verbatim(self):
        m = WorkRateMeter()
        m.seed({0: 5.0e7, 3: 5.0e6})
        assert m.rates() == {0: 5.0e7, 3: 5.0e6}

    def test_slowdown_is_relative_to_fleet_max(self):
        m = WorkRateMeter()
        m.seed({0: 5.0e7, 1: 5.0e6})
        assert m.slowdown(0) == pytest.approx(1.0)
        assert m.slowdown(1) == pytest.approx(10.0)
        assert m.scale_compute(1, 2.0) == pytest.approx(20.0)

    def test_explicit_reference_rate_wins(self):
        m = WorkRateMeter(reference_rate=1.0e8)
        m.seed({0: 5.0e7})
        assert m.slowdown(0) == pytest.approx(2.0)

    def test_unmeasured_key_scales_by_one(self):
        m = WorkRateMeter()
        assert m.slowdown(9) == 1.0
        assert m.scale_compute(9, 3.5) == 3.5
        m.seed({0: 1.0e6})
        assert m.slowdown(9) == 1.0  # still unmeasured

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkRateMeter(alpha=0.0)
        with pytest.raises(ValueError):
            WorkRateMeter(reference_rate=0.0)
        with pytest.raises(ValueError):
            WorkRateMeter().seed({0: -1.0})


class TestPointPrediction:
    """The sweep-scheduling prior the campaign fabric orders points by."""

    def test_pushes_are_particles_times_steps(self):
        assert predicted_point_pushes(400, 8) == 3200
        assert predicted_point_pushes(0, 100) == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            predicted_point_pushes(-1, 4)
        with pytest.raises(ValueError):
            predicted_point_pushes(4, -1)

    def test_seconds_scale_with_backend_rate(self):
        pushes = predicted_point_pushes(1000, 10)
        py = predicted_point_seconds(pushes, "python")
        comp = predicted_point_seconds(pushes, "compiled")
        assert py == pytest.approx(pushes / nominal_backend_rate("python"))
        # Ratios are the contract: a faster backend predicts less time.
        assert comp < py

    def test_ordering_tracks_work(self):
        light = predicted_point_seconds(predicted_point_pushes(100, 2))
        heavy = predicted_point_seconds(predicted_point_pushes(4000, 2))
        assert heavy > light

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="no nominal rate"):
            predicted_point_seconds(100, "fortran")
