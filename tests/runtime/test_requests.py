"""Tests for nonblocking requests (isend/irecv/wait/waitall)."""

import numpy as np
import pytest

from repro.runtime import run_spmd
from repro.runtime.errors import DeadlockError


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                op, req = comm.isend("data", dst=1, tag=3)
                yield op
                assert req.done
                got = yield comm.wait(req)  # free for sends
                return got
            got = yield comm.recv(src=0, tag=3)
            return got

        res = run_spmd(2, prog)
        assert res.returns == ["data", "data"]

    def test_irecv_wait_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.arange(4), dst=1, tag=1)
                return None
            req = comm.irecv(src=0, tag=1)
            data = yield comm.wait(req)
            return data.tolist()

        res = run_spmd(2, prog)
        assert res.returns[1] == [0, 1, 2, 3]

    def test_post_all_then_waitall(self):
        """The classic PIC pattern: post receives, compute, wait all."""
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            r1 = comm.irecv(src=left, tag=10)
            r2 = comm.irecv(src=right, tag=11)
            yield comm.send(comm.rank, dst=right, tag=10)
            yield comm.send(comm.rank * 100, dst=left, tag=11)
            yield comm.compute(0.001)  # overlapping "work"
            got = yield from comm.waitall([r1, r2])
            return got

        res = run_spmd(4, prog)
        assert res.returns[0] == [3, 100]
        assert res.returns[2] == [1, 300]

    def test_same_stream_requests_complete_in_wait_order(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(3):
                    yield comm.send(i, dst=1, tag=5)
                return None
            reqs = [comm.irecv(src=0, tag=5) for _ in range(3)]
            got = yield from comm.waitall(reqs)
            return got

        res = run_spmd(2, prog)
        assert res.returns[1] == [0, 1, 2]

    def test_wait_blocks_until_message_arrives(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(src=0, tag=0)
                got = yield comm.wait(req)
                return (got, comm.wtime())
            yield comm.compute(0.05)
            yield comm.send("late", dst=0 + 1, tag=0)
            return None

        res = run_spmd(2, prog)
        got, t = res.returns[1]
        assert got == "late"
        assert t >= 0.05

    def test_wait_on_foreign_comm_rejected(self):
        def prog(comm):
            sub = yield comm.split(color=0)
            req = sub.irecv(src=sub.rank, tag=0)  # will match a self-send
            with pytest.raises(ValueError, match="different communicator"):
                comm.wait(req)
            yield sub.send("x", dst=sub.rank, tag=0)
            got = yield sub.wait(req)
            return got == "x"

        assert all(run_spmd(2, prog).returns)

    def test_unmatched_irecv_wait_deadlocks(self):
        def prog(comm):
            req = comm.irecv(src=(comm.rank + 1) % comm.size, tag=9)
            yield comm.wait(req)

        with pytest.raises(DeadlockError):
            run_spmd(2, prog)
