"""Precise tests of the virtual-clock semantics (docs/architecture.md §1.4).

These pin down the timing model's contract: what occupies a core, how
message availability composes with receiver progress, and how collectives
synchronize.  The figure benchmarks' shapes all rest on these rules.
"""

import numpy as np
import pytest

from repro.runtime import CostModel, MachineModel, SUM, run_spmd
from repro.runtime.machine import Tier, TierCosts


def quiet_cost(machine=None):
    """Cost model with zero CPU overheads: wire time only."""
    return CostModel(
        machine=machine or MachineModel(),
        particle_push_s=0.0,
        particle_pack_s=0.0,
        cell_handling_s=0.0,
        message_overhead_s=0.0,
        vp_scheduling_s=0.0,
    )


def uniform_machine(latency, bandwidth):
    tiers = {t: TierCosts(latency=latency, bandwidth=bandwidth) for t in Tier}
    return MachineModel(tier_costs=tiers)


class TestMessageTiming:
    def test_wire_time_latency_plus_bandwidth(self):
        machine = uniform_machine(latency=1.0, bandwidth=100.0)
        cost = quiet_cost(machine)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.zeros(25), dst=1)  # 200 bytes
                return comm.wtime()
            yield comm.recv(src=0)
            return comm.wtime()

        res = run_spmd(2, prog, machine=machine, cost=cost)
        assert res.returns[0] == pytest.approx(0.0)       # buffered send is free
        assert res.returns[1] == pytest.approx(1.0 + 2.0)  # latency + 200/100

    def test_receiver_later_than_message(self):
        """If the receiver arrives after t_avail, no extra wait is added."""
        machine = uniform_machine(latency=1.0, bandwidth=1e12)
        cost = quiet_cost(machine)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send("x", dst=1)
                return None
            yield comm.compute(5.0)       # arrives long after t_avail=1.0
            yield comm.recv(src=0)
            return comm.wtime()

        res = run_spmd(2, prog, machine=machine, cost=cost)
        assert res.returns[1] == pytest.approx(5.0)

    def test_sender_clock_sets_availability(self):
        machine = uniform_machine(latency=1.0, bandwidth=1e12)
        cost = quiet_cost(machine)

        def prog(comm):
            if comm.rank == 0:
                yield comm.compute(3.0)   # send happens at t=3
                yield comm.send("x", dst=1)
                return None
            yield comm.recv(src=0)
            return comm.wtime()

        res = run_spmd(2, prog, machine=machine, cost=cost)
        assert res.returns[1] == pytest.approx(4.0)  # 3 + latency


class TestCoreOccupancy:
    def test_waiting_does_not_hold_the_core(self):
        """A rank blocked in recv leaves its core free for a co-located VP."""
        machine = uniform_machine(latency=10.0, bandwidth=1e12)
        cost = quiet_cost(machine)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send("x", dst=1)   # arrives at t=10
                return None
            if comm.rank == 1:
                yield comm.recv(src=0)        # waits until t=10, core free
                return comm.wtime()
            yield comm.compute(4.0)           # shares core with rank 1
            return comm.wtime()

        # rank1 and rank2 share core 1.
        res = run_spmd(3, prog, machine=machine, cost=cost, rank_to_core=[0, 1, 1])
        assert res.returns[2] == pytest.approx(4.0)   # not delayed by the wait
        assert res.returns[1] == pytest.approx(10.0)

    def test_compute_serializes_on_shared_core(self):
        cost = quiet_cost()

        def prog(comm):
            yield comm.compute(2.0)
            return comm.wtime()

        res = run_spmd(3, prog, cost=cost, rank_to_core=[0, 0, 0])
        assert sorted(round(t, 6) for t in res.returns) == [2.0, 4.0, 6.0]


class TestCollectiveTiming:
    def test_collective_waits_for_slowest(self):
        cost = quiet_cost()

        def prog(comm):
            yield comm.compute(float(comm.rank))
            yield comm.barrier()
            return comm.wtime()

        res = run_spmd(4, prog, cost=cost)
        # Everyone leaves at the slowest arrival (3.0) plus barrier stages.
        assert all(t >= 3.0 for t in res.returns)
        assert len({round(t, 12) for t in res.returns}) == 1

    def test_collective_cost_scales_with_span(self):
        machine = MachineModel(cores_per_socket=2, sockets_per_node=2)
        cost = quiet_cost(machine)

        def prog(comm):
            yield comm.allreduce(1, op=SUM)
            return comm.wtime()

        near = run_spmd(2, prog, machine=machine, cost=cost, rank_to_core=[0, 1])
        far = run_spmd(2, prog, machine=machine, cost=cost, rank_to_core=[0, 4])
        assert far.returns[0] > near.returns[0]

    def test_migration_remap_affects_subsequent_messages(self):
        """After set_core, messages are priced at the new endpoints."""
        machine = uniform_machine(latency=1.0, bandwidth=1e12)
        tiers = dict(machine.tier_costs)
        tiers[Tier.SELF] = TierCosts(latency=0.0, bandwidth=1e12)
        machine = MachineModel(tier_costs=tiers, cores_per_socket=1, sockets_per_node=1)
        cost = quiet_cost(machine)

        def remap(values, ctx):
            ctx.set_core(1, 0)  # co-locate rank 1 with rank 0
            return [None] * len(values)

        def prog(comm):
            yield comm.user_collective(None, remap)
            t_after_coll = comm.wtime()
            if comm.rank == 0:
                yield comm.send("x", dst=1)
                return None
            yield comm.recv(src=0)
            return comm.wtime() - t_after_coll

        res = run_spmd(2, prog, machine=machine, cost=cost, rank_to_core=[0, 1])
        # SELF tier has zero latency: only the tiny bandwidth term remains
        # after co-location (the collective's own cost is excluded).
        assert res.returns[1] == pytest.approx(0.0, abs=1e-10)
