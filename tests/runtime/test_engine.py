"""SimEngine: incremental drive equivalence, re-entry guard, lifecycle.

The engine's contract is that *where control returns to the caller* is
the only thing ``tick()`` budgets change — every simulated quantity
(clocks, message counters, results) is identical to a blocking
``Scheduler.run``.  The full three-implementation acceptance matrix
lives in ``tests/parallel/test_engine_equivalence.py``; these are the
scheduler-level unit tests.
"""

from __future__ import annotations

import pytest

from repro.core.spec import Distribution, PICSpec
from repro.parallel import Mpi2dPIC
from repro.runtime import (
    ENGINE_BLOCKED,
    ENGINE_FINISHED,
    ENGINE_RUNNING,
    DeadlockError,
    RuntimeConfigError,
    Scheduler,
    SimEngine,
    run_spmd,
)
from repro.runtime.executor import make_executor


class _FakeTask:
    """Minimal executor task: the serial backend just calls ``run()``."""

    particles = ()

    def run(self, workspace=None) -> None:
        pass


def _ring_program(comm):
    """A few steps of compute-and-shift around a ring (executor-parked)."""
    for step in range(4):
        yield comm.compute(1e-4 * (comm.rank + 1), _FakeTask())
        yield comm.send(("tok", step, comm.rank), dst=(comm.rank + 1) % comm.size)
        yield comm.recv(src=(comm.rank - 1) % comm.size)
        yield comm.barrier()
    return comm.rank


def _fresh_engine(n_ranks=3):
    sched = Scheduler(n_ranks, executor=make_executor("serial"))
    return SimEngine(sched, [_ring_program] * n_ranks)


def _result_tuple(res):
    return (
        res.total_time, tuple(res.times), res.messages_sent,
        res.bytes_sent, res.collectives, tuple(res.returns),
    )


class TestDriveEquivalence:
    def test_run_matches_blocking_run_spmd(self):
        ref = run_spmd(3, _ring_program, executor=make_executor("serial"))
        got = _fresh_engine().run()
        assert _result_tuple(got) == _result_tuple(ref)

    @pytest.mark.parametrize("budget", [1, 2, 7, None])
    def test_tick_stepped_matches_run(self, budget):
        ref = _fresh_engine().run()
        eng = _fresh_engine()
        while True:
            status = eng.tick(budget)
            if status == ENGINE_FINISHED:
                break
            if status == ENGINE_BLOCKED:
                eng.flush()
        assert _result_tuple(eng.result()) == _result_tuple(ref)

    def test_uneven_budget_sequence_matches_run(self):
        ref = _fresh_engine().run()
        eng = _fresh_engine()
        budgets = [1, 5, 2, 3]
        i = 0
        while not eng.finished:
            if eng.tick(budgets[i % len(budgets)]) == ENGINE_BLOCKED:
                eng.flush()
            i += 1
        assert _result_tuple(eng.result()) == _result_tuple(ref)

    def test_blocked_status_and_flush(self):
        eng = _fresh_engine()
        status = eng.tick()
        assert status == ENGINE_BLOCKED
        assert eng.status == ENGINE_BLOCKED
        assert not eng.finished
        assert eng.flush() in (ENGINE_RUNNING, ENGINE_BLOCKED, ENGINE_FINISHED)
        eng.run()
        assert eng.finished

    def test_flush_without_pending_is_a_noop(self):
        eng = _fresh_engine()
        assert eng.flush() == ENGINE_RUNNING

    def test_virtual_now_is_monotone(self):
        eng = _fresh_engine()
        stamps = [eng.now]
        while not eng.finished:
            if eng.tick(3) == ENGINE_BLOCKED:
                eng.flush()
            stamps.append(eng.now)
        assert stamps == sorted(stamps)
        assert stamps[-1] == eng.spmd_result().total_time

    def test_tick_after_finish_is_stable(self):
        eng = _fresh_engine()
        eng.run()
        assert eng.tick() == ENGINE_FINISHED
        assert eng.tick(5) == ENGINE_FINISHED


class TestGuards:
    def test_scheduler_is_not_rerunnable(self):
        """Satellite: a second run on the same scheduler fails loudly
        instead of silently reusing stale clocks."""
        sched = Scheduler(2, executor=make_executor("serial"))
        sched.run([_ring_program] * 2)
        with pytest.raises(RuntimeConfigError, match="not reusable"):
            sched.run([_ring_program] * 2)

    def test_second_engine_bind_raises(self):
        sched = Scheduler(2, executor=make_executor("serial"))
        SimEngine(sched, [_ring_program] * 2)
        with pytest.raises(RuntimeConfigError, match="already been run"):
            SimEngine(sched, [_ring_program] * 2)

    def test_program_count_mismatch(self):
        sched = Scheduler(3, executor=make_executor("serial"))
        with pytest.raises(RuntimeConfigError, match="2 programs for 3 ranks"):
            SimEngine(sched, [_ring_program] * 2)

    def test_result_before_finish_raises(self):
        eng = _fresh_engine()
        with pytest.raises(RuntimeConfigError, match="not finished"):
            eng.result()
        with pytest.raises(RuntimeConfigError, match="not finished"):
            eng.spmd_result()

    def test_pause_without_checkpointer_raises(self):
        eng = _fresh_engine()
        with pytest.raises(RuntimeConfigError, match="checkpointer"):
            eng.pause()


class TestDeadlockFromTick:
    def test_tick_reports_blocked_ranks(self):
        """Satellite: the deadlock diagnosis from an incremental drive
        names the blocked ranks exactly as a blocking run does."""

        def prog(comm):
            yield comm.recv(src=(comm.rank + 1) % comm.size, tag=0)

        sched = Scheduler(2, executor=make_executor("serial"))
        eng = SimEngine(sched, [prog] * 2)
        with pytest.raises(DeadlockError, match=r"blocked ranks: \[0, 1\]") as ei:
            eng.tick()
        assert "rank 0: parked on recv" in str(ei.value)
        assert ei.value.blocked_ranks == [0, 1]

    def test_budgeted_tick_still_raises(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            return None

        sched = Scheduler(2, executor=make_executor("serial"))
        eng = SimEngine(sched, [prog] * 2)
        with pytest.raises(DeadlockError, match="collective"):
            while eng.tick(1) != ENGINE_FINISHED:
                if eng.status == ENGINE_BLOCKED:
                    eng.flush()


_SMALL = PICSpec(
    cells=16, n_particles=200, steps=3, distribution=Distribution.UNIFORM,
)


class _ExplodingPIC(Mpi2dPIC):
    """Fails after the compute phases have exercised the executor."""

    def _verify(self, comm, state):
        raise RuntimeError("boom")
        yield  # pragma: no cover - generator marker


class TestExecutorLifecycle:
    def test_context_manager_reaps_worker_processes(self):
        """Satellite: ``with make_executor(...)`` leaves no live workers."""
        with make_executor("process", workers=2) as ex:
            result = Mpi2dPIC(_SMALL, 4, executor=ex).run()
            assert result.verification.ok
            procs = list(ex._procs)
            assert procs, "pool should have spawned workers"
        assert ex._procs == []
        assert all(not p.is_alive() for p in procs)

    def test_driver_error_path_reaps_default_pool(self, monkeypatch):
        """A failing run must not leak the lazily-acquired default pool."""
        import repro.runtime.executor as executor_module

        pool = make_executor("process", workers=2)
        monkeypatch.setattr(executor_module, "_DEFAULT", pool)
        with pytest.raises(RuntimeError, match="boom"):
            _ExplodingPIC(_SMALL, 4).run()
        assert pool._procs == [], "error path left worker processes alive"

    def test_driver_close_is_idempotent(self):
        impl = Mpi2dPIC(_SMALL, 4, executor=make_executor("serial"))
        with impl:
            assert impl.run().verification.ok
        impl.close()

    def test_run_spmd_error_path_reaps_default_pool(self, monkeypatch):
        import repro.runtime.executor as executor_module

        def prog(comm):
            yield comm.compute(1e-5, _FakeTask())
            raise RuntimeError("rank exploded")

        pool = make_executor("process", workers=2)
        monkeypatch.setattr(executor_module, "_DEFAULT", pool)
        with pytest.raises(RuntimeError, match="rank exploded"):
            run_spmd(2, prog)
        assert pool._procs == []
