"""Tests for the zero-perturbation instrumentation layer."""

import numpy as np
import pytest

from repro.core.spec import Distribution, PICSpec
from repro.instrument import LbEvent, TraceCollector, render_imbalance_timeline
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC


def skewed_spec(steps=30):
    return PICSpec(cells=64, n_particles=3000, steps=steps, r=0.92)


class TestTraceCollector:
    def test_empty(self):
        tr = TraceCollector()
        assert tr.steps == []
        assert tr.n_ranks() == 0
        assert tr.load_matrix().shape == (0, 0)
        assert len(tr.imbalance_series()) == 0
        assert render_imbalance_timeline(tr) == "(no samples)"

    def test_record_and_matrices(self):
        tr = TraceCollector()
        tr.record(rank=0, step=0, n_particles=10, core=0)
        tr.record(rank=1, step=0, n_particles=30, core=1)
        tr.record(rank=0, step=1, n_particles=20, core=0)
        tr.record(rank=1, step=1, n_particles=20, core=1)
        m = tr.load_matrix()
        assert m.tolist() == [[10, 30], [20, 20]]
        series = tr.imbalance_series()
        assert series[0] == pytest.approx(1.5)
        assert series[1] == pytest.approx(1.0)

    def test_core_aggregation_of_vps(self):
        tr = TraceCollector()
        # Two VPs on core 0, one on core 1.
        tr.record(rank=0, step=0, n_particles=5, core=0)
        tr.record(rank=1, step=0, n_particles=5, core=0)
        tr.record(rank=2, step=0, n_particles=10, core=1)
        cm = tr.core_load_matrix()
        assert cm.tolist() == [[10, 10]]

    def test_event_counters(self):
        tr = TraceCollector()
        tr.record_event(LbEvent(step=3, kind="migrate", moved=4))
        tr.record_event(LbEvent(step=5, kind="diffusion", moved=2))
        tr.record_event(LbEvent(step=9, kind="migrate", moved=1))
        assert tr.migrations_total() == 5
        assert tr.boundary_moves_total() == 2


class TestTracedRuns:
    def test_baseline_samples_every_step(self):
        tr = TraceCollector()
        spec = skewed_spec(steps=10)
        res = Mpi2dPIC(spec, 4, tracer=tr).run()
        assert res.verification.ok
        assert tr.load_matrix().shape == (10, 4)
        # Conservation holds in the trace too.
        assert np.all(tr.load_matrix().sum(axis=1) == spec.n_particles)

    def test_tracer_does_not_change_simulated_time(self):
        spec = skewed_spec(steps=10)
        plain = Mpi2dPIC(spec, 4).run()
        traced = Mpi2dPIC(spec, 4, tracer=TraceCollector()).run()
        assert plain.total_time == traced.total_time

    def test_lb_reduces_traced_imbalance(self):
        spec = skewed_spec(steps=40)
        tr_base = TraceCollector()
        Mpi2dPIC(spec, 8, tracer=tr_base).run()
        tr_lb = TraceCollector()
        Mpi2dLbPIC(spec, 8, tracer=tr_lb, lb_interval=2, border_width=2).run()
        # Compare the tail (after LB had time to act).
        tail = slice(20, None)
        assert (
            tr_lb.imbalance_series()[tail].mean()
            < tr_base.imbalance_series()[tail].mean()
        )

    def test_diffusion_events_recorded(self):
        tr = TraceCollector()
        Mpi2dLbPIC(skewed_spec(), 8, tracer=tr, lb_interval=5, border_width=2).run()
        assert tr.boundary_moves_total() > 0
        assert all(e.kind == "diffusion" for e in tr.events)

    def test_migration_events_recorded(self):
        tr = TraceCollector()
        AmpiPIC(skewed_spec(), 4, tracer=tr, overdecomposition=4, lb_interval=10).run()
        assert tr.migrations_total() > 0

    def test_timeline_renders_with_events(self):
        tr = TraceCollector()
        Mpi2dLbPIC(skewed_spec(), 8, tracer=tr, lb_interval=5, border_width=2).run()
        out = render_imbalance_timeline(tr)
        assert "LB event" in out
        assert "imbalance" in out
