"""Tests for the pic-prk command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serial_defaults(self):
        args = build_parser().parse_args(["serial"])
        assert args.cells == 128
        assert args.dist == "geometric"

    def test_run_impl_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--impl", "bogus"])


class TestCommands:
    def test_serial_runs_and_verifies(self, capsys):
        rc = main(["serial", "--cells", "32", "--particles", "200", "--steps", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_serial_all_distributions(self, capsys):
        for dist in ("uniform", "sinusoidal", "linear"):
            rc = main([
                "serial", "--cells", "32", "--particles", "100",
                "--steps", "3", "--dist", dist,
            ])
            assert rc == 0

    def test_serial_patch_distribution(self, capsys):
        rc = main([
            "serial", "--cells", "32", "--particles", "100", "--steps", "3",
            "--dist", "patch", "--patch", "4", "12", "4", "12",
        ])
        assert rc == 0

    @pytest.mark.parametrize("impl", ["mpi-2d", "mpi-2d-LB", "ampi"])
    def test_run_each_implementation(self, impl, capsys):
        rc = main([
            "run", "--impl", impl, "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert impl in out
        assert "PASS" in out

    def test_trace_renders_timeline(self, capsys):
        rc = main([
            "trace", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "imbalance" in out

    def test_trace_help_mentions_out(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--out" in out
        assert "trace.json" in out

    @pytest.mark.parametrize("impl", ["mpi-2d", "mpi-2d-LB", "ampi"])
    def test_trace_out_writes_artifacts(self, impl, tmp_path, capsys):
        outdir = tmp_path / "obs"
        rc = main([
            "trace", "--impl", impl, "--cores", "4",
            "--cells", "32", "--particles", "300", "--steps", "6",
            "--out", str(outdir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("trace.json", "timeline.txt", "metrics.json"):
            path = outdir / name
            assert path.exists(), f"{name} not written"
            assert path.stat().st_size > 0
            assert name in out
        doc = json.loads((outdir / "trace.json").read_text())
        assert doc["traceEvents"]
        metrics = json.loads((outdir / "metrics.json").read_text())
        assert metrics["transport.messages_sent"]["value"] > 0
        assert "rank 0:" in (outdir / "timeline.txt").read_text()

    def test_trace_without_out_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "trace", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "300", "--steps", "6",
        ])
        assert rc == 0
        assert list(tmp_path.iterdir()) == []

    def test_run_with_knobs(self, capsys):
        rc = main([
            "run", "--impl", "mpi-2d-LB", "--cores", "6",
            "--cells", "48", "--particles", "600", "--steps", "12",
            "--lb-interval", "3", "--border-width", "2", "--axes", "xy",
            "--k", "1", "--m", "1",
        ])
        assert rc == 0

    def test_rotate90_flag(self, capsys):
        rc = main([
            "serial", "--cells", "32", "--particles", "100", "--steps", "3",
            "--rotate90",
        ])
        assert rc == 0


class TestExecutorFlags:
    def test_executor_choices(self):
        args = build_parser().parse_args(["run", "--executor", "batched"])
        assert args.executor == "batched"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "gpu"])

    @pytest.mark.parametrize("executor", ["serial", "batched", "process"])
    def test_run_each_executor(self, executor, capsys):
        argv = [
            "run", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "4",
            "--executor", executor,
        ]
        if executor == "process":
            argv += ["--workers", "2"]
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_profile_with_process_executor_is_rejected(self, capsys):
        rc = main([
            "run", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "200", "--steps", "2",
            "--profile", "--executor", "process",
        ])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--profile" in err
        assert "worker processes" in err
        assert "docs/performance.md" in err

    def test_profile_with_serial_executor_still_works(self, capsys):
        rc = main([
            "run", "--impl", "mpi-2d", "--cores", "2",
            "--cells", "16", "--particles", "40", "--steps", "2",
            "--profile", "--executor", "serial",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cProfile" in out

    def test_trace_out_with_process_executor_writes_executor_trace(
        self, tmp_path, capsys
    ):
        outdir = tmp_path / "obs"
        rc = main([
            "trace", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "300", "--steps", "4",
            "--executor", "process", "--workers", "2",
            "--out", str(outdir),
        ])
        assert rc == 0
        doc = json.loads((outdir / "executor_trace.json").read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"dispatch", "execute", "merge"} <= names


class TestResilienceCLI:
    def _plan_file(self, tmp_path):
        from repro.resilience import FaultPlan, SlowdownFault

        path = str(tmp_path / "plan.json")
        FaultPlan(
            seed=2, faults=(SlowdownFault(factor=3.0, core=0, start=2),)
        ).save(path)
        return path

    def _run_with_checkpoints(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        rc = main([
            "run", "--impl", "mpi-2d-LB", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
            "--faults", self._plan_file(tmp_path),
            "--checkpoint-every", "4", "--checkpoint-dir", ckpt_dir,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        return ckpt_dir, out

    def test_run_with_faults_and_checkpoints(self, tmp_path, capsys):
        import os

        ckpt_dir, out = self._run_with_checkpoints(tmp_path, capsys)
        assert "PASS" in out
        assert "latest checkpoint" in out
        assert sorted(os.listdir(ckpt_dir)) == [
            "ckpt_step000004.ckpt", "ckpt_step000008.ckpt",
        ]

    def test_resume_subcommand(self, tmp_path, capsys):
        import os

        ckpt_dir, _ = self._run_with_checkpoints(tmp_path, capsys)
        rc = main([
            "resume", "--from", os.path.join(ckpt_dir, "ckpt_step000004.ckpt"),
            "--checkpoint-dir", str(tmp_path / "resumed"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming mpi-2d-LB at step 4/8" in out
        assert "PASS" in out

    def test_resume_rejects_corrupt_checkpoint(self, tmp_path, capsys):
        import os

        ckpt_dir, _ = self._run_with_checkpoints(tmp_path, capsys)
        path = os.path.join(ckpt_dir, "ckpt_step000004.ckpt")
        raw = bytearray(open(path, "rb").read())
        raw[-10] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        from repro.runtime.errors import CheckpointCorruptError

        with pytest.raises(CheckpointCorruptError):
            main(["resume", "--from", path])

    def test_resume_validates_matching_spec(self, tmp_path, capsys):
        import os

        ckpt_dir, _ = self._run_with_checkpoints(tmp_path, capsys)
        # Capture the run's resolved spec via --dry-run, then resume
        # against it: same identity -> accepted.
        rc = main([
            "run", "--impl", "mpi-2d-LB", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
            "--faults", self._plan_file(tmp_path),
            "--checkpoint-every", "4", "--checkpoint-dir", ckpt_dir,
            "--dry-run",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        spec_path = tmp_path / "match.json"
        spec_path.write_text(out[: out.rindex("spec hash:")])
        rc = main([
            "resume", "--from", os.path.join(ckpt_dir, "ckpt_step000004.ckpt"),
            "--checkpoint-dir", str(tmp_path / "resumed"),
            "--spec", str(spec_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming mpi-2d-LB at step 4/8" in out

    def test_resume_rejects_mismatched_spec_naming_fields(
        self, tmp_path, capsys
    ):
        import json
        import os

        ckpt_dir, _ = self._run_with_checkpoints(tmp_path, capsys)
        rc = main([
            "run", "--impl", "mpi-2d-LB", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
            "--faults", self._plan_file(tmp_path),
            "--checkpoint-every", "4", "--checkpoint-dir", ckpt_dir,
            "--dry-run",
        ])
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("spec hash:")])
        doc["impl"]["lb_interval"] = 5
        spec_path = tmp_path / "mismatch.json"
        spec_path.write_text(json.dumps(doc))
        rc = main([
            "resume", "--from", os.path.join(ckpt_dir, "ckpt_step000004.ckpt"),
            "--spec", str(spec_path),
        ])
        err = capsys.readouterr().err
        assert rc == 2
        assert "different run configuration" in err
        assert "impl.lb_interval: 5 != 2" in err

    def test_resilience_bench_smoke(self, tmp_path, capsys):
        out_path = str(tmp_path / "BENCH_resilience.json")
        rc = main(["resilience", "--preset", "smoke", "--out", out_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all gates passed" in out
        doc = json.loads(open(out_path).read())
        from repro.bench import resilience as bench

        assert bench.check_schema(doc) == []
        assert doc["preset"] == "smoke"


class TestRunSpecCLI:
    ARGS = [
        "--impl", "mpi-2d-LB", "--cores", "4",
        "--cells", "32", "--particles", "400", "--steps", "8",
    ]

    def test_dry_run_prints_resolved_spec_without_running(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        rc = main(["run", *self.ARGS, "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "spec hash: " in out
        assert "PASS" not in out  # nothing ran
        assert list(tmp_path.iterdir()) == []  # nothing written
        doc = json.loads(out[: out.rindex("spec hash:")])
        # fully resolved: driver defaults are filled in, not null
        assert doc["impl"]["name"] == "mpi-2d-LB"
        assert doc["impl"]["min_width"] == 1
        assert doc["impl"]["axes"] == "x"
        assert doc["workload"]["cells"] == 32

    def test_dry_run_prints_effective_kernel_backend(self, capsys):
        """--dry-run shows what would actually execute: the ``auto``
        request is mapped to the concrete backend (the same resolution
        the real run performs), never echoed verbatim."""
        from repro.core.kernel_compiled import resolve_backend

        rc = main(["run", *self.ARGS, "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out[: out.rindex("spec hash:")])
        assert doc["executor"]["kernel_backend"] == resolve_backend("auto")
        assert doc["executor"]["kernel_backend"] != "auto"

    def test_dry_run_explicit_backend_and_dispatch_pass_through(self, capsys):
        rc = main([
            "run", *self.ARGS, "--kernel-backend", "python",
            "--dispatch", "pipe", "--dry-run",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out[: out.rindex("spec hash:")])
        assert doc["executor"]["kernel_backend"] == "python"
        assert doc["executor"]["dispatch"] == "pipe"
        assert doc["executor"]["ring_slots"] >= 1  # default filled in

    def test_dry_run_hash_excludes_backend_and_dispatch(self, capsys):
        """Backend/dispatch can never change what a run computes, so the
        printed identity hash must not move with them."""
        hashes = set()
        for extra in ((), ("--kernel-backend", "python", "--dispatch", "pipe")):
            rc = main(["run", *self.ARGS, *extra, "--dry-run"])
            out = capsys.readouterr().out
            assert rc == 0
            hashes.add(out[out.rindex("spec hash:"):].split()[-1])
        assert len(hashes) == 1

    def test_dry_run_hash_is_canonical(self, capsys):
        from repro.config import RunSpec
        from repro.config.build import canonical_hash

        rc = main(["run", *self.ARGS, "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        printed = out[out.rindex("spec hash:"):].split()[-1]
        rs = RunSpec.from_json(out[: out.rindex("spec hash:")])
        assert printed == canonical_hash(rs)

    def _write_spec(self, tmp_path, capsys, extra=()):
        rc = main(["run", *self.ARGS, *extra, "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        path = tmp_path / "spec.json"
        path.write_text(out[: out.rindex("spec hash:")])
        return str(path)

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, capsys)
        rc = main(["run", "--spec", spec])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mpi-2d-LB on 4 simulated cores" in out
        assert "PASS" in out

    def test_explicit_flag_overrides_spec_file(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, capsys)
        rc = main(["run", "--spec", spec, "--cores", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mpi-2d-LB on 8 simulated cores" in out

    def test_unset_flag_does_not_clobber_spec_file(self, tmp_path, capsys):
        # The spec says cores=4; the --cores default (24) must not win.
        spec = self._write_spec(tmp_path, capsys)
        rc = main(["run", "--spec", spec])
        out = capsys.readouterr().out
        assert rc == 0
        assert "on 4 simulated cores" in out

    def test_impl_switch_replaces_impl_section(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, capsys)
        rc = main(["run", "--spec", spec, "--impl", "mpi-2d"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mpi-2d on 4 simulated cores" in out

    def test_bad_spec_file_is_a_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "workload": {"cells": 32, "n_particles": 100, "steps": 2},
            "impl": {"name": "mpi-2d", "cores": 2, "bogus": 1},
        }))
        rc = main(["run", "--spec", str(spec)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "bogus" in err

    def test_serial_accepts_spec_and_dry_run(self, tmp_path, capsys):
        rc = main([
            "serial", "--cells", "32", "--particles", "200", "--steps", "5",
            "--dry-run",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out[: out.rindex("spec hash:")])
        assert doc["impl"]["name"] == "serial"
        spec = tmp_path / "serial.json"
        spec.write_text(out[: out.rindex("spec hash:")])
        rc = main(["serial", "--spec", str(spec)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out


class TestCampaignCLI:
    def _declaration(self, tmp_path):
        doc = {
            "schema": 1,
            "campaign": "cli-smoke",
            "base": {
                "workload": {"cells": 32, "n_particles": 300, "steps": 4},
                "impl": {"name": "mpi-2d", "cores": 2},
            },
            "axes": [
                {"axis": "cores", "path": "impl.cores", "values": [2, 4]},
            ],
        }
        path = tmp_path / "camp.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_campaign_runs_then_caches(self, tmp_path, capsys):
        decl = self._declaration(tmp_path)
        cache = str(tmp_path / "cache")
        rc = main(["campaign", decl, "--cache", cache])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 points: 2 executed, 0 cached" in out
        rc = main(["campaign", decl, "--cache", cache, "--expect-cached"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 points: 0 executed, 2 cached" in out

    def test_expect_cached_fails_on_cold_cache(self, tmp_path, capsys):
        decl = self._declaration(tmp_path)
        rc = main([
            "campaign", decl, "--cache", str(tmp_path / "cold"),
            "--expect-cached",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "--expect-cached" in captured.err

    def test_bad_declaration_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"campaign": "x"}))
        rc = main(["campaign", str(path)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "base" in err


class TestExecutorPrecedence:
    ARGS = [
        "run", "--impl", "mpi-2d", "--cores", "2",
        "--cells", "32", "--particles", "200", "--steps", "2",
    ]

    def test_env_sets_backend_when_flag_absent(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        rc = main([*self.ARGS, "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out[: out.rindex("spec hash:")])
        assert doc["executor"]["kind"] == "batched"

    def test_cli_flag_beats_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        rc = main([*self.ARGS, "--executor", "serial", "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out[: out.rindex("spec hash:")])
        assert doc["executor"]["kind"] == "serial"

    def test_env_beats_spec_file(self, tmp_path, capsys, monkeypatch):
        rc = main([*self.ARGS, "--executor", "process", "--dry-run"])
        out = capsys.readouterr().out
        spec = tmp_path / "spec.json"
        spec.write_text(out[: out.rindex("spec hash:")])
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        rc = main(["run", "--spec", str(spec), "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out[: out.rindex("spec hash:")])
        assert doc["executor"]["kind"] == "serial"

    def test_executor_choice_does_not_change_hash(self, capsys):
        rc = main([*self.ARGS, "--executor", "serial", "--dry-run"])
        out_a = capsys.readouterr().out
        assert rc == 0
        rc = main([*self.ARGS, "--executor", "batched", "--workers", "2",
                   "--dry-run"])
        out_b = capsys.readouterr().out
        assert rc == 0
        hash_a = out_a[out_a.rindex("spec hash:"):]
        hash_b = out_b[out_b.rindex("spec hash:"):]
        assert hash_a == hash_b


class TestMultirun:
    """`pic-prk multirun`: N simulations interleaved in one process."""

    def _spec_file(self, tmp_path, name="mr", **overrides):
        doc = {
            "workload": {"cells": 32, "n_particles": 400, "steps": 6,
                         "distribution": "uniform"},
            "impl": {"name": "mpi-2d", "cores": 4},
        }
        for path, value in overrides.items():
            section, field = path.split(".")
            doc.setdefault(section, {})[field] = value
        p = tmp_path / f"{name}.json"
        p.write_text(json.dumps(doc))
        return str(p)

    def test_two_specs_interleave_and_verify(self, tmp_path, capsys):
        a = self._spec_file(tmp_path, "a")
        b = self._spec_file(tmp_path, "b", **{
            "impl.name": "ampi", "impl.overdecomposition": 2,
            "impl.lb_interval": 3,
        })
        rc = main(["multirun", a, b])
        out = capsys.readouterr().out
        assert rc == 0
        assert "multiplexing 2 engines" in out
        assert "[ok]" in out and "FAIL" not in out
        assert "shared pool" in out

    def test_copies_vary_the_seed_and_traces_are_namespaced(
        self, tmp_path, capsys
    ):
        spec = self._spec_file(tmp_path, "base")
        out_dir = str(tmp_path / "traces")
        rc = main([
            "multirun", spec, "--copies", "2", "--policy", "deadline",
            "--out", out_dir,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "multiplexing 2 engines" in out
        names = sorted(os.listdir(out_dir))
        assert names == ["trace-base_0.json", "trace-base_1.json"]
        doc = json.load(open(os.path.join(out_dir, names[0])))
        track_names = [
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        ]
        assert all(n.startswith("base#0:") for n in track_names)

    def test_order_seed_accepted(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        rc = main(["multirun", spec, spec, "--order-seed", "5",
                   "--slice-ticks", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        # the same file twice gets positionally-disambiguated engine ids
        assert "mr@0" in out and "mr@1" in out
