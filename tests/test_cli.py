"""Tests for the pic-prk command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serial_defaults(self):
        args = build_parser().parse_args(["serial"])
        assert args.cells == 128
        assert args.dist == "geometric"

    def test_run_impl_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--impl", "bogus"])


class TestCommands:
    def test_serial_runs_and_verifies(self, capsys):
        rc = main(["serial", "--cells", "32", "--particles", "200", "--steps", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_serial_all_distributions(self, capsys):
        for dist in ("uniform", "sinusoidal", "linear"):
            rc = main([
                "serial", "--cells", "32", "--particles", "100",
                "--steps", "3", "--dist", dist,
            ])
            assert rc == 0

    def test_serial_patch_distribution(self, capsys):
        rc = main([
            "serial", "--cells", "32", "--particles", "100", "--steps", "3",
            "--dist", "patch", "--patch", "4", "12", "4", "12",
        ])
        assert rc == 0

    @pytest.mark.parametrize("impl", ["mpi-2d", "mpi-2d-LB", "ampi"])
    def test_run_each_implementation(self, impl, capsys):
        rc = main([
            "run", "--impl", impl, "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert impl in out
        assert "PASS" in out

    def test_trace_renders_timeline(self, capsys):
        rc = main([
            "trace", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "imbalance" in out

    def test_trace_help_mentions_out(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--out" in out
        assert "trace.json" in out

    @pytest.mark.parametrize("impl", ["mpi-2d", "mpi-2d-LB", "ampi"])
    def test_trace_out_writes_artifacts(self, impl, tmp_path, capsys):
        outdir = tmp_path / "obs"
        rc = main([
            "trace", "--impl", impl, "--cores", "4",
            "--cells", "32", "--particles", "300", "--steps", "6",
            "--out", str(outdir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("trace.json", "timeline.txt", "metrics.json"):
            path = outdir / name
            assert path.exists(), f"{name} not written"
            assert path.stat().st_size > 0
            assert name in out
        doc = json.loads((outdir / "trace.json").read_text())
        assert doc["traceEvents"]
        metrics = json.loads((outdir / "metrics.json").read_text())
        assert metrics["transport.messages_sent"]["value"] > 0
        assert "rank 0:" in (outdir / "timeline.txt").read_text()

    def test_trace_without_out_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "trace", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "300", "--steps", "6",
        ])
        assert rc == 0
        assert list(tmp_path.iterdir()) == []

    def test_run_with_knobs(self, capsys):
        rc = main([
            "run", "--impl", "mpi-2d-LB", "--cores", "6",
            "--cells", "48", "--particles", "600", "--steps", "12",
            "--lb-interval", "3", "--border-width", "2", "--axes", "xy",
            "--k", "1", "--m", "1",
        ])
        assert rc == 0

    def test_rotate90_flag(self, capsys):
        rc = main([
            "serial", "--cells", "32", "--particles", "100", "--steps", "3",
            "--rotate90",
        ])
        assert rc == 0


class TestExecutorFlags:
    def test_executor_choices(self):
        args = build_parser().parse_args(["run", "--executor", "batched"])
        assert args.executor == "batched"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "gpu"])

    @pytest.mark.parametrize("executor", ["serial", "batched", "process"])
    def test_run_each_executor(self, executor, capsys):
        argv = [
            "run", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "4",
            "--executor", executor,
        ]
        if executor == "process":
            argv += ["--workers", "2"]
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_profile_with_process_executor_is_rejected(self, capsys):
        rc = main([
            "run", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "200", "--steps", "2",
            "--profile", "--executor", "process",
        ])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--profile" in err
        assert "worker processes" in err
        assert "docs/performance.md" in err

    def test_profile_with_serial_executor_still_works(self, capsys):
        rc = main([
            "run", "--impl", "mpi-2d", "--cores", "2",
            "--cells", "16", "--particles", "40", "--steps", "2",
            "--profile", "--executor", "serial",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cProfile" in out

    def test_trace_out_with_process_executor_writes_executor_trace(
        self, tmp_path, capsys
    ):
        outdir = tmp_path / "obs"
        rc = main([
            "trace", "--impl", "mpi-2d", "--cores", "4",
            "--cells", "32", "--particles", "300", "--steps", "4",
            "--executor", "process", "--workers", "2",
            "--out", str(outdir),
        ])
        assert rc == 0
        doc = json.loads((outdir / "executor_trace.json").read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"dispatch", "execute", "merge"} <= names


class TestResilienceCLI:
    def _plan_file(self, tmp_path):
        from repro.resilience import FaultPlan, SlowdownFault

        path = str(tmp_path / "plan.json")
        FaultPlan(
            seed=2, faults=(SlowdownFault(factor=3.0, core=0, start=2),)
        ).save(path)
        return path

    def _run_with_checkpoints(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        rc = main([
            "run", "--impl", "mpi-2d-LB", "--cores", "4",
            "--cells", "32", "--particles", "400", "--steps", "8",
            "--faults", self._plan_file(tmp_path),
            "--checkpoint-every", "4", "--checkpoint-dir", ckpt_dir,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        return ckpt_dir, out

    def test_run_with_faults_and_checkpoints(self, tmp_path, capsys):
        import os

        ckpt_dir, out = self._run_with_checkpoints(tmp_path, capsys)
        assert "PASS" in out
        assert "latest checkpoint" in out
        assert sorted(os.listdir(ckpt_dir)) == [
            "ckpt_step000004.ckpt", "ckpt_step000008.ckpt",
        ]

    def test_resume_subcommand(self, tmp_path, capsys):
        import os

        ckpt_dir, _ = self._run_with_checkpoints(tmp_path, capsys)
        rc = main([
            "resume", "--from", os.path.join(ckpt_dir, "ckpt_step000004.ckpt"),
            "--checkpoint-dir", str(tmp_path / "resumed"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming mpi-2d-LB at step 4/8" in out
        assert "PASS" in out

    def test_resume_rejects_corrupt_checkpoint(self, tmp_path, capsys):
        import os

        ckpt_dir, _ = self._run_with_checkpoints(tmp_path, capsys)
        path = os.path.join(ckpt_dir, "ckpt_step000004.ckpt")
        raw = bytearray(open(path, "rb").read())
        raw[-10] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        from repro.runtime.errors import CheckpointCorruptError

        with pytest.raises(CheckpointCorruptError):
            main(["resume", "--from", path])

    def test_resilience_bench_smoke(self, tmp_path, capsys):
        out_path = str(tmp_path / "BENCH_resilience.json")
        rc = main(["resilience", "--preset", "smoke", "--out", out_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all gates passed" in out
        doc = json.loads(open(out_path).read())
        from repro.bench import resilience as bench

        assert bench.check_schema(doc) == []
        assert doc["preset"] == "smoke"
