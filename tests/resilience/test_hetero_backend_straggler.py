"""A mixed compiled/python fleet is an ordinary, LB-correctable straggler.

Runs entirely without numba: the heterogeneity enters through a seeded
:class:`~repro.runtime.costmodel.WorkRateMeter` — exactly the object a
real mixed fleet's executors would have filled with measured pushes/sec —
so the scenario is the *model* of "rank 3 runs the python kernel while
everyone else runs compiled", order-10x slower per push.

Claims pinned here:

* the scheduler turns the measured rate gap into simulated busy-seconds,
  so the :class:`~repro.resilience.StragglerWatch` flags the slow rank
  from its ordinary busy-time evidence;
* the driver forwards the meter's rates to the watch
  (``note_backend_rates``), whose ``backend_imbalance()`` then names the
  cause — a 10x rate spread, not a fault;
* physics is untouched: only clocks move, verification and checksums
  match the homogeneous run bit-for-bit;
* the imbalance is *correctable*: mpi-2d-LB with the same meter beats
  static mpi-2d on total simulated time;
* a *three-tier* fleet (python / compiled / compiled-parallel, seeded
  from :data:`~repro.runtime.costmodel.NOMINAL_BACKEND_RATES`) is
  handled the same way: the python rank is the straggler, the
  compiled-parallel rank is the reference, and the rate table —
  including the parallel tier — survives the checkpoint round-trip;
* the watch's rate table survives a checkpoint round-trip, and old
  checkpoints without one still load.
"""

from __future__ import annotations

import pytest

from repro.core.spec import Distribution, PICSpec
from repro.parallel import Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import ResilienceConfig, StragglerWatch
from repro.runtime.costmodel import (
    NOMINAL_BACKEND_RATES,
    WorkRateMeter,
    nominal_backend_rate,
)

SPEC = PICSpec(
    cells=32, n_particles=1200, steps=10,
    distribution=Distribution.UNIFORM,
)
CORES = 4
SLOW_RANK = 3
FAST_RATE = 5.0e7  # a compiled kernel's pushes/sec, order of magnitude
SLOW_RATE = 5.0e6  # the python kernel's


def _meter() -> WorkRateMeter:
    m = WorkRateMeter()
    m.seed({r: FAST_RATE for r in range(CORES)})
    m.seed({SLOW_RANK: SLOW_RATE})
    return m


def _run(cls, *, work_rates=None, watch=None, **params):
    resilience = (
        ResilienceConfig(watch=watch) if watch is not None else None
    )
    impl = cls(
        SPEC, CORES, work_rates=work_rates, resilience=resilience, **params
    )
    result = impl.run()
    assert result.verification.ok, str(result.verification)
    return result


def test_slow_backend_rank_gets_flagged():
    watch = StragglerWatch(CORES)
    _run(Mpi2dPIC, work_rates=_meter(), watch=watch)
    assert watch.stragglers() == [SLOW_RANK]
    assert watch.flag_steps, "flagging should have happened mid-run"


def test_meter_rates_reach_the_watch_as_diagnostics():
    watch = StragglerWatch(CORES)
    _run(Mpi2dPIC, work_rates=_meter(), watch=watch)
    assert watch.backend_rates == _meter().rates()
    assert watch.backend_imbalance() == pytest.approx(
        FAST_RATE / SLOW_RATE
    )


def test_homogeneous_meter_is_invisible():
    """All ranks at the same measured rate ⇒ nothing flagged, imbalance 1."""
    m = WorkRateMeter()
    m.seed({r: FAST_RATE for r in range(CORES)})
    watch = StragglerWatch(CORES)
    uniform = _run(Mpi2dPIC, work_rates=m, watch=watch)
    bare = _run(Mpi2dPIC)
    assert watch.stragglers() == []
    assert watch.backend_imbalance() == pytest.approx(1.0)
    # Uniform slowdown of 1.0 must not even move the clocks.
    assert uniform.total_time == bare.total_time


def test_physics_untouched_only_clocks_move():
    hetero = _run(Mpi2dPIC, work_rates=_meter())
    homo = _run(Mpi2dPIC)
    v, w = hetero.verification, homo.verification
    assert (v.id_checksum, v.n_particles, v.max_abs_error) == (
        w.id_checksum, w.n_particles, w.max_abs_error
    )
    # The slow rank gates the whole run: close to the full 10x stretch.
    assert hetero.total_time > 2.0 * homo.total_time


def test_lb_corrects_the_backend_imbalance():
    """mpi-2d-LB sheds domain from the python-kernel rank and beats the
    static decomposition end-to-end — the ISSUE's headline scenario."""
    static = _run(Mpi2dPIC, work_rates=_meter())
    balanced = _run(
        Mpi2dLbPIC,
        work_rates=_meter(),
        watch=StragglerWatch(CORES),
        lb_interval=2,
        border_width=1,
    )
    assert balanced.total_time < static.total_time
    assert (
        balanced.verification.id_checksum == static.verification.id_checksum
    )


def test_backend_rates_round_trip_checkpoint_state():
    watch = StragglerWatch(CORES)
    watch.note_backend_rates({0: FAST_RATE, SLOW_RANK: SLOW_RATE})
    state = watch.state_dict()
    fresh = StragglerWatch(CORES)
    fresh.load_state(state)
    assert fresh.backend_rates == {0: FAST_RATE, SLOW_RANK: SLOW_RATE}
    assert fresh.backend_imbalance() == pytest.approx(FAST_RATE / SLOW_RATE)


def test_old_checkpoints_without_rates_still_load():
    watch = StragglerWatch(CORES)
    state = watch.state_dict()
    del state["backend_rates"]  # checkpoint predating measured work rates
    fresh = StragglerWatch(CORES)
    fresh.note_backend_rates({0: FAST_RATE})  # must be overwritten by load
    fresh.load_state(state)
    assert fresh.backend_rates == {}
    assert fresh.backend_imbalance() is None


def test_note_backend_rates_rejects_nonpositive():
    watch = StragglerWatch(CORES)
    with pytest.raises(ValueError):
        watch.note_backend_rates({0: 0.0})


# ----------------------------------------------------------------------
# Three-tier fleet: python / compiled / compiled-parallel
# ----------------------------------------------------------------------
def _three_tier_meter() -> WorkRateMeter:
    """Rank 3 on python, rank 0 on compiled-parallel, the rest compiled —
    seeded from the nominal backend priors, as a real mixed fleet would
    be before its first measured batch."""
    m = WorkRateMeter()
    m.seed_backends(
        {
            0: "compiled-parallel",
            1: "compiled",
            2: "compiled",
            SLOW_RANK: "python",
        }
    )
    return m


def test_three_tier_fleet_flags_only_the_python_rank():
    watch = StragglerWatch(CORES)
    _run(Mpi2dPIC, work_rates=_three_tier_meter(), watch=watch)
    assert watch.stragglers() == [SLOW_RANK]
    # The spread the watch names is parallel-vs-python, the widest gap.
    assert watch.backend_imbalance() == pytest.approx(
        NOMINAL_BACKEND_RATES["compiled-parallel"]
        / NOMINAL_BACKEND_RATES["python"]
    )


def test_three_tier_physics_untouched():
    hetero = _run(Mpi2dPIC, work_rates=_three_tier_meter())
    homo = _run(Mpi2dPIC)
    v, w = hetero.verification, homo.verification
    assert (v.id_checksum, v.n_particles, v.max_abs_error) == (
        w.id_checksum, w.n_particles, w.max_abs_error
    )


def test_three_tier_rates_round_trip_checkpoint_state():
    """The compiled-parallel tier is just another rate in the table: a
    checkpoint taken mid-run restores all three tiers exactly."""
    watch = StragglerWatch(CORES)
    meter = _three_tier_meter()
    _run(Mpi2dPIC, work_rates=meter, watch=watch)
    state = watch.state_dict()
    fresh = StragglerWatch(CORES)
    fresh.load_state(state)
    assert fresh.backend_rates == meter.rates()
    assert fresh.backend_rates[0] == nominal_backend_rate("compiled-parallel")
    assert fresh.backend_imbalance() == watch.backend_imbalance()


def test_nominal_rate_unknown_backend_rejected():
    with pytest.raises(ValueError, match="fortran"):
        nominal_backend_rate("fortran")
