"""Straggler detection and the recovery responses it drives.

Unit tests pin the EWMA/hysteresis math; integration tests inject a CPU
slowdown and check the whole causal chain: flag -> instant event + metric
-> forced/measured LB round -> simulated time recovered, plus the crash
path (recovery span with a policy, :class:`RankFailedError` without).
"""

from __future__ import annotations

import pytest

from repro.core.spec import Distribution, PICSpec
from repro.instrument import MetricsRegistry, Tracer
from repro.parallel import Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import (
    CrashFault,
    FaultPlan,
    RecoveryPolicy,
    ResilienceConfig,
    SlowdownFault,
    StragglerWatch,
)
from repro.runtime.errors import RankFailedError


class TestWatchUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerWatch(0)
        with pytest.raises(ValueError, match="alpha"):
            StragglerWatch(4, alpha=0.0)
        with pytest.raises(ValueError, match="clear_ratio"):
            StragglerWatch(4, threshold=2.0, clear_ratio=2.5)
        with pytest.raises(ValueError, match="min_samples"):
            StragglerWatch(4, min_samples=0)

    def _feed(self, watch, step, deltas):
        """One synthetic step: every rank's cumulative busy time advances."""
        events = []
        for r, d in enumerate(deltas):
            self._cum[r] = self._cum.get(r, 0.0) + d
            events += watch.observe(r, step, self._cum[r])
        return events

    def setup_method(self):
        self._cum = {}

    def test_flag_and_clear_hysteresis(self):
        watch = StragglerWatch(4, alpha=1.0, threshold=2.0, clear_ratio=1.5)
        assert self._feed(watch, 0, [1, 1, 1, 1]) == []
        assert not watch.ready()
        assert watch.load(0, fallback=7.5) == 7.5  # fallback until ready
        assert self._feed(watch, 1, [1, 1, 1, 1]) == []
        assert not watch.ready()  # min_samples=2: one delta per rank so far
        # Rank 3 jumps above 2x the median -> flagged (readiness arrives
        # with this second delta).
        assert self._feed(watch, 2, [1, 1, 1, 3]) == [("flagged", 3)]
        assert watch.stragglers() == [3]
        assert watch.load(3, fallback=0.0) == pytest.approx(3.0)
        # Hovering between clear_ratio and threshold: no flap.
        assert self._feed(watch, 3, [1, 1, 1, 1.8]) == []
        assert watch.stragglers() == [3]
        # Dropping below 1.5x the median clears it.
        assert self._feed(watch, 4, [1, 1, 1, 1.0]) == [("cleared", 3)]
        assert watch.stragglers() == []

    def test_straggler_pending_window(self):
        watch = StragglerWatch(2, min_samples=1, alpha=1.0)
        watch.flag_steps[:] = [4, 9]
        assert watch.straggler_pending(last_handled=-1, step=3) is False
        assert watch.straggler_pending(last_handled=-1, step=4) is True
        assert watch.straggler_pending(last_handled=4, step=8) is False
        assert watch.straggler_pending(last_handled=4, step=9) is True

    def test_core_change_restarts_ewma(self):
        watch = StragglerWatch(2, alpha=0.5, min_samples=1)
        cum = 0.0
        for step in range(3):  # three slow deltas of 4.0 on core 0
            cum += 4.0
            watch.observe(0, step, cum, core=0)
            watch.observe(1, step, float(step + 1), core=1)
        assert watch.load(0, 0.0) > 3.0
        # Rank 0 migrates to core 2: the next delta alone defines the EWMA.
        cum += 1.0
        watch.observe(0, 3, cum, core=2)
        watch.observe(1, 3, 4.0, core=1)
        assert watch.load(0, 0.0) == pytest.approx(1.0)

    def test_state_round_trips(self):
        a = StragglerWatch(3, alpha=1.0, min_samples=1)
        cum = {}
        for step, deltas in enumerate([[1, 1, 1], [1, 1, 5], [1, 1, 5]]):
            for r, d in enumerate(deltas):
                cum[r] = cum.get(r, 0.0) + d
                a.observe(r, step, cum[r], core=r)
        b = StragglerWatch(3, alpha=1.0, min_samples=1)
        b.load_state(a.state_dict())
        assert b.state_dict() == a.state_dict()
        assert b.stragglers() == a.stragglers() == [2]
        with pytest.raises(ValueError, match="ranks"):
            StragglerWatch(5).load_state(a.state_dict())


SPEC = PICSpec(
    cells=32, n_particles=2000, steps=20,
    distribution=Distribution.UNIFORM,
)
CORES = 4


def _slow_plan():
    return FaultPlan(faults=(SlowdownFault(factor=4.0, core=0, start=4),))


class TestStragglerIntegration:
    def test_slowdown_is_flagged_and_instrumented(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        cfg = ResilienceConfig(plan=_slow_plan(), watch=StragglerWatch(CORES))
        res = Mpi2dPIC(
            SPEC, CORES, dims=(CORES, 1), resilience=cfg,
            metrics=metrics, span_tracer=tracer,
        ).run()
        assert res.verification.ok
        assert metrics.counter("resilience.straggler_flagged").value >= 1
        flagged = [e for e in tracer.instants if e.name == "straggler_flagged"]
        assert flagged and flagged[0].rank == 0  # core 0 <-> rank 0 here
        assert cfg.watch.stragglers() == [0]

    def test_measured_loads_drive_recovery(self):
        """The LB on measured seconds beats the static run under the fault."""
        def run(cls, cfg, **kw):
            return cls(SPEC, CORES, dims=(CORES, 1), resilience=cfg, **kw).run()

        def cfg():
            return ResilienceConfig(plan=_slow_plan(), watch=StragglerWatch(CORES))

        static = run(Mpi2dPIC, cfg())
        balanced = run(
            Mpi2dLbPIC, cfg(),
            lb_interval=2, border_width=2, threshold_fraction=0.02, axes="x",
        )
        assert balanced.verification.ok and static.verification.ok
        assert balanced.total_time < 0.75 * static.total_time

    def test_new_straggler_forces_off_interval_lb_round(self):
        """With lb_interval > steps, only the watch can trigger a round."""
        def run(watch):
            cfg = ResilienceConfig(plan=_slow_plan(), watch=watch)
            return Mpi2dLbPIC(
                SPEC, CORES, dims=(CORES, 1), lb_interval=1000,
                border_width=2, threshold_fraction=0.02, axes="x",
                resilience=cfg,
            ).run()

        without_watch_cfg = ResilienceConfig(plan=_slow_plan(), watch=None)
        inert = Mpi2dLbPIC(
            SPEC, CORES, dims=(CORES, 1), lb_interval=1000,
            border_width=2, threshold_fraction=0.02, axes="x",
            resilience=without_watch_cfg,
        ).run()
        reactive = run(StragglerWatch(CORES))
        assert reactive.verification.ok and inert.verification.ok
        # The forced round moved work off the slow core.
        assert reactive.total_time < 0.85 * inert.total_time


class TestCrashes:
    def _plan(self):
        return FaultPlan(faults=(CrashFault(rank=1, step=7, retries=2),))

    def test_crash_without_policy_raises(self):
        cfg = ResilienceConfig(plan=self._plan())
        with pytest.raises(RankFailedError) as exc:
            Mpi2dPIC(SPEC, CORES, resilience=cfg).run()
        assert exc.value.rank == 1
        assert exc.value.step == 7
        assert "rank 1 crashed at step 7" in str(exc.value)

    def test_crash_with_policy_is_absorbed(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        cfg = ResilienceConfig(
            plan=self._plan(), recovery=RecoveryPolicy(),
        )
        crashed = Mpi2dPIC(
            SPEC, CORES, resilience=cfg, metrics=metrics, span_tracer=tracer
        ).run()
        clean = Mpi2dPIC(SPEC, CORES).run()
        assert crashed.verification.ok
        spans = [s for s in tracer.spans if s.name == "recovery"]
        assert len(spans) == 1
        assert spans[0].cat == "fault"
        assert spans[0].rank == 1 and spans[0].step == 7
        expected = RecoveryPolicy().recovery_seconds(
            retries=2, state_bytes=spans[0].args_dict()["state_bytes"]
        )
        assert spans[0].duration == pytest.approx(expected)
        assert metrics.counter("resilience.crashes").value == 1
        assert crashed.total_time > clean.total_time
