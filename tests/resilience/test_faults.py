"""Fault plans and the injector: validation, serialization, determinism.

The headline property is at the bottom: verification passes and runs are
byte-for-byte repeatable under an arbitrary fault plan on all three
implementations — faults perturb simulated time, never physics.
"""

from __future__ import annotations

import pytest

from repro.core.spec import Distribution, PICSpec
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    MessageFault,
    RecoveryPolicy,
    ResilienceConfig,
    SlowdownFault,
    StragglerWatch,
    unit_hash,
)


class TestUnitHash:
    def test_deterministic(self):
        assert unit_hash(7, 1, 2, 3) == unit_hash(7, 1, 2, 3)

    def test_in_unit_interval(self):
        vals = [unit_hash(s, i, j) for s in range(5) for i in range(5) for j in range(5)]
        assert all(0.0 <= v < 1.0 for v in vals)

    def test_sensitive_to_every_coordinate(self):
        base = unit_hash(1, 2, 3, 4)
        assert base != unit_hash(2, 2, 3, 4)
        assert base != unit_hash(1, 3, 3, 4)
        assert base != unit_hash(1, 2, 3, 5)

    def test_roughly_uniform(self):
        vals = [unit_hash(0, i) for i in range(2000)]
        mean = sum(vals) / len(vals)
        assert 0.45 < mean < 0.55


class TestValidation:
    def test_slowdown_needs_exactly_one_target(self):
        with pytest.raises(ValueError, match="exactly one"):
            SlowdownFault(factor=2.0)
        with pytest.raises(ValueError, match="exactly one"):
            SlowdownFault(factor=2.0, rank=0, core=0)

    def test_slowdown_factor_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SlowdownFault(factor=0.0, rank=0)

    def test_slowdown_window(self):
        with pytest.raises(ValueError, match="window"):
            SlowdownFault(factor=2.0, rank=0, start=5, stop=5)

    def test_message_drop_prob_range(self):
        with pytest.raises(ValueError, match="drop_prob"):
            MessageFault(drop_prob=1.0)
        with pytest.raises(ValueError, match="drop_prob"):
            MessageFault(drop_prob=-0.1)

    def test_message_times_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            MessageFault(delay_s=-1e-6)

    def test_crash_coordinates(self):
        with pytest.raises(ValueError):
            CrashFault(rank=-1, step=0)
        with pytest.raises(ValueError):
            CrashFault(rank=0, step=0, retries=-1)

    def test_plan_rejects_foreign_entries(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan(faults=("not a fault",))


PLAN = FaultPlan(
    seed=11,
    faults=(
        SlowdownFault(factor=3.0, core=1, start=2, stop=9),
        MessageFault(delay_s=2e-4, drop_prob=0.3, src=0, start=1),
        CrashFault(rank=2, step=5, retries=2),
    ),
)


class TestSerialization:
    def test_dict_round_trip(self):
        assert FaultPlan.from_dict(PLAN.to_dict()) == PLAN

    def test_json_round_trip(self):
        assert FaultPlan.from_json(PLAN.to_json()) == PLAN

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "plan.json")
        PLAN.save(path)
        assert FaultPlan.load(path) == PLAN

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict({"seed": 0, "faults": [{"kind": "meteor"}]})

    def test_none_fields_omitted(self):
        doc = PLAN.to_dict()
        slow = doc["faults"][0]
        assert "rank" not in slow and slow["core"] == 1


class TestInjector:
    def test_compute_scale_window_and_targets(self):
        inj = FaultInjector(PLAN)
        assert inj.compute_scale(rank=0, core=1, step=1) == 1.0  # before start
        assert inj.compute_scale(rank=0, core=1, step=2) == 3.0
        assert inj.compute_scale(rank=0, core=1, step=9) == 1.0  # stop exclusive
        assert inj.compute_scale(rank=0, core=0, step=5) == 1.0  # other core

    def test_compute_scale_stacks_multiplicatively(self):
        plan = FaultPlan(faults=(
            SlowdownFault(factor=2.0, rank=0),
            SlowdownFault(factor=3.0, core=0),
        ))
        assert FaultInjector(plan).compute_scale(rank=0, core=0, step=0) == 6.0

    def test_message_penalty_deterministic(self):
        inj = FaultInjector(PLAN)
        a = inj.message_penalty(0, 1, step=3, key=42)
        b = inj.message_penalty(0, 1, step=3, key=42)
        assert a == b

    def test_message_penalty_accounting(self):
        f = MessageFault(delay_s=1e-3, drop_prob=0.9, retry_s=1e-4, max_retries=3)
        inj = FaultInjector(FaultPlan(seed=5, faults=(f,)))
        results = [inj.message_penalty(0, 1, step=0, key=k) for k in range(50)]
        for extra, drops in results:
            assert extra == pytest.approx(f.delay_s + drops * f.retry_s)
            assert 0 <= drops <= f.max_retries
        # At drop_prob=0.9 some message must lose at least one attempt.
        assert any(d > 0 for _, d in results)

    def test_message_penalty_respects_filters(self):
        inj = FaultInjector(PLAN)
        assert inj.message_penalty(1, 0, step=3, key=0) == (0.0, 0)  # src != 0
        assert inj.message_penalty(0, 1, step=0, key=0) == (0.0, 0)  # before start

    def test_crash_at(self):
        inj = FaultInjector(PLAN)
        assert inj.crash_at(2, 5).retries == 2
        assert inj.crash_at(2, 4) is None
        assert inj.crash_at(1, 5) is None

    def test_has_message_faults(self):
        assert FaultInjector(PLAN).has_message_faults
        assert not FaultInjector(FaultPlan()).has_message_faults


def _spec():
    return PICSpec(
        cells=32, n_particles=1200, steps=12,
        distribution=Distribution.UNIFORM,
    )


ALL_IMPLS = [
    pytest.param(lambda spec, res: Mpi2dPIC(spec, 4, resilience=res), id="mpi-2d"),
    pytest.param(
        lambda spec, res: Mpi2dLbPIC(
            spec, 4, lb_interval=3, border_width=1, resilience=res
        ),
        id="mpi-2d-LB",
    ),
    pytest.param(
        lambda spec, res: AmpiPIC(
            spec, 4, overdecomposition=2, lb_interval=4, resilience=res
        ),
        id="ampi",
    ),
]


def _config(n_ranks):
    return ResilienceConfig(
        plan=PLAN,
        watch=StragglerWatch(n_ranks),
        recovery=RecoveryPolicy(),
    )


class TestFaultedRuns:
    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_verification_passes_under_full_plan(self, make):
        spec = _spec()
        impl = make(spec, None)
        res = make(spec, _config(impl.n_ranks)).run()
        assert res.verification.ok, str(res.verification)

    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_faults_only_cost_simulated_time(self, make):
        spec = _spec()
        impl = make(spec, None)
        clean = make(spec, None).run()
        faulted = make(spec, _config(impl.n_ranks)).run()
        assert faulted.total_time > clean.total_time
        # Same particles end up in the same global population.
        assert faulted.verification.ok and clean.verification.ok

    @pytest.mark.parametrize("make", ALL_IMPLS)
    def test_faulted_runs_are_deterministic(self, make):
        spec = _spec()
        impl = make(spec, None)
        a = make(spec, _config(impl.n_ranks)).run()
        b = make(spec, _config(impl.n_ranks)).run()
        assert a.total_time == b.total_time
        assert a.rank_times == b.rank_times
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent
