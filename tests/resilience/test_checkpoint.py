"""Checkpoint files: format validation, scheduling, spec round-trip."""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.spec import (
    Distribution,
    InjectionEvent,
    PICSpec,
    Region,
    RemovalEvent,
)
from repro.parallel import Mpi2dPIC
from repro.resilience import (
    Checkpointer,
    ResilienceConfig,
    Snapshot,
    spec_from_dict,
    spec_to_dict,
)
from repro.resilience.checkpoint import CKPT_MAGIC
from repro.runtime.errors import CheckpointCorruptError


def _spec(steps=6):
    return PICSpec(
        cells=32, n_particles=600, steps=steps,
        distribution=Distribution.UNIFORM,
    )


@pytest.fixture()
def ckpt(tmp_path):
    """A real checkpoint written by a short mpi-2d run."""
    directory = str(tmp_path / "ckpts")
    cfg = ResilienceConfig(checkpointer=Checkpointer(directory, every=2))
    result = Mpi2dPIC(_spec(), 4, resilience=cfg).run()
    assert result.verification.ok
    files = sorted(os.listdir(directory))
    assert files == [
        "ckpt_step000002.ckpt", "ckpt_step000004.ckpt", "ckpt_step000006.ckpt"
    ]
    return os.path.join(directory, files[0])


class TestSnapshotLoad:
    def test_round_trip(self, ckpt):
        snap = Snapshot.load(ckpt)
        assert snap.next_step == 2
        assert snap.n_ranks == 4
        assert snap.meta["impl"] == "mpi-2d"
        assert spec_from_dict(snap.meta["spec"]) == _spec()
        assert len(snap.header["global"]["clocks"]) == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointCorruptError, match="cannot read"):
            Snapshot.load(str(tmp_path / "nope.ckpt"))

    def test_truncated(self, ckpt):
        raw = open(ckpt, "rb").read()
        with open(ckpt, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            Snapshot.load(ckpt)

    def test_bad_magic(self, ckpt):
        raw = bytearray(open(ckpt, "rb").read())
        raw[:4] = b"XXXX"
        open(ckpt, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="bad magic"):
            Snapshot.load(ckpt)

    def test_bad_version(self, ckpt):
        raw = bytearray(open(ckpt, "rb").read())
        struct.pack_into("<I", raw, len(CKPT_MAGIC), 99)
        open(ckpt, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="version 99"):
            Snapshot.load(ckpt)

    def test_flipped_payload_byte_fails_crc(self, ckpt):
        raw = bytearray(open(ckpt, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(ckpt, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            Snapshot.load(ckpt)

    def test_check_compatible(self, ckpt):
        snap = Snapshot.load(ckpt)
        snap.check_compatible("mpi-2d", 4, 4)  # no raise
        with pytest.raises(CheckpointCorruptError, match="impl"):
            snap.check_compatible("ampi", 4, 4)
        with pytest.raises(CheckpointCorruptError, match="geometry"):
            snap.check_compatible("mpi-2d", 8, 8)


class TestCheckpointer:
    def test_interval_schedule(self, tmp_path):
        ck = Checkpointer(str(tmp_path), every=3)
        assert [t for t in range(10) if ck.due(t)] == [2, 5, 8]

    def test_disabled_by_default(self, tmp_path):
        ck = Checkpointer(str(tmp_path))
        assert not any(ck.due(t) for t in range(10))

    def test_request_arms_one_snapshot(self, tmp_path):
        ck = Checkpointer(str(tmp_path), every=0)
        assert not ck.due(0)
        ck.request()
        assert ck.due(0) and ck.due(1)  # armed until a round completes

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            Checkpointer(str(tmp_path), every=-1)
        with pytest.raises(ValueError, match="bandwidth"):
            Checkpointer(str(tmp_path), bandwidth=0.0)

    def test_write_seconds_scale_with_bytes(self, tmp_path):
        ck = Checkpointer(str(tmp_path), bandwidth=1e6, fixed_s=1e-3)
        assert ck.write_seconds(0) == pytest.approx(1e-3)
        assert ck.write_seconds(10**6) == pytest.approx(1e-3 + 1.0)


class TestSpecRoundTrip:
    def test_plain(self):
        spec = _spec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_with_patch_and_events(self):
        spec = PICSpec(
            cells=32, n_particles=500, steps=8,
            distribution=Distribution.PATCH, patch=Region(4, 12, 4, 12),
            events=(
                InjectionEvent(step=2, region=Region(0, 8, 0, 8), count=50),
                RemovalEvent(step=5, region=Region(8, 16, 8, 16)),
            ),
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_json_compatible(self):
        import json

        doc = json.loads(json.dumps(spec_to_dict(_spec())))
        assert spec_from_dict(doc) == _spec()
