"""Checkpoint/restart is bitwise-exact on all three implementations.

Each implementation runs the full scenario twice: once uninterrupted (with
periodic checkpointing) and once restarted from the mid-run checkpoint in a
fresh process state.  Final particle positions, id checksums, simulated
clocks, the golden trace from the resumed step onward and even the *later
checkpoint files* must be byte-for-byte identical — under an active fault
plan and straggler watch, and under both the serial and the process-pool
executor backends.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.spec import Distribution, PICSpec
from repro.instrument import Tracer
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import (
    Checkpointer,
    CrashFault,
    FaultPlan,
    MessageFault,
    RecoveryPolicy,
    ResilienceConfig,
    SlowdownFault,
    Snapshot,
    StragglerWatch,
)
from repro.runtime.executor import make_executor
from tests.core.backend_conformance import requires_numba

SPEC = PICSpec(
    cells=32, n_particles=900, steps=12,
    distribution=Distribution.UNIFORM,
)
CORES = 4
EVERY = 4  # checkpoints after steps 3, 7, 11 -> files 000004/000008/000012
RESUME_FILE = "ckpt_step000004.ckpt"

PLAN = FaultPlan(
    seed=3,
    faults=(
        SlowdownFault(factor=2.5, core=1, start=2),
        MessageFault(delay_s=1e-4, drop_prob=0.2, src=0, start=1),
        CrashFault(rank=2, step=9, retries=2),
    ),
)


def _capturing(cls):
    class Capturing(cls):
        def __init__(self, *args, **kw):
            super().__init__(*args, **kw)
            self.final = {}

        def _verify(self, comm, state):
            self.final[comm.world_rank] = state.particles.copy()
            return (yield from super()._verify(comm, state))

    return Capturing


IMPLS = [
    pytest.param(_capturing(Mpi2dPIC), {}, id="mpi-2d"),
    pytest.param(
        _capturing(Mpi2dLbPIC),
        dict(lb_interval=3, border_width=1),
        id="mpi-2d-LB",
    ),
    pytest.param(
        _capturing(AmpiPIC),
        dict(overdecomposition=2, lb_interval=4),
        id="ampi",
    ),
]

EXECUTORS = [
    pytest.param(("serial", 0), id="serial"),
    pytest.param(("process", 2), id="process-2"),
]


def _run(cls, params, ckpt_dir, executor, *, resume=None, backend="python"):
    cfg = ResilienceConfig(
        plan=PLAN,
        watch=StragglerWatch(cls(SPEC, CORES, **params).n_ranks),
        checkpointer=Checkpointer(ckpt_dir, every=EVERY),
        recovery=RecoveryPolicy(),
        resume=resume,
    )
    ex = make_executor(executor[0], workers=executor[1], kernel_backend=backend)
    tracer = Tracer()
    impl = cls(SPEC, CORES, span_tracer=tracer, executor=ex,
               resilience=cfg, **params)
    try:
        result = impl.run()
    finally:
        ex.close()
    assert result.verification.ok, str(result.verification)
    return result, impl.final, tracer


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("cls,params", IMPLS)
def test_resume_is_bitwise_identical(cls, params, executor, tmp_path):
    full_dir = str(tmp_path / "full")
    resumed_dir = str(tmp_path / "resumed")

    full, full_final, full_tracer = _run(cls, params, full_dir, executor)

    snapshot = Snapshot.load(os.path.join(full_dir, RESUME_FILE))
    assert snapshot.next_step == EVERY
    resumed, res_final, res_tracer = _run(
        cls, params, resumed_dir, executor, resume=snapshot
    )

    # Simulated clocks: total and per rank.
    assert resumed.total_time == full.total_time
    assert resumed.rank_times == full.rank_times

    # Final particle state, bitwise, on every rank.
    assert set(res_final) == set(full_final)
    for rank, particles in full_final.items():
        got = res_final[rank]
        assert got.pack().tobytes() == particles.pack().tobytes(), (
            f"rank {rank} particle state diverged after resume"
        )

    # Golden trace from the resumed step onward (earlier spans belong to
    # the skipped prefix; resume re-plays setup at clock zero).
    cut = snapshot.next_step
    full_spans = [s for s in full_tracer.spans if s.step >= cut]
    res_spans = [s for s in res_tracer.spans if s.step >= cut]
    assert res_spans == full_spans
    full_inst = [e for e in full_tracer.instants if e.step >= cut]
    res_inst = [e for e in res_tracer.instants if e.step >= cut]
    assert res_inst == full_inst

    # The later checkpoints are re-taken on the same absolute schedule and
    # the files come out byte-identical.
    later = ["ckpt_step000008.ckpt", "ckpt_step000012.ckpt"]
    assert sorted(os.listdir(resumed_dir)) == later
    for name in later:
        a = open(os.path.join(full_dir, name), "rb").read()
        b = open(os.path.join(resumed_dir, name), "rb").read()
        assert a == b, f"{name} differs between uninterrupted and resumed run"


#: (checkpoint-writing backend, resuming backend).  The ``auto`` leg runs
#: everywhere and resolves to *either* concrete backend depending on the
#: host — which is exactly the claim: the choice cannot matter.
CROSS_BACKENDS = [
    pytest.param(("python", "auto"), id="python-to-auto"),
    pytest.param(
        ("compiled", "python"), id="compiled-to-python",
        marks=requires_numba,
    ),
    pytest.param(
        ("python", "compiled"), id="python-to-compiled",
        marks=requires_numba,
    ),
]


@pytest.mark.parametrize("pair", CROSS_BACKENDS)
@pytest.mark.parametrize("cls,params", IMPLS[:1])
def test_cross_backend_resume_is_bitwise_identical(cls, params, pair, tmp_path):
    """A checkpoint written under one kernel backend resumes bit-for-bit
    under the other — the concrete justification for excluding
    ``kernel_backend`` from ``spec_hash`` (checkpoints and cached results
    stay valid however they are later recomputed)."""
    write_backend, resume_backend = pair
    full_dir = str(tmp_path / "full")
    full, full_final, _ = _run(
        cls, params, full_dir, ("serial", 0), backend=write_backend
    )

    snapshot = Snapshot.load(os.path.join(full_dir, RESUME_FILE))
    resumed, res_final, _ = _run(
        cls, params, str(tmp_path / "resumed"), ("serial", 0),
        resume=snapshot, backend=resume_backend,
    )

    assert resumed.total_time == full.total_time
    assert resumed.rank_times == full.rank_times
    assert set(res_final) == set(full_final)
    for rank, particles in full_final.items():
        assert res_final[rank].pack().tobytes() == particles.pack().tobytes(), (
            f"rank {rank} diverged resuming {write_backend} -> {resume_backend}"
        )
    # Later checkpoints re-taken by the resumed run are byte-identical too.
    for name in ("ckpt_step000008.ckpt", "ckpt_step000012.ckpt"):
        a = open(os.path.join(full_dir, name), "rb").read()
        b = open(os.path.join(tmp_path / "resumed", name), "rb").read()
        assert a == b, f"{name} differs across backends"


def test_resume_from_each_checkpoint(tmp_path):
    """Any cut point works, not just the first (mpi-2d-LB, serial)."""
    cls = _capturing(Mpi2dLbPIC)
    params = dict(lb_interval=3, border_width=1)
    full_dir = str(tmp_path / "full")
    full, full_final, _ = _run(cls, params, full_dir, ("serial", 0))
    for name in ("ckpt_step000008.ckpt", "ckpt_step000012.ckpt"):
        snapshot = Snapshot.load(os.path.join(full_dir, name))
        resumed, res_final, _ = _run(
            cls, params, str(tmp_path / name), ("serial", 0), resume=snapshot
        )
        assert resumed.total_time == full.total_time
        for rank, particles in full_final.items():
            assert (
                res_final[rank].pack().tobytes() == particles.pack().tobytes()
            )
