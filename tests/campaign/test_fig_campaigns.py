"""The figure campaigns: declaration sync + numbers parity with the
legacy direct-run path.

Two invariants:

* the JSON files checked in under benchmarks/campaigns/ are exactly what
  ``repro.bench.campaigns`` generates (edit the builders, run
  ``python -m repro.bench.campaigns --write``);
* running a figure through the campaign engine produces the same numbers
  as calling :func:`repro.bench.runner.run_implementation` directly —
  the acceptance criterion for re-expressing the benches declaratively.
"""

import json
from pathlib import Path

import pytest

from repro.bench.campaigns import (
    CAMPAIGNS,
    _fig6_campaign,
    fig5_campaign,
    fig7_campaign,
    smoke_campaign,
)
from repro.bench.figures import _run_figure_campaign
from repro.bench.runner import run_implementation
from repro.bench.workloads import (
    FIG5_CORES,
    FIG7_PARTICLES_PER_CORE,
    fig6_workload,
    fig7_workload,
)

CAMPAIGN_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "campaigns"


class TestDeclarationSync:
    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_checked_in_json_matches_builder(self, name):
        path = CAMPAIGN_DIR / f"{name}.json"
        assert path.exists(), (
            f"{path} missing — run `python -m repro.bench.campaigns --write`"
        )
        assert json.loads(path.read_text()) == CAMPAIGNS[name]().to_dict(), (
            f"{path} is stale — run `python -m repro.bench.campaigns --write`"
        )

    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_every_campaign_expands_validated(self, name):
        points = CAMPAIGNS[name]().expand()
        assert points
        for p in points:
            assert p.spec.impl.name in ("mpi-2d", "mpi-2d-LB", "ampi")

    def test_expected_matrix_sizes(self):
        sizes = {name: len(CAMPAIGNS[name]().expand()) for name in CAMPAIGNS}
        assert sizes == {
            "fig5": 13,   # 7 F values + 6 d values
            "fig6l": 21,  # 7 core counts x 3 impls
            "fig6r": 15,  # 5 core counts x 3 impls
            "fig7": 12,   # 4 core counts x 3 impls (3072 filtered at run time)
            "smoke": 4,   # 2 core counts x 2 impls
        }


class TestNumbersParity:
    """Campaign path == legacy direct path, number for number."""

    def test_fig6_subset_matches_direct_runs(self):
        w = fig6_workload()
        camp = _fig6_campaign("parity", (1, 4))
        records = _run_figure_campaign("parity", camp, progress=lambda m: None)

        direct = []
        for cores in (1, 4):
            for impl, kwargs in (
                ("mpi-2d", {}),
                ("mpi-2d-LB", w.lb_params),
                ("ampi", w.ampi_params),
            ):
                direct.append(
                    run_implementation(
                        "parity", impl, w.spec_for(cores), cores,
                        w.machine, w.cost, **kwargs,
                    )
                )

        assert len(records) == len(direct) == 6
        for rec, ref in zip(records, direct):
            assert rec.implementation == ref.implementation
            assert rec.cores == ref.cores
            assert rec.sim_time == ref.sim_time
            assert rec.verified and ref.verified
            assert rec.max_particles_per_core == ref.max_particles_per_core
            assert rec.messages_sent == ref.messages_sent
            assert rec.bytes_sent == ref.bytes_sent

    def test_fig7_point_matches_direct_run(self):
        w = fig7_workload()
        cores = 48
        spec = w.spec_for(cores)
        ref = run_implementation(
            "parity", "mpi-2d", spec, cores, w.machine, w.cost
        )
        records = _run_figure_campaign(
            "parity", fig7_campaign(), progress=lambda m: None,
            select=lambda labels: labels["cores"] == cores
            and labels["impl"] == "mpi-2d",
        )
        assert len(records) == 1
        assert records[0].sim_time == ref.sim_time
        assert records[0].params["particles"] == FIG7_PARTICLES_PER_CORE * cores

    def test_fig5_labels_survive_into_records(self):
        camp = fig5_campaign()
        points = camp.expand()
        assert all(p.spec.impl.cores == FIG5_CORES for p in points)
        f_points = [p for p in points if p.labels["sweep"] == "F"]
        d_points = [p for p in points if p.labels["sweep"] == "d"]
        assert [p.labels["F"] for p in f_points] == [2, 4, 8, 16, 32, 64, 128]
        assert [p.labels["d"] for p in d_points] == [1, 2, 4, 8, 16, 32]
        assert all(
            p.spec.impl.lb_interval == p.labels["F"]
            and p.spec.impl.overdecomposition == p.labels["d"]
            for p in points
        )

    def test_smoke_campaign_runs_fast_and_caches(self, tmp_path):
        from repro.campaign import run_campaign

        camp = smoke_campaign()
        cache = str(tmp_path / "cache")
        first = run_campaign(camp, cache_dir=cache)
        assert first.executed == 4
        second = run_campaign(camp, cache_dir=cache)
        assert second.executed == 0 and second.cached == 4
