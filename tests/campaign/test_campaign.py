"""Tests for the campaign engine: expansion, caching, determinism."""

import json
import os

import pytest

from repro.campaign import CampaignSpec, artifact_path, run_campaign
from repro.config import ConfigError


def smoke_doc() -> dict:
    return {
        "schema": 1,
        "campaign": "unit",
        "base": {
            "workload": {"cells": 32, "n_particles": 300, "steps": 4},
            "impl": {"name": "mpi-2d", "cores": 2},
        },
        "axes": [
            {"axis": "cores", "path": "impl.cores", "values": [2, 4]},
            {
                "axis": "impl",
                "values": [
                    {"label": "mpi-2d", "set": {"impl.name": "mpi-2d"}},
                    {
                        "label": "mpi-2d-LB",
                        "set": {"impl.name": "mpi-2d-LB", "impl.lb_interval": 2},
                    },
                ],
            },
        ],
    }


class TestExpansion:
    def test_cartesian_product_first_axis_outermost(self):
        points = CampaignSpec.from_dict(smoke_doc()).expand()
        assert [(p.labels["cores"], p.labels["impl"]) for p in points] == [
            (2, "mpi-2d"), (2, "mpi-2d-LB"), (4, "mpi-2d"), (4, "mpi-2d-LB"),
        ]
        assert [p.spec.impl.cores for p in points] == [2, 2, 4, 4]

    def test_explicit_points(self):
        doc = smoke_doc()
        del doc["axes"]
        doc["points"] = [
            {"labels": {"n": 100}, "set": {"workload.n_particles": 100}},
            {"labels": {"n": 200}, "set": {"workload.n_particles": 200}},
        ]
        points = CampaignSpec.from_dict(doc).expand()
        assert [p.spec.workload.n_particles for p in points] == [100, 200]

    def test_axes_and_points_mutually_exclusive(self):
        doc = smoke_doc()
        doc["points"] = [{"labels": {}, "set": {}}]
        with pytest.raises(ConfigError, match="not both"):
            CampaignSpec.from_dict(doc)

    def test_typoed_override_path_fails_expansion_with_context(self):
        doc = smoke_doc()
        doc["axes"][0]["path"] = "impl.coress"
        with pytest.raises(ConfigError, match=r"point 0.*coress"):
            CampaignSpec.from_dict(doc).expand()

    def test_unknown_campaign_field_rejected(self):
        doc = smoke_doc()
        doc["extras"] = []
        with pytest.raises(ConfigError, match="extras"):
            CampaignSpec.from_dict(doc)

    def test_json_round_trip(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        path = str(tmp_path / "c.json")
        camp.save(path)
        assert CampaignSpec.load(path) == camp


class TestCaching:
    def _read_artifacts(self, cache_dir):
        return {
            name: open(os.path.join(cache_dir, name), "rb").read()
            for name in sorted(os.listdir(cache_dir))
            if not name.endswith("manifest.json")
        }

    def test_second_run_is_all_cache_hits_and_byte_identical(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")

        first = run_campaign(camp, cache_dir=cache)
        assert first.executed == 4 and first.cached == 0
        blobs = self._read_artifacts(cache)
        assert len(blobs) == 4

        second = run_campaign(camp, cache_dir=cache)
        assert second.executed == 0 and second.cached == 4
        assert self._read_artifacts(cache) == blobs
        assert [o.result for o in second.outcomes] == [
            o.result for o in first.outcomes
        ]

    def test_force_reexecutes_but_reproduces_bytes(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        run_campaign(camp, cache_dir=cache)
        blobs = self._read_artifacts(cache)
        forced = run_campaign(camp, cache_dir=cache, force=True)
        assert forced.executed == 4
        assert self._read_artifacts(cache) == blobs

    def test_parallel_jobs_match_serial(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        serial_cache = str(tmp_path / "serial")
        jobs_cache = str(tmp_path / "jobs")
        a = run_campaign(camp, cache_dir=serial_cache)
        b = run_campaign(camp, cache_dir=jobs_cache, jobs=2)
        assert [o.result for o in a.outcomes] == [o.result for o in b.outcomes]
        assert self._read_artifacts(serial_cache) == self._read_artifacts(jobs_cache)

    def test_corrupt_artifact_is_a_miss_not_an_error(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        first = run_campaign(camp, cache_dir=cache)
        victim = artifact_path(cache, first.outcomes[0].spec_hash)
        with open(victim, "w") as fh:
            fh.write("{not json")
        second = run_campaign(camp, cache_dir=cache)
        assert second.executed == 1 and second.cached == 3
        # and the re-execution healed the artifact
        assert json.load(open(victim))["spec_hash"] == first.outcomes[0].spec_hash

    def test_select_filters_by_labels(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        res = run_campaign(
            camp, cache_dir=str(tmp_path / "c"),
            select=lambda labels: labels["cores"] == 2,
        )
        assert len(res.outcomes) == 2
        assert all(o.labels["cores"] == 2 for o in res.outcomes)

    def test_cache_hits_across_spec_sparseness(self, tmp_path):
        """A fully-resolved declaration reuses the sparse run's cache."""
        from repro.config.build import canonical_runspec

        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        run_campaign(camp, cache_dir=cache)

        resolved_points = [
            {"labels": dict(p.labels),
             "set": {}}
            for p in camp.expand()
        ]
        doc = {
            "schema": 1,
            "campaign": "unit-resolved",
            "base": {"workload": {"cells": 32, "n_particles": 300, "steps": 4},
                     "impl": {"name": "mpi-2d"}},
            "points": [],
        }
        # Re-declare every point fully resolved through the driver.
        points = []
        for p in camp.expand():
            full = canonical_runspec(p.spec).to_dict()
            points.append({"labels": dict(p.labels),
                           "set": {"impl." + k: v for k, v in full["impl"].items()
                                   if v is not None and k != "dims"}})
        doc["points"] = points
        resolved = CampaignSpec.from_dict(doc)
        res = run_campaign(resolved, cache_dir=cache)
        assert res.executed == 0 and res.cached == 4

    def test_manifest_records_the_run(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        res = run_campaign(camp, cache_dir=cache)
        doc = json.load(open(res.manifest_path))
        assert doc["campaign"] == "unit"
        assert doc["executed"] == 4 and doc["cached"] == 0
        assert len(doc["points"]) == 4
        for point, outcome in zip(doc["points"], res.outcomes):
            assert point["spec_hash"] == outcome.spec_hash
            assert os.path.exists(os.path.join(cache, point["artifact"]))


class TestArtifacts:
    def test_artifact_contains_no_wall_clock(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        res = run_campaign(camp, cache_dir=cache)
        doc = json.load(open(artifact_path(cache, res.outcomes[0].spec_hash)))
        assert set(doc) == {"schema", "spec_hash", "spec", "result"}
        assert "wall" not in json.dumps(doc)

    def test_artifact_spec_matches_identity(self, tmp_path):
        from repro.config.build import canonical_runspec

        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        res = run_campaign(camp, cache_dir=cache)
        point = camp.expand()[0]
        doc = json.load(open(artifact_path(cache, res.outcomes[0].spec_hash)))
        assert doc["spec"] == canonical_runspec(point.spec).identity_dict()


class TestEnginesRunner:
    """The in-process EngineGroup campaign runner (``runner="engines"``)."""

    def _read_artifacts(self, cache_dir):
        return {
            name: open(os.path.join(cache_dir, name), "rb").read()
            for name in sorted(os.listdir(cache_dir))
            if not name.endswith("manifest.json")
        }

    def test_interleaved_artifacts_match_serial_bytes(self, tmp_path):
        """Serial run(), engines seed 1 and engines seed 2 must write
        byte-identical artifacts — the multirun-smoke CI gate in test form."""
        camp = CampaignSpec.from_dict(smoke_doc())
        baseline = run_campaign(camp, cache_dir=str(tmp_path / "serial"))
        blobs = self._read_artifacts(str(tmp_path / "serial"))
        for seed in (1, 2):
            res = run_campaign(
                camp, cache_dir=str(tmp_path / f"eng{seed}"),
                runner="engines", order_seed=seed,
            )
            assert res.executed == baseline.executed
            assert self._read_artifacts(str(tmp_path / f"eng{seed}")) == blobs
            assert [o.result for o in res.outcomes] == [
                o.result for o in baseline.outcomes
            ]

    def test_second_engines_run_is_all_cache_hits(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        cache = str(tmp_path / "cache")
        first = run_campaign(camp, cache_dir=cache, runner="engines")
        assert first.executed == 4 and first.cached == 0
        second = run_campaign(camp, cache_dir=cache, runner="engines")
        assert second.executed == 0 and second.cached == 4

    def test_serial_points_run_inline(self, tmp_path):
        """A campaign mixing serial and parallel points still completes:
        serial points have no engine and run inline."""
        doc = smoke_doc()
        del doc["axes"]
        doc["points"] = [
            {"labels": {"impl": "serial"}, "set": {"impl.name": "serial"}},
            {"labels": {"impl": "mpi-2d"}, "set": {"impl.name": "mpi-2d"}},
        ]
        camp = CampaignSpec.from_dict(doc)
        a = run_campaign(camp, cache_dir=str(tmp_path / "a"))
        b = run_campaign(camp, cache_dir=str(tmp_path / "b"), runner="engines")
        assert [o.result for o in a.outcomes] == [o.result for o in b.outcomes]
        assert self._read_artifacts(str(tmp_path / "a")) == self._read_artifacts(
            str(tmp_path / "b")
        )

    def test_unknown_runner_rejected(self, tmp_path):
        camp = CampaignSpec.from_dict(smoke_doc())
        with pytest.raises(ValueError, match="unknown campaign runner"):
            run_campaign(camp, cache_dir=str(tmp_path / "c"), runner="threads")
