"""Tests for the work-stealing campaign fabric.

Covers the PR-8 behaviours on top of tests/campaign/test_campaign.py
(which pins expansion, caching, and fabric-vs-serial determinism):

* longest-expected-first scheduling order from the cost model;
* the single-scan cache index;
* spec_hash dedupe before dispatch;
* crash + requeue: a worker killed mid-sweep costs one re-execution,
  the fault lands in the manifest in the resilience vocabulary, and the
  re-run completes 100% from cache;
* the streamed (partial) manifest is valid and resumable;
* per-worker warm-executor accounting (startup paid once per worker,
  not once per point).
"""

import json
import os

import pytest

from repro.campaign import (
    CacheIndex,
    CampaignSpec,
    FabricConfig,
    WorkerLostError,
    artifact_path,
    run_campaign,
)
from repro.campaign.fabric import CRASH_ENV, schedule_order
from repro.campaign.runner import CampaignResult, PointOutcome, _write_manifest
from repro.config.runspec import RunSpec


def sweep_doc(values, campaign="fabric-unit", executor=None):
    base = {
        "workload": {"cells": 32, "n_particles": 200, "steps": 2},
        "impl": {"name": "mpi-2d", "cores": 2},
    }
    if executor is not None:
        base["executor"] = executor
    return {
        "schema": 1,
        "campaign": campaign,
        "base": base,
        "axes": [
            {"axis": "n", "path": "workload.n_particles", "values": list(values)}
        ],
    }


def load_manifest(cache, name):
    with open(os.path.join(cache, f"{name}.manifest.json")) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Scheduling order
# ----------------------------------------------------------------------
class TestScheduleOrder:
    def _specs(self, ns):
        points = CampaignSpec.from_dict(sweep_doc(ns)).expand()
        return [(p.index, p.spec) for p in points]

    def test_longest_expected_first(self):
        # Predicted work is n_particles * steps; the heavy point goes
        # first no matter where expansion put it.
        order = schedule_order(self._specs([100, 4000, 50, 900]))
        assert order == [1, 3, 0, 2]

    def test_ties_break_by_expansion_index(self):
        order = schedule_order(self._specs([300, 300, 300]))
        assert order == [0, 1, 2]

    def test_empty(self):
        assert schedule_order([]) == []


# ----------------------------------------------------------------------
# Cache index
# ----------------------------------------------------------------------
class TestCacheIndex:
    def test_missing_directory_is_empty(self, tmp_path):
        idx = CacheIndex(str(tmp_path / "nope"))
        assert len(idx) == 0
        assert "deadbeef" not in idx
        assert idx.lookup("deadbeef") is None

    def test_single_scan_excludes_manifests(self, tmp_path):
        (tmp_path / "aaaa.json").write_text("{}")
        (tmp_path / "bbbb.json").write_text("{}")
        (tmp_path / "sweep.manifest.json").write_text("{}")
        (tmp_path / "junk.txt").write_text("")
        idx = CacheIndex(str(tmp_path))
        assert len(idx) == 2
        assert "aaaa" in idx and "bbbb" in idx
        assert "sweep.manifest" not in idx
        assert "sweep" not in idx

    def test_miss_answered_from_memory(self, tmp_path, monkeypatch):
        idx = CacheIndex(str(tmp_path))

        def boom(*a, **k):  # a miss must not open anything
            raise AssertionError("index miss hit the filesystem")

        monkeypatch.setattr("repro.campaign.runner._read_artifact", boom)
        assert idx.lookup("deadbeef") is None

    def test_add_keeps_index_current(self, tmp_path):
        idx = CacheIndex(str(tmp_path))
        assert "cafe" not in idx
        idx.add("cafe")
        assert "cafe" in idx

    def test_lookup_round_trips_real_artifact(self, tmp_path):
        doc = sweep_doc([123], campaign="idx")
        run_campaign(
            CampaignSpec.from_dict(doc), cache_dir=str(tmp_path), jobs=1
        )
        manifest = load_manifest(str(tmp_path), "idx")
        h = manifest["points"][0]["spec_hash"]
        idx = CacheIndex(str(tmp_path))
        assert h in idx
        assert idx.lookup(h) is not None


# ----------------------------------------------------------------------
# Dedupe before dispatch
# ----------------------------------------------------------------------
class TestDedupe:
    def test_duplicate_points_execute_once(self, tmp_path):
        doc = sweep_doc([200, 300, 200, 300, 400], campaign="dupes")
        res = run_campaign(
            CampaignSpec.from_dict(doc), cache_dir=str(tmp_path), jobs=1
        )
        assert res.executed == 3
        assert res.deduped == 2
        by_index = {o.index: o for o in res.outcomes}
        assert by_index[2].duplicate_of == 0
        assert by_index[3].duplicate_of == 1
        assert by_index[2].cached and by_index[3].cached
        # Duplicates share the representative's artifact byte for byte.
        assert by_index[2].spec_hash == by_index[0].spec_hash
        assert by_index[2].result == by_index[0].result

    def test_manifest_records_duplicates(self, tmp_path):
        doc = sweep_doc([200, 200], campaign="dupes2")
        run_campaign(
            CampaignSpec.from_dict(doc), cache_dir=str(tmp_path), jobs=2
        )
        manifest = load_manifest(str(tmp_path), "dupes2")
        assert manifest["deduped"] == 1
        assert manifest["executed"] == 1
        points = {p["index"]: p for p in manifest["points"]}
        assert "duplicate_of" not in points[0]
        assert points[1]["duplicate_of"] == 0


# ----------------------------------------------------------------------
# Crash, requeue, resume
# ----------------------------------------------------------------------
class TestCrashRequeue:
    def test_killed_worker_requeues_and_sweep_completes(
        self, tmp_path, monkeypatch
    ):
        # Worker 1 exits hard on receiving its first task — after the
        # parent dispatched it, before any result.  The fabric must
        # requeue that point, respawn a replacement, and finish.
        monkeypatch.setenv(CRASH_ENV, "1:0")
        doc = sweep_doc([200, 300, 400, 500, 600], campaign="crashy")
        spec = CampaignSpec.from_dict(doc)
        res = run_campaign(spec, cache_dir=str(tmp_path), jobs=2)
        assert res.executed == 5 and res.cached == 0

        manifest = load_manifest(str(tmp_path), "crashy")
        assert manifest["complete"] is True
        fabric = manifest["fabric"]
        assert fabric["requeues"] >= 1
        assert any(f["fault"] == "crash" for f in fabric["faults"])
        lost = [w for w in fabric["workers"] if w["lost"]]
        assert len(lost) >= 1
        # A replacement worker was spawned beyond the original fleet.
        assert len(fabric["workers"]) > 2

        # Every artifact must exist despite the crash.
        for p in manifest["points"]:
            assert os.path.exists(artifact_path(str(tmp_path), p["spec_hash"]))

        # The re-run (no chaos) completes 100% from cache.
        monkeypatch.delenv(CRASH_ENV)
        res2 = run_campaign(spec, cache_dir=str(tmp_path), jobs=2)
        assert res2.executed == 0
        assert res2.cached == 5

    def test_poison_point_raises_worker_lost(self, tmp_path, monkeypatch):
        # With max_retries=0 a single worker death is already fatal and
        # names the point, instead of looping on a poison point forever.
        monkeypatch.setenv(CRASH_ENV, "0:0")
        doc = sweep_doc([200, 300], campaign="poison")
        cfg = FabricConfig(jobs=2, max_retries=0)
        with pytest.raises(WorkerLostError) as err:
            run_campaign(
                CampaignSpec.from_dict(doc), cache_dir=str(tmp_path),
                jobs=2, fabric=cfg,
            )
        assert err.value.attempts == 1


# ----------------------------------------------------------------------
# Streamed manifest
# ----------------------------------------------------------------------
class TestStreamedManifest:
    def test_partial_manifest_is_valid_and_marked_incomplete(self, tmp_path):
        spec = CampaignSpec.from_dict(sweep_doc([200, 300, 400], "part"))
        partial = CampaignResult(
            name="part",
            outcomes=[
                PointOutcome(
                    index=0, labels={"n": 200}, spec_hash="abc123",
                    result={"sim_time_s": 1.0}, cached=False, wall_s=0.5,
                )
            ],
        )
        path = _write_manifest(spec, partial, str(tmp_path), complete=False)
        doc = json.loads(open(path).read())
        assert doc["complete"] is False
        assert [p["index"] for p in doc["points"]] == [0]
        assert doc["executed"] == 1

    def test_fabric_run_streams_then_finalizes(self, tmp_path):
        # io_batch=1 flushes the manifest after every point; the final
        # manifest must still be the complete, expansion-ordered one.
        doc = sweep_doc([200, 300, 400], campaign="stream")
        cfg = FabricConfig(jobs=2, io_batch=1)
        run_campaign(
            CampaignSpec.from_dict(doc), cache_dir=str(tmp_path),
            jobs=2, fabric=cfg,
        )
        manifest = load_manifest(str(tmp_path), "stream")
        assert manifest["complete"] is True
        assert [p["index"] for p in manifest["points"]] == [0, 1, 2]


# ----------------------------------------------------------------------
# Warm-worker accounting
# ----------------------------------------------------------------------
class TestWarmWorkers:
    def test_startup_paid_once_per_worker_not_per_point(self, tmp_path):
        # Four process-executor points over two workers: each worker
        # builds its warm executor once and reuses it, so pool_startup_s
        # has exactly one entry per worker even with points > workers.
        doc = sweep_doc(
            [200, 300, 400, 500], campaign="warm",
            executor={"kind": "process", "workers": 1},
        )
        res = run_campaign(
            CampaignSpec.from_dict(doc), cache_dir=str(tmp_path), jobs=2
        )
        assert res.executed == 4
        workers = res.fabric["workers"]
        served = [w for w in workers if w["points"]]
        assert sum(w["points"] for w in workers) == 4
        for w in served:
            assert len(w["pool_startup_s"]) == 1
            assert w["jit_warmup_s"] >= 0.0
        # and the same accounting is persisted in the manifest
        manifest = load_manifest(str(tmp_path), "warm")
        assert manifest["fabric"]["workers"] == workers

    def test_pool_runner_still_available_and_matches(self, tmp_path):
        doc = sweep_doc([200, 300], campaign="runners")
        spec = CampaignSpec.from_dict(doc)
        a = run_campaign(
            spec, cache_dir=str(tmp_path / "fabric"), jobs=2, runner="fabric"
        )
        b = run_campaign(
            spec, cache_dir=str(tmp_path / "pool"), jobs=2, runner="pool"
        )
        assert a.fabric is not None and b.fabric is None
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.spec_hash == ob.spec_hash
            pa = artifact_path(str(tmp_path / "fabric"), oa.spec_hash)
            pb = artifact_path(str(tmp_path / "pool"), ob.spec_hash)
            assert open(pa, "rb").read() == open(pb, "rb").read()

    def test_unknown_runner_rejected(self, tmp_path):
        spec = CampaignSpec.from_dict(sweep_doc([200]))
        with pytest.raises(ValueError, match="unknown campaign runner"):
            run_campaign(spec, cache_dir=str(tmp_path), runner="threads")
