"""Property-based tests (hypothesis) on the core invariants.

These encode the guarantees the paper's design rests on:

* any valid spec self-verifies after a serial run (the §III-C/D contract);
* the verification *detects* any corruption (sensitivity);
* parallel runs are bitwise equivalent to serial ones;
* apportionment, partitions and load-balancing strategies keep their
  structural invariants for arbitrary inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ampi.loadbalancer import GreedyLB, GreedyTransferLB, RefineLB
from repro.core.initialization import initialize, integer_counts
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.simulation import run_serial
from repro.core.spec import Distribution, PICSpec
from repro.core.verification import position_errors
from repro.decomp.partition import BlockPartition, even_splits
from repro.parallel import Mpi2dPIC
from repro.parallel.diffusion import diffuse_splits
from repro.runtime.machine import MachineModel


# ----------------------------------------------------------------------
# Spec strategies
# ----------------------------------------------------------------------
def spec_strategy():
    return st.builds(
        PICSpec,
        cells=st.integers(4, 32).map(lambda c: c * 2),
        n_particles=st.integers(0, 300),
        steps=st.integers(1, 15),
        k=st.integers(0, 2),
        m_vertical=st.integers(0, 2),
        distribution=st.sampled_from(
            [Distribution.GEOMETRIC, Distribution.SINUSOIDAL, Distribution.UNIFORM]
        ),
        r=st.floats(0.5, 1.5, allow_nan=False),
        seed=st.integers(0, 2**16),
    )


class TestSerialSelfVerification:
    @settings(max_examples=30, deadline=None)
    @given(spec=spec_strategy())
    def test_any_valid_spec_verifies(self, spec):
        result = run_serial(spec)
        assert result.verification.ok, str(result.verification)

    @settings(max_examples=15, deadline=None)
    @given(
        spec=spec_strategy().filter(lambda s: s.n_particles > 0),
        victim=st.integers(0, 10**6),
        dx=st.floats(0.01, 0.49, allow_nan=False),
    )
    def test_verification_detects_any_position_corruption(self, spec, victim, dx):
        """Corrupting a single particle by a sub-cell offset is detected."""
        result = run_serial(spec)
        mesh = Mesh(spec.cells, spec.h, spec.q)
        p = result.particles
        idx = victim % len(p)
        p.x[idx] = (p.x[idx] + dx * spec.h) % mesh.L
        errors = position_errors(mesh, p, spec.steps)
        assert errors[idx] > 1e-5

    @settings(max_examples=15, deadline=None)
    @given(
        spec=spec_strategy().filter(lambda s: s.n_particles > 1),
        victim=st.integers(0, 10**6),
    )
    def test_checksum_detects_any_lost_particle(self, spec, victim):
        result = run_serial(spec)
        p = result.particles
        idx = victim % len(p)
        survivors = p.select(np.arange(len(p)) != idx)
        assert survivors.id_checksum() != result.verification.expected_checksum


class TestParallelEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        spec=spec_strategy().filter(lambda s: 0 < s.n_particles),
        cores=st.sampled_from([2, 3, 4, 6]),
    )
    def test_parallel_positions_bitwise_match_serial(self, spec, cores):
        serial = run_serial(spec)
        par = Mpi2dPIC(spec, cores).run()
        assert par.verification.ok
        assert par.verification.n_particles == len(serial.particles)
        assert par.verification.id_checksum == serial.particles.id_checksum()


class TestApportionment:
    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50).filter(
            lambda w: sum(w) > 0
        ),
        n=st.integers(0, 10_000),
    )
    def test_integer_counts_sum_exactly(self, weights, n):
        counts = integer_counts(np.array(weights), n)
        assert counts.sum() == n
        assert np.all(counts >= 0)

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=50),
        n=st.integers(1, 10_000),
    )
    def test_integer_counts_within_one_of_ideal(self, weights, n):
        w = np.array(weights)
        counts = integer_counts(w, n)
        ideal = w / w.sum() * n
        assert np.all(np.abs(counts - ideal) < 1.0 + 1e-9)


class TestPartitionInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        cells=st.integers(4, 200),
        px=st.integers(1, 16),
        py=st.integers(1, 16),
    )
    def test_uniform_partition_covers_domain(self, cells, px, py):
        if px > cells or py > cells:
            return
        part = BlockPartition.uniform(cells, px, py)
        cols = np.arange(cells)
        owners = part.x_owner(cols)
        assert owners.min() == 0 and owners.max() == px - 1
        assert np.all(np.diff(owners) >= 0)  # contiguous blocks
        widths = np.bincount(owners, minlength=px)
        assert widths.max() - widths.min() <= 1

    @settings(max_examples=50, deadline=None)
    @given(
        cells=st.integers(8, 100),
        parts=st.integers(1, 8),
        loads=st.lists(st.floats(0, 1000), min_size=1, max_size=8),
        width=st.integers(1, 5),
        threshold=st.floats(0, 100),
    )
    def test_diffusion_preserves_partition_invariants(
        self, cells, parts, loads, width, threshold
    ):
        parts = min(parts, len(loads), cells)
        loads = np.array(loads[:parts])
        splits = even_splits(cells, parts)
        new = diffuse_splits(loads, splits, threshold, width)
        assert new[0] == 0 and new[-1] == cells
        assert np.all(np.diff(new) >= 1)  # no empty blocks, monotone


class TestLoadBalancerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        loads=st.lists(st.floats(0, 100), min_size=1, max_size=64),
        n_cores=st.integers(1, 8),
        seed=st.integers(0, 1000),
        strategy=st.sampled_from([GreedyLB(), GreedyTransferLB(), RefineLB()]),
    )
    def test_rebalance_valid_and_not_worse(self, loads, n_cores, seed, strategy):
        rng = np.random.default_rng(seed)
        mapping = rng.integers(0, n_cores, size=len(loads)).tolist()
        new = strategy.rebalance(loads, mapping, n_cores)
        assert len(new) == len(loads)
        assert all(0 <= c < n_cores for c in new)

        def peak(m):
            out = [0.0] * n_cores
            for vp, core in enumerate(m):
                out[core] += loads[vp]
            return max(out)

        assert peak(new) <= peak(mapping) + 1e-9


class TestPackingRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(0, 50),
        seed=st.integers(0, 2**16),
    )
    def test_pack_roundtrip_bitwise(self, n, seed):
        rng = np.random.default_rng(seed)
        p = ParticleArray.empty(n)
        for name in ("x", "y", "vx", "vy", "q", "x0", "y0"):
            getattr(p, name)[:] = rng.uniform(-1e6, 1e6, size=n)
        for name in ("pid", "kdisp", "mdisp", "birth"):
            getattr(p, name)[:] = rng.integers(-(2**40), 2**40, size=n)
        q = ParticleArray.from_packed(p.pack())
        for name in ("x", "y", "vx", "vy", "q", "x0", "y0", "pid", "kdisp", "mdisp", "birth"):
            np.testing.assert_array_equal(getattr(p, name), getattr(q, name))


class TestMachineInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(0, 500),
        b=st.integers(0, 500),
        cps=st.integers(1, 16),
        spn=st.integers(1, 4),
    )
    def test_tier_symmetric_and_monotone_costs(self, a, b, cps, spn):
        m = MachineModel(cores_per_socket=cps, sockets_per_node=spn)
        assert m.tier_between(a, b) is m.tier_between(b, a)
        n = 4096
        t = m.transfer_time(a, b, n)
        assert t >= m.costs(m.tier_between(a, b)).latency


class TestInitializationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(spec=spec_strategy())
    def test_initial_population_structure(self, spec):
        mesh = Mesh(spec.cells, spec.h, spec.q)
        p = initialize(spec, mesh)
        assert len(p) == spec.n_particles
        if len(p):
            # All on cell centres, ids 1..n, charges sign-matched to column.
            assert np.all((p.x / spec.h - np.floor(p.x / spec.h)) == 0.5)
            assert sorted(p.pid.tolist()) == list(range(1, spec.n_particles + 1))
            signs = np.where(p.cell_columns(mesh) % 2 == 0, 1.0, -1.0)
            assert np.all(np.sign(p.q) == signs)
