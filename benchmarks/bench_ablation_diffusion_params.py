"""Ablation: co-tuning the diffusion parameters (frequency, width, tau).

The paper (§IV-B): the LB frequency, threshold tau and border width "have
interfering results on the effectiveness of the overall strategy and
therefore should be co-tuned".  For the drifting geometric cloud, the
governing quantity is the *boundary tracking speed* ``w / F`` (border
columns moved per step) versus the cloud's drift speed (``2k+1`` cells per
step): configurations that can track the cloud dominate those that cannot,
regardless of how the same ratio is split between w and F.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import write_report
from repro.bench.reporting import format_table
from repro.bench.runner import run_implementation
from repro.bench.workloads import fig6_workload

CORES = 24
#: (lb_interval F, border_width w) points: tracking ratio w/F from 0.1 to 2.
PARAM_GRID = [(10, 1), (5, 2), (2, 2), (1, 1), (2, 4), (1, 2)]
THRESHOLDS = (0.02, 0.3)


def run_param_ablation(progress=lambda s: None):
    w = fig6_workload()
    spec = w.spec_for(CORES).scaled(step_factor=0.6)
    records = []
    base = run_implementation(
        "ablation-params", "mpi-2d", spec, CORES, w.machine, w.cost
    )
    base.params.update(F="-", w="-", tau="-", tracking="-")
    records.append(base)
    for f_value, width in PARAM_GRID:
        rec = run_implementation(
            "ablation-params", "mpi-2d-LB", spec, CORES, w.machine, w.cost,
            lb_interval=f_value, border_width=width, threshold_fraction=0.02,
        )
        rec.params.update(
            F=f_value, w=width, tau=0.02, tracking=round(width / f_value, 2)
        )
        records.append(rec)
        progress(f"F={f_value} w={width}: {rec.sim_time:.4f}s")
    for tau in THRESHOLDS:
        rec = run_implementation(
            "ablation-params", "mpi-2d-LB", spec, CORES, w.machine, w.cost,
            lb_interval=2, border_width=3, threshold_fraction=tau,
        )
        rec.params.update(F=2, w=3, tau=tau, tracking=1.5)
        records.append(rec)
        progress(f"tau={tau}: {rec.sim_time:.4f}s")
    return records


def test_ablation_diffusion_params(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_param_ablation(quiet_progress))
    write_report(
        "ablation_diffusion_params",
        "Ablation: diffusion LB parameter co-tuning (F, w, tau)\n\n"
        + format_table(records, extra_cols=("F", "w", "tau", "tracking")),
        results_dir,
    )
    assert all(r.verified for r in records)

    base_time = records[0].sim_time
    lb = [r for r in records if r.implementation == "mpi-2d-LB" and r.params["tau"] == 0.02]
    tracking = [r for r in lb if float(r.params["tracking"]) >= 1.0]
    lagging = [r for r in lb if float(r.params["tracking"]) < 0.5]

    # Configurations that track the cloud beat the baseline...
    assert all(r.sim_time < base_time for r in tracking)
    # ...and beat every configuration that cannot keep up.
    assert max(r.sim_time for r in tracking) < min(r.sim_time for r in lagging)

    # A too-coarse threshold suppresses balancing: behaves like the baseline.
    coarse = [r for r in records if r.params.get("tau") == 0.3]
    fine = [r for r in records if r.params.get("tau") == 0.02 and r.params.get("F") == 2 and r.params.get("w") == 3]
    assert coarse[0].sim_time > fine[0].sim_time
