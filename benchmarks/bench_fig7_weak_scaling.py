"""Figure 7: weak scaling — particles grow with cores, grid fixed.

Shapes from the paper: both load-balanced implementations significantly
outperform the baseline at scale (paper: 2.4x for ampi and 1.8x for
mpi-2d-LB at 3,072 cores), the two stay comparable, and ampi edges out
mpi-2d-LB at the largest scale — migrating subgrids gets relatively cheaper
as per-core subdomains shrink while particle counts grow.

Set ``REPRO_FULL=1`` to extend the sweep to the paper's 3,072-core point
(slow in pure Python).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import report_fig7, run_fig7, write_report


def test_fig7_weak_scaling(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_fig7(quiet_progress))
    write_report("fig7", report_fig7(records), results_dir)

    assert all(r.verified for r in records)
    by = {(r.implementation, r.cores): r for r in records}
    top = max(r.cores for r in records)

    base_top = by[("mpi-2d", top)].sim_time
    lb_top = by[("mpi-2d-LB", top)].sim_time
    ampi_top = by[("ampi", top)].sim_time

    # Both balanced implementations clearly beat the baseline at scale —
    # the figure's primary result (paper: ampi 2.4x, LB 1.8x at 3072).
    benchmark.extra_info["ampi_gain_top"] = round(base_top / ampi_top, 2)
    benchmark.extra_info["lb_gain_top"] = round(base_top / lb_top, 2)
    assert base_top / ampi_top > 1.3
    assert base_top / lb_top > 1.25

    # AMPI and LB stay comparable.  The paper's secondary observation —
    # ampi *overtaking* LB at the very top — did not reproduce: our
    # diffusion implementation is effectively better tuned than the
    # paper's, and the scaled presets weigh AMPI's per-invocation
    # migration cost more heavily (see EXPERIMENTS.md, deviations).
    assert ampi_top < 1.35 * lb_top

    # Weak scaling sanity: the baseline's time grows with scale (imbalance
    # deepens), while the balanced versions grow much more slowly.
    base_first = by[("mpi-2d", min(r.cores for r in records))].sim_time
    assert base_top > base_first
