"""Figure 6 (left): strong scaling on a single node, 1-24 cores.

Regenerates the series of the paper's Fig. 6 left and checks its shape:
within one socket (<= 12 cores) the three implementations are comparable;
using both sockets (24 cores), mpi-2d-LB > ampi > mpi-2d (paper: 1.6x and
1.3x over the baseline).  Also reproduces the §V-B max-particles-per-core
comparison (baseline 62,645 vs LB 30,585 vs ideal 25,000 at 24 cores —
ratios ~2.5 / ~1.2 over ideal).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import report_fig6, run_fig6_single_node, write_report


def _by_impl(records, cores):
    return {
        r.implementation: r for r in records if r.cores == cores
    }


def test_fig6_strong_scaling_single_node(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_fig6_single_node(quiet_progress))
    report = report_fig6(records, "left: single node")
    write_report("fig6_left", report, results_dir)

    assert all(r.verified for r in records)
    benchmark.extra_info["points"] = len(records)

    # Shape 1: one socket — AMPI and diffusion-LB close together (the
    # paper: "performance on up to 12 cores is almost identical"; VP
    # migration is cheap within a socket and locality-agnostic decisions
    # are not penalized much).
    for cores in (1, 4, 8, 12):
        at = _by_impl(records, cores)
        ratio = at["ampi"].sim_time / at["mpi-2d-LB"].sim_time
        assert ratio < 1.45, (cores, ratio)
        # The baseline never beats the balanced implementations.
        assert at["mpi-2d"].sim_time >= 0.95 * at["mpi-2d-LB"].sim_time

    # Shape 2: both sockets — LB wins, AMPI second, baseline last.
    at24 = _by_impl(records, 24)
    base, lb, ampi = at24["mpi-2d"], at24["mpi-2d-LB"], at24["ampi"]
    assert lb.sim_time < ampi.sim_time < base.sim_time
    lb_gain = base.sim_time / lb.sim_time
    ampi_gain = base.sim_time / ampi.sim_time
    benchmark.extra_info["lb_gain_24"] = round(lb_gain, 2)
    benchmark.extra_info["ampi_gain_24"] = round(ampi_gain, 2)
    # Paper: 1.6x and 1.3x.  Accept the same ordering within loose bands.
    assert 1.25 < lb_gain < 2.5
    assert 1.1 < ampi_gain < 2.0

    # Shape 3 (§V-B text): max particles per core at 24 cores.
    ideal = base.ideal_particles_per_core
    assert base.max_particles_per_core > 1.8 * ideal      # paper: 2.5x
    assert lb.max_particles_per_core < 1.6 * ideal        # paper: 1.22x
    assert lb.max_particles_per_core < 0.7 * base.max_particles_per_core
