"""Ablation: abrupt particle injection (§III-E5) stresses adaptivity.

A uniform workload is perfectly balanced for the static decomposition —
until an injection event dumps a dense particle patch into one corner.
The paper designed injection/removal precisely "to stress adaptiveness of
the load balancing strategy, because injections/removals adjust abruptly
the local amount of work".

Shapes: before the event everything is balanced (LB ~ baseline); after it,
the diffusion-balanced and AMPI implementations recover while the static
baseline stays imbalanced for the rest of the run.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import write_report
from repro.bench.reporting import format_table
from repro.bench.runner import run_implementation
from repro.bench.workloads import fig6_workload
from repro.core.spec import Distribution, InjectionEvent, Region

CORES = 24
STEPS = 150
INJECT_STEP = 30


def make_spec(w):
    from dataclasses import replace

    spec = w.spec_for(CORES)
    cells = spec.cells
    patch = Region(0, cells // 6, 0, cells // 6)
    return replace(
        spec,
        distribution=Distribution.UNIFORM,
        steps=STEPS,
        events=(
            InjectionEvent(
                step=INJECT_STEP, region=patch, count=2 * spec.n_particles
            ),
        ),
    )


def run_injection_ablation(progress=lambda s: None):
    w = fig6_workload()
    spec = make_spec(w)
    records = []
    for impl, kwargs in (
        ("mpi-2d", {}),
        ("mpi-2d-LB", w.lb_params),
        ("ampi", w.ampi_params),
    ):
        rec = run_implementation(
            "ablation-injection", impl, spec, CORES, w.machine, w.cost, **kwargs
        )
        records.append(rec)
        progress(f"{impl}: {rec.sim_time:.4f}s max_ppc={rec.max_particles_per_core}")
    return records


def test_ablation_injection_adaptivity(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_injection_ablation(quiet_progress))
    write_report(
        "ablation_injection",
        "Ablation: injection burst into a corner patch (uniform background)\n\n"
        + format_table(records),
        results_dir,
    )
    assert all(r.verified for r in records)
    t = {r.implementation: r for r in records}

    # The balanced implementations absorb the shock better than the static
    # baseline, in both time and final imbalance.
    assert t["mpi-2d-LB"].sim_time < t["mpi-2d"].sim_time
    assert t["ampi"].sim_time < t["mpi-2d"].sim_time
    assert (
        t["mpi-2d-LB"].max_particles_per_core
        < t["mpi-2d"].max_particles_per_core
    )
