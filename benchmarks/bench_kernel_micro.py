"""Micro-benchmarks of the computational kernel and runtime hot paths.

These measure *real* wall time (unlike the figure benches, whose scientific
output is simulated time): particle-push throughput, exchange packing, and
scheduler op dispatch — the quantities that bound the harness's capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initialization import initialize
from repro.core.kernel import advance
from repro.core.mesh import Mesh
from repro.core.spec import Distribution, PICSpec
from repro.runtime import SUM, run_spmd


@pytest.mark.parametrize("n", [1_000, 100_000])
def test_kernel_push_throughput(benchmark, n):
    spec = PICSpec(
        cells=256, n_particles=n, steps=1, distribution=Distribution.UNIFORM
    )
    mesh = Mesh(spec.cells)
    particles = initialize(spec, mesh)

    def push():
        advance(mesh, particles, spec.dt)

    benchmark(push)
    benchmark.extra_info["particles"] = n


def test_particle_pack_roundtrip(benchmark):
    spec = PICSpec(
        cells=256, n_particles=50_000, steps=1, distribution=Distribution.UNIFORM
    )
    mesh = Mesh(spec.cells)
    particles = initialize(spec, mesh)
    mask = particles.x < 128.0

    def roundtrip():
        buf = particles.pack(mask)
        return type(particles).from_packed(buf)

    benchmark(roundtrip)


def test_scheduler_op_dispatch_rate(benchmark):
    """Sendrecv ping-pong: measures per-op harness overhead."""

    def prog(comm):
        partner = 1 - comm.rank
        payload = np.zeros(16)
        for _ in range(500):
            yield comm.sendrecv(payload, dst=partner, src=partner)
        return None

    def run():
        return run_spmd(2, prog)

    benchmark(run)


def test_allreduce_rate(benchmark):
    def prog(comm):
        total = 0
        for _ in range(200):
            total = yield comm.allreduce(1, op=SUM)
        return total

    def run():
        return run_spmd(8, prog)

    result = benchmark(run)
    assert result.returns[0] == 8
