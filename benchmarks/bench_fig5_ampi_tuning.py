"""Figure 5: sensitivity of the AMPI implementation to its tunables.

Two sweeps at fixed core count (paper: 192 cores, 6.4M particles; scaled
preset in repro.bench.workloads): the interval F between load-balancer
invocations (at fixed over-decomposition d), and d (at fixed F).

Shapes from the paper: very frequent LB (small F) is several times slower
than the sweet spot (paper: 4.2x between F=20 and F=160); no
over-decomposition leaves performance on the table relative to the best d
(paper: 2.2x between d=1 and d=16); both curves are U-ish — the parameters
must be co-tuned.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import report_fig5, run_fig5, write_report


def test_fig5_ampi_tuning(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_fig5(quiet_progress))
    write_report("fig5", report_fig5(records), results_dir)

    assert all(r.verified for r in records)
    f_recs = sorted(
        (r for r in records if r.params["sweep"] == "F"),
        key=lambda r: r.params["F"],
    )
    d_recs = sorted(
        (r for r in records if r.params["sweep"] == "d"),
        key=lambda r: r.params["d"],
    )

    # F sweep: the most frequent LB is clearly worse than the best F.
    f_times = [r.sim_time for r in f_recs]
    best_f = min(f_times)
    benchmark.extra_info["F_worst_over_best"] = round(f_times[0] / best_f, 2)
    assert f_times[0] / best_f > 1.5          # paper: 4.2x
    # The optimum is interior or at the flat tail, not at the smallest F.
    assert f_times.index(best_f) > 0

    # d sweep: over-decomposition helps relative to d=1...
    d_times = {r.params["d"]: r.sim_time for r in d_recs}
    best_d = min(d_times, key=d_times.get)
    benchmark.extra_info["d_best"] = best_d
    benchmark.extra_info["d1_over_best"] = round(d_times[1] / d_times[best_d], 2)
    assert d_times[best_d] < d_times[1]       # paper: 2.2x at d=16
    assert best_d > 1
    # ...but the largest degree is past the sweet spot (U shape).
    d_values = sorted(d_times)
    assert d_times[d_values[-1]] > d_times[best_d]
