"""Ablation: diffusion axes — x-only vs two-phase vs y-only (§IV-B, §III-E1).

The paper restricts its diffusion scheme to the x direction, "justified as
long as the drift velocity of the particle cloud matches the direction in
which we perform the diffusion-based load balancing", and notes that a
fixed decomposition "can easily be defeated by rotating the particle
distribution over 90°".  This ablation quantifies both claims:

* standard drift cloud: x-only ~ two-phase (y adds cost, no benefit);
  y-only is no better than no LB at all;
* rotated cloud: y-only balancing wins, x-only is defeated.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.bench.reporting import format_table
from repro.bench.runner import run_implementation
from repro.bench.workloads import fig6_workload
from repro.bench.figures import write_report

CORES = 24
STEP_FACTOR = 0.6


def run_axes_ablation(progress=lambda s: None):
    w = fig6_workload()
    records = []
    for rotated in (False, True):
        spec = replace(w.spec_for(CORES), rotate90=rotated).scaled(
            step_factor=STEP_FACTOR
        )
        rec = run_implementation(
            "ablation-axes", "mpi-2d", spec, CORES, w.machine, w.cost
        )
        rec.params.update(axes="none", rotated=rotated)
        records.append(rec)
        for axes in ("x", "y", "xy"):
            rec = run_implementation(
                "ablation-axes", "mpi-2d-LB", spec, CORES, w.machine, w.cost,
                axes=axes, **{k: v for k, v in w.lb_params.items()},
            )
            rec.params.update(axes=axes, rotated=rotated)
            records.append(rec)
            progress(f"axes={axes} rotated={rotated}: {rec.sim_time:.4f}s")
    return records


def test_ablation_diffusion_axes(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_axes_ablation(quiet_progress))
    write_report(
        "ablation_axes",
        "Ablation: diffusion axes (x / y / xy) on drifting and rotated clouds\n\n"
        + format_table(records, extra_cols=("axes", "rotated")),
        results_dir,
    )
    assert all(r.verified for r in records)
    t = {(r.params["axes"], r.params["rotated"]): r.sim_time for r in records}

    # Standard cloud (drifts along x): x balancing is what matters.
    assert t[("x", False)] < t[("none", False)]
    assert t[("x", False)] < t[("y", False)]
    # Two-phase is not meaningfully better than x-only here (paper's choice).
    assert t[("xy", False)] < t[("none", False)]
    assert t[("xy", False)] > 0.85 * t[("x", False)]

    # Rotated cloud: the skew now lives on rows; y balancing wins.
    assert t[("y", True)] < t[("x", True)]
    assert t[("y", True)] < t[("none", True)]
