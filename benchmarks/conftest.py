"""Shared fixtures for the figure benchmarks.

Every benchmark runs its figure exactly once (``benchmark.pedantic`` with a
single round): the scientific output is the *simulated* time recorded in the
report files under ``benchmarks/results/``, not the wall time pytest-benchmark
measures — the wall time only tracks harness cost.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def quiet_progress():
    """Progress sink that keeps benchmark output clean."""
    messages: list[str] = []
    return messages.append


def run_once(benchmark, fn):
    """Run a figure driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
