"""Figure 6 (right): strong scaling on multiple nodes, 24-384 cores.

Shape checks from the paper: mpi-2d-LB keeps scaling to 384 cores and beats
the ampi implementation there (paper: by ~2x); both beat the baseline; the
maximum speedups over serial keep LB well ahead of AMPI (paper: 179x vs
92x).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import report_fig6, run_fig6_multi_node, write_report
from repro.bench.runner import serial_model_time
from repro.bench.workloads import fig6_workload


def test_fig6_strong_scaling_multi_node(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_fig6_multi_node(quiet_progress))
    report = report_fig6(records, "right: multi node")
    write_report("fig6_right", report, results_dir)

    assert all(r.verified for r in records)
    w = fig6_workload()
    serial = serial_model_time(w.spec_for(0), w.cost)

    by = {(r.implementation, r.cores): r for r in records}
    top = max(r.cores for r in records)

    # LB scales: monotone improvement with cores all the way up.
    lb_series = sorted(
        (r.cores, r.sim_time) for r in records if r.implementation == "mpi-2d-LB"
    )
    for (_, t_small), (_, t_big) in zip(lb_series, lb_series[1:]):
        assert t_big < t_small

    # At the top scale: LB beats AMPI clearly, both beat the baseline.
    lb_top = by[("mpi-2d-LB", top)].sim_time
    ampi_top = by[("ampi", top)].sim_time
    base_top = by[("mpi-2d", top)].sim_time
    assert lb_top < ampi_top
    assert ampi_top / lb_top > 1.3          # paper: ~2x
    assert lb_top < base_top

    lb_speedup = serial / lb_top
    ampi_speedup = serial / ampi_top
    benchmark.extra_info["lb_speedup_top"] = round(lb_speedup, 1)
    benchmark.extra_info["ampi_speedup_top"] = round(ampi_speedup, 1)
    # Paper: 179x vs 92x at 384 cores — LB well ahead.
    assert lb_speedup > 1.3 * ampi_speedup
