#!/usr/bin/env python
"""Wall-clock speedup harness: optimised hot path vs the code it replaced.

Unlike the figure benches (scientific output = *simulated* time) and the
pytest-benchmark micros, this script measures the harness's own wall-clock
throughput and writes a machine-normalised ``BENCH_wallclock.json``: every
entry reports the speedup of the current hot path over the verbatim legacy
implementation run back-to-back in the same process, so results are
comparable across machines on ratios even though absolute ``pushes_per_sec``
are not.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py                  # full, gated
    PYTHONPATH=src python benchmarks/bench_wallclock.py --preset smoke \
        --baseline benchmarks/BENCH_wallclock_baseline.json              # CI mode

Exit status is non-zero if an absolute gate fails (``full`` preset) or the
speedup ratios regressed more than ``--tolerance`` against ``--baseline``.

(Equivalently: ``python -m repro.cli perf ...``.)
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import perf  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--preset", choices=["full", "smoke"], default="full")
    ap.add_argument("--out", default="benchmarks/BENCH_wallclock.json")
    ap.add_argument(
        "--baseline", default=None,
        help="prior BENCH_wallclock.json to gate speedup ratios against",
    )
    ap.add_argument("--tolerance", type=float, default=perf.DEFAULT_TOLERANCE)
    ap.add_argument(
        "--require-live", metavar="KIND", action="append", default=[],
        help="fail if any entry of this kind recorded gate_skipped instead "
        "of running its gate (e.g. --require-live workers on a CI runner "
        "that is known to have >= 4 cores); repeatable",
    )
    ap.add_argument(
        "--only", metavar="KIND", default=None,
        help="run only entries of this kind (e.g. --only campaign for the "
        "CI campaign-throughput leg)",
    )
    args = ap.parse_args(argv)

    print(f"wall-clock perf suite (preset={args.preset}):")
    doc = perf.run_suite(args.preset, only=args.only)
    perf.save_bench(doc, args.out)
    print(f"wrote {args.out}")

    failures = perf.check_gates(doc)
    for kind in args.require_live:
        for e in doc["entries"]:
            if e["kind"] == kind and e.get("gate_skipped"):
                failures.append(
                    f"{e['name']}: gate skipped ({e['gate_skipped']}) but "
                    f"--require-live {kind} demands it runs on this host"
                )
    if args.baseline:
        failures += perf.check_regression(
            doc, perf.load_bench(args.baseline), args.tolerance
        )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
