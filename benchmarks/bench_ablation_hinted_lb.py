"""Ablation: the locality-hinted VP balancer (paper's closing remark).

§V-B ends: "Even a diffusion based AMPI load balancer would not preserve
the compactness of the subdomains unless it is properly hinted."  This
ablation builds that hinted balancer (:class:`HintedTransferLB`) and tests
the claim at multi-node strong scale:

* the locality-agnostic GreedyLB leaves the VP layout heavily fragmented
  (low locality score);
* the hinted balancer keeps the layout substantially more compact, and
  performs at least comparably.
"""

from __future__ import annotations

from conftest import run_once

from repro.ampi.loadbalancer import (
    GreedyLB,
    GreedyTransferLB,
    HintedTransferLB,
    VpTopology,
    locality_score,
)
from repro.bench.figures import write_report
from repro.bench.reporting import format_table
from repro.bench.runner import RunRecord
from repro.bench.workloads import fig6_workload
from repro.decomp.grid import factor_2d
from repro.parallel import AmpiPIC

CORES = 96
D = 8
F = 25


def run_hinted_ablation(progress=lambda s: None):
    w = fig6_workload()
    spec = w.spec_for(CORES).scaled(step_factor=0.5)
    topo = VpTopology(factor_2d(CORES * D))
    records = []
    scores = {}
    for strategy in (GreedyLB(), GreedyTransferLB(), HintedTransferLB()):
        impl = AmpiPIC(
            spec, CORES, machine=w.machine, cost=w.cost,
            overdecomposition=D, lb_interval=F, strategy=strategy,
        )
        result = impl.run()
        assert result.verification.ok
        score = locality_score(result.final_rank_to_core, topo)
        scores[strategy.name] = score
        rec = RunRecord.from_result("ablation-hinted", result, 0.0)
        rec.params.update(strategy=strategy.name, locality=round(score, 3))
        records.append(rec)
        progress(f"{strategy.name}: {result.total_time:.4f}s locality={score:.3f}")
    return records, scores


def test_ablation_hinted_balancer(benchmark, results_dir, quiet_progress):
    records, scores = run_once(
        benchmark, lambda: run_hinted_ablation(quiet_progress)
    )
    write_report(
        "ablation_hinted_lb",
        "Ablation: locality-hinted VP balancer (96 cores, d=8, F=25)\n\n"
        + format_table(records, extra_cols=("strategy", "locality")),
        results_dir,
    )
    times = {r.params["strategy"]: r.sim_time for r in records}

    # The hinted balancer preserves compactness far better than GreedyLB...
    assert scores["HintedTransferLB"] > scores["GreedyLB"] + 0.1
    # ...and does not pay a performance price for it.
    assert times["HintedTransferLB"] <= 1.1 * min(times.values())
    benchmark.extra_info.update(
        {f"locality_{k}": round(v, 3) for k, v in scores.items()}
    )
