"""Ablation: machine-aware co-tuning of the load-balancing frequency.

The paper stresses that the diffusion scheme's parameters "have interfering
results ... and therefore should be co-tuned", and that inter-node
communication is "orders of magnitude more expensive compared to a shared
memory setting".  This ablation connects the two: every diffusion round
costs global collectives (column reduction + row allgather), whose price is
set by the interconnect — so the optimal balancing frequency depends on the
machine.

Measured shape (96 cores, fig. 6 workload): on the default Edison-like
network, balancing every step (F=1) is optimal; on a 10x slower network the
per-round collectives dominate and the optimum shifts to rarer balancing
(F=4), with F=1 the *worst* choice of the sweep.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import write_report
from repro.bench.reporting import format_table
from repro.bench.runner import run_implementation
from repro.bench.workloads import FIG6_CELL_SCALE, FIG6_SCALE, fig6_workload, scaled_cost
from repro.runtime.machine import MachineModel, Tier, TierCosts

CORES = 96
F_SWEEP = ((1, 4), (2, 4), (4, 4), (8, 8))


def slow_network_machine(factor: float = 10.0) -> MachineModel:
    """Edison-like machine with a ``factor``-times worse interconnect."""
    tiers = dict(MachineModel().tier_costs)
    net = tiers[Tier.NETWORK]
    tiers[Tier.NETWORK] = TierCosts(
        latency=net.latency * factor, bandwidth=net.bandwidth / factor
    )
    return MachineModel(tier_costs=tiers, name=f"slow-net-x{factor:g}")


def run_network_cotuning(progress=lambda s: None):
    w = fig6_workload()
    spec = w.spec_for(CORES).scaled(step_factor=0.5)
    records = []
    best = {}
    for label, machine in (("default", w.machine), ("slow-net", slow_network_machine())):
        cost = scaled_cost(machine, FIG6_SCALE, FIG6_CELL_SCALE)
        times = {}
        for f_value, width in F_SWEEP:
            rec = run_implementation(
                "ablation-machine", "mpi-2d-LB", spec, CORES, machine, cost,
                lb_interval=f_value, border_width=width, threshold_fraction=0.02,
            )
            rec.params.update(network=label, F=f_value, w=width)
            records.append(rec)
            times[f_value] = rec.sim_time
            progress(f"{label} F={f_value}: {rec.sim_time:.4f}s")
        best[label] = min(times, key=times.get)
    return records, best


def test_ablation_network_aware_lb_frequency(benchmark, results_dir, quiet_progress):
    records, best = run_once(benchmark, lambda: run_network_cotuning(quiet_progress))
    write_report(
        "ablation_machine_model",
        "Ablation: optimal diffusion frequency depends on the interconnect "
        f"(96 cores)\n\n{format_table(records, extra_cols=('network', 'F', 'w'))}",
        results_dir,
    )
    assert all(r.verified for r in records)
    benchmark.extra_info["best_F_default"] = best["default"]
    benchmark.extra_info["best_F_slow_net"] = best["slow-net"]

    # Fast network: balance as often as possible.  Slow network: the
    # per-round collectives make frequent balancing counterproductive.
    assert best["default"] < best["slow-net"]

    t = {(r.params["network"], r.params["F"]): r.sim_time for r in records}
    # On the slow network, every-step balancing is beaten by rarer rounds.
    assert t[("slow-net", 1)] > t[("slow-net", 4)]
