"""Ablation: the AMPI load-balancer strategy zoo.

The paper notes Charm++ "provides not just one but a collection of load
balancing strategies, each tailored to a specific scenario" and picks the
one migrating VPs from the most to the least loaded core.  This ablation
compares the strategies on the skewed workload:

* NullLB (no balancing) is the worst;
* the transfer-style balancers (GreedyTransferLB, RefineLB) beat it;
* full-reassignment GreedyLB pays heavy migration/locality costs relative
  to the incremental strategies at multi-node scale.
"""

from __future__ import annotations

from conftest import run_once

from repro.ampi.loadbalancer import GreedyLB, GreedyTransferLB, NullLB, RefineLB
from repro.bench.figures import write_report
from repro.bench.reporting import format_table
from repro.bench.runner import run_implementation
from repro.bench.workloads import fig6_workload

CORES = 48
STRATEGIES = [NullLB(), GreedyTransferLB(), RefineLB(), GreedyLB()]


def run_strategy_ablation(progress=lambda s: None):
    w = fig6_workload()
    spec = w.spec_for(CORES).scaled(step_factor=0.6)
    records = []
    for strategy in STRATEGIES:
        rec = run_implementation(
            "ablation-lb", "ampi", spec, CORES, w.machine, w.cost,
            overdecomposition=8, lb_interval=25, strategy=strategy,
        )
        rec.params.update(strategy=strategy.name)
        records.append(rec)
        progress(f"{strategy.name}: {rec.sim_time:.4f}s")
    return records


def test_ablation_lb_strategies(benchmark, results_dir, quiet_progress):
    records = run_once(benchmark, lambda: run_strategy_ablation(quiet_progress))
    write_report(
        "ablation_lb_strategies",
        "Ablation: AMPI load-balancer strategies (48 cores, d=8, F=25)\n\n"
        + format_table(records, extra_cols=("strategy",)),
        results_dir,
    )
    assert all(r.verified for r in records)
    t = {r.params["strategy"]: r.sim_time for r in records}

    # Balancing helps: every real strategy beats NullLB.
    for name in ("GreedyTransferLB", "RefineLB", "GreedyLB"):
        assert t[name] < t["NullLB"], (name, t)

    # The incremental transfer strategy (the paper's pick) is at least as
    # good as the churn-heavy full reassignment.
    assert t["GreedyTransferLB"] <= 1.05 * t["GreedyLB"]
