"""Exporters for traces and metrics.

Three output formats:

* **Chrome/Perfetto trace JSON** (:func:`to_chrome_trace`) — open the file
  at https://ui.perfetto.dev or ``chrome://tracing``.  Cores map to
  processes (``pid``), ranks to threads (``tid``), so co-located AMPI
  virtual processors visibly serialize on their core's track.
* **Plain-text per-rank timeline** (:func:`render_rank_timeline`) — a
  greppable dump of every span, for terminals and test assertions.
* **Metrics summary** (:func:`render_metrics_summary`) — a fixed-width
  table of every registered metric, consumed by ``repro.bench.reporting``.

All exporters are deterministic: identical runs produce byte-identical
output (the golden-trace tests rely on this).
"""

from __future__ import annotations

import json
from typing import Any

from repro.instrument.metrics import MetricsRegistry
from repro.instrument.spans import ExecutorTrace, Tracer, validate_spans


def _us(seconds: float) -> float:
    """Simulated seconds -> trace microseconds (rounded for stable repr)."""
    return round(seconds * 1e6, 3)


def to_chrome_trace(tracer: Tracer, namespace: str | None = None) -> dict[str, Any]:
    """Build a Chrome Trace Event Format object from a tracer.

    Events are sorted by ``(pid, tid, ts)`` with metadata first, so every
    rank's track lists its spans in simulated-time order.

    ``namespace`` labels the trace as belonging to one engine of a
    multi-engine run: track display names gain an ``<ns>:`` prefix so N
    per-engine files stay tellable apart after loading several into one
    viewer session.  ``None`` (the default) produces byte-identical
    output to the pre-namespace exporter — golden-trace suites compare
    un-namespaced dumps.
    """
    validate_spans(tracer.spans)
    prefix = "" if namespace is None else f"{namespace}:"
    events: list[dict[str, Any]] = []
    for core in tracer.cores():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": core,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"{prefix}core {core}"},
            }
        )
    named_threads = sorted({(s.core, s.rank) for s in tracer.spans})
    for core, rank in named_threads:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": core,
                "tid": rank,
                "ts": 0,
                "args": {"name": f"{prefix}rank {rank}"},
            }
        )

    body: list[dict[str, Any]] = []
    for s in tracer.spans:
        body.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": _us(s.t_start),
                "dur": _us(s.duration),
                "pid": s.core,
                "tid": s.rank,
                "args": {"step": s.step, **s.args_dict()},
            }
        )
    for e in tracer.instants:
        body.append(
            {
                "name": e.name,
                "cat": e.cat,
                "ph": "i",
                "s": "t",
                "ts": _us(e.t),
                "pid": e.core,
                "tid": e.rank,
                "args": {"step": e.step, **e.args_dict()},
            }
        )
    body.sort(key=lambda ev: (ev["pid"], ev["tid"], ev["ts"], ev["name"]))
    events.extend(body)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def dumps_chrome_trace(tracer: Tracer, namespace: str | None = None) -> str:
    """Serialize deterministically (sorted keys, no whitespace jitter)."""
    return json.dumps(
        to_chrome_trace(tracer, namespace), sort_keys=True, separators=(",", ":")
    )


def write_chrome_trace(tracer: Tracer, path, namespace: str | None = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_chrome_trace(tracer, namespace))
        fh.write("\n")


def write_engine_traces(tracers: dict[str, Tracer], directory) -> list[str]:
    """Write one namespaced ``trace-<engine>.json`` per engine.

    ``tracers`` maps engine name -> that engine's (private) tracer; each
    file is namespaced with its engine name so interleaved runs export
    disjoint, individually-loadable traces.  Returns the written paths in
    name order.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for name in sorted(tracers):
        safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name)
        path = os.path.join(directory, f"trace-{safe}.json")
        write_chrome_trace(tracers[name], path, namespace=name)
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# Executor (wall-clock) trace
# ----------------------------------------------------------------------
def to_executor_chrome_trace(trace: ExecutorTrace) -> dict[str, Any]:
    """Chrome-trace object of a process executor's wall-clock spans.

    One synthetic process (pid 0, "executor") with one thread per worker
    (tid = worker index + 1; the parent's dispatch/merge phases are tid 0).
    Kept separate from :func:`to_chrome_trace` — these timestamps are host
    seconds, not simulated time, and must never enter a golden comparison.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0, "ts": 0,
            "args": {"name": "executor (wall clock)"},
        }
    ]
    for w in trace.workers():
        events.append(
            {
                "name": "thread_name", "ph": "M", "pid": 0, "tid": w + 1,
                "ts": 0,
                "args": {"name": "parent" if w < 0 else f"worker {w}"},
            }
        )
    body = [
        {
            "name": s.phase,
            "cat": "executor",
            "ph": "X",
            "ts": _us(s.t_start),
            "dur": _us(s.duration),
            "pid": 0,
            "tid": s.worker + 1,
            "args": {"batch": s.batch, **s.args_dict()},
        }
        for s in trace.spans
    ]
    body.sort(key=lambda ev: (ev["tid"], ev["ts"], ev["name"]))
    events.extend(body)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_executor_trace(trace: ExecutorTrace, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                to_executor_chrome_trace(trace),
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        fh.write("\n")


# ----------------------------------------------------------------------
# Plain-text timeline
# ----------------------------------------------------------------------
def render_rank_timeline(tracer: Tracer, max_spans_per_rank: int | None = None) -> str:
    """Human-readable per-rank listing of spans in simulated-time order."""
    if not tracer.spans and not tracer.instants:
        return "(no spans recorded)"
    lines: list[str] = []
    for rank in tracer.ranks():
        spans = tracer.spans_for_rank(rank)
        shown = spans if max_spans_per_rank is None else spans[:max_spans_per_rank]
        lines.append(f"rank {rank}:")
        for s in shown:
            args = s.args_dict()
            extra = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(args.items()))
                if args
                else ""
            )
            lines.append(
                f"  [{s.t_start:12.9f} .. {s.t_end:12.9f}] "
                f"{s.name:<18} ({s.cat}) step={s.step} core={s.core}{extra}"
            )
        if max_spans_per_rank is not None and len(spans) > max_spans_per_rank:
            lines.append(f"  ... {len(spans) - max_spans_per_rank} more spans")
        for e in (i for i in tracer.instants if i.rank == rank):
            lines.append(
                f"  @{e.t:13.9f}  {e.name} ({e.cat}) step={e.step} core={e.core}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def metrics_to_json(metrics: MetricsRegistry) -> str:
    """Deterministic JSON dump of every registered metric."""
    return json.dumps(metrics.as_dict(), sort_keys=True, indent=2)


def write_metrics(metrics: MetricsRegistry, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(metrics_to_json(metrics))
        fh.write("\n")


def render_metrics_summary(metrics: MetricsRegistry) -> str:
    """Fixed-width table of all metrics (histograms show count/mean/max)."""
    if len(metrics) == 0:
        return "(no metrics recorded)"
    rows: list[tuple[str, str, str]] = []
    for name, data in metrics.as_dict().items():
        kind = data["kind"]
        if kind == "histogram":
            value = (
                f"n={data['count']} mean={data['mean']:.6g} "
                f"p95={data['p95']:.6g} max={data['max']:.6g}"
            )
        else:
            v = data["value"]
            value = "-" if v is None else (f"{v:.6g}" if isinstance(v, float) else str(v))
        rows.append((name, kind, value))
    w_name = max(len("metric"), *(len(r[0]) for r in rows))
    w_kind = max(len("kind"), *(len(r[1]) for r in rows))
    lines = [f"{'metric':<{w_name}}  {'kind':<{w_kind}}  value"]
    lines.append("-" * len(lines[0]))
    for name, kind, value in rows:
        lines.append(f"{name:<{w_name}}  {kind:<{w_kind}}  {value}")
    return "\n".join(lines)
