"""Span-based tracing of the simulated runtime.

A :class:`Tracer` receives *spans* — named intervals of simulated time,
keyed by ``(rank, core, step)`` — from the scheduler at every state
transition: compute phases, send/recv CPU overheads, blocked-on-message
intervals, collective waits, collective bodies, and load-balancing
migrations (as instant events).  Because the scheduler is fully
deterministic, two runs of the same spec produce identical span streams,
which is what makes golden-trace regression tests possible.

Hard invariant: tracing is purely observational.  The tracer never touches
rank clocks, core clocks, message ordering or payloads — a traced run
produces exactly the same simulated times and verification results as an
untraced one (enforced by ``tests/instrument/test_golden_trace.py``).

The ``step`` key is supplied out-of-band: application drivers call
:meth:`repro.runtime.comm.Comm.annotate_step` (non-yielding, zero simulated
cost) at the top of each time step, and every span emitted by that rank is
stamped with the current step until the next annotation.  Spans emitted
before the first annotation carry step ``-1`` (setup/topology creation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

#: Span categories used by the runtime (exporters color by category).
CAT_COMPUTE = "compute"
CAT_COMM = "comm"
CAT_WAIT = "wait"
CAT_COLLECTIVE = "collective"
CAT_LB = "lb"
#: Resilience events: crash recovery spans, message-drop and straggler
#: flag/clear instants (see repro.resilience).
CAT_FAULT = "fault"

CATEGORIES = (CAT_COMPUTE, CAT_COMM, CAT_WAIT, CAT_COLLECTIVE, CAT_LB, CAT_FAULT)


@dataclass(frozen=True)
class Span:
    """One named interval of simulated time on one rank.

    ``args`` is a sorted tuple of ``(key, value)`` pairs so the span stays
    hashable and its serialization order is deterministic.
    """

    name: str
    cat: str
    rank: int
    core: int
    step: int
    t_start: float
    t_end: float
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def args_dict(self) -> dict[str, Any]:
        return dict(self.args)


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (e.g. one VP migration) on one rank."""

    name: str
    cat: str
    rank: int
    core: int
    step: int
    t: float
    args: tuple[tuple[str, Any], ...] = ()

    def args_dict(self) -> dict[str, Any]:
        return dict(self.args)


class Tracer:
    """Collects spans and instant events emitted by the scheduler.

    The tracer lives outside the simulated world: the scheduler guards every
    emission with ``if tracer is not None`` and hands over already-computed
    timestamps, so enabling tracing can never perturb a run.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self._step: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording (called by the scheduler / drivers)
    # ------------------------------------------------------------------
    def set_step(self, rank: int, step: int) -> None:
        """Stamp subsequent spans of ``rank`` with ``step``."""
        self._step[rank] = step

    def current_step(self, rank: int) -> int:
        return self._step.get(rank, -1)

    def record(
        self,
        name: str,
        cat: str,
        rank: int,
        core: int,
        t_start: float,
        t_end: float,
        **args: Any,
    ) -> None:
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                rank=rank,
                core=core,
                step=self._step.get(rank, -1),
                t_start=t_start,
                t_end=t_end,
                args=tuple(sorted(args.items())),
            )
        )

    def instant(
        self, name: str, cat: str, rank: int, core: int, t: float, **args: Any
    ) -> None:
        self.instants.append(
            InstantEvent(
                name=name,
                cat=cat,
                rank=rank,
                core=core,
                step=self._step.get(rank, -1),
                t=t,
                args=tuple(sorted(args.items())),
            )
        )

    # ------------------------------------------------------------------
    # Queries (used by exporters and tests)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def ranks(self) -> list[int]:
        seen = {s.rank for s in self.spans} | {e.rank for e in self.instants}
        return sorted(seen)

    def cores(self) -> list[int]:
        seen = {s.core for s in self.spans} | {e.core for e in self.instants}
        return sorted(seen)

    def spans_for_rank(self, rank: int) -> list[Span]:
        """This rank's spans in simulated-time order (stable on ties)."""
        return sorted(
            (s for s in self.spans if s.rank == rank),
            key=lambda s: (s.t_start, s.t_end, s.name),
        )

    def seconds_by_category(self, rank: int | None = None) -> dict[str, float]:
        """Total span seconds per category (optionally one rank only)."""
        out: dict[str, float] = {}
        for s in self.spans:
            if rank is not None and s.rank != rank:
                continue
            out[s.cat] = out.get(s.cat, 0.0) + s.duration
        return out

    def busy_fraction(self, rank: int, total_time: float) -> float:
        """Fraction of ``total_time`` this rank spent computing."""
        if total_time <= 0.0:
            return 0.0
        busy = sum(
            s.duration for s in self.spans if s.rank == rank and s.cat == CAT_COMPUTE
        )
        return busy / total_time


# ----------------------------------------------------------------------
# Executor (wall-clock) spans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecSpan:
    """One wall-clock interval of the compute-execution backend.

    ``worker`` is the worker index (``-1`` for parent-side phases) and
    ``batch`` the 1-based batch sequence number.  Deliberately a separate
    type from :class:`Span`: executor spans live on a *wall-clock* timebase
    (host seconds since pool start) while :class:`Span` records *simulated*
    time — mixing the two in one tracer would make golden traces depend on
    host speed and backend choice.
    """

    phase: str  # "dispatch" | "execute" | "merge" | "task"
    worker: int
    batch: int
    t_start: float
    t_end: float
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def args_dict(self) -> dict[str, Any]:
        return dict(self.args)


class ExecutorTrace:
    """Collects :class:`ExecSpan` records from a process executor.

    Kept outside the golden-trace machinery on purpose: backends must
    produce byte-identical *simulated* traces, while these wall-clock spans
    differ on every run.  Export with
    :func:`repro.instrument.write_executor_trace`.
    """

    def __init__(self) -> None:
        self.spans: list[ExecSpan] = []

    def record(
        self,
        phase: str,
        worker: int,
        batch: int,
        t_start: float,
        t_end: float,
        **args: Any,
    ) -> None:
        self.spans.append(
            ExecSpan(
                phase=phase,
                worker=worker,
                batch=batch,
                t_start=t_start,
                t_end=t_end,
                args=tuple(sorted(args.items())),
            )
        )

    def __len__(self) -> int:
        return len(self.spans)

    def workers(self) -> list[int]:
        return sorted({s.worker for s in self.spans})

    def seconds_by_phase(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.phase] = out.get(s.phase, 0.0) + s.duration
        return out


def validate_spans(spans: Iterable[Span]) -> None:
    """Raise ``ValueError`` on malformed spans (negative duration, bad cat).

    Used by tests and exporters as a cheap well-formedness gate.
    """
    for s in spans:
        if s.t_end < s.t_start:
            raise ValueError(f"span {s.name!r} has negative duration: {s}")
        if s.cat not in CATEGORIES:
            raise ValueError(f"span {s.name!r} has unknown category {s.cat!r}")
