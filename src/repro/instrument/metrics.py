"""Counters, gauges and histograms for simulated runs.

A :class:`MetricsRegistry` is threaded (optionally) through the scheduler,
transport, communicators and the parallel drivers; each layer records what
it knows — messages sent, bytes moved, collectives by kind, particles
migrated, per-step imbalance ratios, core busy fractions — without ever
touching simulated state.  Like the tracer, metrics are observational only:
a run with a registry attached is bit-identical to one without.

All instruments are deterministic: values derive solely from the simulated
execution, and :meth:`MetricsRegistry.as_dict` emits them in sorted name
order, so a metrics dump is as reproducible as the run itself.
"""

from __future__ import annotations

import math
from typing import Any


class Counter:
    """Monotonically increasing count (messages sent, particles moved...)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (final imbalance ratio, locality score...)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (e.g. peak pending-message depth)."""
        if self.value is None or value > self.value:
            self.value = value


class Histogram:
    """Distribution of observations (rank times, per-step imbalance...).

    Stores every observation — runs are small enough, and exact storage
    keeps summaries deterministic and percentiles honest.
    """

    kind = "histogram"
    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        idx = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[idx]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` get-or-create by name; asking for an
    existing name with a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def as_dict(self) -> dict[str, Any]:
        """Deterministic ``{name: {kind, value-or-summary}}`` mapping."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {"kind": metric.kind, **metric.summary()}
            else:
                out[name] = {"kind": metric.kind, "value": metric.value}
        return out
