"""Zero-perturbation instrumentation of parallel runs.

Because every simulated rank executes inside one Python process, a trace
collector can observe per-rank state each step *without* injecting any
simulated communication — unlike a real MPI job, where gathering a load
timeline would itself perturb the run.  The tracer records particle counts
per rank per step (and load-balancing events), from which imbalance
timelines and core-load matrices are derived.

Usage::

    from repro.instrument import TraceCollector
    tracer = TraceCollector()
    result = Mpi2dPIC(spec, 24, tracer=tracer).run()
    print(render_imbalance_timeline(tracer))
"""

from repro.instrument.trace import (
    LbEvent,
    TraceCollector,
    render_imbalance_timeline,
)

__all__ = ["LbEvent", "TraceCollector", "render_imbalance_timeline"]
