"""Observability subsystem: span tracing, metrics and exporters.

Three cooperating layers, all strictly *observational* — attaching any of
them to a run changes no simulated time, message order or verification
result (the golden-trace tests enforce this invariant):

* :class:`Tracer` (``spans.py``) — receives named spans of simulated time
  from the scheduler at every state transition (compute, send/recv,
  blocked-on-message waits, collective waits and bodies) plus instant
  events for VP migrations, keyed by ``(rank, core, step)``.
* :class:`MetricsRegistry` (``metrics.py``) — counters, gauges and
  histograms fed by the transport, communicators, parallel drivers and the
  AMPI load balancer: messages sent, bytes moved, collectives by kind,
  particles migrated, per-step imbalance ratio, core busy fraction.
* Exporters (``export.py``) — Chrome/Perfetto ``trace.json``, a plain-text
  per-rank timeline, and a metrics summary table consumed by
  ``repro.bench.reporting``.

The original coarse per-step load sampler (:class:`TraceCollector`) remains
for imbalance timelines and figure generation.

Usage::

    from repro.instrument import MetricsRegistry, Tracer, write_chrome_trace
    tracer, metrics = Tracer(), MetricsRegistry()
    result = Mpi2dPIC(spec, 24, span_tracer=tracer, metrics=metrics).run()
    write_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev

See ``docs/observability.md`` for the span model and metric names.
"""

from repro.instrument.export import (
    dumps_chrome_trace,
    metrics_to_json,
    render_metrics_summary,
    render_rank_timeline,
    to_chrome_trace,
    to_executor_chrome_trace,
    write_chrome_trace,
    write_engine_traces,
    write_executor_trace,
    write_metrics,
)
from repro.instrument.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.instrument.spans import (
    CATEGORIES,
    ExecSpan,
    ExecutorTrace,
    InstantEvent,
    Span,
    Tracer,
    validate_spans,
)
from repro.instrument.trace import (
    LbEvent,
    TraceCollector,
    render_imbalance_timeline,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "ExecSpan",
    "ExecutorTrace",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "LbEvent",
    "MetricsRegistry",
    "Span",
    "TraceCollector",
    "Tracer",
    "dumps_chrome_trace",
    "metrics_to_json",
    "render_imbalance_timeline",
    "render_metrics_summary",
    "render_rank_timeline",
    "to_chrome_trace",
    "to_executor_chrome_trace",
    "validate_spans",
    "write_chrome_trace",
    "write_engine_traces",
    "write_executor_trace",
    "write_metrics",
]
