"""Per-step trace collection and imbalance analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LbEvent:
    """One load-balancing action observed during a run."""

    step: int
    kind: str          # "diffusion" or "migrate"
    moved: int         # boundary columns moved / VPs migrated
    detail: str = ""


@dataclass
class TraceCollector:
    """Collects per-(step, rank) load samples and LB events.

    ``record`` is called by the rank programs once per step; the collector
    is outside the simulated world, so sampling is free in simulated time.
    """

    #: samples[step][rank] = particle count (dict-of-dict keeps sparse steps cheap)
    samples: dict[int, dict[int, int]] = field(default_factory=dict)
    cores: dict[int, dict[int, int]] = field(default_factory=dict)
    events: list[LbEvent] = field(default_factory=list)
    #: Engine id this collector belongs to, when several interleaved runs
    #: record side by side (one collector per engine).  Purely a label:
    #: ``None`` leaves every analysis and export byte-identical.
    namespace: str | None = None

    def record(self, rank: int, step: int, n_particles: int, core: int) -> None:
        self.samples.setdefault(step, {})[rank] = n_particles
        self.cores.setdefault(step, {})[rank] = core

    def record_event(self, event: LbEvent) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def steps(self) -> list[int]:
        return sorted(self.samples)

    def n_ranks(self) -> int:
        if not self.samples:
            return 0
        return max(max(per_rank) for per_rank in self.samples.values()) + 1

    def load_matrix(self) -> np.ndarray:
        """(steps, ranks) matrix of per-rank particle counts."""
        steps = self.steps
        n = self.n_ranks()
        out = np.zeros((len(steps), n), dtype=np.int64)
        for i, step in enumerate(steps):
            for rank, count in self.samples[step].items():
                out[i, rank] = count
        return out

    def core_load_matrix(self) -> np.ndarray:
        """(steps, cores) matrix of per-core particle counts (sums VPs)."""
        steps = self.steps
        if not steps:
            return np.zeros((0, 0), dtype=np.int64)
        n_cores = 1 + max(
            core for per_rank in self.cores.values() for core in per_rank.values()
        )
        out = np.zeros((len(steps), n_cores), dtype=np.int64)
        for i, step in enumerate(steps):
            loads = self.samples[step]
            cores = self.cores[step]
            for rank, count in loads.items():
                out[i, cores[rank]] += count
        return out

    def imbalance_series(self) -> np.ndarray:
        """Max-over-mean per-core load for every sampled step."""
        m = self.core_load_matrix().astype(np.float64)
        if m.size == 0:
            return np.zeros(0)
        means = m.mean(axis=1)
        means[means == 0] = 1.0
        return m.max(axis=1) / means

    def migrations_total(self) -> int:
        return sum(e.moved for e in self.events if e.kind == "migrate")

    def boundary_moves_total(self) -> int:
        return sum(e.moved for e in self.events if e.kind == "diffusion")


def render_imbalance_timeline(
    tracer: TraceCollector, width: int = 72, height: int = 10
) -> str:
    """ASCII timeline of the imbalance ratio, with LB events marked."""
    series = tracer.imbalance_series()
    if len(series) == 0:
        return "(no samples)"
    steps = tracer.steps
    # Downsample to the display width.
    idx = np.linspace(0, len(series) - 1, min(width, len(series))).astype(int)
    values = series[idx]
    lo, hi = 1.0, max(float(values.max()), 1.0 + 1e-9)
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + (hi - lo) * (level - 0.5) / height
        rows.append(
            f"{threshold:6.2f} |"
            + "".join("#" if v >= threshold else " " for v in values)
        )
    event_steps = {e.step for e in tracer.events}
    marks = "".join(
        "^" if steps[i] in event_steps else " " for i in idx
    )
    rows.append(" " * 7 + "+" + "-" * len(values))
    rows.append(" " * 8 + marks + "  (^ = LB event)")
    rows.append(
        f"        steps {steps[0]}..{steps[-1]}, imbalance max/mean "
        f"(1.0 = perfectly balanced)"
    )
    return "\n".join(rows)
