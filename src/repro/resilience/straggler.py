"""Straggler detection from per-rank measured step times.

:class:`StragglerWatch` observes, at every step boundary, each rank's own
*busy* seconds (compute + message CPU overheads occupied on its core — the
scheduler's ``rank_busy`` accumulator, not the wall clock, which the
per-step settlement allreduce synchronizes across ranks) and maintains an
EWMA per rank.  A rank whose EWMA exceeds ``threshold`` times the
population median is flagged as a straggler; it is cleared again once it
drops below ``clear_ratio`` times the median (hysteresis, so a rank
hovering at the threshold does not flap).

The watch serves three consumers:

* the instrument layer — flag/clear transitions emit instant events and
  metrics counters (observational only);
* the load balancers — :meth:`load` supplies *measured* seconds in place
  of particle counts, so a CPU slowdown that leaves counts balanced is
  still visible to the diffusion and migration strategies (the in-situ
  measurement feedback of Rowan et al.); :meth:`straggler_pending` lets
  the drivers force an off-interval LB round when a new straggler shows;
* the checkpointer — the full state round-trips through
  :meth:`state_dict`/:meth:`load_state` so a resumed run detects exactly
  as the uninterrupted one would.

Everything here is driven by simulated quantities, so the watch is as
deterministic as the scheduler feeding it.
"""

from __future__ import annotations


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


class StragglerWatch:
    """EWMA-vs-median straggler detector over per-rank step busy-times."""

    def __init__(
        self,
        n_ranks: int,
        *,
        alpha: float = 0.5,
        threshold: float = 2.0,
        clear_ratio: float = 1.5,
        min_samples: int = 2,
    ):
        if n_ranks <= 0:
            raise ValueError("watch needs at least one rank")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if threshold <= 1.0 or clear_ratio <= 1.0 or clear_ratio > threshold:
            raise ValueError("need 1 < clear_ratio <= threshold")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.n_ranks = n_ranks
        self.alpha = alpha
        self.threshold = threshold
        self.clear_ratio = clear_ratio
        self.min_samples = min_samples
        self._prev: list[float | None] = [None] * n_ranks
        self._ewma: list[float] = [0.0] * n_ranks
        self._samples: list[int] = [0] * n_ranks
        self._last_core: list[int | None] = [None] * n_ranks
        self._restart: list[bool] = [False] * n_ranks
        self.flagged: list[bool] = [False] * n_ranks
        #: Steps at which a *new* straggler was flagged, in order —
        #: consumed by the drivers to trigger off-interval LB rounds.
        self.flag_steps: list[int] = []
        #: Measured per-rank work rates (pushes/sec) noted by the driver
        #: when a :class:`~repro.runtime.costmodel.WorkRateMeter` is
        #: attached — diagnostic context explaining *why* ranks straggle
        #: (e.g. a mixed compiled/python kernel fleet).  Never consulted
        #: for flagging, which stays purely busy-seconds-driven.
        self.backend_rates: dict[int, float] = {}

    def params_dict(self) -> dict:
        """Constructor parameters (for checkpoint metadata)."""
        return {
            "alpha": self.alpha,
            "threshold": self.threshold,
            "clear_ratio": self.clear_ratio,
            "min_samples": self.min_samples,
        }

    # ------------------------------------------------------------------
    # Observation (called by the scheduler at each rank's step boundary)
    # ------------------------------------------------------------------
    def observe(
        self, rank: int, step: int, busy_seconds: float, core: int | None = None,
    ) -> list[tuple[str, int]]:
        """Record ``rank``'s cumulative busy seconds at the top of ``step``.

        ``core`` is the rank's current physical core; when it changes (a VP
        migrated), the rank's EWMA restarts from the next step delta —
        measurements taken on the old core say nothing about the new one,
        and carrying them over makes a VP that escaped a slow core look
        heavy for several more rounds (stale-cost oscillation).  Returns
        the flag transitions this observation caused, as
        ``("flagged" | "cleared", rank)`` pairs — at most one, for the
        observed rank itself.
        """
        if core is not None:
            if self._last_core[rank] is not None and core != self._last_core[rank]:
                self._restart[rank] = True
            self._last_core[rank] = core
        prev, self._prev[rank] = self._prev[rank], busy_seconds
        if prev is None:
            return []
        delta = busy_seconds - prev
        if self._samples[rank] == 0 or self._restart[rank]:
            self._ewma[rank] = delta
            self._restart[rank] = False
        else:
            a = self.alpha
            self._ewma[rank] = a * delta + (1.0 - a) * self._ewma[rank]
        self._samples[rank] += 1
        if not self.ready():
            return []
        med = _median(self._ewma)
        if med <= 0.0:
            return []
        ratio = self._ewma[rank] / med
        if not self.flagged[rank] and ratio > self.threshold:
            self.flagged[rank] = True
            self.flag_steps.append(step)
            return [("flagged", rank)]
        if self.flagged[rank] and ratio < self.clear_ratio:
            self.flagged[rank] = False
            return [("cleared", rank)]
        return []

    # ------------------------------------------------------------------
    # Queries (used by the load balancers)
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """True once every rank has at least ``min_samples`` step deltas.

        Within one LB round all ranks observe the same readiness (the
        settlement allreduce orders every top-of-step observation before
        any same-step LB call), so ranks never mix measured and fallback
        loads in a single reduction.
        """
        return min(self._samples) >= self.min_samples

    def load(self, rank: int, fallback: float) -> float:
        """Measured EWMA step-seconds for ``rank`` (or ``fallback``)."""
        if not self.ready():
            return fallback
        return self._ewma[rank]

    def straggler_pending(self, last_handled: int, step: int) -> bool:
        """A new straggler was flagged in ``(last_handled, step]``."""
        return any(last_handled < s <= step for s in self.flag_steps)

    def stragglers(self) -> list[int]:
        return [r for r, f in enumerate(self.flagged) if f]

    # ------------------------------------------------------------------
    # Measured backend work rates (diagnostic)
    # ------------------------------------------------------------------
    def note_backend_rates(self, rates: dict) -> None:
        """Attach measured per-rank pushes/sec (merging over prior notes)."""
        for rank, rate in rates.items():
            if rate <= 0.0:
                raise ValueError(f"rate for rank {rank} must be positive")
            self.backend_rates[int(rank)] = float(rate)

    def backend_imbalance(self) -> float | None:
        """Fastest/slowest measured rate ratio, or None with < 2 rates.

        A homogeneous fleet sits near 1.0; a mixed compiled/python fleet
        shows the kernel-backend speedup itself (order 10x), telling the
        operator the flagged ranks are slow by construction, not by fault.
        """
        if len(self.backend_rates) < 2:
            return None
        rates = self.backend_rates.values()
        return max(rates) / min(rates)

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "prev": list(self._prev),
            "ewma": list(self._ewma),
            "samples": list(self._samples),
            "last_core": list(self._last_core),
            "restart": list(self._restart),
            "flagged": list(self.flagged),
            "flag_steps": list(self.flag_steps),
            # JSON object keys are strings; load_state converts back.
            "backend_rates": {str(r): v for r, v in self.backend_rates.items()},
        }

    def load_state(self, state: dict) -> None:
        if len(state["ewma"]) != self.n_ranks:
            raise ValueError(
                f"watch state covers {len(state['ewma'])} ranks, "
                f"expected {self.n_ranks}"
            )
        self._prev = [None if v is None else float(v) for v in state["prev"]]
        self._ewma = [float(v) for v in state["ewma"]]
        self._samples = [int(v) for v in state["samples"]]
        self._last_core = [
            None if v is None else int(v) for v in state["last_core"]
        ]
        self._restart = [bool(v) for v in state["restart"]]
        self.flagged = [bool(v) for v in state["flagged"]]
        self.flag_steps = [int(v) for v in state["flag_steps"]]
        # .get(): checkpoints written before measured work rates existed
        # load cleanly with an empty rate table.
        self.backend_rates = {
            int(r): float(v)
            for r, v in (state.get("backend_rates") or {}).items()
        }
