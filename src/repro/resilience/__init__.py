"""Resilience subsystem: fault injection, straggler watch, checkpoint/restart.

Three cooperating pieces (docs/resilience.md):

* :class:`FaultPlan` / :class:`FaultInjector` (:mod:`repro.resilience.faults`)
  — a deterministic, seedable schedule of perturbations the scheduler
  consults at dispatch;
* :class:`Checkpointer` / :class:`Snapshot`
  (:mod:`repro.resilience.checkpoint`) — versioned, CRC-validated snapshots
  of full simulation state with bitwise-identical resume;
* :class:`StragglerWatch` (:mod:`repro.resilience.straggler`) — EWMA-vs-
  median detection over measured per-rank step times, feeding LB hints.

Drivers take a :class:`ResilienceConfig`; the scheduler sees only the small
:class:`RuntimeResilience` hook object, keeping the runtime decoupled from
the subsystem's policy surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.checkpoint import (
    Checkpointer,
    Snapshot,
    pause_engine,
    resume_engine,
    spec_from_dict,
    spec_to_dict,
)
from repro.resilience.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    MessageFault,
    SlowdownFault,
    unit_hash,
)
from repro.resilience.straggler import StragglerWatch
from repro.runtime.errors import RankFailedError

__all__ = [
    "CrashFault",
    "Checkpointer",
    "FaultInjector",
    "FaultPlan",
    "MessageFault",
    "RecoveryPolicy",
    "ResilienceConfig",
    "RuntimeResilience",
    "Snapshot",
    "SlowdownFault",
    "StragglerWatch",
    "pause_engine",
    "resume_engine",
    "spec_from_dict",
    "spec_to_dict",
    "unit_hash",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a crashed rank comes back (all charged to the simulated clock).

    A crash costs ``retries`` failed restart attempts with exponential
    backoff (``backoff_s * 2**i``) plus the time to re-read the rank's
    state from the latest checkpoint (``blob_bytes / restore_bandwidth``;
    ``default_state_bytes`` prices the restore when no checkpoint has been
    taken yet).  The restored state is the *current* one — the simulated
    world is deterministic, so replay from the checkpoint would reproduce
    it exactly; the model charges the recovery time without re-executing.
    """

    restore_bandwidth: float = 2.0e8
    backoff_s: float = 1e-3
    default_state_bytes: int = 1 << 20

    def recovery_seconds(self, retries: int, state_bytes: int) -> float:
        backoff = sum(self.backoff_s * (2.0 ** i) for i in range(retries))
        return backoff + state_bytes / self.restore_bandwidth


@dataclass
class ResilienceConfig:
    """Driver-facing bundle of the subsystem's knobs (all optional)."""

    plan: FaultPlan | None = None
    watch: StragglerWatch | None = None
    checkpointer: Checkpointer | None = None
    recovery: RecoveryPolicy | None = None
    resume: Snapshot | None = None

    def runtime_hook(self) -> "RuntimeResilience | None":
        if self.plan is None and self.watch is None:
            return None
        injector = FaultInjector(self.plan) if self.plan is not None else None
        return RuntimeResilience(
            injector=injector,
            watch=self.watch,
            recovery=self.recovery,
            checkpointer=self.checkpointer,
        )


class RuntimeResilience:
    """The scheduler's view of the subsystem: three dispatch-time hooks.

    All perturbations are deterministic functions of (plan, simulated
    state), and all instrumentation here is guarded/observational — the
    hooks change *when* things happen (simulated seconds), never *what*
    the kernel computes.
    """

    def __init__(self, injector=None, watch=None, recovery=None, checkpointer=None):
        self.injector = injector
        self.watch = watch
        self.recovery = recovery
        self.checkpointer = checkpointer

    # -- compute dispatch ---------------------------------------------
    def scale_compute(self, scheduler, rank: int, seconds: float) -> float:
        if self.injector is None:
            return seconds
        scale = self.injector.compute_scale(
            rank, scheduler.rank_to_core[rank], scheduler.step[rank]
        )
        return seconds * scale

    # -- message send --------------------------------------------------
    def message_penalty(
        self, scheduler, src: int, dst: int, nbytes: int
    ) -> float:
        if self.injector is None or not self.injector.has_message_faults:
            return 0.0
        extra, drops = self.injector.message_penalty(
            src, dst, scheduler.step[src], scheduler.transport.messages_sent
        )
        if extra > 0.0:
            m = scheduler.metrics
            if m is not None:
                m.counter("resilience.messages_perturbed").inc()
                if drops:
                    m.counter("resilience.messages_dropped").inc(drops)
            if drops and scheduler.tracer is not None:
                scheduler.tracer.instant(
                    "fault:msg_drop", "fault", src,
                    scheduler.rank_to_core[src], scheduler.clock[src],
                    dst=dst, drops=drops, nbytes=nbytes,
                )
        return extra

    # -- step boundary -------------------------------------------------
    def on_step_boundary(self, scheduler, rank: int, step: int) -> None:
        if self.watch is not None:
            events = self.watch.observe(
                rank, step, scheduler.rank_busy[rank],
                core=scheduler.rank_to_core[rank],
            )
            for kind, r in events:
                if scheduler.metrics is not None:
                    scheduler.metrics.counter(f"resilience.straggler_{kind}").inc()
                if scheduler.tracer is not None:
                    scheduler.tracer.instant(
                        f"straggler_{kind}", "fault", r,
                        scheduler.rank_to_core[r], scheduler.clock[rank],
                    )
        if self.injector is None:
            return
        crash = self.injector.crash_at(rank, step)
        if crash is None:
            return
        if scheduler.metrics is not None:
            scheduler.metrics.counter("resilience.crashes").inc()
        if self.recovery is None:
            raise RankFailedError(rank, step, "no recovery policy configured")
        state_bytes = self.recovery.default_state_bytes
        ckpt = self.checkpointer
        if ckpt is not None and rank in ckpt.last_blob_bytes:
            state_bytes = ckpt.last_blob_bytes[rank]
        seconds = self.recovery.recovery_seconds(crash.retries, state_bytes)
        end = scheduler._occupy(rank, seconds)
        if scheduler.metrics is not None:
            scheduler.metrics.counter("resilience.recovery_s").inc(seconds)
        if scheduler.tracer is not None:
            scheduler.tracer.record(
                "recovery", "fault", rank, scheduler.rank_to_core[rank],
                end - seconds, end,
                retries=crash.retries, state_bytes=state_bytes,
            )
