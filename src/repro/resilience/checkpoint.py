"""Checkpoint/restart for the simulated PIC runs.

A checkpoint is a *consistent cut*: the drivers end step ``t`` with a
barrier (after charging the simulated write cost), and every rank
contributes its packed PUP blob (:func:`repro.ampi.pup.pack_vp`) when it
resumes.  Because the scheduler is single-threaded and collectives
synchronize all clocks, the first contribution of a round observes global
scheduler state (clocks, core clocks, VP->core placement, transport
counters, straggler-watch state) before any post-barrier op dispatches —
so the captured cut is exactly the world at the barrier.

On-disk format (versioned, CRC-validated)::

    magic "RPRKCKPT" | u32 version | u64 payload_len | payload | u32 crc32

    payload = u32 header_len | header JSON | rank-0 blob | rank-1 blob ...

The header carries the global scheduler state, per-rank blob sizes, and a
``meta`` block (spec, implementation, tunables) sufficient for the CLI
``resume`` subcommand to rebuild the run from the file alone.  Restoring
(:meth:`Snapshot.load` + the drivers' resume path) continues any of the
three implementations bitwise-identically to the uninterrupted run:
positions, checksums, sim clocks and the golden trace from the resumed
step onward are equal (pinned by tests/resilience/test_resume_equivalence).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any

# Canonical spec (de)serialization lives with the spec itself; re-exported
# here because checkpoint metadata has always carried it.
from repro.core.spec import spec_from_dict, spec_to_dict  # noqa: F401
from repro.runtime.errors import CheckpointCorruptError

CKPT_MAGIC = b"RPRKCKPT"
CKPT_VERSION = 1


# ----------------------------------------------------------------------
# Global scheduler state capture/restore
# ----------------------------------------------------------------------
def _capture_global(scheduler, next_step: int) -> dict:
    res = getattr(scheduler, "resilience", None)
    watch = res.watch if res is not None else None
    return {
        "next_step": next_step,
        "clocks": list(scheduler.clock),
        "rank_busy": list(scheduler.rank_busy),
        "core_clock": {str(k): v for k, v in scheduler.core_clock.items()},
        "core_busy": {str(k): v for k, v in scheduler.core_busy.items()},
        "rank_to_core": list(scheduler.rank_to_core),
        "messages_sent": scheduler.transport.messages_sent,
        "bytes_sent": scheduler.transport.bytes_sent,
        "seq": scheduler.transport._seq,
        "collectives_completed": scheduler.collectives_completed,
        "watch": None if watch is None else watch.state_dict(),
    }


class Snapshot:
    """One parsed checkpoint: global header plus per-rank PUP blobs."""

    def __init__(self, header: dict, blobs: list[bytes]):
        self.header = header
        self.blobs = blobs
        self._applied = False

    # -- convenience accessors ----------------------------------------
    @property
    def next_step(self) -> int:
        return int(self.header["global"]["next_step"])

    @property
    def meta(self) -> dict:
        return self.header.get("meta", {})

    @property
    def n_ranks(self) -> int:
        return len(self.blobs)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Snapshot":
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise CheckpointCorruptError(f"cannot read checkpoint {path}: {exc}")
        if len(raw) < len(CKPT_MAGIC) + 12 + 4:
            raise CheckpointCorruptError(f"checkpoint {path} is truncated")
        if raw[: len(CKPT_MAGIC)] != CKPT_MAGIC:
            raise CheckpointCorruptError(f"{path} is not a checkpoint (bad magic)")
        off = len(CKPT_MAGIC)
        version, payload_len = struct.unpack_from("<IQ", raw, off)
        off += 12
        if version != CKPT_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint {path} has unsupported version {version}"
            )
        if len(raw) < off + payload_len + 4:
            raise CheckpointCorruptError(
                f"checkpoint {path} is truncated "
                f"({len(raw) - off - 4} of {payload_len} payload bytes)"
            )
        payload = raw[off : off + payload_len]
        (crc_stored,) = struct.unpack_from("<I", raw, off + payload_len)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        if crc != crc_stored:
            raise CheckpointCorruptError(
                f"checkpoint {path} failed CRC validation "
                f"(stored {crc_stored:#010x}, computed {crc:#010x})"
            )
        (hlen,) = struct.unpack_from("<I", payload, 0)
        header = json.loads(payload[4 : 4 + hlen].decode("utf-8"))
        blobs = []
        cursor = 4 + hlen
        for size in header["blob_sizes"]:
            blobs.append(bytes(payload[cursor : cursor + size]))
            cursor += size
        return cls(header, blobs)

    def check_compatible(self, impl: str, n_ranks: int, n_cores: int) -> None:
        meta = self.meta
        if meta.get("impl") != impl:
            raise CheckpointCorruptError(
                f"checkpoint was taken by impl {meta.get('impl')!r}, "
                f"cannot resume {impl!r}"
            )
        if self.n_ranks != n_ranks or meta.get("n_cores") != n_cores:
            raise CheckpointCorruptError(
                f"checkpoint geometry ({self.n_ranks} ranks on "
                f"{meta.get('n_cores')} cores) does not match the run "
                f"({n_ranks} ranks on {n_cores} cores)"
            )

    def apply_global(self, scheduler) -> None:
        """Restore global scheduler state (idempotent; first caller wins).

        Called by every rank right after the resume barrier; the barrier
        guarantees no post-restore op has dispatched yet when the first
        caller runs, so clocks, core clocks, placement, transport counters
        and watch state all come back exactly as captured.
        """
        if self._applied:
            return
        self._applied = True
        g = self.header["global"]
        scheduler.clock[:] = [float(v) for v in g["clocks"]]
        scheduler.rank_busy[:] = [float(v) for v in g["rank_busy"]]
        scheduler.core_clock.clear()
        scheduler.core_clock.update(
            {int(k): float(v) for k, v in g["core_clock"].items()}
        )
        scheduler.core_busy.clear()
        scheduler.core_busy.update(
            {int(k): float(v) for k, v in g["core_busy"].items()}
        )
        scheduler.rank_to_core[:] = [int(v) for v in g["rank_to_core"]]
        scheduler.transport.messages_sent = int(g["messages_sent"])
        scheduler.transport.bytes_sent = int(g["bytes_sent"])
        scheduler.transport._seq = int(g["seq"])
        scheduler.collectives_completed = int(g["collectives_completed"])
        res = getattr(scheduler, "resilience", None)
        if res is not None and res.watch is not None and g["watch"] is not None:
            res.watch.load_state(g["watch"])
        if res is not None and res.checkpointer is not None:
            # Crash recovery prices the restore from the latest checkpoint's
            # blob size; the resumed run must see the same sizes the
            # uninterrupted run had on record at the cut.
            res.checkpointer.last_blob_bytes = dict(
                enumerate(self.header["blob_sizes"])
            )


class Checkpointer:
    """Coordinates periodic/on-demand snapshots across the SPMD ranks.

    ``every=N`` checkpoints at the end of every N-th step (after steps
    ``N-1, 2N-1, ...``); :meth:`request` arms one extra on-demand snapshot
    at the next step end.  The simulated write cost per rank is
    ``fixed_s + blob_bytes / bandwidth`` — checkpointing is a real,
    costed operation in simulated time, identical in the uninterrupted
    and resumed runs (the resumed run re-takes the later checkpoints on
    the same absolute schedule, producing byte-identical files).
    """

    def __init__(
        self,
        directory: str,
        every: int = 0,
        *,
        bandwidth: float = 2.0e8,
        fixed_s: float = 1e-4,
        meta: dict | None = None,
    ):
        if every < 0:
            raise ValueError("checkpoint interval must be >= 0")
        if bandwidth <= 0:
            raise ValueError("checkpoint bandwidth must be positive")
        self.directory = directory
        self.every = every
        self.bandwidth = bandwidth
        self.fixed_s = fixed_s
        self.meta = dict(meta or {})
        self.last_path: str | None = None
        self.last_blob_bytes: dict[int, int] = {}
        self._requested = False
        self._rounds: dict[int, dict] = {}

    # ------------------------------------------------------------------
    def request(self) -> None:
        """Arm one on-demand snapshot at the next step boundary."""
        self._requested = True

    def due(self, step: int) -> bool:
        if self._requested:
            return True
        return self.every > 0 and (step + 1) % self.every == 0

    def write_seconds(self, nbytes: int) -> float:
        """Simulated seconds one rank spends serializing+writing its blob."""
        return self.fixed_s + nbytes / self.bandwidth

    # ------------------------------------------------------------------
    def contribute(
        self, scheduler, rank: int, step: int, blob: bytes, n_ranks: int
    ) -> str | None:
        """One rank hands over its blob after the checkpoint barrier.

        The first contributor of a round captures the global state; the
        last writes the file and returns its path (others return None).
        """
        rnd = self._rounds.get(step)
        if rnd is None:
            rnd = self._rounds[step] = {
                "global": _capture_global(scheduler, step + 1),
                "blobs": {},
            }
        rnd["blobs"][rank] = blob
        self.last_blob_bytes[rank] = len(blob)
        if len(rnd["blobs"]) < n_ranks:
            return None
        del self._rounds[step]
        self._requested = False
        path = self._write(step, rnd)
        self.last_path = path
        return path

    def _write(self, step: int, rnd: dict) -> str:
        blobs = [rnd["blobs"][r] for r in range(len(rnd["blobs"]))]
        header = {
            "global": rnd["global"],
            "blob_sizes": [len(b) for b in blobs],
            "meta": self.meta,
        }
        hjson = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        payload = struct.pack("<I", len(hjson)) + hjson + b"".join(blobs)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"ckpt_step{step + 1:06d}.ckpt")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(CKPT_MAGIC)
            fh.write(struct.pack("<IQ", CKPT_VERSION, len(payload)))
            fh.write(payload)
            fh.write(struct.pack("<I", crc))
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Engine-level pause/resume
# ----------------------------------------------------------------------
def pause_engine(engine, checkpointer: Checkpointer, *, force: bool = False):
    """Drive ``engine`` to its next consistent checkpoint cut and stop.

    Rank generators are not picklable, so a mid-op core dump is off the
    table by design; what *is* capturable — bitwise-exactly — is the
    consistent cut the checkpoint subsystem already defines at step-end
    barriers.  Pausing therefore means: keep ticking until the
    checkpointer writes its next scheduled file, then stop driving.  The
    returned path feeds :func:`resume_engine`, which rebuilds an engine
    whose continuation is byte-identical to never having paused (the cut
    was on the uninterrupted run's schedule, so neither its clocks nor
    its later checkpoint bytes can tell the difference).

    ``force=True`` additionally arms :meth:`Checkpointer.request` so a
    run with ``every == 0`` (or one far from its next scheduled cut) can
    still be paused.  The extra on-demand checkpoint is a *real costed
    operation* in simulated time — write compute plus a barrier — so a
    forced pause is a deterministic perturbation of the timeline, not a
    transparent one.  Equivalence tests use scheduled cuts only.

    Returns the checkpoint path, or ``None`` if the engine finished
    before reaching a cut (callers should then take ``engine.result()``).
    """
    from repro.runtime.engine import ENGINE_FINISHED
    from repro.runtime.errors import RuntimeConfigError

    if checkpointer.every <= 0 and not force:
        raise RuntimeConfigError(
            "cannot pause: checkpointer has no schedule (every == 0); "
            "pass force=True to arm an on-demand checkpoint (note: a "
            "forced cut charges real simulated write time)"
        )
    if force:
        checkpointer.request()
    before = checkpointer.last_path
    while True:
        status = engine.tick()
        if status == ENGINE_FINISHED:
            return None
        engine.flush()
        if checkpointer.last_path is not None and checkpointer.last_path != before:
            return checkpointer.last_path


def resume_engine(path: str, *, checkpoint_dir: str | None = None, **build_kwargs):
    """Rebuild a paused run's engine from a checkpoint file.

    Loads the CRC-validated snapshot, reconstructs the driver from the
    ``runspec`` recorded in the checkpoint metadata and returns a fresh
    bound :class:`~repro.runtime.engine.SimEngine` that continues from
    the cut.  ``build_kwargs`` pass through to
    :func:`repro.config.build.build_impl` (tracer, executor, ...).

    ``checkpoint_dir`` names where the continuation keeps checkpointing
    (an IO location, not run identity); it defaults to the directory the
    paused run was writing into, so later scheduled checkpoints land
    byte-identically next to the pause file.
    """
    import os as _os

    from dataclasses import replace as _replace

    from repro.config.build import build_impl
    from repro.config.runspec import RunSpec

    snapshot = Snapshot.load(path)
    meta = snapshot.meta
    if "runspec" not in meta:
        raise CheckpointCorruptError(
            f"checkpoint {path} carries no runspec metadata; "
            "resume it through the driver that wrote it"
        )
    rs = RunSpec.from_dict(meta["runspec"])
    if checkpoint_dir is None:
        checkpoint_dir = _os.path.dirname(_os.path.abspath(path))
    rs = rs.with_overrides(
        resilience=_replace(rs.resilience, checkpoint_dir=checkpoint_dir)
    )
    impl = build_impl(rs, resume=snapshot, **build_kwargs)
    return impl.build_engine()
