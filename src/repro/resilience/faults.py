"""Deterministic fault plans for the simulated runtime.

A :class:`FaultPlan` is a seedable schedule of perturbations — per-rank or
per-core slowdown factors with start/stop steps, transient message
delay/drop-with-retry on the simulated transport, and one-shot rank crash
events.  The scheduler consults a :class:`FaultInjector` built from the
plan at dispatch time, so every perturbation lands at a deterministic
point of the simulated execution: two runs with the same plan produce
byte-identical clocks, traces and verification results.

Determinism is achieved without any mutable RNG inside the scheduler:
probabilistic decisions (message drops) hash the plan seed together with
stable per-message coordinates (source, destination, global send counter,
attempt number) into a uniform variate.  Because the send counter is part
of checkpointed state, a resumed run replays exactly the same drop
decisions as the uninterrupted one.

Faults perturb *simulated time only*.  Payloads are never lost — a
"dropped" message is charged retry latency and then delivered — so the
kernel's closed-form verification (Eqs. 5-6 plus the n(n+1)/2 id
checksum) passes under any plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

_MASK = (1 << 64) - 1


def unit_hash(seed: int, *coords: int) -> float:
    """Deterministic uniform variate in [0, 1) from integer coordinates.

    A splitmix64-style mixer — pure Python, platform-independent, and
    stateless, which is what lets fault decisions replay identically after
    a checkpoint restore.
    """
    h = (seed * 0x9E3779B97F4A7C15) & _MASK
    for v in coords:
        h = (h ^ ((v + 0x9E3779B97F4A7C15) & _MASK)) & _MASK
        h = (h * 0xBF58476D1CE4E5B9) & _MASK
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK
        h ^= h >> 31
    return (h & _MASK) / float(1 << 64)


@dataclass(frozen=True)
class SlowdownFault:
    """Multiply compute time of one rank (or one core) by ``factor``.

    Active for steps ``start <= step < stop`` (``stop=None`` means until
    the end of the run).  Targeting a ``core`` perturbs whatever ranks are
    mapped there when they dispatch compute — the right model for AMPI,
    where VPs can migrate off a slow node; targeting a ``rank`` follows
    the rank wherever it is placed.
    """

    factor: float
    start: int = 0
    stop: int | None = None
    rank: int | None = None
    core: int | None = None

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if (self.rank is None) == (self.core is None):
            raise ValueError("slowdown targets exactly one of rank= or core=")
        if self.start < 0 or (self.stop is not None and self.stop <= self.start):
            raise ValueError("slowdown window must satisfy 0 <= start < stop")

    def active(self, step: int) -> bool:
        return step >= self.start and (self.stop is None or step < self.stop)


@dataclass(frozen=True)
class MessageFault:
    """Perturb point-to-point messages between ``src`` and ``dst`` ranks.

    ``delay_s`` is added to the wire time of every matching message;
    ``drop_prob`` is the per-attempt probability that a transmission is
    lost and retried after ``retry_s`` (at most ``max_retries`` losses per
    message, so a message always gets through).  ``src``/``dst`` of
    ``None`` match any world rank.  Active for ``start <= step < stop``
    of the *sender's* current step.
    """

    delay_s: float = 0.0
    drop_prob: float = 0.0
    retry_s: float = 1e-4
    src: int | None = None
    dst: int | None = None
    start: int = 0
    stop: int | None = None
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.delay_s < 0 or self.retry_s < 0:
            raise ValueError("message delay/retry times must be non-negative")
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.start < 0 or (self.stop is not None and self.stop <= self.start):
            raise ValueError("message-fault window must satisfy 0 <= start < stop")

    def matches(self, src: int, dst: int, step: int) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return step >= self.start and (self.stop is None or step < self.stop)


@dataclass(frozen=True)
class CrashFault:
    """One-shot failure of ``rank`` when it reaches ``step``.

    ``retries`` is the number of failed restart attempts the recovery
    policy charges (exponential backoff) before the rank comes back from
    the latest checkpoint.  Without a recovery policy the crash raises
    :class:`repro.runtime.errors.RankFailedError` instead.
    """

    rank: int
    step: int
    retries: int = 1

    def __post_init__(self) -> None:
        if self.rank < 0 or self.step < 0:
            raise ValueError("crash rank and step must be non-negative")
        if self.retries < 0:
            raise ValueError("crash retries must be non-negative")


_FAULT_KINDS = {
    "slowdown": SlowdownFault,
    "msg": MessageFault,
    "crash": CrashFault,
}


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault events.

    Serializes to the JSON schema documented in docs/resilience.md::

        {"seed": 7, "faults": [
            {"kind": "slowdown", "core": 0, "factor": 4.0, "start": 10},
            {"kind": "msg", "src": 0, "delay_s": 1e-4, "drop_prob": 0.05},
            {"kind": "crash", "rank": 2, "step": 30, "retries": 2}]}
    """

    seed: int = 0
    faults: tuple = field(default=())

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, tuple(_FAULT_KINDS.values())):
                raise ValueError(f"unknown fault entry {f!r}")

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = []
        for f in self.faults:
            for kind, cls in _FAULT_KINDS.items():
                if type(f) is cls:
                    d = {"kind": kind}
                    d.update(
                        (k, v) for k, v in f.__dict__.items() if v is not None
                    )
                    out.append(d)
                    break
        return {"seed": self.seed, "faults": out}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        faults = []
        for entry in doc.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            fcls = _FAULT_KINDS.get(kind)
            if fcls is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            faults.append(fcls(**entry))
        return cls(seed=int(doc.get("seed", 0)), faults=tuple(faults))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class FaultInjector:
    """Stateless evaluator of a :class:`FaultPlan`.

    All methods are pure functions of (plan, arguments); the injector
    keeps no mutable state, so checkpoint/restore needs nothing from it.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._slow = tuple(f for f in plan.faults if type(f) is SlowdownFault)
        self._msg = tuple(f for f in plan.faults if type(f) is MessageFault)
        self._crash: dict[tuple[int, int], CrashFault] = {
            (f.rank, f.step): f for f in plan.faults if type(f) is CrashFault
        }

    def compute_scale(self, rank: int, core: int, step: int) -> float:
        """Combined slowdown factor for a compute dispatch (1.0 = none)."""
        scale = 1.0
        for f in self._slow:
            if f.active(step) and (
                (f.rank is not None and f.rank == rank)
                or (f.core is not None and f.core == core)
            ):
                scale *= f.factor
        return scale

    def message_penalty(
        self, src: int, dst: int, step: int, key: int
    ) -> tuple[float, int]:
        """Extra wire seconds and drop count for one message.

        ``key`` must be unique and replayable per message (the transport's
        global send counter); it seeds the per-attempt drop decisions.
        """
        extra = 0.0
        drops = 0
        for i, f in enumerate(self._msg):
            if not f.matches(src, dst, step):
                continue
            extra += f.delay_s
            if f.drop_prob > 0.0:
                for attempt in range(f.max_retries):
                    if (
                        unit_hash(self.plan.seed, i, src, dst, key, attempt)
                        >= f.drop_prob
                    ):
                        break
                    extra += f.retry_s
                    drops += 1
        return extra, drops

    def crash_at(self, rank: int, step: int) -> CrashFault | None:
        return self._crash.get((rank, step))

    @property
    def has_message_faults(self) -> bool:
        return bool(self._msg)
