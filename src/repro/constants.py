"""Physical and specification constants for the PIC PRK.

The paper (§III-B) fixes the ratio ``ke / m`` (Coulomb constant over particle
mass) to unity, and the reference PRK chooses unit mesh spacing, unit time
step and unit mesh charge magnitude so that the analytic verification of
§III-D holds to round-off even in finite-precision arithmetic.
"""

from __future__ import annotations

#: Coulomb constant divided by particle mass (paper §III-B: "we will assume
#: that ke/m equals unity").
KE_OVER_M: float = 1.0

#: Default mesh spacing ``h``.  The paper recommends ``h = 1`` so that the
#: relative particle abscissa ``x_pi = h/2`` is exactly representable and the
#: per-step displacement is exact (§III-C).
DEFAULT_H: float = 1.0

#: Default time-step length ``dt``.  With ``dt = 1`` the vertical advection
#: ``v_y * dt = m * h`` is exact in IEEE-754 arithmetic.
DEFAULT_DT: float = 1.0

#: Default magnitude ``q`` of the fixed charges placed at the mesh points.
DEFAULT_Q: float = 1.0

#: Verification tolerance on final particle coordinates.  The upstream PRK
#: reference implementation uses the same value; the closed-form trajectory is
#: exact up to accumulated round-off, which stays many orders of magnitude
#: below this threshold for any practical number of time steps.
VERIFICATION_EPSILON: float = 1.0e-5

#: Number of float64 slots used when particles are packed into a flat buffer
#: for communication (see :mod:`repro.core.particles`).
PARTICLE_RECORD_FIELDS: int = 11
