"""Execute a campaign with a content-addressed result cache.

Every expanded point is hashed by its *canonical* RunSpec identity
(:func:`repro.config.build.canonical_hash` — driver-resolved defaults, so
a sparse declaration and the equivalent fully-written one share a cache
entry).  The result of a point lives at ``<cache_dir>/<hash>.json`` as a
canonical-JSON artifact containing only simulated/derived quantities —
no wall-clock, no timestamps, no paths — so re-running a campaign
reproduces the file **byte for byte** and a completed point is skipped as
a cache hit (pinned by the CI campaign-smoke job and
tests/campaign/test_campaign.py).

Each run also writes ``<cache_dir>/<campaign>.manifest.json`` describing
what happened: per point the labels, spec hash, whether it was served
from cache, and the wall seconds it took.  The manifest is *about* the
run (it contains wall-clock), the artifacts are *about* the results
(they must not) — keep that split when extending either.

Execution order is deterministic (expansion order); with ``jobs > 1``
uncached points run concurrently, which cannot change any result (the
simulated world is single-threaded per point and bitwise-deterministic),
and the manifest stays in expansion order regardless of how the sweep
interleaved.

Points that expand to the *same* canonical hash are deduplicated before
dispatch: the first occurrence (expansion order) executes, later ones
share its artifact and are recorded with ``duplicate_of`` pointing at the
representative.

Two parallel runners:

* ``runner="fabric"`` (default) — the work-stealing fabric of
  :mod:`repro.campaign.fabric`: persistent warm workers, cache index,
  longest-expected-first ordering, batched IO, heartbeat + requeue.
* ``runner="pool"`` — the PR-7 baseline: a vanilla
  ``ProcessPoolExecutor`` submitting every point upfront.  Kept verbatim
  as the measured baseline of ``bench_campaign_throughput``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.config.runspec import RunSpec, canonical_json

ARTIFACT_SCHEMA = 1


@dataclass
class PointOutcome:
    """One point's run record (result + provenance)."""

    index: int
    labels: dict[str, Any]
    spec_hash: str
    result: dict
    cached: bool
    wall_s: float
    #: Expansion index of the representative point this one duplicates
    #: (same canonical hash), or None if it is its own representative.
    duplicate_of: int | None = None


@dataclass
class CampaignResult:
    """Everything a campaign run produced."""

    name: str
    outcomes: list[PointOutcome] = field(default_factory=list)
    manifest_path: str | None = None
    #: Fabric provenance (worker warmups, requeue faults) when the
    #: work-stealing runner executed points; None otherwise.
    fabric: dict | None = None

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def deduped(self) -> int:
        return sum(1 for o in self.outcomes if o.duplicate_of is not None)


# ----------------------------------------------------------------------
# Cache artifacts
# ----------------------------------------------------------------------
def artifact_path(cache_dir: str, spec_hash: str) -> str:
    return os.path.join(cache_dir, f"{spec_hash}.json")


def _write_artifact(
    cache_dir: str,
    spec_hash: str,
    spec: RunSpec,
    result: dict,
    *,
    durable: bool = True,
) -> str:
    """Atomically write one content-addressed result artifact.

    The content is pure canonical JSON of deterministic data, so two
    writes of the same point produce identical bytes.  ``durable=False``
    skips the per-file directory fsync — used by the fabric's
    :class:`~repro.campaign.fabric.ArtifactBatch`, which settles a whole
    group of renames with one fsync instead.
    """
    doc = {
        "schema": ARTIFACT_SCHEMA,
        "spec_hash": spec_hash,
        "spec": spec.identity_dict(),
        "result": result,
    }
    os.makedirs(cache_dir, exist_ok=True)
    path = artifact_path(cache_dir, spec_hash)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(doc))
        fh.write("\n")
    os.replace(tmp, path)
    if durable:
        from repro.campaign.fabric import _fsync_dir

        _fsync_dir(cache_dir)
    return path


def _read_artifact(cache_dir: str, spec_hash: str) -> dict | None:
    """The cached result for ``spec_hash``, or None (corrupt = miss)."""
    path = artifact_path(cache_dir, spec_hash)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("schema") != ARTIFACT_SCHEMA or doc.get("spec_hash") != spec_hash:
        return None
    result = doc.get("result")
    return result if isinstance(result, dict) else None


# ----------------------------------------------------------------------
# Point execution (module-level so ProcessPoolExecutor can pickle it)
# ----------------------------------------------------------------------
def _execute_point(spec_doc: dict) -> dict:
    from repro.config.build import execute_runspec

    return execute_runspec(RunSpec.from_dict(spec_doc))


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def run_campaign(
    campaign: CampaignSpec,
    *,
    cache_dir: str = "benchmarks/campaign-cache",
    jobs: int = 1,
    force: bool = False,
    select: Callable[[dict], bool] | None = None,
    progress: Callable[[str], None] | None = None,
    runner: str = "fabric",
    fabric: "FabricConfig | None" = None,
    order_seed: int | None = None,
) -> CampaignResult:
    """Run every (selected) point of ``campaign``, cache-aware.

    ``force`` re-executes even cached points (the rewritten artifacts must
    come out byte-identical — that *is* the determinism check).
    ``select`` filters points by their labels (e.g. to drop the 3072-core
    fig7 point unless ``REPRO_FULL`` is set).  ``progress`` receives one
    human-readable line per point.  With ``jobs > 1`` the ``runner``
    chooses between the work-stealing ``"fabric"`` (default) and the
    legacy ``"pool"`` baseline; ``fabric`` overrides the fabric's knobs.
    ``runner="engines"`` instead interleaves every uncached point through
    one in-process :class:`~repro.runtime.multiplex.EngineGroup` sharing
    a single executor pool (no worker processes; ``jobs`` is ignored);
    ``order_seed`` shuffles its per-round slice order — artifact bytes
    are interleaving-invariant.
    """
    from repro.campaign.fabric import CacheIndex, FabricConfig
    from repro.config.build import canonical_runspec

    if runner not in ("fabric", "pool", "engines"):
        raise ValueError(f"unknown campaign runner {runner!r}")

    points = campaign.expand()
    if select is not None:
        points = [p for p in points if select(p.labels)]

    # Canonicalize once per point: the hash AND the artifact's embedded
    # spec both come from the canonical form, so two declarations of the
    # same run (one sparse, one fully written out) share one artifact —
    # byte for byte.
    canon = {p.index: canonical_runspec(p.spec) for p in points}
    hashes = {index: rs.spec_hash() for index, rs in canon.items()}

    # Dedupe identical points before dispatch: the first occurrence (in
    # expansion order) is the representative; later ones share its result
    # and artifact without executing.
    rep_of_hash: dict[str, int] = {}
    duplicate_of: dict[int, int] = {}
    for p in points:
        h = hashes[p.index]
        if h in rep_of_hash:
            duplicate_of[p.index] = rep_of_hash[h]
        else:
            rep_of_hash[h] = p.index

    # One directory scan answers every cache probe from memory; misses
    # cost no syscall at all (see fabric.CacheIndex).
    index = CacheIndex(cache_dir)
    outcomes: dict[int, PointOutcome] = {}
    to_run: list[CampaignPoint] = []
    for p in points:
        if p.index in duplicate_of:
            continue
        cached = None if force else index.lookup(hashes[p.index])
        if cached is not None:
            outcomes[p.index] = PointOutcome(
                index=p.index, labels=p.labels, spec_hash=hashes[p.index],
                result=cached, cached=True, wall_s=0.0,
            )
            if progress:
                progress(_line(campaign.name, p, cached, cached=True))
        else:
            to_run.append(p)

    fabric_doc = None
    if to_run:
        if runner == "engines":
            _run_engines(
                campaign, to_run, canon, hashes, outcomes, cache_dir,
                progress, index, order_seed,
            )
        elif jobs > 1 and runner == "fabric":
            cfg = fabric or FabricConfig(jobs=jobs)
            if cfg.jobs != jobs:
                cfg = replace(cfg, jobs=jobs)
            fabric_doc = _run_fabric(
                campaign, points, to_run, canon, hashes, outcomes,
                cache_dir, cfg, progress, index,
            )
        elif jobs > 1:
            _run_pool(
                campaign, to_run, canon, hashes, outcomes, cache_dir, jobs,
                progress,
            )
        else:
            for p in to_run:
                t0 = time.perf_counter()
                result = _execute_point(p.spec.to_dict())
                wall = time.perf_counter() - t0
                _write_artifact(cache_dir, hashes[p.index], canon[p.index], result)
                outcomes[p.index] = PointOutcome(
                    index=p.index, labels=p.labels, spec_hash=hashes[p.index],
                    result=result, cached=False, wall_s=wall,
                )
                if progress:
                    progress(_line(campaign.name, p, result, cached=False))

    # Duplicates share the representative's (now materialized) result.
    for p in points:
        rep = duplicate_of.get(p.index)
        if rep is None:
            continue
        rep_outcome = outcomes[rep]
        outcomes[p.index] = PointOutcome(
            index=p.index, labels=p.labels, spec_hash=rep_outcome.spec_hash,
            result=rep_outcome.result, cached=True, wall_s=0.0,
            duplicate_of=rep,
        )
        if progress:
            progress(_line(campaign.name, p, rep_outcome.result, cached=True))

    ordered = [outcomes[p.index] for p in points]
    res = CampaignResult(name=campaign.name, outcomes=ordered, fabric=fabric_doc)
    res.manifest_path = _write_manifest(campaign, res, cache_dir)
    return res


def _run_fabric(
    campaign, points, to_run, canon, hashes, outcomes, cache_dir, cfg,
    progress, index,
):
    """Run uncached representatives over the work-stealing fabric.

    Streams the manifest as points complete (grouped with the artifact
    flushes), so a scheduler death mid-sweep leaves a valid manifest of
    everything finished — and those points re-run as pure cache hits.
    """
    from repro.campaign.fabric import run_fabric

    by_index = {p.index: p for p in to_run}
    tasks = [(p.index, p.spec, p.spec.to_dict()) for p in to_run]

    def on_done(seq: int, result: dict, wall_s: float) -> None:
        p = by_index[seq]
        outcomes[seq] = PointOutcome(
            index=seq, labels=p.labels, spec_hash=hashes[seq],
            result=result, cached=False, wall_s=wall_s,
        )
        if progress:
            progress(_line(campaign.name, p, result, cached=False))

    def manifest_flush() -> None:
        done = [outcomes[p.index] for p in points if p.index in outcomes]
        partial = CampaignResult(name=campaign.name, outcomes=done)
        _write_manifest(campaign, partial, cache_dir, complete=False)

    _, stats = run_fabric(
        tasks,
        cache_dir=cache_dir,
        config=cfg,
        hashes=hashes,
        canon=canon,
        index=index,
        on_done=on_done,
        manifest_flush=manifest_flush,
    )
    return stats.to_doc()


def _run_engines(
    campaign, to_run, canon, hashes, outcomes, cache_dir, progress, index,
    order_seed,
):
    """Interleave uncached representatives through one in-process group.

    Artifacts are written as each engine finishes (expansion order —
    ``EngineGroup.run_all`` reports in add order), with the same durable
    per-file write the serial loop uses, so the bytes on disk are
    indistinguishable from a serial ``run()`` sweep.
    """
    from repro.campaign.fabric import run_engines

    by_index = {p.index: p for p in to_run}

    def on_done(seq: int, result: dict, wall_s: float) -> None:
        p = by_index[seq]
        _write_artifact(cache_dir, hashes[seq], canon[seq], result)
        if index is not None:
            index.add(hashes[seq])
        outcomes[seq] = PointOutcome(
            index=seq, labels=p.labels, spec_hash=hashes[seq],
            result=result, cached=False, wall_s=wall_s,
        )
        if progress:
            progress(_line(campaign.name, p, result, cached=False))

    run_engines(
        [(p.index, p.spec) for p in to_run],
        order_seed=order_seed,
        on_done=on_done,
    )


def _run_pool(campaign, to_run, canon, hashes, outcomes, cache_dir, jobs, progress):
    """PR-7 baseline: fan uncached points out over a vanilla process pool.

    Kept verbatim as the measured baseline of
    :func:`repro.bench.perf.bench_campaign_throughput` — every point pays
    its own executor startup inside ``_execute_point``, submission order
    is expansion order, and the cache was probed per point upstream.
    """
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        t0 = time.perf_counter()
        futures = {
            p.index: pool.submit(_execute_point, p.spec.to_dict()) for p in to_run
        }
        for p in to_run:
            result = futures[p.index].result()
            _write_artifact(cache_dir, hashes[p.index], canon[p.index], result)
            outcomes[p.index] = PointOutcome(
                index=p.index, labels=p.labels, spec_hash=hashes[p.index],
                result=result, cached=False,
                # Concurrent points overlap; charge elapsed-so-far once each.
                wall_s=time.perf_counter() - t0,
            )
            if progress:
                progress(_line(campaign.name, p, result, cached=False))


def _line(name: str, point: CampaignPoint, result: dict, *, cached: bool) -> str:
    labels = " ".join(f"{k}={v}" for k, v in point.labels.items())
    sim = result.get("sim_time_s")
    sim_txt = "-" if sim is None else f"{sim:.4f}s"
    tag = "cached" if cached else "ran"
    return f"[{name}] {tag:6s} {labels}: T={sim_txt}"


def _write_manifest(
    campaign: CampaignSpec,
    res: CampaignResult,
    cache_dir: str,
    *,
    complete: bool = True,
) -> str:
    """Write the (possibly partial) manifest atomically.

    ``complete=False`` marks a streamed mid-sweep snapshot: it lists only
    the points finished so far, in expansion order — enough for a
    post-mortem and for a re-run to complete the finished points from
    cache.
    """
    doc = {
        "schema": 1,
        "campaign": campaign.name,
        "complete": complete,
        "points": [
            {
                "index": o.index,
                "labels": o.labels,
                "spec_hash": o.spec_hash,
                "cached": o.cached,
                "wall_s": round(o.wall_s, 6),
                "artifact": os.path.basename(artifact_path(cache_dir, o.spec_hash)),
                **(
                    {"duplicate_of": o.duplicate_of}
                    if o.duplicate_of is not None
                    else {}
                ),
            }
            for o in res.outcomes
        ],
        "executed": res.executed,
        "cached": res.cached,
        "deduped": res.deduped,
    }
    if res.fabric is not None:
        doc["fabric"] = res.fabric
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"{campaign.name}.manifest.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
