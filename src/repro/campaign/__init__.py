"""Campaign engine: declarative sweeps over RunSpecs with a result cache.

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`: a JSON sweep
  declaration (base RunSpec + axes or explicit points) that expands into
  a validated RunSpec matrix;
* :mod:`repro.campaign.runner` — :func:`run_campaign`: executes the
  matrix (optionally across worker processes), content-addresses every
  result by the spec's canonical hash, and writes a manifest.  A repeated
  run completes entirely from cache with byte-identical artifacts.
* :mod:`repro.campaign.fabric` — the work-stealing sweep scheduler
  behind ``jobs > 1``: persistent warm workers (JIT warmup + executor
  pool startup paid once per worker), a single-scan cache index,
  longest-expected-first dispatch seeded from the cost model, batched
  artifact/manifest IO with grouped fsync, and heartbeat + requeue for
  workers that die mid-point.

The fig5/fig6/fig7 figure pipelines are campaigns over this engine (see
``repro.bench.campaigns`` and docs/campaigns.md).
"""

from repro.campaign.fabric import (
    CacheIndex,
    CampaignPointError,
    FabricConfig,
    WorkerLostError,
)
from repro.campaign.runner import (
    CampaignResult,
    PointOutcome,
    artifact_path,
    run_campaign,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec

__all__ = [
    "CacheIndex",
    "CampaignPoint",
    "CampaignPointError",
    "CampaignResult",
    "CampaignSpec",
    "FabricConfig",
    "PointOutcome",
    "WorkerLostError",
    "artifact_path",
    "run_campaign",
]
