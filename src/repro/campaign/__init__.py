"""Campaign engine: declarative sweeps over RunSpecs with a result cache.

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`: a JSON sweep
  declaration (base RunSpec + axes or explicit points) that expands into
  a validated RunSpec matrix;
* :mod:`repro.campaign.runner` — :func:`run_campaign`: executes the
  matrix (optionally across worker processes), content-addresses every
  result by the spec's canonical hash, and writes a manifest.  A repeated
  run completes entirely from cache with byte-identical artifacts.

The fig5/fig6/fig7 figure pipelines are campaigns over this engine (see
``repro.bench.campaigns`` and docs/campaigns.md).
"""

from repro.campaign.runner import (
    CampaignResult,
    PointOutcome,
    artifact_path,
    run_campaign,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "PointOutcome",
    "artifact_path",
    "run_campaign",
]
