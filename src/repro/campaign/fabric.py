"""Work-stealing campaign fabric: persistent warm workers over a sweep.

The PR-7 runner (`repro.campaign.runner._run_pool`, kept as the ``pool``
baseline) fans every uncached point out through a vanilla
``ProcessPoolExecutor``: each point pays process-pool startup and JIT
warmup *again* inside its own ``execute_runspec`` call, the artifact
cache is probed one ``open()`` at a time, and a point landing at the tail
of the submission order serializes the whole sweep behind it.  This
module replaces that with a small fabric:

* **Persistent warm workers.**  ``jobs`` long-lived worker processes each
  pay kernel JIT warmup once at boot (reported per worker as
  ``jit_warmup_s``) and keep a cache of *warm executors* keyed by the
  resolved executor configuration, so a sweep of process-executor points
  pays ``pool_startup_s`` once per (worker, config) instead of once per
  point.  Executors are identity-neutral (excluded from ``spec_hash``,
  bitwise-equal results across backends), so reuse cannot change any
  artifact byte.

* **Pull-based scheduling, longest-expected-first.**  The parent holds
  one pending deque sorted by the cost model's predicted seconds per
  point (:func:`repro.runtime.costmodel.predicted_point_seconds` over
  predicted pushes, scaled by the nominal rate of each point's kernel
  backend) and feeds a worker its next point the moment the previous one
  completes — dynamic pull scheduling in the sense of Smilei's task
  over-decomposition (arXiv:2204.12837), with the LPT ordering Rowan et
  al. (arXiv:2104.11385) motivate from measured/modelled work rates.  The
  slowest points start first, so the tail is filled by cheap points
  instead of being serialized behind an expensive one.

* **Shared cache index.**  :class:`CacheIndex` lists the cache directory
  **once** and answers membership from memory; only real hits open a
  file.  A 10,000-point sweep against a cold cache costs one ``scandir``
  instead of 10,000 failed ``open()`` calls.

* **Batched IO with grouped fsync.**  Completed artifacts and the
  streamed manifest are flushed in groups of ``io_batch``: each artifact
  is still written atomically (tmp + rename, byte-identical to the
  serial writer), but durability is settled with a single directory
  ``fsync`` per group rather than per file.  The manifest on disk is
  refreshed at the same cadence with ``"complete": false``, so a
  scheduler that dies mid-sweep leaves a valid, resumable manifest whose
  finished points re-run as pure cache hits.

* **Heartbeat + requeue.**  Workers stamp a shared heartbeat array from a
  daemon thread; the parent waits on connection objects *and* process
  sentinels, so a worker that dies mid-point is noticed immediately, its
  in-flight point is requeued (recorded in the manifest as a
  ``{"fault": "crash"}`` event — the resilience subsystem's fault
  vocabulary, see :class:`repro.resilience.faults.CrashFault`), and a
  replacement worker is spawned.  A killed worker costs one point's
  re-execution, not the sweep.  A point that dies ``max_retries + 1``
  times raises :class:`WorkerLostError` naming the worker and point.

Determinism: execution order is a scheduling detail — outcomes are
reassembled in expansion order, artifacts are content-addressed, and the
simulated results are bitwise-deterministic per point, so the fabric
produces byte-identical artifacts and an expansion-ordered manifest no
matter how the sweep interleaves (pinned by
``tests/campaign/test_fabric.py``).
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config.runspec import RunSpec
from repro.runtime.costmodel import (
    predicted_point_pushes,
    predicted_point_seconds,
)

#: Test-only chaos hook: ``"<worker-id>:<nth-task>"`` makes the worker
#: with that incarnation id exit hard (``os._exit``) upon *receiving* its
#: n-th task — after the parent has recorded the dispatch, before any
#: result — which is exactly the mid-point death the requeue path must
#: absorb.  Respawned workers get fresh incarnation ids, so the hook
#: fires once per setting.
CRASH_ENV = "REPRO_FABRIC_CRASH"

_CRASH_EXIT = 17


class WorkerLostError(RuntimeError):
    """A sweep point kept dying with its worker, beyond ``max_retries``.

    The campaign analogue of the runtime's
    :class:`~repro.runtime.errors.RankFailedError`: carries the worker
    (the fabric's "rank") and the point index so harnesses and tests can
    name exactly which perturbation killed the sweep.
    """

    def __init__(self, worker: int, point_index: int, attempts: int):
        self.worker = worker
        self.point_index = point_index
        self.attempts = attempts
        super().__init__(
            f"campaign point {point_index} died with its worker "
            f"{attempts} time(s) (last on worker {worker}); "
            "giving up rather than requeueing a poison point"
        )


@dataclass(frozen=True)
class FabricConfig:
    """Knobs for the campaign fabric (CLI: ``pic-prk campaign``)."""

    #: Worker fleet size (the campaign ``--jobs`` value).
    jobs: int = 2
    #: Completed points buffered before artifacts + manifest are flushed
    #: with one grouped directory fsync.
    io_batch: int = 8
    #: A worker whose heartbeat is older than this *and* whose process is
    #: unresponsive is declared lost and its point requeued.  Process
    #: death itself is detected immediately via sentinels; the heartbeat
    #: catches a worker that is alive but wedged.
    heartbeat_timeout_s: float = 120.0
    #: Re-executions granted to a point whose worker died mid-run.
    max_retries: int = 1
    #: multiprocessing start method; None picks ``fork`` where available
    #: (workers inherit warm imports) and ``spawn`` elsewhere.
    mp_context: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("fabric jobs must be >= 1")
        if self.io_batch < 1:
            raise ValueError("io_batch must be >= 1")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


@dataclass
class WorkerStats:
    """Per-worker provenance: warmup paid once, points served, busy time."""

    worker: int
    pid: int | None = None
    jit_warmup_s: float = 0.0
    #: One entry per warm executor this worker built: config key ->
    #: pool startup seconds (paid once, reused across points).
    pool_startup_s: dict[str, float] = field(default_factory=dict)
    points: int = 0
    busy_s: float = 0.0
    lost: bool = False


@dataclass
class FabricStats:
    """Everything the fabric learned about its own run."""

    workers: list[WorkerStats] = field(default_factory=list)
    #: Requeue events in the resilience fault vocabulary.
    faults: list[dict] = field(default_factory=list)
    requeues: int = 0

    def to_doc(self) -> dict:
        return {
            "workers": [
                {
                    "worker": w.worker,
                    "pid": w.pid,
                    "jit_warmup_s": round(w.jit_warmup_s, 6),
                    "pool_startup_s": {
                        k: round(v, 6) for k, v in sorted(w.pool_startup_s.items())
                    },
                    "points": w.points,
                    "busy_s": round(w.busy_s, 6),
                    "lost": w.lost,
                }
                for w in self.workers
            ],
            "faults": list(self.faults),
            "requeues": self.requeues,
        }


# ----------------------------------------------------------------------
# Cache index: one directory scan, membership from memory
# ----------------------------------------------------------------------
class CacheIndex:
    """In-memory index of a content-addressed artifact cache directory.

    Built from a single ``scandir``; :meth:`lookup` answers misses without
    any syscall and opens only files the index knows exist.  Validation
    (schema, hash echo, corrupt-is-a-miss) stays in the reader.
    """

    def __init__(self, cache_dir: str):
        self.cache_dir = cache_dir
        self._names: set[str] = set()
        try:
            with os.scandir(cache_dir) as it:
                for entry in it:
                    name = entry.name
                    if name.endswith(".json") and not name.endswith(
                        ".manifest.json"
                    ):
                        self._names.add(name[: -len(".json")])
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self._names

    def lookup(self, spec_hash: str) -> dict | None:
        """The cached result for ``spec_hash`` or None — index-gated."""
        from repro.campaign.runner import _read_artifact

        if spec_hash not in self._names:
            return None
        return _read_artifact(self.cache_dir, spec_hash)

    def add(self, spec_hash: str) -> None:
        """Record a freshly-written artifact (keeps the index current)."""
        self._names.add(spec_hash)


# ----------------------------------------------------------------------
# Batched artifact/manifest IO with grouped fsync
# ----------------------------------------------------------------------
class ArtifactBatch:
    """Groups artifact writes and settles durability once per flush.

    Each artifact is still written atomically (tmp file + rename) with
    the exact bytes the serial writer produces; what is *grouped* is the
    directory fsync that makes the renames durable — one per flush
    instead of one per point.
    """

    def __init__(self, cache_dir: str, flush_hook: Callable[[], None] | None = None):
        self.cache_dir = cache_dir
        self._pending: list[tuple[str, RunSpec, dict]] = []
        self._flush_hook = flush_hook

    def add(self, spec_hash: str, spec: RunSpec, result: dict) -> None:
        self._pending.append((spec_hash, spec, result))

    def __len__(self) -> int:
        return len(self._pending)

    def flush(self) -> None:
        from repro.campaign.runner import _write_artifact

        if not self._pending:
            if self._flush_hook is not None:
                self._flush_hook()
            return
        for spec_hash, spec, result in self._pending:
            _write_artifact(
                self.cache_dir, spec_hash, spec, result, durable=False
            )
        self._pending.clear()
        _fsync_dir(self.cache_dir)
        if self._flush_hook is not None:
            self._flush_hook()


def _fsync_dir(path: str) -> None:
    """One fsync on the directory: settles a whole group of renames."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # not all filesystems support directory fsync
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Scheduling order
# ----------------------------------------------------------------------
def schedule_order(tasks: list[tuple[int, RunSpec]]) -> list[int]:
    """Longest-expected-first order of ``(index, spec)`` tasks.

    Returns the indices sorted by descending predicted seconds (nominal
    backend rate over predicted pushes), ties broken by expansion index
    so the order is deterministic.
    """
    from repro.core.kernel_compiled import resolve_backend

    def predicted(item: tuple[int, RunSpec]) -> float:
        _, rs = item
        pushes = predicted_point_pushes(
            rs.workload.n_particles, rs.workload.steps
        )
        try:
            backend = resolve_backend(rs.executor.kernel_backend)
        except Exception:
            backend = "python"  # let execution raise the real error
        return predicted_point_seconds(pushes, backend)

    ranked = sorted(tasks, key=lambda item: (-predicted(item), item[0]))
    return [index for index, _ in ranked]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _executor_key(rs: RunSpec) -> tuple:
    """The resolved executor identity a warm executor is cached under."""
    from repro.config.env import (
        resolve_dispatch,
        resolve_executor,
        resolve_kernel_backend,
        resolve_ring_slots,
        resolve_workers,
    )

    return (
        resolve_executor(None, rs.executor.kind),
        resolve_workers(None, rs.executor.workers),
        resolve_kernel_backend(None, rs.executor.kernel_backend),
        resolve_dispatch(None, rs.executor.dispatch),
        resolve_ring_slots(None, rs.executor.ring_slots),
    )


def _fabric_worker(wid: int, conn, hb, slot: int) -> None:
    """Worker main: warm up once, then pull points until told to stop.

    Protocol (all over the duplex pipe ``conn``):

    * ``("ready", pid, jit_warmup_s)`` — sent once after boot warmup;
    * parent sends ``("run", seq, spec_doc)`` or ``("stop",)``;
    * ``("warm", key, pool_startup_s)`` — sent when a new warm executor
      is built (once per executor config, *not* per point);
    * ``("done", seq, result, wall_s)`` / ``("error", seq, tb)``.

    A closed parent pipe (EOFError) means the scheduler died: exit
    quietly — the streamed manifest plus the artifact cache make the
    sweep resumable.
    """
    import threading

    from repro.config.build import build_executor, execute_runspec
    from repro.core import kernel_compiled

    crash_at = None
    crash_spec = os.environ.get(CRASH_ENV)
    if crash_spec:
        crash_wid, crash_nth = crash_spec.split(":")
        if int(crash_wid) == wid:
            crash_at = int(crash_nth)

    def stamp() -> None:
        hb[slot] = time.monotonic()

    stamp()
    beat = threading.Thread(
        target=_heartbeat_loop, args=(hb, slot), daemon=True
    )
    beat.start()

    jit_s = kernel_compiled.warmup(kernel_compiled.resolve_backend("auto"))
    conn.send(("ready", os.getpid(), jit_s))

    executors: dict[tuple, Any] = {}
    received = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            _, seq, spec_doc = msg
            if crash_at is not None and received == crash_at:
                os._exit(_CRASH_EXIT)
            received += 1
            t_run = time.perf_counter()
            try:
                rs = RunSpec.from_dict(spec_doc)
                key = _executor_key(rs)
                ex = executors.get(key)
                if ex is None:
                    t_warm = time.perf_counter()
                    ex = build_executor(rs)
                    start = getattr(ex, "start", None)
                    if callable(start):
                        start()
                        ex.ensure_ready()
                    executors[key] = ex
                    startup = getattr(
                        ex, "pool_startup_s",
                        time.perf_counter() - t_warm,
                    )
                    conn.send(("warm", "/".join(map(str, key)), startup))
                result = execute_runspec(rs, executor=ex)
            except BaseException:
                conn.send(("error", seq, traceback.format_exc()))
                break
            conn.send(("done", seq, result, time.perf_counter() - t_run))
    finally:
        for ex in executors.values():
            try:
                ex.close()
            except Exception:
                pass


def _heartbeat_loop(hb, slot: int, period: float = 0.25) -> None:
    while True:
        hb[slot] = time.monotonic()
        time.sleep(period)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle: process, pipe, heartbeat slot, in-flight seq."""

    def __init__(self, ctx, wid: int, hb, slot: int):
        self.wid = wid
        self.slot = slot
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_fabric_worker,
            args=(wid, child_conn, hb, slot),
            name=f"campaign-fabric-{wid}",
            daemon=False,  # workers spawn their own executor pools
        )
        self.proc.start()
        child_conn.close()
        self.ready = False
        self.in_flight: int | None = None
        self.stats = WorkerStats(worker=wid)

    def alive(self) -> bool:
        return self.proc.is_alive()


def _pick_context(cfg: FabricConfig):
    import multiprocessing as mp

    name = cfg.mp_context
    if name is None:
        name = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(name)


def run_fabric(
    tasks: list[tuple[int, RunSpec, dict]],
    *,
    cache_dir: str,
    config: FabricConfig,
    hashes: dict[int, str],
    canon: dict[int, RunSpec],
    index: CacheIndex | None = None,
    on_done: Callable[[int, dict, float], None] | None = None,
    manifest_flush: Callable[[], None] | None = None,
) -> tuple[dict[int, tuple[dict, float]], FabricStats]:
    """Run ``(index, spec, spec_doc)`` tasks over the warm-worker fleet.

    Returns ``{point_index: (result, wall_s)}`` plus the fabric stats.
    ``on_done`` fires per completed point (progress lines); artifacts and
    the streamed manifest (``manifest_flush``) are flushed every
    ``config.io_batch`` completions with one grouped fsync.
    """
    from multiprocessing import connection as mpc

    ctx = _pick_context(config)
    jobs = min(config.jobs, len(tasks)) or 1
    hb = ctx.Array("d", jobs)

    order = schedule_order([(i, rs) for i, rs, _ in tasks])
    by_index = {i: (rs, doc) for i, rs, doc in tasks}
    pending: deque[int] = deque(order)
    attempts: dict[int, int] = {}

    stats = FabricStats()
    batch = ArtifactBatch(cache_dir, flush_hook=manifest_flush)
    results: dict[int, tuple[dict, float]] = {}

    next_wid = 0
    workers: list[_Worker] = []

    def spawn(slot: int) -> _Worker:
        nonlocal next_wid
        w = _Worker(ctx, next_wid, hb, slot)
        next_wid += 1
        stats.workers.append(w.stats)
        return w

    def dispatch(w: _Worker) -> None:
        if not pending:
            return
        index_ = pending[0]
        _, doc = by_index[index_]
        try:
            w.conn.send(("run", index_, doc))
        except (BrokenPipeError, OSError):
            return  # worker just died; its sentinel will recycle it
        pending.popleft()
        w.in_flight = index_

    def requeue(w: _Worker, reason: str) -> None:
        """Absorb a dead worker: record the fault, recycle its point."""
        w.stats.lost = True
        stats.faults.append(
            {
                "fault": "crash",
                "worker": w.wid,
                "point": w.in_flight,
                "detail": reason,
            }
        )
        if w.in_flight is not None:
            index_ = w.in_flight
            n = attempts.get(index_, 0) + 1
            attempts[index_] = n
            if n > config.max_retries:
                raise WorkerLostError(w.wid, index_, n)
            stats.requeues += 1
            # Requeue at the front: the point already proved expensive
            # to lose, restart it before anything else.
            pending.appendleft(index_)
            w.in_flight = None

    for slot in range(jobs):
        workers.append(spawn(slot))

    done_since_flush = 0
    try:
        while len(results) < len(tasks):
            waitables: dict[object, tuple[_Worker, str]] = {}
            for w in workers:
                if not w.stats.lost:
                    waitables[w.conn] = (w, "conn")
                    waitables[w.proc.sentinel] = (w, "sentinel")
            if not waitables:
                raise RuntimeError(
                    "campaign fabric has no live workers left"
                )
            fired = mpc.wait(
                list(waitables), timeout=config.heartbeat_timeout_s
            )
            if not fired:
                # Nothing spoke for a whole timeout: check heartbeats.
                now = time.monotonic()
                for w in list(workers):
                    if w.stats.lost or w.in_flight is None:
                        continue
                    if now - hb[w.slot] > config.heartbeat_timeout_s:
                        w.proc.terminate()
                        w.proc.join(timeout=5.0)
                        requeue(w, "heartbeat stale; worker terminated")
                        slot = w.slot
                        workers[workers.index(w)] = spawn(slot)
                continue
            for obj in fired:
                w, kind = waitables[obj]
                if w.stats.lost:
                    continue
                if kind == "sentinel":
                    if w.conn.poll():
                        continue  # drain its messages first, next loop
                    requeue(
                        w, f"worker process exited (code {w.proc.exitcode})"
                    )
                    replacement = spawn(w.slot)
                    workers[workers.index(w)] = replacement
                    continue
                try:
                    msg = w.conn.recv()
                except EOFError:
                    requeue(
                        w, f"worker pipe closed (code {w.proc.exitcode})"
                    )
                    workers[workers.index(w)] = spawn(w.slot)
                    continue
                tag = msg[0]
                if tag == "ready":
                    w.ready = True
                    w.stats.pid = msg[1]
                    w.stats.jit_warmup_s = msg[2]
                    dispatch(w)
                elif tag == "warm":
                    w.stats.pool_startup_s[msg[1]] = msg[2]
                elif tag == "done":
                    _, seq, result, wall_s = msg
                    w.in_flight = None
                    w.stats.points += 1
                    w.stats.busy_s += wall_s
                    results[seq] = (result, wall_s)
                    batch.add(hashes[seq], canon[seq], result)
                    if index is not None:
                        index.add(hashes[seq])
                    if on_done is not None:
                        on_done(seq, result, wall_s)
                    done_since_flush += 1
                    if done_since_flush >= config.io_batch:
                        batch.flush()
                        done_since_flush = 0
                    dispatch(w)
                elif tag == "error":
                    _, seq, tb = msg
                    raise CampaignPointError(seq, tb)
        batch.flush()
    finally:
        for w in workers:
            try:
                if w.alive():
                    w.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for w in workers:
            w.conn.close()
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
    return results, stats


class CampaignPointError(RuntimeError):
    """A point's execution raised inside a fabric worker."""

    def __init__(self, point_index: int, worker_traceback: str):
        self.point_index = point_index
        self.worker_traceback = worker_traceback
        super().__init__(
            f"campaign point {point_index} failed in its fabric worker:\n"
            f"{worker_traceback}"
        )


# ----------------------------------------------------------------------
# In-process engines runner (no workers at all)
# ----------------------------------------------------------------------
def run_engines(
    tasks: list[tuple[int, RunSpec]],
    *,
    order_seed: int | None = None,
    policy: str = "fair",
    slice_ticks: int = 64,
    on_done: Callable[[int, dict, float], None] | None = None,
) -> dict[int, tuple[dict, float]]:
    """Run ``(index, spec)`` points in-process through one EngineGroup.

    The daemon-shaped counterpart of :func:`run_fabric`: instead of
    spawning worker processes, every parallel point becomes a
    :class:`~repro.runtime.engine.SimEngine` and a single cooperative
    :class:`~repro.runtime.multiplex.EngineGroup` time-slices them in
    this process, sharing **one** executor pool (resolved from the
    environment, like ``default_executor``; per-point executor sections
    are identity-neutral, so sharing cannot change an artifact byte).
    Batches are tagged per engine, so the pool's ``tag_stats`` shows the
    per-point attribution.  Serial points have no engine to build and run
    inline first.

    ``order_seed`` shuffles the fair policy's per-round visit order —
    interleaving order is provably outcome-neutral (virtual time is
    charged at dispatch), which the CI ``multirun-smoke`` job pins by
    diffing artifact bytes across two seeds and a serial baseline.

    No work meter is ever attached to the shared pool: measured-rate
    scaling would mix wall-clock observations across engines and perturb
    simulated time.  Returns ``{point_index: (result_doc, wall_s)}``;
    ``wall_s`` is the group's total drive time (points overlap, so
    per-point wall time is not individually attributable).
    """
    from repro.config.build import (
        build_impl,
        execute_runspec,
        parallel_result_doc,
    )
    from repro.config.env import (
        resolve_executor,
        resolve_kernel_backend,
        resolve_workers,
    )
    from repro.runtime.executor import make_executor
    from repro.runtime.multiplex import EngineGroup

    results: dict[int, tuple[dict, float]] = {}
    serial = [(i, rs) for i, rs in tasks if rs.impl.name == "serial"]
    parallel = [(i, rs) for i, rs in tasks if rs.impl.name != "serial"]

    for i, rs in serial:
        t0 = time.perf_counter()
        doc = execute_runspec(rs)
        wall = time.perf_counter() - t0
        results[i] = (doc, wall)
        if on_done is not None:
            on_done(i, doc, wall)

    if not parallel:
        return results

    shared = make_executor(
        resolve_executor(),
        workers=resolve_workers(),
        kernel_backend=resolve_kernel_backend(),
    )
    group = EngineGroup(
        policy=policy,
        slice_ticks=slice_ticks,
        order_seed=order_seed,
        executor=shared,
    )
    of_tag: dict[str, tuple[int, RunSpec]] = {}
    t0 = time.perf_counter()
    try:
        for i, rs in parallel:
            tag = f"p{i}"
            impl = build_impl(rs, executor=group.handle(tag))
            group.add(tag, impl.build_engine(engine_id=tag))
            of_tag[tag] = (i, rs)
        finished = group.run_all()
        wall = time.perf_counter() - t0
        for tag, result in finished.items():
            i, rs = of_tag[tag]
            if not result.verification.ok:
                raise RuntimeError(
                    f"verification failed for {rs.describe()}: "
                    f"{result.verification}"
                )
            doc = parallel_result_doc(result)
            results[i] = (doc, wall)
            if on_done is not None:
                on_done(i, doc, wall)
    finally:
        group.close()
    return results
