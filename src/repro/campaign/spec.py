"""Campaign declarations: a sweep over RunSpecs, declaratively.

A campaign document is JSON with four parts::

    {
      "schema": 1,
      "campaign": "fig6-single-node",
      "base":  { ...sparse RunSpec document... },
      "axes":  [ {"axis": "cores", "path": "impl.cores",
                  "values": [1, 4, 8]},
                 {"axis": "impl",
                  "values": [ {"label": "mpi-2d",
                               "set": {"impl.name": "mpi-2d"}},
                              {"label": "ampi",
                               "set": {"impl.name": "ampi",
                                       "impl.overdecomposition": 8}} ]} ],
      "points": [ {"labels": {...}, "set": {...}}, ... ]   # optional
    }

``base`` is any (possibly sparse) RunSpec document.  Each **axis** either
sweeps one dotted path over scalar values, or enumerates structured
variants that each set several paths at once.  The matrix is the
Cartesian product with the *first axis outermost* (so a cores-then-impl
declaration enumerates in the cores-outer order the fig6 scripts used).
Alternatively an explicit ``points`` list names every point directly —
used where axes are coupled (fig5's two concatenated sweeps, fig7's
cores-dependent particle counts).  ``axes`` and ``points`` are mutually
exclusive.

Expansion applies each point's overrides to ``base`` and validates the
result through :meth:`RunSpec.from_dict`, so a typo'd path fails the
whole campaign at expansion time — before anything runs.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.config.runspec import ConfigError, RunSpec, apply_overrides


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded point: its labels and its fully-validated RunSpec."""

    index: int
    labels: dict[str, Any]
    spec: RunSpec


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign declaration (see the module docstring)."""

    name: str
    base: dict
    axes: tuple[dict, ...] = ()
    points: tuple[dict, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("campaign name must be non-empty")
        if self.axes and self.points:
            raise ConfigError("campaign takes either axes or points, not both")
        if not self.axes and not self.points:
            raise ConfigError("campaign needs at least one axis or point")

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, doc: Mapping) -> "CampaignSpec":
        if not isinstance(doc, Mapping):
            raise ConfigError("campaign document must be an object")
        unknown = sorted(set(doc) - {"schema", "campaign", "base", "axes", "points"})
        if unknown:
            raise ConfigError(f"unknown campaign field(s) {unknown}")
        schema = doc.get("schema", 1)
        if schema != 1:
            raise ConfigError(f"unsupported campaign schema {schema!r}")
        if "campaign" not in doc:
            raise ConfigError("campaign.campaign (the name) is required")
        if "base" not in doc:
            raise ConfigError("campaign.base (a RunSpec document) is required")
        return cls(
            name=str(doc["campaign"]),
            base=dict(doc["base"]),
            axes=tuple(dict(a) for a in doc.get("axes", ())),
            points=tuple(dict(p) for p in doc.get("points", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"campaign is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "schema": 1,
            "campaign": self.name,
            "base": self.base,
        }
        if self.axes:
            doc["axes"] = list(self.axes)
        if self.points:
            doc["points"] = list(self.points)
        return doc

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _axis_variants(self, axis: Mapping) -> list[tuple[dict, dict]]:
        """One axis as ``(labels, overrides)`` pairs."""
        unknown = sorted(set(axis) - {"axis", "path", "values"})
        if unknown:
            raise ConfigError(f"unknown axis field(s) {unknown}")
        name = axis.get("axis")
        if not name:
            raise ConfigError("every axis needs an 'axis' name")
        values = axis.get("values")
        if not values:
            raise ConfigError(f"axis {name!r} needs non-empty 'values'")
        path = axis.get("path")
        out: list[tuple[dict, dict]] = []
        for value in values:
            if isinstance(value, Mapping):
                bad = sorted(set(value) - {"label", "set", "labels"})
                if bad:
                    raise ConfigError(
                        f"unknown variant field(s) {bad} in axis {name!r}"
                    )
                if "set" not in value:
                    raise ConfigError(
                        f"structured variant in axis {name!r} needs 'set'"
                    )
                labels = {name: value.get("label", "?")}
                labels.update(value.get("labels", {}))
                out.append((labels, dict(value["set"])))
            else:
                if not path:
                    raise ConfigError(
                        f"scalar axis {name!r} needs a 'path' to sweep"
                    )
                out.append(({name: value}, {path: value}))
        return out

    def expand(self) -> list[CampaignPoint]:
        """The full point matrix, each with a validated RunSpec.

        Axis order is significant: the first axis is the outermost loop.
        """
        if self.points:
            combos = []
            for p in self.points:
                bad = sorted(set(p) - {"labels", "set"})
                if bad:
                    raise ConfigError(f"unknown point field(s) {bad}")
                combos.append((dict(p.get("labels", {})), dict(p.get("set", {}))))
        else:
            per_axis = [self._axis_variants(a) for a in self.axes]
            combos = []
            for combo in itertools.product(*per_axis):
                labels: dict[str, Any] = {}
                overrides: dict[str, Any] = {}
                for lab, over in combo:
                    labels.update(lab)
                    overrides.update(over)
                combos.append((labels, overrides))

        out: list[CampaignPoint] = []
        for index, (labels, overrides) in enumerate(combos):
            doc = apply_overrides(self.base, overrides)
            try:
                spec = RunSpec.from_dict(doc)
            except ConfigError as exc:
                raise ConfigError(
                    f"campaign {self.name!r} point {index} ({labels}): {exc}"
                ) from None
            out.append(CampaignPoint(index=index, labels=labels, spec=spec))
        return out
