"""Paper-style result tables and ASCII log-log charts.

The harness cannot draw the paper's gnuplot figures, so each figure is
rendered as (a) a table of the series the plot encodes and (b) a compact
ASCII log-log chart good enough to eyeball crossovers.  Both are written to
``benchmarks/results/`` and echoed to stdout.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.runner import RunRecord


def format_table(records: Sequence[RunRecord], extra_cols: Sequence[str] = ()) -> str:
    """Fixed-width table of run records, grouped as given."""
    cols = ["impl", "cores", "sim_time_s", "verified", "max_ppc", *extra_cols]
    rows = [r.as_row() for r in records]
    widths = {c: max(len(c), *(len(str(row.get(c, ""))) for row in rows)) for c in cols}
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    sep = "-" * len(header)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def format_series(
    records: Sequence[RunRecord],
    x_key: str = "cores",
) -> dict[str, list[tuple[float, float]]]:
    """Group records into per-implementation (x, sim_time) series."""
    series: dict[str, list[tuple[float, float]]] = {}
    for r in records:
        x = r.params.get(x_key, getattr(r, x_key, None)) if x_key != "cores" else r.cores
        series.setdefault(r.implementation, []).append((float(x), r.sim_time))
    for pts in series.values():
        pts.sort()
    return series


def ascii_loglog(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 18,
    x_label: str = "cores",
    y_label: str = "seconds",
) -> str:
    """Render series on a log-log grid with one marker letter per series."""
    points = [(x, y) for pts in series.values() for x, y in pts if x > 0 and y > 0]
    if not points:
        return "(no data)"
    lx = [math.log10(x) for x, _ in points]
    ly = [math.log10(y) for _, y in points]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(ly), max(ly)
    x1 = x1 if x1 > x0 else x0 + 1.0
    y1 = y1 if y1 > y0 else y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for idx, (name, pts) in enumerate(sorted(series.items())):
        mark = chr(ord("A") + idx)
        markers[name] = mark
        for x, y in pts:
            cx = int((math.log10(x) - x0) / (x1 - x0) * (width - 1))
            cy = int((math.log10(y) - y0) / (y1 - y0) * (height - 1))
            row = height - 1 - cy
            cell = grid[row][cx]
            grid[row][cx] = "*" if cell not in (" ", mark) else mark

    lines = []
    if title:
        lines.append(title)
    top = 10 ** y1
    bottom = 10 ** y0
    lines.append(f"{top:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{bottom:10.3g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{10 ** x0:<10.3g}{x_label:^{max(0, width - 20)}}{10 ** x1:>10.3g}"
    )
    legend = "  ".join(f"{m}={n}" for n, m in sorted(markers.items(), key=lambda kv: kv[1]))
    lines.append(" " * 12 + legend + f"   (y: {y_label}, log-log)")
    return "\n".join(lines)


def format_metrics(metrics, title: str = "run metrics") -> str:
    """Metrics-registry summary block for benchmark reports.

    ``metrics`` is a :class:`repro.instrument.MetricsRegistry` populated by
    a traced/metered run; the block lists every counter, gauge and
    histogram in deterministic name order.
    """
    from repro.instrument import render_metrics_summary

    body = render_metrics_summary(metrics)
    return f"== {title} ==\n{body}"


def dispatch_breakdown(spans) -> dict:
    """Per-batch dispatch/kernel/exchange seconds from executor spans.

    ``spans`` is an iterable of :class:`repro.instrument.ExecSpan` (e.g.
    ``ExecutorTrace.spans``).  Per batch:

    * ``dispatch_s`` — parent-side wall time to publish the batch (plan
      lookup, ring records, doorbells — or descriptor pickling on the
      pipe path);
    * ``dispatch_cpu_s`` — the same window in parent CPU seconds (the
      span's ``cpu_s`` arg, falling back to wall).  On an oversubscribed
      host the doorbell/descriptor send can wake a worker that preempts
      the parent, and the worker's kernel time then lands in the *wall*
      dispatch window even though the execute spans already report it —
      CPU seconds are immune to that double-count, so they are what the
      ring-vs-pipe gate compares;
    * ``kernel_s`` — summed worker ``execute`` seconds (worker-seconds,
      not wall: workers run concurrently);
    * ``merge_s`` — the parent's completion barrier;
    * ``exchange_s`` — the gap between the previous batch's merge end and
      this batch's dispatch start, which in a simulation loop is the
      parent-side exchange/routing work between steps.  The overlapped
      resume policy shrinks exactly this column.

    The totals carry per-task dispatch cost (wall and CPU) both over all
    batches and over the steady state (batch 2 onward, once the dispatch
    plan is cached) — ``steady_dispatch_cpu_s_per_task`` is the figure
    the >=5x ring-vs-pipe gate is checked on.
    """
    by_batch: dict[int, dict] = {}
    for s in spans:
        b = by_batch.setdefault(
            s.batch,
            dict(dispatch_s=0.0, dispatch_cpu_s=0.0, kernel_s=0.0,
                 merge_s=0.0, tasks=0, _t0=None, _t1=None),
        )
        if s.phase == "dispatch":
            args = s.args_dict()
            b["dispatch_s"] += s.duration
            b["dispatch_cpu_s"] += float(args.get("cpu_s", s.duration))
            b["tasks"] = max(b["tasks"], int(args.get("tasks", 0)))
            b["_t0"] = s.t_start if b["_t0"] is None else min(b["_t0"], s.t_start)
        elif s.phase == "execute":
            b["kernel_s"] += s.duration
        elif s.phase == "merge":
            b["merge_s"] += s.duration
            b["_t1"] = s.t_end if b["_t1"] is None else max(b["_t1"], s.t_end)
    rows = []
    prev_end = None
    for k in sorted(by_batch):
        b = by_batch[k]
        gap = 0.0
        if prev_end is not None and b["_t0"] is not None:
            gap = max(0.0, b["_t0"] - prev_end)
        rows.append(
            dict(
                batch=k, tasks=b["tasks"], dispatch_s=b["dispatch_s"],
                dispatch_cpu_s=b["dispatch_cpu_s"], kernel_s=b["kernel_s"],
                merge_s=b["merge_s"], exchange_s=gap,
            )
        )
        if b["_t1"] is not None:
            prev_end = b["_t1"]
    steady = [r for r in rows if r["batch"] > 1]
    totals = dict(
        batches=len(rows),
        tasks=sum(r["tasks"] for r in rows),
        dispatch_s=sum(r["dispatch_s"] for r in rows),
        dispatch_cpu_s=sum(r["dispatch_cpu_s"] for r in rows),
        kernel_s=sum(r["kernel_s"] for r in rows),
        merge_s=sum(r["merge_s"] for r in rows),
        exchange_s=sum(r["exchange_s"] for r in rows),
    )
    tasks = totals["tasks"]
    st_tasks = sum(r["tasks"] for r in steady)
    for col in ("dispatch_s", "dispatch_cpu_s"):
        totals[f"{col}_per_task"] = totals[col] / tasks if tasks else 0.0
        totals[f"steady_{col}_per_task"] = (
            sum(r[col] for r in steady) / st_tasks if st_tasks else 0.0
        )
    return dict(rows=rows, totals=totals)


def format_dispatch_breakdown(breakdown: dict, max_rows: int = 12) -> str:
    """Fixed-width per-batch table of a :func:`dispatch_breakdown` result."""
    rows = breakdown["rows"]
    t = breakdown["totals"]
    lines = [
        "batch  tasks  dispatch_ms   cpu_ms  kernel_ms  merge_ms  exchange_ms"
    ]
    shown = rows if len(rows) <= max_rows else rows[:max_rows]
    for r in shown:
        lines.append(
            f"{r['batch']:>5}  {r['tasks']:>5}  "
            f"{r['dispatch_s'] * 1e3:>11.3f}  {r['dispatch_cpu_s'] * 1e3:>7.3f}  "
            f"{r['kernel_s'] * 1e3:>9.3f}  "
            f"{r['merge_s'] * 1e3:>8.3f}  {r['exchange_s'] * 1e3:>11.3f}"
        )
    if len(rows) > max_rows:
        lines.append(f"  ... {len(rows) - max_rows} more batches")
    lines.append(
        f"total  {t['tasks']:>5}  "
        f"{t['dispatch_s'] * 1e3:>11.3f}  {t['dispatch_cpu_s'] * 1e3:>7.3f}  "
        f"{t['kernel_s'] * 1e3:>9.3f}  "
        f"{t['merge_s'] * 1e3:>8.3f}  {t['exchange_s'] * 1e3:>11.3f}"
    )
    lines.append(
        f"dispatch cpu per task: {t['dispatch_cpu_s_per_task'] * 1e6:.2f} us "
        f"(steady state: {t['steady_dispatch_cpu_s_per_task'] * 1e6:.2f} us)"
    )
    return "\n".join(lines)


def speedup_table(
    records: Sequence[RunRecord], serial_time: float
) -> str:
    """Speedup-over-serial table (the §V-B summary numbers)."""
    lines = ["impl        cores  speedup"]
    for r in sorted(records, key=lambda r: (r.implementation, r.cores)):
        lines.append(
            f"{r.implementation:<11} {r.cores:>5}  {serial_time / r.sim_time:7.1f}x"
        )
    return "\n".join(lines)
