"""Paper-style result tables and ASCII log-log charts.

The harness cannot draw the paper's gnuplot figures, so each figure is
rendered as (a) a table of the series the plot encodes and (b) a compact
ASCII log-log chart good enough to eyeball crossovers.  Both are written to
``benchmarks/results/`` and echoed to stdout.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.runner import RunRecord


def format_table(records: Sequence[RunRecord], extra_cols: Sequence[str] = ()) -> str:
    """Fixed-width table of run records, grouped as given."""
    cols = ["impl", "cores", "sim_time_s", "verified", "max_ppc", *extra_cols]
    rows = [r.as_row() for r in records]
    widths = {c: max(len(c), *(len(str(row.get(c, ""))) for row in rows)) for c in cols}
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    sep = "-" * len(header)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def format_series(
    records: Sequence[RunRecord],
    x_key: str = "cores",
) -> dict[str, list[tuple[float, float]]]:
    """Group records into per-implementation (x, sim_time) series."""
    series: dict[str, list[tuple[float, float]]] = {}
    for r in records:
        x = r.params.get(x_key, getattr(r, x_key, None)) if x_key != "cores" else r.cores
        series.setdefault(r.implementation, []).append((float(x), r.sim_time))
    for pts in series.values():
        pts.sort()
    return series


def ascii_loglog(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 18,
    x_label: str = "cores",
    y_label: str = "seconds",
) -> str:
    """Render series on a log-log grid with one marker letter per series."""
    points = [(x, y) for pts in series.values() for x, y in pts if x > 0 and y > 0]
    if not points:
        return "(no data)"
    lx = [math.log10(x) for x, _ in points]
    ly = [math.log10(y) for _, y in points]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(ly), max(ly)
    x1 = x1 if x1 > x0 else x0 + 1.0
    y1 = y1 if y1 > y0 else y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for idx, (name, pts) in enumerate(sorted(series.items())):
        mark = chr(ord("A") + idx)
        markers[name] = mark
        for x, y in pts:
            cx = int((math.log10(x) - x0) / (x1 - x0) * (width - 1))
            cy = int((math.log10(y) - y0) / (y1 - y0) * (height - 1))
            row = height - 1 - cy
            cell = grid[row][cx]
            grid[row][cx] = "*" if cell not in (" ", mark) else mark

    lines = []
    if title:
        lines.append(title)
    top = 10 ** y1
    bottom = 10 ** y0
    lines.append(f"{top:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{bottom:10.3g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{10 ** x0:<10.3g}{x_label:^{max(0, width - 20)}}{10 ** x1:>10.3g}"
    )
    legend = "  ".join(f"{m}={n}" for n, m in sorted(markers.items(), key=lambda kv: kv[1]))
    lines.append(" " * 12 + legend + f"   (y: {y_label}, log-log)")
    return "\n".join(lines)


def format_metrics(metrics, title: str = "run metrics") -> str:
    """Metrics-registry summary block for benchmark reports.

    ``metrics`` is a :class:`repro.instrument.MetricsRegistry` populated by
    a traced/metered run; the block lists every counter, gauge and
    histogram in deterministic name order.
    """
    from repro.instrument import render_metrics_summary

    body = render_metrics_summary(metrics)
    return f"== {title} ==\n{body}"


def speedup_table(
    records: Sequence[RunRecord], serial_time: float
) -> str:
    """Speedup-over-serial table (the §V-B summary numbers)."""
    lines = ["impl        cores  speedup"]
    for r in sorted(records, key=lambda r: (r.implementation, r.cores)):
        lines.append(
            f"{r.implementation:<11} {r.cores:>5}  {serial_time / r.sim_time:7.1f}x"
        )
    return "\n".join(lines)
