"""Experiment configurations for the paper's figures (§V).

Every figure has two parameter sets:

* the **paper** parameters, kept verbatim for the record, and
* the **scaled** preset the harness actually runs.

Scaling rule (see DESIGN.md §2 and EXPERIMENTS.md): the per-core,
per-step *simulated compute time* is kept equal to the paper's by scaling
the particle-push rate up by the same factor the particle count is scaled
down — so the compute/communication balance, and therefore the crossover
structure of the figures, is preserved while the pure-Python harness stays
fast.  The geometric skew is rescaled to keep ``r ** cells`` constant, which
preserves the *shape* of the particle cloud relative to the domain.

Paper workloads:

========  =========  ==========  ======  ======  ========================
figure    cells      particles   steps   cores   distribution
========  =========  ==========  ======  ======  ========================
Fig. 5    5998^2     6,400,000   6,000   192     geometric r=0.999, k=0
Fig. 6    2998^2       600,000   6,000   1-384   geometric r=0.999, k=0
Fig. 7    11998^2      400,000+  6,000   48-3072 geometric, weak scaling
========  =========  ==========  ======  ======  ========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.constants import DEFAULT_DT, DEFAULT_H
from repro.ampi.loadbalancer import GreedyLB, GreedyTransferLB
from repro.core.spec import PICSpec
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

#: The push rate the cost model is calibrated to at the paper's full scale
#: (see repro.runtime.costmodel).
PAPER_PUSH_S = 1.4e-7


def rescale_r(r_paper: float, cells_paper: int, cells_scaled: int) -> float:
    """Keep ``r ** cells`` constant: the cloud shape relative to the domain."""
    return r_paper ** (cells_paper / cells_scaled)


def scaled_cost(
    machine: MachineModel, particle_scale: float, cell_scale: float = 1.0
) -> CostModel:
    """Cost model compensating a scaled-down workload.

    ``particle_scale`` is the factor the particle count was reduced by;
    ``cell_scale`` the factor the mesh *cell count* was reduced by.  The
    per-particle CPU rates (push, pack) and the byte volumes of particle
    messages and subgrid migrations are scaled back up by the matching
    factors, so per-core compute time, particle-communication cost and
    migration cost all match the paper-scale workload — which is what makes
    the figures' crossovers reproducible at laptop scale.
    """
    base = CostModel()
    return CostModel(
        machine=machine,
        particle_push_s=PAPER_PUSH_S * particle_scale,
        particle_pack_s=base.particle_pack_s * particle_scale,
        particle_byte_scale=particle_scale,
        cell_byte_scale=cell_scale,
    )


@dataclass(frozen=True)
class Workload:
    """One figure's runnable configuration."""

    name: str
    description: str
    machine: MachineModel
    cost: CostModel
    spec_for: Callable[[int], PICSpec]
    #: Paper parameters, for the EXPERIMENTS.md record.
    paper: dict = field(default_factory=dict)
    #: Tuned implementation parameters (the paper tuned per point; we use
    #: one well-tuned set per figure).
    lb_params: dict = field(default_factory=dict)
    ampi_params: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Figure 5: AMPI tuning (F and d sweeps) at fixed core count
# ----------------------------------------------------------------------
FIG5_CELLS = 480
FIG5_PARTICLES = 24_000
FIG5_STEPS = 240
FIG5_CORES = 48
#: Particle-count scale: paper has 6.4 M over 192 cores = 33,333/core;
#: scaled runs 24,000 over 48 cores = 500/core.
FIG5_SCALE = (6_400_000 / 192) / (FIG5_PARTICLES / FIG5_CORES)
#: LB-interval sweep, geometric like the paper's 20 * 2**i over 6000 steps.
FIG5_F_VALUES = (2, 4, 8, 16, 32, 64, 128)
#: Over-decomposition sweep (paper: 1 to 64 at 192 cores).
FIG5_D_VALUES = (1, 2, 4, 8, 16, 32)
FIG5_CELL_SCALE = (5998 / FIG5_CELLS) ** 2
FIG5_FIXED_D = 4      # d while sweeping F (paper: 4)
FIG5_FIXED_F = 40     # F while sweeping d (paper: 1000 of 6000 steps)


def fig5_workload() -> Workload:
    machine = MachineModel()
    r = rescale_r(0.999, 5998, FIG5_CELLS)

    def spec_for(cores: int) -> PICSpec:
        del cores  # fixed-size experiment
        return PICSpec(
            cells=FIG5_CELLS,
            n_particles=FIG5_PARTICLES,
            steps=FIG5_STEPS,
            r=r,
            h=DEFAULT_H,
            dt=DEFAULT_DT,
        )

    return Workload(
        name="fig5",
        description="AMPI tuning: LB interval F and over-decomposition d",
        machine=machine,
        cost=scaled_cost(machine, FIG5_SCALE, FIG5_CELL_SCALE),
        spec_for=spec_for,
        paper=dict(
            cells=5998, particles=6_400_000, steps=6000, cores=192,
            r=0.999, k=0, F_values="20*2**i", d_values="1..64",
        ),
        ampi_params=dict(strategy=GreedyLB()),
    )


# ----------------------------------------------------------------------
# Figure 6: strong scaling (single node 1-24, multi node 24-384)
# ----------------------------------------------------------------------
FIG6_CELLS = 288
FIG6_PARTICLES = 24_000
FIG6_STEPS = 200
FIG6_SCALE = (600_000 / 24) / (FIG6_PARTICLES / 24)  # per-core match at 24 cores
FIG6_CELL_SCALE = (2998 / FIG6_CELLS) ** 2
FIG6_SINGLE_NODE_CORES = (1, 4, 8, 12, 16, 20, 24)
FIG6_MULTI_NODE_CORES = (24, 48, 96, 192, 384)


def fig6_workload() -> Workload:
    machine = MachineModel()
    r = rescale_r(0.999, 2998, FIG6_CELLS)

    def spec_for(cores: int) -> PICSpec:
        del cores  # strong scaling: fixed problem
        return PICSpec(
            cells=FIG6_CELLS,
            n_particles=FIG6_PARTICLES,
            steps=FIG6_STEPS,
            r=r,
        )

    return Workload(
        name="fig6",
        description="strong scaling of mpi-2d / mpi-2d-LB / ampi",
        machine=machine,
        cost=scaled_cost(machine, FIG6_SCALE, FIG6_CELL_SCALE),
        spec_for=spec_for,
        paper=dict(
            cells=2998, particles=600_000, steps=6000,
            cores="1..384", r=0.999, k=0,
        ),
        lb_params=dict(lb_interval=1, border_width=4, threshold_fraction=0.02),
        ampi_params=dict(overdecomposition=8, lb_interval=25, strategy=GreedyLB()),
    )


# ----------------------------------------------------------------------
# Figure 7: weak scaling (particles grow with cores, grid fixed)
# ----------------------------------------------------------------------
FIG7_CELLS = 960
FIG7_PARTICLES_PER_CORE = 300
FIG7_STEPS = 100
#: Paper: 400,000 particles at 48 cores = 8,333/core.
FIG7_SCALE = (400_000 / 48) / FIG7_PARTICLES_PER_CORE
FIG7_CELL_SCALE = (11998 / FIG7_CELLS) ** 2
FIG7_CORES = (48, 192, 768)
#: The paper's largest point; include via REPRO_FULL=1 (slow in pure Python).
FIG7_CORES_FULL = (48, 192, 768, 3072)


def fig7_workload() -> Workload:
    machine = MachineModel()
    r = rescale_r(0.999, 11998, FIG7_CELLS)

    def spec_for(cores: int) -> PICSpec:
        return PICSpec(
            cells=FIG7_CELLS,
            n_particles=FIG7_PARTICLES_PER_CORE * cores,
            steps=FIG7_STEPS,
            r=r,
        )

    return Workload(
        name="fig7",
        description="weak scaling of mpi-2d / mpi-2d-LB / ampi",
        machine=machine,
        cost=scaled_cost(machine, FIG7_SCALE, FIG7_CELL_SCALE),
        spec_for=spec_for,
        paper=dict(
            cells=11998, particles="400,000 at 48 cores, proportional",
            steps=6000, cores="48..3072", r=0.999, k=0,
        ),
        lb_params=dict(lb_interval=1, border_width=4, threshold_fraction=0.02),
        # Weak scaling favours frequent, incremental balancing: the transfer
        # variant implements the paper's "most loaded to least loaded"
        # migration without GreedyLB's full-reassignment churn, whose
        # per-invocation cost the compressed step count of the scaled preset
        # would over-weight (see EXPERIMENTS.md deviations).
        ampi_params=dict(
            overdecomposition=8, lb_interval=10, strategy=GreedyTransferLB()
        ),
    )
