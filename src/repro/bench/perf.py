"""Wall-clock performance harness for the zero-churn hot path.

Everything in :mod:`repro.bench` up to now measures *simulated* time — the
virtual clocks of the modelled machine.  This module measures *wall-clock*
time: how fast the harness itself executes, which is what the pooled
particle buffers, the fused kernel and the cached ownership tests improve.

Methodology
-----------

Absolute wall-clock numbers are meaningless across machines, so every
benchmark here is **self-normalising**: the optimised code and the code it
replaced (kept verbatim in :mod:`repro.bench.legacy` and
:func:`repro.core.kernel.advance_reference`) run back-to-back in the same
process, and the reported figure of merit is their ratio.  A
``BENCH_wallclock.json`` produced on a laptop and one produced in CI are
directly comparable on speedups even though their ``pushes_per_sec``
differ.

Three drivers:

``kernel``
    Microbenchmark of :func:`repro.core.kernel.advance` against
    ``advance_reference`` on a single large particle population.  The
    ``full`` preset uses n = 4M particles — large enough that the legacy
    path's full-population temporaries cross glibc's mmap threshold and
    every step pays page faults, which is precisely the regime the fused
    workspace eliminates.

``exchange``
    End-to-end run at several cores with **only** the particle exchange
    swapped between optimised and legacy (the kernel stays optimised on
    both sides), isolating the pooled wire buffers + cached ownership.

``end_to_end``
    The fig6 strong-scaling shape (cells=288, geometric cloud) run through
    the full simulated-MPI stack on a single node.  The ``full`` preset is
    perf-grade: the fig6 shape at 4M particles, where the per-step
    allocation churn this PR removes dominates the wall clock.  The scaled
    fig6 preset (24k particles) is also reported, non-gating, for
    transparency: at that size numpy ufunc dispatch and scheduler overhead
    floor the achievable ratio.

``workers``
    Real-multicore scaling of the :mod:`repro.runtime.executor` process
    backend: the fig6 shape run with ``--executor serial`` and with a
    persistent shared-memory worker pool at 1/2/4 workers.  Unlike the
    other drivers both sides are *current* code — the ratio measures how
    much of the host the pool actually uses, gated at >=1.5x for 4 workers
    on hosts with at least 4 cores.

``kernel_backend``
    The numba-compiled kernel (:mod:`repro.core.kernel_compiled`) against
    the python fused kernel on the perf-grade population, gated at >=3x
    where numba is installed and recorded as skipped where it is not.
    The two runs start from identical particle states and must end
    bitwise identical (``bitwise_match``), so the ratio is also a
    conformance check.

``kernel_backend_parallel``
    The prange compiled-parallel kernel against the scalar compiled one,
    gated at >=2.5x where numba is installed and the host has >= 4 cores
    (honest ``gate_skipped`` otherwise; the per-entry ``env`` stamp makes
    the skip auditable).

``dispatch``
    Steady-state parent-side dispatch cost per (step x rank) of the
    shared-memory task rings vs the legacy pickled-descriptor pipe path,
    from the ExecSpan breakdown
    (:func:`repro.bench.reporting.dispatch_breakdown`).  Gated at >=5x
    unconditionally — dispatch cost is parent-side, so one core suffices.

``campaign``
    The work-stealing campaign fabric (:mod:`repro.campaign.fabric`)
    against the PR-7 pool runner on the same uncached 16-point sweep of
    process-executor points at ``--jobs 4``, gated at >=3x on hosts with
    >= 4 cores (honest ``gate_skipped`` below that; CI's asserted-4-vCPU
    leg runs it live with ``--require-live campaign``).  The entry also
    audits byte-identical artifacts across runners (``bitwise_match``),
    100% cache coherence on a second fabric run (``cache_coherent``) and
    warmup accounting once per worker (``startup_once_per_worker``).

Both sides of every end-to-end entry must produce *identical simulated
time* and pass the PRK verification — recorded as ``sim_time_match`` — so a
benchmark run is also a differential test of the optimisation.

Gates: entries carry ``gate_min_speedup`` (the acceptance floor checked by
:func:`check_gates`) in the ``full`` preset; ``smoke`` entries are gated
only *relatively*, by :func:`check_regression` against a checked-in
baseline (CI fails on a >25% speedup-ratio drop).
"""

from __future__ import annotations

import json
import platform
import time
from contextlib import contextmanager
from typing import Callable

import numpy as np

from repro.bench.legacy import exchange_particles_legacy
from repro.bench.workloads import FIG6_CELLS, rescale_r, scaled_cost
from repro.core import kernel
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.spec import PICSpec
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

SCHEMA_VERSION = 1

#: Relative speedup-ratio drop tolerated by :func:`check_regression`.
DEFAULT_TOLERANCE = 0.25

_FIG6_R = rescale_r(0.999, 2998, FIG6_CELLS)


def _entry_env() -> dict:
    """Per-entry environment stamp: makes conditional gates auditable.

    Every entry records the cpu count, python version and the concrete
    kernel backend the harness would resolve ``auto`` to — so a
    ``gate_skipped`` in a checked-in BENCH_wallclock.json can be verified
    against the machine that produced it, not just taken on faith.
    """
    import os

    from repro.core import kernel_compiled

    return dict(
        cpu_count=os.cpu_count(),
        python=platform.python_version(),
        kernel_backend=kernel_compiled.resolve_backend("auto"),
    )


# ----------------------------------------------------------------------
# Baseline patching
# ----------------------------------------------------------------------
@contextmanager
def use_legacy_kernel():
    """Route ``kernel.advance`` to the pre-fusion reference implementation."""
    orig = kernel.advance

    def _legacy(mesh, particles, dt, workspace=None):
        return kernel.advance_reference(mesh, particles, dt)

    kernel.advance = _legacy
    try:
        yield
    finally:
        kernel.advance = orig


@contextmanager
def use_legacy_exchange():
    """Route particle exchange to the pre-pooling seed implementation."""
    import repro.parallel.base as base_mod
    import repro.parallel.mpi2d_lb as lb_mod

    orig_base = base_mod.exchange_particles
    orig_lb = lb_mod.exchange_particles
    base_mod.exchange_particles = exchange_particles_legacy
    lb_mod.exchange_particles = exchange_particles_legacy
    try:
        yield
    finally:
        base_mod.exchange_particles = orig_base
        lb_mod.exchange_particles = orig_lb


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _make_particles(n: int, mesh: Mesh, seed: int = 7) -> ParticleArray:
    rng = np.random.default_rng(seed)
    p = ParticleArray.empty(n)
    p.x[:] = rng.uniform(0.0, mesh.L, n)
    p.y[:] = rng.uniform(0.0, mesh.L, n)
    p.vx[:] = rng.normal(size=n) * 0.05
    p.vy[:] = rng.normal(size=n) * 0.05
    p.q[:] = np.where(rng.integers(0, 2, n) == 0, 1.0, -1.0)
    return p


def bench_kernel(n: int, steps: int, *, cells: int = FIG6_CELLS) -> dict:
    """Time ``advance`` vs ``advance_reference`` on the same population."""
    mesh = Mesh(cells=cells)
    dt = 0.01
    timings = {}
    for label, fn in (
        ("optimized", kernel.advance),
        ("baseline", kernel.advance_reference),
    ):
        p = _make_particles(n, mesh)
        fn(mesh, p, dt)  # warm-up: grows the workspace, touches the pages
        t0 = time.perf_counter()
        for _ in range(steps):
            fn(mesh, p, dt)
        timings[label] = (time.perf_counter() - t0) / steps
        del p
    return dict(
        name=f"kernel_n{n}",
        kind="kernel",
        env=_entry_env(),
        params=dict(n_particles=n, steps=steps, cells=cells),
        baseline_s=timings["baseline"],
        optimized_s=timings["optimized"],
        speedup=timings["baseline"] / timings["optimized"],
        pushes_per_sec=n / timings["optimized"],
    )


def bench_kernel_backend(
    n: int, steps: int, *, cells: int = FIG6_CELLS, gate: float = 3.0
) -> dict:
    """Compiled (numba) kernel vs the python fused kernel, same population.

    Unlike :func:`bench_kernel` this compares two *current* code paths:
    :func:`repro.core.kernel.advance` (the numpy fused kernel, the
    "baseline" here) against
    :func:`repro.core.kernel_compiled.advance_compiled`.  JIT compilation
    happens in an explicit warm-up (reported as ``jit_warmup_s``, the
    analogue of ``pool_startup_s``) and never inside the timed loop.  The
    timed populations start from identical states and the final particle
    arrays are compared bitwise (``bitwise_match``), so the benchmark is
    also a conformance check.

    The ``gate_min_speedup`` floor (>= ``gate``x) applies only where numba
    is installed; without it the entry records ``gate_skipped`` and a 1.0x
    placeholder ratio so regression checks stay well-defined.
    """
    from repro.core import kernel_compiled

    mesh = Mesh(cells=cells)
    dt = 0.01
    p = _make_particles(n, mesh)
    kernel.advance(mesh, p, dt)  # warm-up: grows the workspace
    t0 = time.perf_counter()
    for _ in range(steps):
        kernel.advance(mesh, p, dt)
    python_s = (time.perf_counter() - t0) / steps

    entry = dict(
        name=f"kernel_backend_n{n}",
        kind="kernel_backend",
        env=_entry_env(),
        params=dict(n_particles=n, steps=steps, cells=cells),
        baseline_s=python_s,
        python_pushes_per_sec=n / python_s,
    )
    if not kernel_compiled.HAVE_NUMBA:
        entry.update(
            optimized_s=python_s,
            speedup=1.0,
            pushes_per_sec=n / python_s,
            gate_min_speedup=None,
            gate_skipped=(
                "numba not installed; the compiled-vs-python gate "
                f"(>={gate}x) only runs with the repro[compiled] extra"
            ),
        )
        return entry

    jit_s = kernel_compiled.warmup("compiled")
    q = _make_particles(n, mesh)
    kernel_compiled.advance_compiled(mesh, q, dt)  # same warm-up step as p
    t0 = time.perf_counter()
    for _ in range(steps):
        kernel_compiled.advance_compiled(mesh, q, dt)
    compiled_s = (time.perf_counter() - t0) / steps
    match = all(
        getattr(p, f).tobytes() == getattr(q, f).tobytes()
        for f in ("x", "y", "vx", "vy")
    )
    entry.update(
        optimized_s=compiled_s,
        speedup=python_s / compiled_s,
        pushes_per_sec=n / compiled_s,
        jit_warmup_s=jit_s,
        bitwise_match=bool(match),
        gate_min_speedup=gate,
    )
    return entry


def _run_sim(
    spec: PICSpec, cores: int, cost: CostModel, executor=None
) -> tuple[float, float]:
    """One full simulated-MPI run; returns (wall seconds, simulated seconds).

    The executor defaults to a fresh *serial* backend — NOT the
    env-configured process default: the legacy/optimised comparisons
    monkeypatch module attributes (``use_legacy_kernel``), which worker
    processes would never see, and a REPRO_EXECUTOR=process environment
    must not silently skew the self-normalised ratios.
    """
    from repro.parallel.mpi2d import Mpi2dPIC
    from repro.runtime.executor import SerialExecutor

    if executor is None:
        executor = SerialExecutor()
    impl = Mpi2dPIC(
        spec, cores, machine=MachineModel(), cost=cost, executor=executor
    )
    t0 = time.perf_counter()
    result = impl.run()
    wall = time.perf_counter() - t0
    if not result.verification.ok:
        raise RuntimeError(f"perf run failed verification: {result.verification}")
    return wall, result.total_time


def _bench_sim(
    name: str,
    kind: str,
    spec: PICSpec,
    cores: int,
    cost: CostModel,
    baseline_ctx: Callable,
) -> dict:
    """Time a full run twice: optimised hot path vs ``baseline_ctx`` patch."""
    opt_wall, opt_sim = _run_sim(spec, cores, cost)
    with baseline_ctx():
        base_wall, base_sim = _run_sim(spec, cores, cost)
    pushes = spec.n_particles * spec.steps
    return dict(
        name=name,
        kind=kind,
        env=_entry_env(),
        params=dict(
            n_particles=spec.n_particles, steps=spec.steps,
            cells=spec.cells, cores=cores,
        ),
        baseline_s=base_wall,
        optimized_s=opt_wall,
        speedup=base_wall / opt_wall,
        pushes_per_sec=pushes / opt_wall,
        sim_time_s=opt_sim,
        sim_time_match=bool(opt_sim == base_sim),
    )


def _fig6_spec(n_particles: int, steps: int) -> PICSpec:
    return PICSpec(
        cells=FIG6_CELLS, n_particles=n_particles, steps=steps, r=_FIG6_R
    )


def bench_exchange(n: int, steps: int, cores: int) -> dict:
    """fig6 shape with only the exchange swapped (kernel optimised both sides)."""
    spec = _fig6_spec(n, steps)
    cost = scaled_cost(MachineModel(), 1.0)
    entry = _bench_sim(
        f"exchange_n{n}_c{cores}", "exchange", spec, cores, cost,
        use_legacy_exchange,
    )
    return entry


@contextmanager
def _legacy_all():
    with use_legacy_kernel(), use_legacy_exchange():
        yield


def bench_end_to_end(n: int, steps: int, cores: int) -> dict:
    """fig6 shape through the full stack, both hot paths swapped together."""
    spec = _fig6_spec(n, steps)
    cost = scaled_cost(MachineModel(), 1.0)
    return _bench_sim(
        f"end_to_end_n{n}_c{cores}", "end_to_end", spec, cores, cost,
        _legacy_all,
    )


def bench_worker_sweep(
    n: int,
    steps: int,
    *,
    cores: int = 4,
    workers: tuple[int, ...] = (1, 2, 4),
    reps: int = 2,
    gate: float = 1.5,
) -> dict:
    """fig6 shape: serial executor vs the process pool at each worker count.

    Unlike the other drivers this one compares two *current* code paths
    (``--executor serial`` vs ``--executor process``), so the ratio measures
    real-multicore scaling, not an optimisation against legacy code.

    Bench hygiene: each worker count starts its pool **once** and reuses it,
    warmed, across all ``reps`` repetitions; the one-time fork/spawn cost is
    reported separately per row as ``pool_startup_s`` and never pollutes the
    timed runs.  Every process run must reproduce the serial run's simulated
    time exactly (``sim_time_match``).

    The ``gate_min_speedup`` floor applies to the highest worker count, and
    only on hosts with at least that many cores — a 1-core container cannot
    demonstrate multicore speedup, so there the gate is recorded as skipped
    (``gate_skipped``) rather than failed; CI's 4-vCPU runners enforce it.
    """
    import os

    from repro.runtime.executor import ProcessExecutor

    spec = _fig6_spec(n, steps)
    cost = scaled_cost(MachineModel(), 1.0)
    serial_wall = float("inf")
    serial_sim = None
    for _ in range(reps):
        wall, serial_sim = _run_sim(spec, cores, cost)
        serial_wall = min(serial_wall, wall)

    rows = []
    match = True
    wall_by_count: dict[int, float] = {}
    for w in workers:
        ex = ProcessExecutor(workers=w)
        # Warm the pool before any timed repetition: spawn concurrently,
        # then block for the handshakes so pool_startup_s is final.
        ex.start()
        ex.ensure_ready()
        best = float("inf")
        try:
            for _ in range(reps):
                wall, sim = _run_sim(spec, cores, cost, executor=ex)
                best = min(best, wall)
                match = match and (sim == serial_sim)
        finally:
            ex.close()
        wall_by_count[w] = best
        rows.append(
            dict(
                workers=w,
                wall_s=best,
                speedup=serial_wall / best,
                pool_startup_s=ex.pool_startup_s,
            )
        )

    top = max(workers)
    top_wall = wall_by_count[top]
    cpu = os.cpu_count() or 1
    entry = dict(
        name=f"workers_n{n}_c{cores}",
        kind="workers",
        env=_entry_env(),
        params=dict(
            n_particles=n, steps=steps, cells=spec.cells, cores=cores,
            workers=list(workers), reps=reps,
        ),
        baseline_s=serial_wall,
        optimized_s=top_wall,
        speedup=serial_wall / top_wall,
        pushes_per_sec=n * steps / top_wall,
        sim_time_s=serial_sim,
        sim_time_match=bool(match),
        rows=rows,
        gate_min_speedup=gate if cpu >= top else None,
    )
    if cpu < top:
        entry["gate_skipped"] = (
            f"host has {cpu} cpu(s); the {gate}x gate for {top} workers "
            "is only meaningful with >= that many cores"
        )
    return entry


def bench_dispatch(
    n: int,
    steps: int,
    *,
    cores: int = 4,
    workers: int = 2,
    gate: float = 5.0,
) -> dict:
    """Steady-state dispatch cost per (step x rank): ring vs pipe.

    Runs the same simulation through the process pool twice — once with
    the shared-memory task rings and the cached dispatch plan, once with
    the legacy pickled-descriptor pipe path — each under an
    :class:`~repro.instrument.ExecutorTrace`, and compares the *parent-
    side dispatch CPU seconds per task* from the span breakdown
    (:func:`repro.bench.reporting.dispatch_breakdown`).  The first batch
    is excluded on both sides: that is where the ring path pays its one
    plan resolution, and the claim under test is the steady state.

    CPU seconds, not wall: dispatch cost is parent-side bookkeeping, and
    on an oversubscribed host the doorbell wakes workers that preempt
    the parent mid-window, double-counting their kernel time into the
    wall span (see ``dispatch_breakdown``).  Metering the parent's own
    CPU makes the gate meaningful even on a single-core host — unlike
    the worker-scaling gate, it carries no cpu-count condition.
    ``sim_time_match`` doubles as the proof that the two dispatch paths
    computed the same run, and ``plan_hits``/``plan_misses`` audit that
    the ring path really was on its cached-plan fast path.
    """
    from repro.bench.reporting import dispatch_breakdown
    from repro.instrument import ExecutorTrace
    from repro.runtime.executor import ProcessExecutor

    spec = _fig6_spec(n, steps)
    cost = scaled_cost(MachineModel(), 1.0)
    per_task = {}
    sims = {}
    breakdowns = {}
    plan = {}
    for path in ("ring", "pipe"):
        tracer = ExecutorTrace()
        ex = ProcessExecutor(workers=workers, dispatch=path, exec_tracer=tracer)
        try:
            _wall, sims[path] = _run_sim(spec, cores, cost, executor=ex)
            plan[path] = dict(hits=ex.plan_hits, misses=ex.plan_misses)
        finally:
            ex.close()
        bd = dispatch_breakdown(tracer.spans)
        breakdowns[path] = bd["totals"]
        per_task[path] = bd["totals"]["steady_dispatch_cpu_s_per_task"]
    return dict(
        name=f"dispatch_n{n}_c{cores}_w{workers}",
        kind="dispatch",
        env=_entry_env(),
        params=dict(
            n_particles=n, steps=steps, cells=spec.cells, cores=cores,
            workers=workers,
        ),
        baseline_s=per_task["pipe"],
        optimized_s=per_task["ring"],
        speedup=per_task["pipe"] / per_task["ring"],
        pushes_per_sec=n * steps / max(per_task["ring"], 1e-12),
        sim_time_s=sims["ring"],
        sim_time_match=bool(sims["ring"] == sims["pipe"]),
        plan_hits=plan["ring"]["hits"],
        plan_misses=plan["ring"]["misses"],
        ring_totals=breakdowns["ring"],
        pipe_totals=breakdowns["pipe"],
        gate_min_speedup=gate,
    )


def bench_kernel_backend_parallel(
    n: int, steps: int, *, cells: int = FIG6_CELLS, gate: float = 2.5
) -> dict:
    """compiled-parallel (prange) vs scalar compiled, same population.

    Both sides are numba kernels; the ratio isolates what the prange over
    fixed chunk boundaries buys on a multi-core host.  The ``gate``x
    floor applies only where numba is installed AND the host has >= 4
    cores — one core cannot witness thread-level speedup, so there the
    entry records an honest ``gate_skipped`` (with the cpu count in the
    ``env`` stamp to audit it).  The two runs start bitwise identical and
    must end bitwise identical (``bitwise_match``): chunked prange is
    elementwise, so thread count can never change a result bit.
    """
    import os

    from repro.core import kernel_compiled

    mesh = Mesh(cells=cells)
    dt = 0.01
    entry = dict(
        name=f"kernel_parallel_n{n}",
        kind="kernel_backend_parallel",
        env=_entry_env(),
        params=dict(n_particles=n, steps=steps, cells=cells),
    )
    if not kernel_compiled.HAVE_NUMBA:
        entry.update(
            baseline_s=0.0,
            optimized_s=0.0,
            speedup=1.0,
            pushes_per_sec=0.0,
            gate_min_speedup=None,
            gate_skipped=(
                "numba not installed; the compiled-parallel gate "
                f"(>={gate}x over scalar compiled) only runs with the "
                "repro[compiled] extra"
            ),
        )
        return entry

    kernel_compiled.warmup("compiled")
    jit_s = kernel_compiled.warmup("compiled-parallel")
    p = _make_particles(n, mesh)
    kernel_compiled.advance_arrays_compiled(mesh, p.x, p.y, p.vx, p.vy, p.q, dt)
    t0 = time.perf_counter()
    for _ in range(steps):
        kernel_compiled.advance_arrays_compiled(
            mesh, p.x, p.y, p.vx, p.vy, p.q, dt
        )
    compiled_s = (time.perf_counter() - t0) / steps

    q = _make_particles(n, mesh)
    kernel_compiled.advance_arrays_parallel(mesh, q.x, q.y, q.vx, q.vy, q.q, dt)
    t0 = time.perf_counter()
    for _ in range(steps):
        kernel_compiled.advance_arrays_parallel(
            mesh, q.x, q.y, q.vx, q.vy, q.q, dt
        )
    parallel_s = (time.perf_counter() - t0) / steps
    match = all(
        getattr(p, f).tobytes() == getattr(q, f).tobytes()
        for f in ("x", "y", "vx", "vy")
    )
    cpu = os.cpu_count() or 1
    entry.update(
        baseline_s=compiled_s,
        optimized_s=parallel_s,
        speedup=compiled_s / parallel_s,
        pushes_per_sec=n / parallel_s,
        jit_warmup_s=jit_s,
        bitwise_match=bool(match),
        gate_min_speedup=gate if cpu >= 4 else None,
    )
    if cpu < 4:
        entry["gate_skipped"] = (
            f"host has {cpu} cpu(s); the {gate}x compiled-parallel gate "
            "is only meaningful with >= 4 cores"
        )
    return entry


def campaign_throughput_declaration(
    points: int = 16, inner_workers: int = 2
) -> dict:
    """The uncached smoke sweep the campaign-throughput bench runs.

    ``points`` small mpi-2d runs whose specs ask for the *process*
    executor — so under the PR-7 pool runner every point re-pays
    ``pool_startup_s`` (+ ``jit_warmup_s`` where numba is present) inside
    its own ``execute_runspec`` call, which is exactly the per-point tax
    the fabric's warm workers amortize.  The particle counts are
    heterogeneous with the two largest points *last* in expansion order:
    the pool baseline submits in expansion order and serializes its tail
    behind them, while the fabric's longest-expected-first ordering
    starts them first.
    """
    small = [200 + 20 * i for i in range(points - 2)]
    heavy = [3000, 4000]
    return {
        "schema": 1,
        "campaign": "campaign-throughput",
        "base": {
            "workload": {"cells": 32, "n_particles": 400, "steps": 4},
            "impl": {"name": "mpi-2d", "cores": 2},
            "executor": {"kind": "process", "workers": inner_workers},
        },
        "axes": [
            {
                "axis": "n",
                "path": "workload.n_particles",
                "values": small + heavy[: max(0, points - len(small))],
            }
        ],
    }


def bench_campaign_throughput(
    *,
    points: int = 16,
    jobs: int = 4,
    inner_workers: int = 2,
    gate: float = 3.0,
) -> dict:
    """Work-stealing campaign fabric vs the PR-7 pool runner, same sweep.

    Both sides run the identical uncached ``points``-point declaration at
    ``--jobs`` ``jobs`` against fresh caches: the baseline is the kept-
    verbatim ``ProcessPoolExecutor`` path (``runner="pool"``), the
    optimized side the warm-worker fabric (``runner="fabric"``).  Beyond
    the wall-clock ratio the entry is a correctness audit:

    * ``bitwise_match`` — both runners' artifact directories must be
      byte-identical (the fabric cannot change a result bit);
    * ``cache_coherent`` — a second fabric run against the same cache
      must complete 100% from cache (no re-execution);
    * ``startup_once_per_worker`` — the fabric manifest must report
      ``jit_warmup_s`` and each warm executor's ``pool_startup_s`` once
      per *worker*, not once per point, and the workers' point counts
      must sum to the sweep.

    The ``gate``x floor only applies on hosts with at least ``jobs``
    cores (the sweep cannot overlap otherwise); smaller hosts record an
    honest ``gate_skipped``, and CI's asserted-4-vCPU leg turns that into
    a failure via ``--require-live campaign``.
    """
    import hashlib
    import os
    import tempfile

    from repro.campaign import CampaignSpec, run_campaign

    camp = CampaignSpec.from_dict(
        campaign_throughput_declaration(points, inner_workers)
    )
    expanded = camp.expand()
    total_pushes = sum(
        p.spec.workload.n_particles * p.spec.workload.steps for p in expanded
    )

    def _digests(cache_dir: str) -> dict:
        out = {}
        for name in sorted(os.listdir(cache_dir)):
            if not name.endswith(".json") or name.endswith(".manifest.json"):
                continue
            with open(os.path.join(cache_dir, name), "rb") as fh:
                out[name] = hashlib.sha256(fh.read()).hexdigest()
        return out

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as td:
        pool_cache = os.path.join(td, "pool")
        fabric_cache = os.path.join(td, "fabric")

        t0 = time.perf_counter()
        run_campaign(camp, cache_dir=pool_cache, jobs=jobs, runner="pool")
        pool_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        fab = run_campaign(
            camp, cache_dir=fabric_cache, jobs=jobs, runner="fabric"
        )
        fabric_s = time.perf_counter() - t0

        bitwise = _digests(pool_cache) == _digests(fabric_cache)

        second = run_campaign(
            camp, cache_dir=fabric_cache, jobs=jobs, runner="fabric"
        )
        coherent = second.executed == 0 and second.cached == len(expanded)

        workers = (fab.fabric or {}).get("workers", [])
        startup_once = (
            len(workers) == min(jobs, len(expanded))
            and all(len(w["pool_startup_s"]) == 1 for w in workers)
            and sum(w["points"] for w in workers) == len(expanded)
        )
        worker_rows = [
            dict(
                worker=w["worker"],
                jit_warmup_s=w["jit_warmup_s"],
                pool_startup_s=w["pool_startup_s"],
                points=w["points"],
                busy_s=w["busy_s"],
            )
            for w in workers
        ]

    cpu = os.cpu_count() or 1
    entry = dict(
        name=f"campaign_fabric_p{points}_j{jobs}",
        kind="campaign",
        env=_entry_env(),
        params=dict(
            points=points, jobs=jobs, inner_workers=inner_workers,
            total_pushes=total_pushes,
        ),
        baseline_s=pool_s,
        optimized_s=fabric_s,
        speedup=pool_s / fabric_s,
        pushes_per_sec=total_pushes / fabric_s,
        bitwise_match=bool(bitwise),
        cache_coherent=bool(coherent),
        startup_once_per_worker=bool(startup_once),
        rows=worker_rows,
        gate_min_speedup=gate if cpu >= jobs else None,
    )
    if cpu < jobs:
        entry["gate_skipped"] = (
            f"host has {cpu} cpu(s); the {gate}x campaign-fabric gate at "
            f"--jobs {jobs} is only meaningful with >= that many cores"
        )
    return entry


def bench_multiplex(
    *,
    engines: int = 32,
    cores: int = 4,
    gate: float = 0.75,
) -> dict:
    """Engine multiplexing overhead: N interleaved vs N sequential runs.

    The same ``engines`` seed-varied mpi-2d workloads run twice: the
    baseline drives each engine to completion with ``run()`` one after
    another (each with its own serial executor — the classic loop), the
    measured side time-slices all of them through one
    :class:`~repro.runtime.multiplex.EngineGroup` over a single *shared*
    executor pool.  Both sides report engines/sec; the ``speedup`` ratio
    is the pool-sharing + slicing overhead (1.0x = free, the gate floors
    it at ``gate``x — interleaving may cost bookkeeping but must never
    approach the price of a second run).

    Correctness audit: ``sim_time_match`` asserts every interleaved
    engine's simulated clock equals its sequential twin's — wall-clock
    scheduling is allowed to change, simulated time is not.

    Single-core hosts can starve the comparison (the interpreter is
    timeshared with whatever else CI runs there), so the gate only
    applies with >= 2 cpus; below that the entry records an honest
    ``gate_skipped``.
    """
    import os

    from repro.core.spec import Distribution
    from repro.parallel.mpi2d import Mpi2dPIC
    from repro.runtime.executor import make_executor
    from repro.runtime.multiplex import EngineGroup

    def _spec(i: int) -> PICSpec:
        return PICSpec(
            cells=32, n_particles=400, steps=8,
            distribution=Distribution.UNIFORM, seed=42 + i,
        )

    # Sequential baseline: one classic run() per engine, own executor.
    t0 = time.perf_counter()
    seq_times = []
    for i in range(engines):
        ex = make_executor("serial")
        result = Mpi2dPIC(_spec(i), cores, executor=ex).run()
        ex.close()
        assert result.verification.ok
        seq_times.append(result.total_time)
    sequential_s = time.perf_counter() - t0

    # Interleaved: every engine in one group over one shared pool.
    t0 = time.perf_counter()
    shared = make_executor("serial")
    group = EngineGroup(
        policy="fair", slice_ticks=64, order_seed=1, executor=shared
    )
    try:
        for i in range(engines):
            tag = f"e{i}"
            impl = Mpi2dPIC(_spec(i), cores, executor=group.handle(tag))
            group.add(tag, impl.build_engine(engine_id=tag))
        results = group.run_all()
    finally:
        group.close()
    interleaved_s = time.perf_counter() - t0

    mux_times = [results[f"e{i}"].total_time for i in range(engines)]
    sim_time_match = mux_times == seq_times
    assert all(results[f"e{i}"].verification.ok for i in range(engines))

    cpu = os.cpu_count() or 1
    entry = dict(
        name=f"multiplex_e{engines}_c{cores}",
        kind="multiplex",
        env=_entry_env(),
        params=dict(engines=engines, cores=cores, slice_ticks=64),
        baseline_s=sequential_s,
        optimized_s=interleaved_s,
        speedup=sequential_s / interleaved_s,
        engines_per_sec_sequential=engines / sequential_s,
        engines_per_sec_interleaved=engines / interleaved_s,
        slices=group.slices,
        sim_time_match=bool(sim_time_match),
        gate_min_speedup=gate if cpu >= 2 else None,
    )
    if cpu < 2:
        entry["gate_skipped"] = (
            f"host has {cpu} cpu(s); wall-clock comparison of {engines} "
            "interleaved engines is not meaningful on a starved host"
        )
    return entry


# ----------------------------------------------------------------------
# Suite presets
# ----------------------------------------------------------------------
def run_suite(
    preset: str = "full",
    progress: Callable[[str], None] = print,
    only: str | None = None,
) -> dict:
    """Run one preset and return the BENCH_wallclock document (a dict).

    ``only`` filters the plan to entries of one kind (e.g. ``campaign``
    for the CI campaign-throughput leg, which should not re-run the
    perf-grade kernel populations).
    """
    if preset == "full":
        plan = [
            # The acceptance gates: perf-grade populations where the
            # allocation churn this PR removes dominates.
            ("kernel", lambda: bench_kernel(4_194_304, steps=4), 3.0),
            ("end_to_end",
             lambda: bench_end_to_end(4_194_304, steps=4, cores=1), 2.5),
            # Supporting evidence, non-gating.
            ("kernel", lambda: bench_kernel(400_000, steps=8), None),
            ("exchange", lambda: bench_exchange(400_000, steps=16, cores=4), None),
            ("end_to_end",
             lambda: bench_end_to_end(24_000, steps=200, cores=4), None),
            # Real-multicore scaling of the process executor; carries its
            # own conditional gate (>=1.5x at 4 workers on >=4-core hosts).
            ("workers", lambda: bench_worker_sweep(4_194_304, steps=4), None),
            # Compiled kernel backend; carries its own conditional gate
            # (>=3x over the python fused kernel where numba is present).
            ("kernel_backend",
             lambda: bench_kernel_backend(4_194_304, steps=4), None),
            # prange kernel vs scalar compiled; conditional gate
            # (>=2.5x where numba is present and the host has >=4 cores).
            ("kernel_backend_parallel",
             lambda: bench_kernel_backend_parallel(4_194_304, steps=4), None),
            # Ring vs pipe steady-state dispatch cost; unconditional >=5x
            # gate (parent-side cost, meaningful on any host).
            ("dispatch", lambda: bench_dispatch(24_000, steps=50, cores=32), None),
            # Campaign fabric vs the pool runner; conditional >=3x gate
            # (sweep overlap needs >= jobs cores).
            ("campaign", lambda: bench_campaign_throughput(), None),
            # Engine multiplexing overhead: 32 interleaved vs 32
            # sequential runs; conditional >=0.75x floor (interleaving
            # must stay near-free).
            ("multiplex", lambda: bench_multiplex(), None),
        ]
    elif preset == "smoke":
        plan = [
            # CI-sized: gated only relatively, vs the checked-in baseline.
            ("kernel", lambda: bench_kernel(400_000, steps=6), None),
            # The compiled-backend gate keeps the perf-grade population in
            # smoke too: the >=3x claim is about the memory-bound regime,
            # and CI's compiled leg enforces it.
            ("kernel_backend",
             lambda: bench_kernel_backend(4_194_304, steps=4), None),
            ("exchange", lambda: bench_exchange(48_000, steps=20, cores=4), None),
            ("end_to_end",
             lambda: bench_end_to_end(200_000, steps=4, cores=1), None),
            # The acceptance config for the worker gate is deliberately the
            # perf-grade 4M population even in smoke: speedup ratios at toy
            # sizes are floored by dispatch overhead and would not witness
            # the multicore claim.
            ("workers", lambda: bench_worker_sweep(4_194_304, steps=4), None),
            ("kernel_backend_parallel",
             lambda: bench_kernel_backend_parallel(4_194_304, steps=4), None),
            # Dispatch cost is size-independent; the smoke config is the
            # acceptance config.
            ("dispatch", lambda: bench_dispatch(24_000, steps=50, cores=32), None),
            # The campaign-fabric config is the acceptance config (16
            # points, --jobs 4) in smoke too: the per-point startup tax it
            # amortizes does not shrink with sweep size.
            ("campaign", lambda: bench_campaign_throughput(), None),
            # The multiplex config is the acceptance config in smoke too:
            # 32 small engines is already CI-sized.
            ("multiplex", lambda: bench_multiplex(), None),
        ]
    else:
        raise ValueError(f"unknown preset: {preset!r}")

    if only is not None:
        plan = [item for item in plan if item[0] == only]
        if not plan:
            raise ValueError(f"no {preset!r} entries of kind {only!r}")

    entries = []
    for _, fn, gate in plan:
        entry = fn()
        # Drivers that set their own (conditional) gate keep it.
        entry.setdefault("gate_min_speedup", gate)
        gate = entry["gate_min_speedup"]
        progress(
            f"  {entry['name']}: {entry['baseline_s'] * 1e3:.1f} ms -> "
            f"{entry['optimized_s'] * 1e3:.1f} ms  ({entry['speedup']:.2f}x"
            + (f", gate >={gate}x" if gate else "")
            + ")"
        )
        entries.append(entry)
    return dict(
        schema=SCHEMA_VERSION,
        preset=preset,
        machine=machine_fingerprint(),
        entries=entries,
    )


def machine_fingerprint() -> dict:
    import os

    return dict(
        platform=platform.platform(),
        python=platform.python_version(),
        numpy=np.__version__,
        cpu_count=os.cpu_count(),
    )


# ----------------------------------------------------------------------
# Persistence and gating
# ----------------------------------------------------------------------
def save_bench(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return doc


def check_gates(doc: dict) -> list[str]:
    """Absolute floors: entries whose speedup is below their own gate."""
    failures = []
    for e in doc["entries"]:
        gate = e.get("gate_min_speedup")
        if gate is not None and e["speedup"] < gate:
            failures.append(
                f"{e['name']}: speedup {e['speedup']:.2f}x below gate {gate}x"
            )
        if e.get("sim_time_match") is False:
            failures.append(
                f"{e['name']}: simulated time diverged between optimised "
                "and legacy hot paths"
            )
        if e.get("bitwise_match") is False:
            failures.append(
                f"{e['name']}: optimised results diverged bitwise from "
                "the baseline's"
            )
        if e.get("cache_coherent") is False:
            failures.append(
                f"{e['name']}: second fabric run re-executed points "
                "instead of completing from cache"
            )
        if e.get("startup_once_per_worker") is False:
            failures.append(
                f"{e['name']}: jit_warmup_s/pool_startup_s were not "
                "reported once per worker"
            )
    return failures


def check_regression(
    new: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Relative floor: speedup ratios must not drop >tolerance vs baseline.

    Speedups are machine-normalised (both sides of each ratio ran on the
    same machine), so a baseline recorded elsewhere is still comparable.
    """
    failures = []
    new_by_name = {e["name"]: e for e in new["entries"]}
    for base_entry in baseline["entries"]:
        name = base_entry["name"]
        entry = new_by_name.get(name)
        if entry is None:
            failures.append(f"{name}: present in baseline but not in this run")
            continue
        floor = base_entry["speedup"] * (1.0 - tolerance)
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x regressed below "
                f"{floor:.2f}x (baseline {base_entry['speedup']:.2f}x "
                f"- {tolerance:.0%})"
            )
    return failures
