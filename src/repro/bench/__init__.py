"""Benchmark harness: regenerates the paper's figures on the simulated runtime.

* :mod:`repro.bench.workloads` — per-figure experiment configurations, with
  the paper's parameters and the scaled presets actually run (scaling rules
  documented in EXPERIMENTS.md);
* :mod:`repro.bench.runner` — runs one implementation on one configuration
  and records simulated time plus imbalance statistics;
* :mod:`repro.bench.reporting` — paper-style tables and ASCII log-log plots;
* :mod:`repro.bench.sweep` — generic parameter sweeps (used by ablations);
* :mod:`repro.bench.figures` — the per-figure drivers, runnable standalone
  via ``python -m repro.bench.figures <fig5|fig6l|fig6r|fig7>``.
"""

from repro.bench.runner import RunRecord, run_implementation
from repro.bench.workloads import (
    fig5_workload,
    fig6_workload,
    fig7_workload,
    Workload,
)

__all__ = [
    "RunRecord",
    "run_implementation",
    "Workload",
    "fig5_workload",
    "fig6_workload",
    "fig7_workload",
]
