"""Per-figure benchmark drivers.

Each ``run_*`` function regenerates one figure/table of the paper's
evaluation (§V) on the simulated runtime and returns the records; the
``main`` entry point makes them runnable standalone::

    python -m repro.bench.figures fig5
    python -m repro.bench.figures fig6l fig6r fig7 --out benchmarks/results

Expected shapes (paper §V; absolute numbers differ, see EXPERIMENTS.md):

* fig5  — time falls steeply as F grows from very frequent LB, then
  flattens; time dips with over-decomposition d then rises again.
* fig6l — single node: all three comparable within one socket; beyond it
  mpi-2d-LB < ampi < mpi-2d.
* fig6r — multi node: mpi-2d-LB scales best and beats ampi by ~2x at the
  top; both beat the baseline.
* fig7  — weak scaling: ampi and mpi-2d-LB comparable, both well under the
  baseline; ampi edges out LB at the largest scale.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.bench.persist import save_records
from repro.bench.reporting import ascii_loglog, format_series, format_table, speedup_table
from repro.bench.runner import RunRecord, run_implementation, serial_model_time
from repro.bench.sweep import SweepPoint, grid_points, run_sweep
from repro.bench.workloads import (
    FIG5_CORES,
    FIG5_D_VALUES,
    FIG5_F_VALUES,
    FIG5_FIXED_D,
    FIG5_FIXED_F,
    FIG6_MULTI_NODE_CORES,
    FIG6_SINGLE_NODE_CORES,
    FIG7_CORES,
    FIG7_CORES_FULL,
    fig5_workload,
    fig6_workload,
    fig7_workload,
)

Progress = Callable[[str], None]


def _echo(msg: str) -> None:
    print(msg, flush=True)


# ----------------------------------------------------------------------
# Figure 5: AMPI parameter tuning
# ----------------------------------------------------------------------
def run_fig5(progress: Progress = _echo) -> list[RunRecord]:
    """F sweep at fixed d, then d sweep at fixed F (paper Fig. 5)."""
    w = fig5_workload()
    points: list[SweepPoint] = []
    for f_value in FIG5_F_VALUES:
        points.append(
            SweepPoint(
                impl="ampi",
                cores=FIG5_CORES,
                impl_kwargs=dict(
                    overdecomposition=FIG5_FIXED_D,
                    lb_interval=f_value,
                    **w.ampi_params,
                ),
                label={"sweep": "F", "F": f_value, "d": FIG5_FIXED_D},
            )
        )
    for d_value in FIG5_D_VALUES:
        points.append(
            SweepPoint(
                impl="ampi",
                cores=FIG5_CORES,
                impl_kwargs=dict(
                    overdecomposition=d_value,
                    lb_interval=FIG5_FIXED_F,
                    **w.ampi_params,
                ),
                label={"sweep": "d", "F": FIG5_FIXED_F, "d": d_value},
            )
        )
    return run_sweep("fig5", w, points, progress=progress)


def report_fig5(records: list[RunRecord]) -> str:
    f_recs = [r for r in records if r.params.get("sweep") == "F"]
    d_recs = [r for r in records if r.params.get("sweep") == "d"]
    parts = [
        "Figure 5 — AMPI tuning (interval F between LB invocations; "
        "over-decomposition degree d)",
        "",
        format_table(f_recs, extra_cols=("F", "d")),
        "",
        format_table(d_recs, extra_cols=("F", "d")),
        "",
        ascii_loglog(
            {"vary-F": [(r.params["F"], r.sim_time) for r in f_recs]},
            title="fig5a: time vs LB interval F",
            x_label="F",
        ),
        "",
        ascii_loglog(
            {"vary-d": [(r.params["d"], r.sim_time) for r in d_recs]},
            title="fig5b: time vs over-decomposition d",
            x_label="d",
        ),
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Figure 6: strong scaling
# ----------------------------------------------------------------------
def _run_fig6(cores_list: Sequence[int], figure: str, progress: Progress) -> list[RunRecord]:
    w = fig6_workload()
    records: list[RunRecord] = []
    for cores in cores_list:
        for impl, kwargs in (
            ("mpi-2d", {}),
            ("mpi-2d-LB", w.lb_params),
            ("ampi", w.ampi_params),
        ):
            spec = w.spec_for(cores)
            rec = run_implementation(
                figure, impl, spec, cores, w.machine, w.cost, **kwargs
            )
            records.append(rec)
            progress(
                f"{figure}: {impl} cores={cores} -> {rec.sim_time:.4f}s "
                f"(wall {rec.wall_time:.1f}s)"
            )
    return records


def run_fig6_single_node(progress: Progress = _echo) -> list[RunRecord]:
    return _run_fig6(FIG6_SINGLE_NODE_CORES, "fig6l", progress)


def run_fig6_multi_node(progress: Progress = _echo) -> list[RunRecord]:
    return _run_fig6(FIG6_MULTI_NODE_CORES, "fig6r", progress)


def report_fig6(records: list[RunRecord], which: str) -> str:
    w = fig6_workload()
    serial = serial_model_time(w.spec_for(0), w.cost)
    parts = [
        f"Figure 6 ({which}) — strong scaling, geometric distribution",
        f"(serial model time: {serial:.3f}s)",
        "",
        format_table(records),
        "",
        ascii_loglog(format_series(records), title=f"fig6 {which}: time vs cores"),
        "",
        speedup_table(records, serial),
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Figure 7: weak scaling
# ----------------------------------------------------------------------
def weak_scaling_cores() -> Sequence[int]:
    """Honour REPRO_FULL=1 to include the paper's 3072-core point."""
    return FIG7_CORES_FULL if os.environ.get("REPRO_FULL") == "1" else FIG7_CORES


def run_fig7(progress: Progress = _echo, cores_list: Sequence[int] | None = None) -> list[RunRecord]:
    w = fig7_workload()
    records: list[RunRecord] = []
    for cores in cores_list or weak_scaling_cores():
        for impl, kwargs in (
            ("mpi-2d", {}),
            ("mpi-2d-LB", w.lb_params),
            ("ampi", w.ampi_params),
        ):
            spec = w.spec_for(cores)
            rec = run_implementation(
                "fig7", impl, spec, cores, w.machine, w.cost, **kwargs
            )
            rec.params["particles"] = spec.n_particles
            records.append(rec)
            progress(
                f"fig7: {impl} cores={cores} n={spec.n_particles} -> "
                f"{rec.sim_time:.4f}s (wall {rec.wall_time:.1f}s)"
            )
    return records


def report_fig7(records: list[RunRecord]) -> str:
    parts = [
        "Figure 7 — weak scaling (particles proportional to cores, grid fixed)",
        "",
        format_table(records, extra_cols=("particles",)),
        "",
        ascii_loglog(format_series(records), title="fig7: time vs cores"),
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Standalone entry point
# ----------------------------------------------------------------------
FIGURES = {
    "fig5": (run_fig5, report_fig5),
    "fig6l": (run_fig6_single_node, lambda r: report_fig6(r, "left: single node")),
    "fig6r": (run_fig6_multi_node, lambda r: report_fig6(r, "right: multi node")),
    "fig7": (run_fig7, report_fig7),
}


def write_report(name: str, text: str, out_dir: str | os.PathLike) -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("figures", nargs="+", choices=sorted(FIGURES))
    parser.add_argument("--out", default="benchmarks/results", help="report directory")
    args = parser.parse_args(argv)
    for name in args.figures:
        run, report = FIGURES[name]
        records = run()
        text = report(records)
        print(text)
        path = write_report(name, text, args.out)
        json_path = save_records(records, Path(args.out) / f"{name}.json")
        print(f"[written to {path} and {json_path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
