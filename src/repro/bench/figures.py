"""Per-figure benchmark drivers.

Each ``run_*`` function regenerates one figure/table of the paper's
evaluation (§V) on the simulated runtime and returns the records; the
``main`` entry point makes them runnable standalone::

    python -m repro.bench.figures fig5
    python -m repro.bench.figures fig6l fig6r fig7 --out benchmarks/results

Expected shapes (paper §V; absolute numbers differ, see EXPERIMENTS.md):

* fig5  — time falls steeply as F grows from very frequent LB, then
  flattens; time dips with over-decomposition d then rises again.
* fig6l — single node: all three comparable within one socket; beyond it
  mpi-2d-LB < ampi < mpi-2d.
* fig6r — multi node: mpi-2d-LB scales best and beats ampi by ~2x at the
  top; both beat the baseline.
* fig7  — weak scaling: ampi and mpi-2d-LB comparable, both well under the
  baseline; ampi edges out LB at the largest scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path
from typing import Callable, Sequence

from repro.bench.campaigns import (
    fig5_campaign,
    fig6l_campaign,
    fig6r_campaign,
    fig7_campaign,
)
from repro.bench.persist import save_records
from repro.bench.reporting import ascii_loglog, format_series, format_table, speedup_table
from repro.bench.runner import RunRecord, serial_model_time
from repro.bench.workloads import (
    FIG7_CORES,
    FIG7_CORES_FULL,
    fig6_workload,
)

Progress = Callable[[str], None]


def _echo(msg: str) -> None:
    print(msg, flush=True)


# ----------------------------------------------------------------------
# Campaign plumbing: every figure is a campaign (repro.bench.campaigns);
# this adapter runs one and converts the outcomes back to RunRecords so
# the report/persist layers are untouched.
# ----------------------------------------------------------------------
def _run_figure_campaign(
    figure: str,
    campaign,
    progress: Progress,
    cache_dir: str | None = None,
    select=None,
) -> list[RunRecord]:
    """Run ``campaign`` and reshape its outcomes into figure RunRecords.

    ``cache_dir=None`` uses a throwaway cache (same observable behavior
    as the historical direct loops); pass a persistent directory (e.g.
    via ``pic-prk figures --cache``) to make re-runs complete from cache.
    """
    from repro.campaign import run_campaign

    points = {p.index: p for p in campaign.expand()}
    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
            result = run_campaign(
                campaign, cache_dir=tmp, select=select, progress=progress
            )
            return _records_from(figure, points, result)
    result = run_campaign(
        campaign, cache_dir=cache_dir, select=select, progress=progress
    )
    return _records_from(figure, points, result)


def _records_from(figure: str, points: dict, result) -> list[RunRecord]:
    records = []
    for outcome in result.outcomes:
        point = points[outcome.index]
        res = outcome.result
        params = dict(point.spec.impl.params())
        params.update(
            {k: v for k, v in point.labels.items() if k not in ("impl", "cores")}
        )
        records.append(
            RunRecord(
                figure=figure,
                implementation=res["implementation"],
                cores=res["n_cores"],
                sim_time=res["sim_time_s"],
                wall_time=outcome.wall_s,
                verified=res["verified"],
                max_particles_per_core=res["max_particles_per_core"],
                ideal_particles_per_core=res["ideal_particles_per_core"],
                messages_sent=res["messages_sent"],
                bytes_sent=res["bytes_sent"],
                params=params,
            )
        )
    return records


# ----------------------------------------------------------------------
# Figure 5: AMPI parameter tuning
# ----------------------------------------------------------------------
def run_fig5(progress: Progress = _echo, cache_dir: str | None = None) -> list[RunRecord]:
    """F sweep at fixed d, then d sweep at fixed F (paper Fig. 5)."""
    return _run_figure_campaign("fig5", fig5_campaign(), progress, cache_dir)


def report_fig5(records: list[RunRecord]) -> str:
    f_recs = [r for r in records if r.params.get("sweep") == "F"]
    d_recs = [r for r in records if r.params.get("sweep") == "d"]
    parts = [
        "Figure 5 — AMPI tuning (interval F between LB invocations; "
        "over-decomposition degree d)",
        "",
        format_table(f_recs, extra_cols=("F", "d")),
        "",
        format_table(d_recs, extra_cols=("F", "d")),
        "",
        ascii_loglog(
            {"vary-F": [(r.params["F"], r.sim_time) for r in f_recs]},
            title="fig5a: time vs LB interval F",
            x_label="F",
        ),
        "",
        ascii_loglog(
            {"vary-d": [(r.params["d"], r.sim_time) for r in d_recs]},
            title="fig5b: time vs over-decomposition d",
            x_label="d",
        ),
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Figure 6: strong scaling
# ----------------------------------------------------------------------
def run_fig6_single_node(progress: Progress = _echo, cache_dir: str | None = None) -> list[RunRecord]:
    return _run_figure_campaign("fig6l", fig6l_campaign(), progress, cache_dir)


def run_fig6_multi_node(progress: Progress = _echo, cache_dir: str | None = None) -> list[RunRecord]:
    return _run_figure_campaign("fig6r", fig6r_campaign(), progress, cache_dir)


def report_fig6(records: list[RunRecord], which: str) -> str:
    w = fig6_workload()
    serial = serial_model_time(w.spec_for(0), w.cost)
    parts = [
        f"Figure 6 ({which}) — strong scaling, geometric distribution",
        f"(serial model time: {serial:.3f}s)",
        "",
        format_table(records),
        "",
        ascii_loglog(format_series(records), title=f"fig6 {which}: time vs cores"),
        "",
        speedup_table(records, serial),
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Figure 7: weak scaling
# ----------------------------------------------------------------------
def weak_scaling_cores() -> Sequence[int]:
    """Honour REPRO_FULL=1 to include the paper's 3072-core point."""
    return FIG7_CORES_FULL if os.environ.get("REPRO_FULL") == "1" else FIG7_CORES


def run_fig7(
    progress: Progress = _echo,
    cores_list: Sequence[int] | None = None,
    cache_dir: str | None = None,
) -> list[RunRecord]:
    wanted = set(cores_list or weak_scaling_cores())
    return _run_figure_campaign(
        "fig7",
        fig7_campaign(),
        progress,
        cache_dir,
        select=lambda labels: labels["cores"] in wanted,
    )


def report_fig7(records: list[RunRecord]) -> str:
    parts = [
        "Figure 7 — weak scaling (particles proportional to cores, grid fixed)",
        "",
        format_table(records, extra_cols=("particles",)),
        "",
        ascii_loglog(format_series(records), title="fig7: time vs cores"),
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Standalone entry point
# ----------------------------------------------------------------------
FIGURES = {
    "fig5": (run_fig5, report_fig5),
    "fig6l": (run_fig6_single_node, lambda r: report_fig6(r, "left: single node")),
    "fig6r": (run_fig6_multi_node, lambda r: report_fig6(r, "right: multi node")),
    "fig7": (run_fig7, report_fig7),
}


def write_report(name: str, text: str, out_dir: str | os.PathLike) -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("figures", nargs="+", choices=sorted(FIGURES))
    parser.add_argument("--out", default="benchmarks/results", help="report directory")
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persistent campaign cache (re-runs complete from cache)",
    )
    args = parser.parse_args(argv)
    for name in args.figures:
        run, report = FIGURES[name]
        records = run(cache_dir=args.cache)
        text = report(records)
        print(text)
        path = write_report(name, text, args.out)
        json_path = save_records(records, Path(args.out) / f"{name}.json")
        print(f"[written to {path} and {json_path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
