"""Single-configuration benchmark runner."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.spec import PICSpec
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.parallel.base import ParallelResult
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

IMPLEMENTATIONS = {
    "mpi-2d": Mpi2dPIC,
    "mpi-2d-LB": Mpi2dLbPIC,
    "ampi": AmpiPIC,
}


@dataclass
class RunRecord:
    """One (implementation, configuration) data point of a figure."""

    figure: str
    implementation: str
    cores: int
    sim_time: float
    wall_time: float
    verified: bool
    max_particles_per_core: int
    ideal_particles_per_core: float
    messages_sent: int
    bytes_sent: int
    params: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        figure: str,
        result: ParallelResult,
        wall_time: float,
        params: dict | None = None,
    ) -> "RunRecord":
        return cls(
            figure=figure,
            implementation=result.implementation,
            cores=result.n_cores,
            sim_time=result.total_time,
            wall_time=wall_time,
            verified=result.verification.ok,
            max_particles_per_core=result.max_particles_per_core,
            ideal_particles_per_core=result.ideal_particles_per_core,
            messages_sent=result.messages_sent,
            bytes_sent=result.bytes_sent,
            params=dict(params or {}),
        )

    def as_row(self) -> dict[str, Any]:
        row = {
            "figure": self.figure,
            "impl": self.implementation,
            "cores": self.cores,
            "sim_time_s": round(self.sim_time, 6),
            "verified": self.verified,
            "max_ppc": self.max_particles_per_core,
        }
        row.update(self.params)
        return row


def run_implementation(
    figure: str,
    impl: str,
    spec: PICSpec,
    cores: int,
    machine: MachineModel,
    cost: CostModel,
    **impl_kwargs,
) -> RunRecord:
    """Run one implementation on one configuration and record the outcome.

    Raises if the self-verification fails — a benchmark number from a broken
    run must never silently enter a results table.
    """
    try:
        impl_cls = IMPLEMENTATIONS[impl]
    except KeyError:
        raise ValueError(
            f"unknown implementation {impl!r}; choose from {sorted(IMPLEMENTATIONS)}"
        ) from None
    t0 = time.perf_counter()
    result = impl_cls(spec, cores, machine=machine, cost=cost, **impl_kwargs).run()
    wall = time.perf_counter() - t0
    if not result.verification.ok:
        raise AssertionError(
            f"{impl} on {cores} cores failed verification: {result.verification}"
        )
    return RunRecord.from_result(figure, result, wall, params=impl_kwargs)


def serial_model_time(spec: PICSpec, cost: CostModel) -> float:
    """Simulated serial execution time (the speedup baseline of §V-B)."""
    return cost.push_time(spec.n_particles) * spec.steps
