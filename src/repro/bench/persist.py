"""Persistence and comparison of benchmark records.

The figure drivers print tables and ASCII plots; this module additionally
round-trips the raw :class:`repro.bench.runner.RunRecord` lists through
JSON so successive runs can be diffed — the simulated times are fully
deterministic, so any change between two runs of the same commit is a bug,
and changes across commits quantify the effect of a code change.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from repro.bench.runner import RunRecord

#: Bump when the serialized shape changes.
SCHEMA_VERSION = 1


def _jsonable(value):
    """Coerce params to JSON-safe values (e.g. strategy objects -> names)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return repr(value)


def save_records(records: Sequence[RunRecord], path: str | Path) -> Path:
    """Write records to ``path`` as a self-describing JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": SCHEMA_VERSION,
        "records": [
            {
                **{k: v for k, v in asdict(r).items() if k != "params"},
                "params": {k: _jsonable(v) for k, v in r.params.items()},
            }
            for r in records
        ],
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_records(path: str | Path) -> list[RunRecord]:
    """Inverse of :func:`save_records`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {doc.get('schema')!r}; expected {SCHEMA_VERSION}"
        )
    return [RunRecord(**entry) for entry in doc["records"]]


def record_key(record: RunRecord) -> tuple:
    """Identity of a data point: where it belongs in a figure."""
    extra = tuple(
        sorted((k, _jsonable(v)) for k, v in record.params.items())
    )
    return (record.figure, record.implementation, record.cores, extra)


def compare_records(
    old: Iterable[RunRecord],
    new: Iterable[RunRecord],
    rel_tolerance: float = 0.0,
) -> list[str]:
    """Report differences in simulated time between two runs.

    Returns human-readable difference lines; empty means identical (within
    ``rel_tolerance``).  Points present on only one side are reported too.
    """
    old_map = {record_key(r): r for r in old}
    new_map = {record_key(r): r for r in new}
    lines: list[str] = []
    for key in sorted(old_map.keys() | new_map.keys(), key=str):
        a = old_map.get(key)
        b = new_map.get(key)
        if a is None:
            lines.append(f"only in new: {key}")
        elif b is None:
            lines.append(f"only in old: {key}")
        else:
            ref = max(abs(a.sim_time), 1e-300)
            rel = abs(a.sim_time - b.sim_time) / ref
            if rel > rel_tolerance:
                lines.append(
                    f"{key}: sim_time {a.sim_time:.6g} -> {b.sim_time:.6g} "
                    f"({(b.sim_time / a.sim_time - 1) * 100:+.2f}%)"
                )
    return lines
