"""Faithful copies of the pre-pooling hot-path code, kept as perf baselines.

The wall-clock harness (:mod:`repro.bench.perf`) measures the optimised hot
path *against the code it replaced*, in the same process and on the same
machine, so the reported speedups are self-normalising.  The kernel side of
the comparison lives next to the optimised code
(:func:`repro.core.kernel.advance_reference`); this module preserves the
particle-exchange side: the seed's ``exchange_particles`` pipeline, which
allocated fresh select/pack/concatenate arrays for the full population on
every routing hop.

These functions are verbatim ports of the seed implementation (commit
"PR 1") modulo renames, and must stay behaviourally identical to it — they
are the "before" in every BENCH_wallclock.json entry.  Do not optimise them.
"""

from __future__ import annotations

import numpy as np

from repro.core.mesh import Mesh
from repro.core.particles import PARTICLE_RECORD_FIELDS, ParticleArray
from repro.decomp.partition import BlockPartition
from repro.parallel.base import (
    TAG_X_LEFT,
    TAG_X_RIGHT,
    TAG_Y_DOWN,
    TAG_Y_UP,
)
from repro.runtime.cart import CartComm
from repro.runtime.comm import Comm
from repro.runtime.costmodel import CostModel
from repro.runtime.reduce_ops import SUM

#: Shared zero-particle wire buffer (read-only by convention).
_EMPTY_BUF = np.empty((0, PARTICLE_RECORD_FIELDS), dtype=np.float64)


def exchange_particles_legacy(
    comm: Comm,
    cart: CartComm,
    partition: BlockPartition,
    mesh: Mesh,
    particles: ParticleArray,
    cost: CostModel,
    scratch=None,
):
    """The seed's particle router: fresh allocations on every hop.

    Accepts (and ignores) ``scratch`` so it can be monkeypatched in place of
    the optimised :func:`repro.parallel.base.exchange_particles`.
    """
    my_px, my_py = cart.coords
    px, py = cart.px, cart.py
    while True:
        if px > 1:
            particles = yield from _route_axis_legacy(
                comm, cart, particles, mesh, cost,
                owner_of=partition.x_owner,
                coord_of=lambda p: p.cell_columns(mesh),
                my_index=my_px, n_index=px, axis=0,
                tag_fwd=TAG_X_RIGHT, tag_bwd=TAG_X_LEFT,
            )
        if py > 1:
            particles = yield from _route_axis_legacy(
                comm, cart, particles, mesh, cost,
                owner_of=partition.y_owner,
                coord_of=lambda p: p.cell_rows(mesh),
                my_index=my_py, n_index=py, axis=1,
                tag_fwd=TAG_Y_UP, tag_bwd=TAG_Y_DOWN,
            )
        misplaced = _count_misplaced_legacy(cart, partition, mesh, particles)
        total = yield comm.allreduce(misplaced, op=SUM)
        if total == 0:
            return particles


def _count_misplaced_legacy(cart, partition, mesh, particles) -> int:
    if len(particles) == 0:
        return 0
    owner = partition.owner_rank(
        particles.cell_columns(mesh), particles.cell_rows(mesh)
    )
    return int(np.count_nonzero(owner != cart.rank))


def _route_axis_legacy(
    comm, cart, particles, mesh, cost,
    *, owner_of, coord_of, my_index, n_index, axis, tag_fwd, tag_bwd,
):
    """One forwarding hop along one axis (generator; returns particle set)."""
    n_fwd = n_bwd = 0
    if len(particles):
        owner = owner_of(coord_of(particles))
        dist = (owner - my_index) % n_index
        go_fwd = (dist > 0) & (dist <= n_index // 2)
        go_bwd = dist > n_index // 2
        n_fwd = int(np.count_nonzero(go_fwd))
        n_bwd = int(np.count_nonzero(go_bwd))

    fwd_buf = particles.pack(go_fwd) if n_fwd else _EMPTY_BUF
    bwd_buf = particles.pack(go_bwd) if n_bwd else _EMPTY_BUF
    n_out = n_fwd + n_bwd
    if n_out:
        yield comm.compute(cost.pack_time(n_out))

    src_bwd, dst_fwd = cart.shift(axis, 1)
    src_fwd, dst_bwd = cart.shift(axis, -1)
    from_bwd = yield comm.sendrecv(
        fwd_buf, dst=dst_fwd, src=src_bwd, sendtag=tag_fwd, recvtag=tag_fwd,
        nbytes=cost.particle_wire_bytes(fwd_buf.nbytes),
    )
    from_fwd = yield comm.sendrecv(
        bwd_buf, dst=dst_bwd, src=src_fwd, sendtag=tag_bwd, recvtag=tag_bwd,
        nbytes=cost.particle_wire_bytes(bwd_buf.nbytes),
    )

    n_in = len(from_bwd) + len(from_fwd)
    if n_in == 0:
        if n_out == 0:
            return particles
        return particles.select(~(go_fwd | go_bwd))
    yield comm.compute(cost.pack_time(n_in))
    kept = particles.select(~(go_fwd | go_bwd)) if n_out else particles
    parts = [kept]
    if len(from_bwd):
        parts.append(ParticleArray.from_packed(from_bwd))
    if len(from_fwd):
        parts.append(ParticleArray.from_packed(from_fwd))
    return ParticleArray.concatenate(parts)
