"""Straggler-recovery benchmark for the resilience subsystem.

Measures, in *simulated* time, how much of a straggler-induced slowdown
each implementation recovers.  The scenario deliberately uses a uniform
particle distribution: a static block decomposition is then perfectly
count-balanced, so every second of excess runtime is attributable to the
injected fault rather than to the workload's own imbalance.

One core is slowed by ``SLOWDOWN_FACTOR`` from ``FAULT_START`` to the end
of the run (a 4x CPU straggler, the shape of the paper's Fig. 6 imbalance
but induced by the machine instead of the particle cloud).  Each
implementation runs twice — without and with the fault plan — and the
figure of merit is the *recovered fraction* of the slowdown the static
``mpi-2d`` baseline suffers::

    recovery_X = 1 - (T_X_fault - T_X_clean) / (T_mpi2d_fault - T_mpi2d_clean)

``mpi-2d`` has no load-balancing response, so its recovery is 0 by
construction.  ``mpi-2d-LB`` (diffusion on measured step seconds) and
``ampi`` (VP migration on measured VP seconds) are gated at
``>= 0.5`` in the ``full`` preset: the dynamic implementations must win
back at least half of what the static one loses.  The straggler watch's
measured loads are what make this possible — particle counts stay
balanced under a CPU fault, so a count-based balancer would see nothing.

Faulted runs also exercise checkpointing (every ``CHECKPOINT_EVERY``
steps, into a temporary directory) so the bench doubles as an integration
run of the full resilience stack; all verifications must pass.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
from typing import Callable

import numpy as np

from repro.core.spec import Distribution, PICSpec
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    RecoveryPolicy,
    ResilienceConfig,
    SlowdownFault,
    StragglerWatch,
)

SCHEMA_VERSION = 1

SLOWDOWN_FACTOR = 4.0
SLOW_CORE = 0
FAULT_START = 10
CHECKPOINT_EVERY = 25


def _spec(cells: int, particles: int, steps: int) -> PICSpec:
    return PICSpec(
        cells=cells,
        n_particles=particles,
        steps=steps,
        distribution=Distribution.UNIFORM,
    )


def _plan() -> FaultPlan:
    return FaultPlan(
        seed=1,
        faults=(
            SlowdownFault(
                factor=SLOWDOWN_FACTOR, core=SLOW_CORE, start=FAULT_START
            ),
        ),
    )


def _impls(spec: PICSpec, cores: int):
    """The three contenders, with LB knobs tuned to react within the run."""
    return {
        "mpi-2d": lambda res: Mpi2dPIC(
            spec, cores, dims=(cores, 1), resilience=res
        ),
        "mpi-2d-LB": lambda res: Mpi2dLbPIC(
            spec, cores, dims=(cores, 1), lb_interval=2, border_width=2,
            threshold_fraction=0.02, axes="x", resilience=res,
        ),
        "ampi": lambda res: AmpiPIC(
            spec, cores, overdecomposition=8, lb_interval=5, resilience=res,
        ),
    }


def _run_pair(name: str, make, n_ranks: int, ckpt_dir: str) -> dict:
    clean = make(None).run()
    res = ResilienceConfig(
        plan=_plan(),
        watch=StragglerWatch(n_ranks),
        checkpointer=Checkpointer(
            os.path.join(ckpt_dir, name), every=CHECKPOINT_EVERY
        ),
        recovery=RecoveryPolicy(),
    )
    faulted = make(res).run()
    return {
        "impl": name,
        "clean_time_s": clean.total_time,
        "fault_time_s": faulted.total_time,
        "slowdown_s": faulted.total_time - clean.total_time,
        "verification_ok": bool(clean.verification.ok and faulted.verification.ok),
        "checkpoints_written": sorted(
            os.listdir(os.path.join(ckpt_dir, name))
        ),
    }


def run_scenario(
    cells: int,
    particles: int,
    steps: int,
    cores: int,
    *,
    gate_min_recovery: float | None,
    progress: Callable[[str], None] = print,
) -> tuple[dict, list[dict]]:
    spec = _spec(cells, particles, steps)
    scenario = {
        "cells": cells,
        "particles": particles,
        "steps": steps,
        "cores": cores,
        "slowdown_factor": SLOWDOWN_FACTOR,
        "slow_core": SLOW_CORE,
        "fault_start": FAULT_START,
        "checkpoint_every": CHECKPOINT_EVERY,
    }
    entries = []
    with tempfile.TemporaryDirectory(prefix="resilience-bench-") as ckpt_dir:
        impls = _impls(spec, cores)
        for name, make in impls.items():
            n_ranks = make(None).n_ranks
            entries.append(_run_pair(name, make, n_ranks, ckpt_dir))

    baseline = next(e for e in entries if e["impl"] == "mpi-2d")
    base_slow = baseline["slowdown_s"]
    for e in entries:
        if e["impl"] == "mpi-2d" or base_slow <= 0:
            e["recovery_fraction"] = None
            e["gate_min_recovery"] = None
        else:
            e["recovery_fraction"] = 1.0 - e["slowdown_s"] / base_slow
            e["gate_min_recovery"] = gate_min_recovery
        rec = e["recovery_fraction"]
        progress(
            f"  {e['impl']}: clean {e['clean_time_s'] * 1e3:.2f} ms, "
            f"faulted {e['fault_time_s'] * 1e3:.2f} ms"
            + (f", recovered {rec:.0%} of the static slowdown" if rec is not None else "")
        )
    return scenario, entries


def run_suite(preset: str = "full", progress: Callable[[str], None] = print) -> dict:
    """Run one preset and return the BENCH_resilience document (a dict)."""
    if preset == "full":
        scenario, entries = run_scenario(
            cells=64, particles=32_000, steps=80, cores=8,
            gate_min_recovery=0.5, progress=progress,
        )
    elif preset == "smoke":
        scenario, entries = run_scenario(
            cells=32, particles=4_000, steps=40, cores=4,
            gate_min_recovery=0.2, progress=progress,
        )
    else:
        raise ValueError(f"unknown preset: {preset!r}")
    return dict(
        schema=SCHEMA_VERSION,
        preset=preset,
        machine=machine_fingerprint(),
        scenario=scenario,
        entries=entries,
    )


def machine_fingerprint() -> dict:
    return dict(
        platform=platform.platform(),
        python=platform.python_version(),
        numpy=np.__version__,
        cpu_count=os.cpu_count(),
    )


# ----------------------------------------------------------------------
# Persistence and gating
# ----------------------------------------------------------------------
def save_bench(doc: dict, path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = check_schema(doc)
    if errors:
        raise ValueError(f"{path}: {'; '.join(errors)}")
    return doc


_ENTRY_KEYS = (
    "impl",
    "clean_time_s",
    "fault_time_s",
    "slowdown_s",
    "recovery_fraction",
    "gate_min_recovery",
    "verification_ok",
    "checkpoints_written",
)


def check_schema(doc: dict) -> list[str]:
    """Structural validation of a BENCH_resilience document."""
    errors = []
    if doc.get("schema") != SCHEMA_VERSION:
        errors.append(f"schema {doc.get('schema')!r} != {SCHEMA_VERSION}")
        return errors
    for key in ("preset", "machine", "scenario", "entries"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    impls = set()
    for e in doc.get("entries", ()):
        for key in _ENTRY_KEYS:
            if key not in e:
                errors.append(f"entry {e.get('impl')!r} missing key {key!r}")
        impls.add(e.get("impl"))
    for required in ("mpi-2d", "mpi-2d-LB", "ampi"):
        if required not in impls:
            errors.append(f"no entry for implementation {required!r}")
    return errors


def check_gates(doc: dict) -> list[str]:
    """Acceptance floors: recovery fraction and verification of every run."""
    failures = check_schema(doc)
    for e in doc.get("entries", ()):
        if not e.get("verification_ok", False):
            failures.append(f"{e.get('impl')}: verification failed")
        gate = e.get("gate_min_recovery")
        rec = e.get("recovery_fraction")
        if gate is not None and (rec is None or rec < gate):
            failures.append(
                f"{e.get('impl')}: recovered "
                f"{'n/a' if rec is None else f'{rec:.0%}'} of the static "
                f"slowdown, below the {gate:.0%} gate"
            )
        if not e.get("checkpoints_written"):
            failures.append(f"{e.get('impl')}: faulted run wrote no checkpoints")
    return failures
