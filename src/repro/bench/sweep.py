"""Generic parameter sweeps for the ablation benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.bench.runner import RunRecord, run_implementation
from repro.bench.workloads import Workload


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: implementation kwargs plus display params."""

    impl: str
    cores: int
    impl_kwargs: dict[str, Any]
    label: dict[str, Any]


def run_sweep(
    figure: str,
    workload: Workload,
    points: Iterable[SweepPoint],
    *,
    progress: Callable[[str], None] | None = None,
) -> list[RunRecord]:
    """Run every sweep point; verification failures abort loudly."""
    records: list[RunRecord] = []
    for pt in points:
        spec = workload.spec_for(pt.cores)
        rec = run_implementation(
            figure,
            pt.impl,
            spec,
            pt.cores,
            workload.machine,
            workload.cost,
            **pt.impl_kwargs,
        )
        rec.params.update(pt.label)
        records.append(rec)
        if progress is not None:
            progress(
                f"{figure}: {pt.impl} cores={pt.cores} {pt.label} "
                f"-> {rec.sim_time:.4f}s (wall {rec.wall_time:.1f}s)"
            )
    return records


def grid_points(
    impl: str,
    cores: int,
    base_kwargs: dict[str, Any],
    vary: str,
    values: Sequence[Any],
) -> list[SweepPoint]:
    """Sweep one keyword argument over a list of values."""
    points = []
    for v in values:
        kwargs = dict(base_kwargs)
        kwargs[vary] = v
        points.append(
            SweepPoint(impl=impl, cores=cores, impl_kwargs=kwargs, label={vary: v})
        )
    return points
