"""The paper's figures as campaign declarations.

Each ``*_campaign()`` function builds the :class:`CampaignSpec` whose
expansion runs exactly the matrix the legacy ``run_fig*`` loops ran —
same workloads, same scaled cost models, same implementation tunables,
same point order — so the campaign path reproduces the figures' numbers
identically (pinned by tests/campaign/test_fig_campaigns.py).

The JSON files checked in under ``benchmarks/campaigns/`` are generated
from these functions::

    python -m repro.bench.campaigns --write

and a sync test asserts file == function, so the declarative form can be
edited only here.  ``pic-prk campaign benchmarks/campaigns/fig6l.json``
runs one standalone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.campaign.spec import CampaignSpec
from repro.config.runspec import CostConfig
from repro.core.spec import spec_to_dict
from repro.bench.workloads import (
    FIG5_CORES,
    FIG5_D_VALUES,
    FIG5_F_VALUES,
    FIG5_FIXED_D,
    FIG5_FIXED_F,
    FIG6_MULTI_NODE_CORES,
    FIG6_SINGLE_NODE_CORES,
    FIG7_CORES_FULL,
    FIG7_PARTICLES_PER_CORE,
    fig5_workload,
    fig6_workload,
    fig7_workload,
)

#: Where ``--write`` puts the declarations (repo-relative).
CAMPAIGN_DIR = Path("benchmarks/campaigns")

#: The three strong/weak-scaling contenders, as impl-axis variants.
#: ``lb`` / ``ampi`` params are per-figure; see the builders below.


def _base(workload, impl_doc: dict) -> dict:
    """Common base document: workload + scaled cost + starting impl."""
    return {
        "workload": spec_to_dict(workload.spec_for(0)),
        "cost": CostConfig.from_model(workload.cost).to_dict(),
        "impl": impl_doc,
    }


def _impl_axis(lb_params: dict, ampi_params: dict) -> dict:
    """The mpi-2d / mpi-2d-LB / ampi contender axis."""
    lb_set = {"impl.name": "mpi-2d-LB"}
    lb_set.update({f"impl.{k}": v for k, v in lb_params.items()})
    ampi_set = {"impl.name": "ampi"}
    ampi_set.update(
        {f"impl.{k}": _strategy_name(v) if k == "strategy" else v
         for k, v in ampi_params.items()}
    )
    return {
        "axis": "impl",
        "values": [
            {"label": "mpi-2d", "set": {"impl.name": "mpi-2d"}},
            {"label": "mpi-2d-LB", "set": lb_set},
            {"label": "ampi", "set": ampi_set},
        ],
    }


def _strategy_name(strategy) -> str:
    return type(strategy).__name__


# ----------------------------------------------------------------------
# Figure 5: AMPI tuning — two concatenated sweeps (F at fixed d, d at
# fixed F), so the points are explicit rather than a product of axes.
# ----------------------------------------------------------------------
def fig5_campaign() -> CampaignSpec:
    w = fig5_workload()
    strategy = _strategy_name(w.ampi_params["strategy"])
    points = []
    for f_value in FIG5_F_VALUES:
        points.append({
            "labels": {"sweep": "F", "F": f_value, "d": FIG5_FIXED_D},
            "set": {
                "impl.lb_interval": f_value,
                "impl.overdecomposition": FIG5_FIXED_D,
            },
        })
    for d_value in FIG5_D_VALUES:
        points.append({
            "labels": {"sweep": "d", "F": FIG5_FIXED_F, "d": d_value},
            "set": {
                "impl.lb_interval": FIG5_FIXED_F,
                "impl.overdecomposition": d_value,
            },
        })
    return CampaignSpec(
        name="fig5",
        base=_base(w, {
            "name": "ampi",
            "cores": FIG5_CORES,
            "strategy": strategy,
        }),
        points=tuple(points),
    )


# ----------------------------------------------------------------------
# Figure 6: strong scaling — cores (outer) x implementation (inner).
# ----------------------------------------------------------------------
def _fig6_campaign(name: str, cores: Sequence[int]) -> CampaignSpec:
    w = fig6_workload()
    return CampaignSpec(
        name=name,
        base=_base(w, {"name": "mpi-2d", "cores": cores[0]}),
        axes=(
            {"axis": "cores", "path": "impl.cores", "values": list(cores)},
            _impl_axis(w.lb_params, w.ampi_params),
        ),
    )


def fig6l_campaign() -> CampaignSpec:
    return _fig6_campaign("fig6l", FIG6_SINGLE_NODE_CORES)


def fig6r_campaign() -> CampaignSpec:
    return _fig6_campaign("fig6r", FIG6_MULTI_NODE_CORES)


# ----------------------------------------------------------------------
# Figure 7: weak scaling — particles are coupled to cores, so the points
# are explicit.  The declaration carries ALL points including the paper's
# 3072-core one; the figures driver filters by label unless REPRO_FULL=1
# (a select filter, not a different campaign — the cache keys are stable).
# ----------------------------------------------------------------------
def fig7_campaign() -> CampaignSpec:
    w = fig7_workload()
    impl_axis = _impl_axis(w.lb_params, w.ampi_params)
    points = []
    for cores in FIG7_CORES_FULL:
        for variant in impl_axis["values"]:
            particles = FIG7_PARTICLES_PER_CORE * cores
            overrides = {
                "impl.cores": cores,
                "workload.n_particles": particles,
            }
            overrides.update(variant["set"])
            points.append({
                "labels": {
                    "cores": cores,
                    "impl": variant["label"],
                    "particles": particles,
                },
                "set": overrides,
            })
    return CampaignSpec(
        name="fig7",
        base=_base(w, {"name": "mpi-2d", "cores": FIG7_CORES_FULL[0]}),
        points=tuple(points),
    )


# ----------------------------------------------------------------------
# CI smoke: a tiny 4-point sweep that runs in seconds (see the
# campaign-smoke job in .github/workflows/ci.yml and docs/campaigns.md).
# ----------------------------------------------------------------------
def smoke_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        base={
            "workload": {"cells": 32, "n_particles": 400, "steps": 8},
            "impl": {"name": "mpi-2d", "cores": 2},
        },
        axes=(
            {"axis": "cores", "path": "impl.cores", "values": [2, 4]},
            {
                "axis": "impl",
                "values": [
                    {"label": "mpi-2d", "set": {"impl.name": "mpi-2d"}},
                    {
                        "label": "mpi-2d-LB",
                        "set": {
                            "impl.name": "mpi-2d-LB",
                            "impl.lb_interval": 2,
                            "impl.border_width": 3,
                            "impl.threshold_fraction": 0.02,
                        },
                    },
                ],
            },
        ),
    )


CAMPAIGNS = {
    "fig5": fig5_campaign,
    "fig6l": fig6l_campaign,
    "fig6r": fig6r_campaign,
    "fig7": fig7_campaign,
    "smoke": smoke_campaign,
}


def write_declarations(out_dir: str | Path = CAMPAIGN_DIR) -> list[Path]:
    """(Re)generate the checked-in JSON declarations."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, build in sorted(CAMPAIGNS.items()):
        path = out / f"{name}.json"
        build().save(str(path))
        paths.append(path)
    return paths


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help=f"regenerate the JSON declarations under {CAMPAIGN_DIR}/",
    )
    parser.add_argument("--out", default=str(CAMPAIGN_DIR))
    args = parser.parse_args(argv)
    if not args.write:
        parser.error("nothing to do (use --write)")
    for path in write_declarations(args.out):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
