"""The unified, declarative run configuration: :class:`RunSpec`.

One :class:`RunSpec` captures *everything* that defines a run — the
workload (:class:`~repro.core.spec.PICSpec`), the implementation and its
tunables, the machine model, the cost model, the compute-executor backend,
the resilience setup (fault plan, straggler watch, recovery policy,
checkpointing) and tracing — as a typed dataclass tree with

* **schema validation**: :meth:`RunSpec.from_dict` rejects unknown fields
  at every level (with the dotted path in the error) and type/range
  violations surface through the underlying dataclass validation;
* **JSON round-trip**: ``RunSpec.from_dict(spec.to_dict()) == spec`` and
  the same through :meth:`to_json`/:meth:`from_json`/:meth:`load`/
  :meth:`save` (pinned by tests/config/test_runspec_properties.py);
* **a canonical content hash**: :meth:`spec_hash` is the SHA-256 of the
  canonical JSON of :meth:`identity_dict` — the subset of the spec that
  determines the *simulated* outcome.  Executor backend, worker count,
  tracing and the checkpoint directory are excluded: the determinism
  suites pin that they cannot change a single simulated bit, and
  excluding them lets the campaign result cache hit across machines and
  CI matrix legs.

Builders that resolve a RunSpec into live objects (MachineModel,
CostModel, implementation instances, executors, ResilienceConfig) live in
:mod:`repro.config.build`; this module is deliberately import-light so
the drivers in :mod:`repro.parallel.base` can derive a RunSpec from
themselves without an import cycle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.spec import PICSpec, spec_from_dict, spec_to_dict
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel, Tier, TierCosts

SCHEMA_VERSION = 1

#: Implementation names with a known parameter surface (build-able by
#: :mod:`repro.config.build`).  Other names are tolerated by the schema —
#: test subclasses derive RunSpecs too — but cannot be rebuilt.
IMPL_NAMES = ("serial", "mpi-2d", "mpi-2d-LB", "ampi")

LB_STRATEGY_NAMES = (
    "NullLB",
    "GreedyLB",
    "GreedyTransferLB",
    "RefineLB",
    "HintedTransferLB",
)


class ConfigError(ValueError):
    """A RunSpec document is malformed (unknown field, bad type/value)."""


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _check_keys(doc: Mapping, allowed, where: str) -> None:
    if not isinstance(doc, Mapping):
        raise ConfigError(f"{where} must be an object, got {type(doc).__name__}")
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        raise ConfigError(
            f"unknown field(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


def _expect(doc: Mapping, key: str, types, where: str, *, optional=True):
    value = doc.get(key)
    if value is None:
        return None
    if not isinstance(value, types) or isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        names = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise ConfigError(f"{where}.{key} must be {names}, got {value!r}")
    return value


def canonical_json(doc: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN/Inf."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def diff_docs(a: Any, b: Any, prefix: str = "") -> list[str]:
    """Human-readable leaf differences between two (nested) documents."""
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        out: list[str] = []
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                out.append(f"{path}: <absent> != {b[key]!r}")
            elif key not in b:
                out.append(f"{path}: {a[key]!r} != <absent>")
            else:
                out.extend(diff_docs(a[key], b[key], path))
        return out
    if a != b:
        return [f"{prefix or '<root>'}: {a!r} != {b!r}"]
    return []


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineConfig:
    """Geometry + (optional) tier-cost overrides of the machine model."""

    cores_per_socket: int = 12
    sockets_per_node: int = 2
    name: str = "edison-like"
    #: ``((tier_name, latency_s, bandwidth_Bps), ...)`` or None for the
    #: :class:`MachineModel` defaults.  Canonical form: None when equal to
    #: the defaults, so hand-written sparse specs hash identically to
    #: captured ones.
    tiers: tuple[tuple[str, float, float], ...] | None = None

    @classmethod
    def from_model(cls, machine: MachineModel) -> "MachineConfig":
        default = MachineModel(
            cores_per_socket=machine.cores_per_socket,
            sockets_per_node=machine.sockets_per_node,
            name=machine.name,
        )
        tiers = None
        if machine.tier_costs != default.tier_costs:
            tiers = tuple(
                (t.name.lower(), machine.tier_costs[t].latency,
                 machine.tier_costs[t].bandwidth)
                for t in Tier
            )
        return cls(
            cores_per_socket=machine.cores_per_socket,
            sockets_per_node=machine.sockets_per_node,
            name=machine.name,
            tiers=tiers,
        )

    def build(self) -> MachineModel:
        kwargs: dict[str, Any] = dict(
            cores_per_socket=self.cores_per_socket,
            sockets_per_node=self.sockets_per_node,
            name=self.name,
        )
        if self.tiers is not None:
            costs = {}
            for tier_name, latency, bandwidth in self.tiers:
                try:
                    tier = Tier[tier_name.upper()]
                except KeyError:
                    raise ConfigError(f"unknown machine tier {tier_name!r}")
                costs[tier] = TierCosts(latency=latency, bandwidth=bandwidth)
            kwargs["tier_costs"] = costs
        return MachineModel(**kwargs)

    def to_dict(self) -> dict:
        return {
            "cores_per_socket": self.cores_per_socket,
            "sockets_per_node": self.sockets_per_node,
            "name": self.name,
            "tiers": None
            if self.tiers is None
            else {
                t: {"latency": lat, "bandwidth": bw} for t, lat, bw in self.tiers
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping, where: str = "machine") -> "MachineConfig":
        _check_keys(
            doc, ("cores_per_socket", "sockets_per_node", "name", "tiers"), where
        )
        tiers_doc = doc.get("tiers")
        tiers = None
        if tiers_doc is not None:
            if not isinstance(tiers_doc, Mapping):
                raise ConfigError(f"{where}.tiers must be an object")
            tiers = []
            for tier_name, costs in tiers_doc.items():
                _check_keys(
                    costs, ("latency", "bandwidth"), f"{where}.tiers.{tier_name}"
                )
                tiers.append(
                    (str(tier_name), float(costs["latency"]),
                     float(costs["bandwidth"]))
                )
            tiers = tuple(tiers)
        return cls(
            cores_per_socket=int(doc.get("cores_per_socket", 12)),
            sockets_per_node=int(doc.get("sockets_per_node", 2)),
            name=str(doc.get("name", "edison-like")),
            tiers=tiers,
        )


_COST_FIELDS = (
    "particle_push_s",
    "particle_pack_s",
    "cell_handling_s",
    "message_overhead_s",
    "vp_scheduling_s",
    "particle_byte_scale",
    "cell_byte_scale",
    "pup_bandwidth",
)


@dataclass(frozen=True)
class CostConfig:
    """The per-operation rates of :class:`CostModel` (machine-independent)."""

    particle_push_s: float = 1.4e-7
    particle_pack_s: float = 1.5e-8
    cell_handling_s: float = 4.0e-9
    message_overhead_s: float = 2.0e-6
    vp_scheduling_s: float = 3.0e-6
    particle_byte_scale: float = 1.0
    cell_byte_scale: float = 1.0
    pup_bandwidth: float = 2.0e8

    @classmethod
    def from_model(cls, cost: CostModel) -> "CostConfig":
        return cls(**{name: getattr(cost, name) for name in _COST_FIELDS})

    def build(self, machine: MachineModel) -> CostModel:
        return CostModel(
            machine=machine,
            **{name: getattr(self, name) for name in _COST_FIELDS},
        )

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in _COST_FIELDS}

    @classmethod
    def from_dict(cls, doc: Mapping, where: str = "cost") -> "CostConfig":
        _check_keys(doc, _COST_FIELDS, where)
        kwargs = {}
        for name in _COST_FIELDS:
            if name in doc:
                value = doc[name]
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ConfigError(f"{where}.{name} must be a number")
                kwargs[name] = float(value)
        return cls(**kwargs)


#: Parameters each implementation accepts beyond (name, cores, dims).
_IMPL_PARAMS: dict[str, tuple[str, ...]] = {
    "serial": (),
    "mpi-2d": (),
    "mpi-2d-LB": (
        "lb_interval",
        "threshold_fraction",
        "border_width",
        "axes",
        "min_width",
    ),
    "ampi": ("overdecomposition", "lb_interval", "strategy", "stats_s_per_vp"),
}

_IMPL_FIELDS = (
    "name",
    "cores",
    "dims",
    "lb_interval",
    "threshold_fraction",
    "border_width",
    "axes",
    "min_width",
    "overdecomposition",
    "strategy",
    "stats_s_per_vp",
)


@dataclass(frozen=True)
class ImplConfig:
    """Which implementation runs, on how many cores, with which tunables.

    Tunables left at ``None`` fall through to the implementation
    constructor's defaults; fields that do not apply to the named
    implementation are rejected (``overdecomposition`` on ``mpi-2d``
    is a spec bug, not a silent no-op).
    """

    name: str
    cores: int = 1
    #: Explicit processor grid (e.g. ``(P, 1)``), or None for near-square.
    dims: tuple[int, int] | None = None
    # mpi-2d-LB and ampi
    lb_interval: int | None = None
    # mpi-2d-LB
    threshold_fraction: float | None = None
    border_width: int | None = None
    axes: str | None = None
    min_width: int | None = None
    # ampi
    overdecomposition: int | None = None
    strategy: str | None = None
    stats_s_per_vp: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("impl.name must be non-empty")
        if self.cores < 1:
            raise ConfigError(f"impl.cores must be >= 1, got {self.cores}")
        if self.dims is not None and (
            len(self.dims) != 2 or any(d < 1 for d in self.dims)
        ):
            raise ConfigError(f"impl.dims must be two positive ints, got {self.dims}")
        if self.strategy is not None and self.strategy not in LB_STRATEGY_NAMES:
            raise ConfigError(
                f"unknown impl.strategy {self.strategy!r}; "
                f"choose from {', '.join(LB_STRATEGY_NAMES)}"
            )
        if self.name in _IMPL_PARAMS:
            allowed = set(_IMPL_PARAMS[self.name])
            for param in set(_IMPL_FIELDS) - {"name", "cores", "dims"}:
                if getattr(self, param) is not None and param not in allowed:
                    raise ConfigError(
                        f"impl.{param} does not apply to impl.name={self.name!r}"
                    )

    def params(self) -> dict[str, Any]:
        """The non-None tunables, as constructor kwargs (strategy as name)."""
        return {
            key: getattr(self, key)
            for key in _IMPL_PARAMS.get(self.name, ())
            if getattr(self, key) is not None
        }

    def with_params(self, **params) -> "ImplConfig":
        """Copy with tunables filled in (used by driver derivation)."""
        return replace(self, **params)

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            key: getattr(self, key) for key in _IMPL_FIELDS
        }
        doc["dims"] = None if self.dims is None else list(self.dims)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping, where: str = "impl") -> "ImplConfig":
        _check_keys(doc, _IMPL_FIELDS, where)
        if "name" not in doc:
            raise ConfigError(f"{where}.name is required")
        kwargs = dict(doc)
        if kwargs.get("dims") is not None:
            kwargs["dims"] = tuple(int(d) for d in kwargs["dims"])
        try:
            return cls(**kwargs)
        except TypeError as exc:  # pragma: no cover - guarded by _check_keys
            raise ConfigError(f"bad {where} section: {exc}") from None


@dataclass(frozen=True)
class ExecutorConfig:
    """Compute-executor backend selection (wall-clock only, never identity).

    ``kernel_backend`` rides in this section *because* it is excluded from
    :meth:`RunSpec.identity_dict`: the compiled kernel is bitwise-identical
    to the python one (tests/core/backend_conformance.py), so the choice
    can never change what a run computes — only how fast it runs.  The
    exclusion's safety is itself pinned by tests (a checkpoint written
    under one backend resumes bit-for-bit under the other).
    """

    kind: str | None = None  # serial | batched | process | None = inherit
    workers: int | None = None
    # python | compiled | compiled-parallel | auto | None = inherit
    kernel_backend: str | None = None
    dispatch: str | None = None  # ring | pipe | None = inherit
    ring_slots: int | None = None  # per-worker task-ring capacity

    def __post_init__(self) -> None:
        if self.kind is not None and self.kind not in (
            "serial",
            "batched",
            "process",
        ):
            raise ConfigError(
                f"executor.kind must be serial/batched/process, got {self.kind!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigError("executor.workers must be >= 0")
        if self.kernel_backend is not None and self.kernel_backend not in (
            "python",
            "compiled",
            "compiled-parallel",
            "auto",
        ):
            raise ConfigError(
                "executor.kernel_backend must be "
                "python/compiled/compiled-parallel/auto, "
                f"got {self.kernel_backend!r}"
            )
        if self.dispatch is not None and self.dispatch not in ("ring", "pipe"):
            raise ConfigError(
                f"executor.dispatch must be ring/pipe, got {self.dispatch!r}"
            )
        if self.ring_slots is not None and self.ring_slots < 1:
            raise ConfigError("executor.ring_slots must be >= 1")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "kernel_backend": self.kernel_backend,
            "dispatch": self.dispatch,
            "ring_slots": self.ring_slots,
        }

    @classmethod
    def from_dict(cls, doc: Mapping, where: str = "executor") -> "ExecutorConfig":
        _check_keys(
            doc,
            ("kind", "workers", "kernel_backend", "dispatch", "ring_slots"),
            where,
        )
        workers = doc.get("workers")
        ring_slots = doc.get("ring_slots")
        return cls(
            kind=doc.get("kind"),
            workers=None if workers is None else int(workers),
            kernel_backend=doc.get("kernel_backend"),
            dispatch=doc.get("dispatch"),
            ring_slots=None if ring_slots is None else int(ring_slots),
        )


@dataclass(frozen=True)
class ResilienceSpec:
    """Fault plan, straggler watch, recovery and checkpointing knobs.

    All of these (except ``checkpoint_dir``, which is an IO location)
    perturb *simulated* time deterministically, so they are part of the
    spec's identity hash.
    """

    #: Inline :class:`~repro.resilience.FaultPlan` document, or None.
    faults: dict | None = None
    #: :class:`~repro.resilience.StragglerWatch` parameters; ``{}`` arms
    #: the watch with defaults, None leaves it off.
    watch: dict | None = None
    #: :class:`~repro.resilience.RecoveryPolicy` kwargs; ``{}`` = defaults.
    recovery: dict | None = None
    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ConfigError("resilience.checkpoint_every must be >= 0")
        if self.faults is not None:
            # Validate the plan document eagerly (round-trip through the
            # real parser) so a campaign fails at expansion, not mid-sweep.
            from repro.resilience.faults import FaultPlan

            try:
                object.__setattr__(
                    self, "faults", FaultPlan.from_dict(self.faults).to_dict()
                )
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"bad resilience.faults plan: {exc}") from None

    def active(self) -> bool:
        return (
            self.faults is not None
            or self.watch is not None
            or self.recovery is not None
            or self.checkpoint_every > 0
        )

    def to_dict(self) -> dict:
        return {
            "faults": self.faults,
            "watch": self.watch,
            "recovery": self.recovery,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_dir": self.checkpoint_dir,
        }

    @classmethod
    def from_dict(cls, doc: Mapping, where: str = "resilience") -> "ResilienceSpec":
        _check_keys(
            doc,
            ("faults", "watch", "recovery", "checkpoint_every", "checkpoint_dir"),
            where,
        )
        return cls(
            faults=None if doc.get("faults") is None else dict(doc["faults"]),
            watch=None if doc.get("watch") is None else dict(doc["watch"]),
            recovery=None if doc.get("recovery") is None else dict(doc["recovery"]),
            checkpoint_every=int(doc.get("checkpoint_every", 0)),
            checkpoint_dir=str(doc.get("checkpoint_dir", "checkpoints")),
        )


@dataclass(frozen=True)
class TracingConfig:
    """Observability switches (never part of the identity hash)."""

    timeline: bool = False
    out: str | None = None

    def to_dict(self) -> dict:
        return {"timeline": self.timeline, "out": self.out}

    @classmethod
    def from_dict(cls, doc: Mapping, where: str = "tracing") -> "TracingConfig":
        _check_keys(doc, ("timeline", "out"), where)
        return cls(
            timeline=bool(doc.get("timeline", False)),
            out=doc.get("out"),
        )


# ----------------------------------------------------------------------
# The top-level RunSpec
# ----------------------------------------------------------------------
_RUNSPEC_SECTIONS = (
    "schema",
    "workload",
    "impl",
    "machine",
    "cost",
    "executor",
    "resilience",
    "tracing",
)


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified run. See the module docstring."""

    workload: PICSpec
    impl: ImplConfig
    machine: MachineConfig = field(default_factory=MachineConfig)
    cost: CostConfig = field(default_factory=CostConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)
    tracing: TracingConfig = field(default_factory=TracingConfig)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """The fully-resolved canonical document (every field present)."""
        return {
            "schema": SCHEMA_VERSION,
            "workload": spec_to_dict(self.workload),
            "impl": self.impl.to_dict(),
            "machine": self.machine.to_dict(),
            "cost": self.cost.to_dict(),
            "executor": self.executor.to_dict(),
            "resilience": self.resilience.to_dict(),
            "tracing": self.tracing.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "RunSpec":
        _check_keys(doc, _RUNSPEC_SECTIONS, "runspec")
        schema = doc.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported runspec schema {schema!r} (expected {SCHEMA_VERSION})"
            )
        if "workload" not in doc:
            raise ConfigError("runspec.workload is required")
        if "impl" not in doc:
            raise ConfigError("runspec.impl is required")
        try:
            workload = spec_from_dict(doc["workload"])
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad workload section: {exc}") from None
        return cls(
            workload=workload,
            impl=ImplConfig.from_dict(doc["impl"]),
            machine=MachineConfig.from_dict(doc.get("machine", {})),
            cost=CostConfig.from_dict(doc.get("cost", {})),
            executor=ExecutorConfig.from_dict(doc.get("executor", {})),
            resilience=ResilienceSpec.from_dict(doc.get("resilience", {})),
            tracing=TracingConfig.from_dict(doc.get("tracing", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"runspec is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- identity ------------------------------------------------------
    def identity_dict(self) -> dict:
        """The hash-relevant subset: what determines the simulated outcome.

        Excludes the executor section, tracing, and the checkpoint
        *directory* — all pinned bitwise-irrelevant by the determinism
        suites — so a result cached under this hash is valid no matter
        which backend later recomputes it.
        """
        doc = self.to_dict()
        del doc["executor"]
        del doc["tracing"]
        del doc["resilience"]["checkpoint_dir"]
        return doc

    def spec_hash(self) -> str:
        """SHA-256 hex digest of the canonical identity document."""
        return hashlib.sha256(
            canonical_json(self.identity_dict()).encode("utf-8")
        ).hexdigest()

    def diff_identity(self, other: "RunSpec") -> list[str]:
        """Leaf-level identity differences vs ``other`` (empty if same hash)."""
        return diff_docs(self.identity_dict(), other.identity_dict())

    # -- convenience ---------------------------------------------------
    def with_overrides(self, **sections) -> "RunSpec":
        """``dataclasses.replace`` passthrough, for fluent construction."""
        return replace(self, **sections)

    def describe(self) -> str:
        impl = self.impl
        bits = [f"{impl.name} on {impl.cores} cores", self.workload.describe()]
        params = impl.params()
        if params:
            bits.append(
                ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            )
        return " | ".join(bits)


def apply_overrides(doc: dict, overrides: Mapping[str, Any]) -> dict:
    """Apply ``{"dotted.path": value}`` overrides to a nested document.

    Returns a new document (the input is not mutated).  Intermediate
    objects are created as needed; the result still goes through
    :meth:`RunSpec.from_dict`, so a typo'd path is caught as an unknown
    field rather than silently ignored.
    """
    out = json.loads(json.dumps(doc))  # cheap deep copy, JSON-safe by construction
    for path, value in overrides.items():
        parts = path.split(".")
        node = out
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = node[part] = {}
            node = nxt
        node[parts[-1]] = value
    return out
