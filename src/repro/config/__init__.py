"""Unified run configuration: the declarative :class:`RunSpec` layer.

* :mod:`repro.config.runspec` — the typed dataclass tree (workload, impl,
  machine, cost, executor, resilience, tracing) with schema validation,
  JSON round-trip and a canonical content hash;
* :mod:`repro.config.env` — the single home of the ``REPRO_EXECUTOR`` /
  ``REPRO_WORKERS`` environment knobs and their precedence chain;
* :mod:`repro.config.build` — resolves a RunSpec into live objects
  (imported lazily by consumers; not re-exported here to keep this
  package import-light for the drivers that derive RunSpecs).
"""

from repro.config.env import (
    DEFAULT_EXECUTOR,
    DEFAULT_WORKERS,
    ENV_EXECUTOR,
    ENV_WORKERS,
    EXECUTOR_KINDS,
    EnvConfigError,
    env_executor,
    env_workers,
    resolve_executor,
    resolve_workers,
)
from repro.config.runspec import (
    SCHEMA_VERSION,
    ConfigError,
    CostConfig,
    ExecutorConfig,
    ImplConfig,
    MachineConfig,
    ResilienceSpec,
    RunSpec,
    TracingConfig,
    apply_overrides,
    canonical_json,
    diff_docs,
)

__all__ = [
    "ConfigError",
    "CostConfig",
    "DEFAULT_EXECUTOR",
    "DEFAULT_WORKERS",
    "ENV_EXECUTOR",
    "ENV_WORKERS",
    "EXECUTOR_KINDS",
    "EnvConfigError",
    "ExecutorConfig",
    "ImplConfig",
    "MachineConfig",
    "ResilienceSpec",
    "RunSpec",
    "SCHEMA_VERSION",
    "TracingConfig",
    "apply_overrides",
    "canonical_json",
    "diff_docs",
    "env_executor",
    "env_workers",
    "resolve_executor",
    "resolve_workers",
]
