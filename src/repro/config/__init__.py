"""Unified run configuration: the declarative :class:`RunSpec` layer.

* :mod:`repro.config.runspec` — the typed dataclass tree (workload, impl,
  machine, cost, executor, resilience, tracing) with schema validation,
  JSON round-trip and a canonical content hash;
* :mod:`repro.config.env` — the single home of the ``REPRO_EXECUTOR`` /
  ``REPRO_WORKERS`` environment knobs and their precedence chain;
* :mod:`repro.config.build` — resolves a RunSpec into live objects
  (imported lazily by consumers; not re-exported here to keep this
  package import-light for the drivers that derive RunSpecs).
"""

from repro.config.env import (
    DEFAULT_EXECUTOR,
    DEFAULT_KERNEL_BACKEND,
    DEFAULT_WORKERS,
    ENV_EXECUTOR,
    ENV_KERNEL_BACKEND,
    ENV_WORKERS,
    EXECUTOR_KINDS,
    KERNEL_BACKEND_NAMES,
    EnvConfigError,
    env_executor,
    env_kernel_backend,
    env_workers,
    resolve_executor,
    resolve_kernel_backend,
    resolve_workers,
)
from repro.config.runspec import (
    SCHEMA_VERSION,
    ConfigError,
    CostConfig,
    ExecutorConfig,
    ImplConfig,
    MachineConfig,
    ResilienceSpec,
    RunSpec,
    TracingConfig,
    apply_overrides,
    canonical_json,
    diff_docs,
)

__all__ = [
    "ConfigError",
    "CostConfig",
    "DEFAULT_EXECUTOR",
    "DEFAULT_KERNEL_BACKEND",
    "DEFAULT_WORKERS",
    "ENV_EXECUTOR",
    "ENV_KERNEL_BACKEND",
    "ENV_WORKERS",
    "EXECUTOR_KINDS",
    "KERNEL_BACKEND_NAMES",
    "EnvConfigError",
    "ExecutorConfig",
    "ImplConfig",
    "MachineConfig",
    "ResilienceSpec",
    "RunSpec",
    "SCHEMA_VERSION",
    "TracingConfig",
    "apply_overrides",
    "canonical_json",
    "diff_docs",
    "env_executor",
    "env_kernel_backend",
    "env_workers",
    "resolve_executor",
    "resolve_kernel_backend",
    "resolve_workers",
]
