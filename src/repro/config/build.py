"""Resolve a :class:`~repro.config.runspec.RunSpec` into live objects.

This is the only module that knows how to turn the declarative tree into
a :class:`MachineModel`, a :class:`CostModel`, a driver instance, an
executor backend and a :class:`ResilienceConfig` — the CLI, the campaign
runner and the bench layer all build runs through here, so a RunSpec
means exactly one thing everywhere.

Kept separate from :mod:`repro.config.runspec` (which stays import-light)
because building pulls in the parallel drivers and the resilience
subsystem, and :mod:`repro.parallel.base` itself imports the runspec
module to derive specs from live drivers.
"""

from __future__ import annotations

from typing import Any

from repro.config.env import (
    resolve_dispatch,
    resolve_executor,
    resolve_kernel_backend,
    resolve_ring_slots,
    resolve_workers,
)
from repro.config.runspec import ConfigError, RunSpec

#: LB strategy registry for ``impl.strategy`` (ampi).  All strategies are
#: parameter-free frozen dataclasses, so the name is the whole identity.
_STRATEGIES = (
    "NullLB",
    "GreedyLB",
    "GreedyTransferLB",
    "RefineLB",
    "HintedTransferLB",
)


def build_strategy(name: str):
    """Instantiate an ampi LB strategy by its registered name."""
    from repro.ampi import loadbalancer

    if name not in _STRATEGIES:
        raise ConfigError(
            f"unknown LB strategy {name!r}; choose from {', '.join(_STRATEGIES)}"
        )
    return getattr(loadbalancer, name)()


def strategy_name(strategy) -> str:
    """The registry name of a live strategy (unwrapping MeteredLB)."""
    inner = getattr(strategy, "inner", None)
    if inner is not None and type(strategy).__name__ == "MeteredLB":
        strategy = inner
    return type(strategy).__name__


def build_resilience(rs: RunSpec, n_ranks: int, *, resume=None):
    """The run's :class:`~repro.resilience.ResilienceConfig`, or None.

    ``n_ranks`` sizes the straggler watch, so the caller passes the
    *driver's* rank count (cores * d for ampi) — build the driver first
    with ``resilience=None``, then attach (see :func:`build_impl`).
    """
    spec = rs.resilience
    if not spec.active() and resume is None:
        return None
    from repro.resilience import (
        Checkpointer,
        FaultPlan,
        RecoveryPolicy,
        ResilienceConfig,
        StragglerWatch,
    )

    plan = watch = recovery = checkpointer = None
    if spec.faults is not None:
        plan = FaultPlan.from_dict(spec.faults)
    if spec.watch is not None:
        watch = StragglerWatch(n_ranks, **spec.watch)
    elif spec.faults is not None:
        # A fault plan arms the watch by default (matches the historical
        # CLI behavior of --faults).
        watch = StragglerWatch(n_ranks)
    if spec.recovery is not None:
        recovery = RecoveryPolicy(**spec.recovery)
    elif spec.faults is not None:
        recovery = RecoveryPolicy()
    if spec.checkpoint_every > 0:
        checkpointer = Checkpointer(
            spec.checkpoint_dir, every=spec.checkpoint_every
        )
    return ResilienceConfig(
        plan=plan, watch=watch, checkpointer=checkpointer,
        recovery=recovery, resume=resume,
    )


def build_executor(rs: RunSpec, *, cli_kind=None, cli_workers=None,
                   cli_kernel_backend=None, cli_dispatch=None,
                   exec_tracer=None, environ=None):
    """The compute backend, resolved CLI > env > spec > default.

    The caller owns the returned instance and must ``close()`` it.
    Requesting ``kernel_backend=compiled`` (or ``compiled-parallel``)
    without numba raises
    :class:`repro.core.kernel_compiled.CompiledKernelUnavailable` here,
    at build time, rather than mid-run.
    """
    from repro.runtime.executor import make_executor

    kind = resolve_executor(cli_kind, rs.executor.kind, environ=environ)
    workers = resolve_workers(cli_workers, rs.executor.workers, environ=environ)
    kernel_backend = resolve_kernel_backend(
        cli_kernel_backend, rs.executor.kernel_backend, environ=environ
    )
    dispatch = resolve_dispatch(cli_dispatch, rs.executor.dispatch, environ=environ)
    ring_slots = resolve_ring_slots(None, rs.executor.ring_slots, environ=environ)
    return make_executor(
        kind, workers=workers, exec_tracer=exec_tracer,
        kernel_backend=kernel_backend,
        dispatch=dispatch, ring_slots=ring_slots,
    )


def build_impl(
    rs: RunSpec,
    *,
    tracer=None,
    span_tracer=None,
    metrics=None,
    executor=None,
    resume=None,
):
    """Instantiate the driver a RunSpec describes (resilience attached).

    ``rs.impl.name`` must be one of the three parallel implementations;
    ``"serial"`` runs have no driver object — use :func:`execute_runspec`.
    """
    from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC

    classes = {"mpi-2d": Mpi2dPIC, "mpi-2d-LB": Mpi2dLbPIC, "ampi": AmpiPIC}
    cls = classes.get(rs.impl.name)
    if cls is None:
        raise ConfigError(
            f"cannot build impl {rs.impl.name!r}; "
            f"choose from {', '.join(sorted(classes))} (or 'serial')"
        )
    machine = rs.machine.build()
    cost = rs.cost.build(machine)
    kwargs: dict[str, Any] = dict(rs.impl.params())
    if "strategy" in kwargs:
        kwargs["strategy"] = build_strategy(kwargs["strategy"])
    impl = cls(
        rs.workload,
        rs.impl.cores,
        machine=machine,
        cost=cost,
        dims=rs.impl.dims,
        tracer=tracer,
        span_tracer=span_tracer,
        metrics=metrics,
        executor=executor,
        resilience=None,
        **kwargs,
    )
    # Two-phase: the watch is sized by the driver's rank count (cores * d
    # for ampi), which only the constructed driver knows authoritatively.
    impl.resilience = build_resilience(rs, impl.n_ranks, resume=resume)
    return impl


def canonical_runspec(rs: RunSpec) -> RunSpec:
    """Resolve a spec's defaults the way the driver it names would.

    A hand-written sparse spec (e.g. ampi with ``strategy`` omitted) and
    the spec a live driver derives for the same run must hash equal —
    resume validation and the campaign cache both compare hashes across
    that boundary.  Parallel impls round-trip through the constructed
    driver; ``serial`` (and unknown test impls) have no tunables to
    resolve and pass through unchanged.
    """
    if rs.impl.name not in ("mpi-2d", "mpi-2d-LB", "ampi"):
        return rs
    derived = build_impl(rs).runspec()
    # Identity-neutral sections carry over from the input spec.
    return derived.with_overrides(
        executor=rs.executor,
        tracing=rs.tracing,
    )


def canonical_hash(rs: RunSpec) -> str:
    """:meth:`RunSpec.spec_hash` of the canonicalized spec."""
    return canonical_runspec(rs).spec_hash()


def execute_runspec(rs: RunSpec, *, executor=None) -> dict:
    """Run a RunSpec to completion and return its deterministic result doc.

    The result contains only simulated/derived quantities (no wall-clock,
    no paths), so the same spec always produces the same bytes — the
    campaign cache (:mod:`repro.campaign`) depends on this.  Verification
    failure raises ``RuntimeError``.
    """
    if rs.impl.name == "serial":
        from repro.core.simulation import run_serial

        res = run_serial(rs.workload)
        if not res.verification.ok:
            raise RuntimeError(f"verification failed: {res.verification}")
        return {
            "implementation": "serial",
            "n_ranks": 1,
            "n_cores": 1,
            "sim_time_s": None,
            "verified": True,
            "max_particles_per_core": len(res.particles),
            "ideal_particles_per_core": float(len(res.particles)),
            "messages_sent": 0,
            "bytes_sent": 0,
            "collectives": 0,
            "final_particles": len(res.particles),
        }

    own_executor = executor is None
    if own_executor:
        executor = build_executor(rs)
    impl = build_impl(rs, executor=executor)
    try:
        result = impl.run()
    finally:
        if own_executor:
            executor.close()
    if not result.verification.ok:
        raise RuntimeError(
            f"verification failed for {rs.describe()}: {result.verification}"
        )
    return parallel_result_doc(result)


def parallel_result_doc(result) -> dict:
    """The deterministic result document of a finished parallel run.

    Shared by :func:`execute_runspec` and the campaign engines runner
    (:func:`repro.campaign.fabric.run_engines`) so every execution path
    produces byte-identical artifacts for the same spec.
    """
    return {
        "implementation": result.implementation,
        "n_ranks": result.n_ranks,
        "n_cores": result.n_cores,
        "sim_time_s": result.total_time,
        "verified": True,
        "max_particles_per_core": result.max_particles_per_core,
        "ideal_particles_per_core": result.ideal_particles_per_core,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "collectives": result.collectives,
        "final_particles": sum(result.particles_per_core.values()),
    }
