"""The single home of ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` /
``REPRO_KERNEL_BACKEND`` / ``REPRO_DISPATCH`` / ``REPRO_RING_SLOTS``
parsing.

Every consumer of the executor environment knobs — the CLI, the
process-wide :func:`repro.runtime.executor.default_executor`, and the
RunSpec resolution in :mod:`repro.config.build` — goes through the
``resolve_*`` functions below, which implement one documented precedence
chain::

    CLI flag  >  environment variable  >  spec file  >  built-in default

(A value of ``None`` at any level means "not set here, fall through".)
The environment deliberately outranks a spec file: a CI matrix leg that
exports ``REPRO_EXECUTOR=process`` must be able to drive *every* run in
the job through the process pool, including runs whose spec files were
written with the serial default.  Results are bitwise identical across
backends (pinned by tests/parallel/test_executor_determinism.py), so the
override can never change what a run computes — only how fast it runs.
"""

from __future__ import annotations

import os
from typing import Mapping

ENV_EXECUTOR = "REPRO_EXECUTOR"
ENV_WORKERS = "REPRO_WORKERS"
ENV_KERNEL_BACKEND = "REPRO_KERNEL_BACKEND"
ENV_DISPATCH = "REPRO_DISPATCH"
ENV_RING_SLOTS = "REPRO_RING_SLOTS"

EXECUTOR_KINDS = ("serial", "batched", "process")
KERNEL_BACKEND_NAMES = ("python", "compiled", "compiled-parallel", "auto")
DISPATCH_KINDS = ("ring", "pipe")

DEFAULT_EXECUTOR = "serial"
DEFAULT_WORKERS = 0
DEFAULT_KERNEL_BACKEND = "auto"
DEFAULT_DISPATCH = "ring"
DEFAULT_RING_SLOTS = 64


class EnvConfigError(ValueError):
    """An environment variable holds an unusable value."""


def env_executor(environ: Mapping[str, str] | None = None) -> str | None:
    """``REPRO_EXECUTOR`` as a validated executor kind, or None if unset."""
    environ = os.environ if environ is None else environ
    raw = (environ.get(ENV_EXECUTOR) or "").strip()
    if not raw:
        return None
    if raw not in EXECUTOR_KINDS:
        raise EnvConfigError(
            f"{ENV_EXECUTOR}={raw!r} is not a valid executor; "
            f"choose from {', '.join(EXECUTOR_KINDS)}"
        )
    return raw


def env_workers(environ: Mapping[str, str] | None = None) -> int | None:
    """``REPRO_WORKERS`` as a non-negative int, or None if unset."""
    environ = os.environ if environ is None else environ
    raw = (environ.get(ENV_WORKERS) or "").strip()
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise EnvConfigError(
            f"{ENV_WORKERS}={raw!r} is not an integer worker count"
        ) from None
    if workers < 0:
        raise EnvConfigError(f"{ENV_WORKERS} must be >= 0, got {workers}")
    return workers


def env_kernel_backend(environ: Mapping[str, str] | None = None) -> str | None:
    """``REPRO_KERNEL_BACKEND`` as a validated backend name, or None if unset."""
    environ = os.environ if environ is None else environ
    raw = (environ.get(ENV_KERNEL_BACKEND) or "").strip()
    if not raw:
        return None
    if raw not in KERNEL_BACKEND_NAMES:
        raise EnvConfigError(
            f"{ENV_KERNEL_BACKEND}={raw!r} is not a valid kernel backend; "
            f"choose from {', '.join(KERNEL_BACKEND_NAMES)}"
        )
    return raw


def env_dispatch(environ: Mapping[str, str] | None = None) -> str | None:
    """``REPRO_DISPATCH`` as a validated dispatch path, or None if unset."""
    environ = os.environ if environ is None else environ
    raw = (environ.get(ENV_DISPATCH) or "").strip()
    if not raw:
        return None
    if raw not in DISPATCH_KINDS:
        raise EnvConfigError(
            f"{ENV_DISPATCH}={raw!r} is not a valid dispatch path; "
            f"choose from {', '.join(DISPATCH_KINDS)}"
        )
    return raw


def env_ring_slots(environ: Mapping[str, str] | None = None) -> int | None:
    """``REPRO_RING_SLOTS`` as a positive int, or None if unset."""
    environ = os.environ if environ is None else environ
    raw = (environ.get(ENV_RING_SLOTS) or "").strip()
    if not raw:
        return None
    try:
        slots = int(raw)
    except ValueError:
        raise EnvConfigError(
            f"{ENV_RING_SLOTS}={raw!r} is not an integer slot count"
        ) from None
    if slots < 1:
        raise EnvConfigError(f"{ENV_RING_SLOTS} must be >= 1, got {slots}")
    return slots


def resolve_executor(
    cli: str | None = None,
    spec: str | None = None,
    *,
    default: str = DEFAULT_EXECUTOR,
    environ: Mapping[str, str] | None = None,
) -> str:
    """Resolve the executor kind with CLI > env > spec > default precedence."""
    if cli is not None:
        return cli
    from_env = env_executor(environ)
    if from_env is not None:
        return from_env
    if spec is not None:
        return spec
    return default


def resolve_kernel_backend(
    cli: str | None = None,
    spec: str | None = None,
    *,
    default: str = DEFAULT_KERNEL_BACKEND,
    environ: Mapping[str, str] | None = None,
) -> str:
    """Resolve the kernel backend with CLI > env > spec > default precedence.

    Returns one of ``python``/``compiled``/``auto``; mapping ``auto`` onto
    a concrete backend (and erroring when ``compiled`` is requested without
    numba) is :func:`repro.core.kernel_compiled.resolve_backend`'s job.
    """
    if cli is not None:
        return cli
    from_env = env_kernel_backend(environ)
    if from_env is not None:
        return from_env
    if spec is not None:
        return spec
    return default


def resolve_workers(
    cli: int | None = None,
    spec: int | None = None,
    *,
    default: int = DEFAULT_WORKERS,
    environ: Mapping[str, str] | None = None,
) -> int:
    """Resolve the worker count with CLI > env > spec > default precedence."""
    if cli is not None:
        return cli
    from_env = env_workers(environ)
    if from_env is not None:
        return from_env
    if spec is not None:
        return spec
    return default


def resolve_dispatch(
    cli: str | None = None,
    spec: str | None = None,
    *,
    default: str = DEFAULT_DISPATCH,
    environ: Mapping[str, str] | None = None,
) -> str:
    """Resolve the process-pool dispatch path (ring/pipe), same precedence."""
    if cli is not None:
        return cli
    from_env = env_dispatch(environ)
    if from_env is not None:
        return from_env
    if spec is not None:
        return spec
    return default


def resolve_ring_slots(
    cli: int | None = None,
    spec: int | None = None,
    *,
    default: int = DEFAULT_RING_SLOTS,
    environ: Mapping[str, str] | None = None,
) -> int:
    """Resolve the per-worker task-ring capacity, same precedence."""
    if cli is not None:
        return cli
    from_env = env_ring_slots(environ)
    if from_env is not None:
        return from_env
    if spec is not None:
        return spec
    return default
