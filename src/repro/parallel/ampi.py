"""The ``ampi`` implementation: over-decomposed VPs + runtime LB (§IV-C).

Porting the baseline to AMPI is, as the paper notes, "conceptually trivial":
the algorithm of §IV-A runs unchanged, but over ``d`` times more ranks
(virtual processors), each initially pinned to a core in contiguous blocks.
Every ``lb_interval`` steps all VPs call ``migrate()`` and the runtime's
load balancer re-pins them — oblivious to the problem's spatial structure.

The two AMPI tunables of the paper's Fig. 5 are constructor arguments:
``overdecomposition`` (d) and ``lb_interval`` (F).
"""

from __future__ import annotations

from repro.ampi.loadbalancer import (
    GreedyTransferLB,
    LoadBalancer,
    MeteredLB,
    VpTopology,
)
from repro.ampi.pup import vp_state_bytes
from repro.ampi.runtime import DEFAULT_STATS_S_PER_VP, migrate
from repro.parallel.base import ParallelPICBase
from repro.runtime.errors import RuntimeConfigError


class AmpiPIC(ParallelPICBase):
    """AMPI-style implementation with runtime-orchestrated load balancing."""

    name = "ampi"

    def __init__(
        self,
        spec,
        n_cores,
        *,
        overdecomposition: int = 4,
        lb_interval: int = 100,
        strategy: LoadBalancer | None = None,
        stats_s_per_vp: float = DEFAULT_STATS_S_PER_VP,
        machine=None,
        cost=None,
        dims=None,
        tracer=None,
        span_tracer=None,
        metrics=None,
        executor=None,
        resilience=None,
        work_rates=None,
    ):
        super().__init__(
            spec, n_cores, machine=machine, cost=cost, dims=dims, tracer=tracer,
            span_tracer=span_tracer, metrics=metrics, executor=executor,
            resilience=resilience, work_rates=work_rates,
        )
        if overdecomposition < 1:
            raise RuntimeConfigError("overdecomposition degree must be >= 1")
        if lb_interval < 1:
            raise RuntimeConfigError("lb_interval must be >= 1")
        self.overdecomposition = overdecomposition
        self.lb_interval = lb_interval
        self.strategy = strategy if strategy is not None else GreedyTransferLB()
        if self.metrics is not None:
            # Observe strategy invocations, per-round moves and locality.
            self.strategy = MeteredLB(self.strategy, self.metrics)
        self.stats_s_per_vp = stats_s_per_vp

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.n_cores * self.overdecomposition

    def initial_rank_to_core(self) -> list[int]:
        """Contiguous blocks of VPs per core.

        With row-major VP ranks, consecutive VPs own vertically adjacent
        subgrids, so the initial mapping keeps each core's subdomain compact
        — the favourable starting point the paper assumes before the
        locality-agnostic balancer erodes it.
        """
        d = self.overdecomposition
        return [vp // d for vp in range(self.n_ranks)]

    def per_step_overhead(self) -> float:
        """User-level scheduling cost of one VP for one step."""
        return self.cost.vp_scheduling_s

    def _engine_tag(self) -> str:
        # Overdecomposition changes the rank count behind the same core
        # count, so it belongs in the engine id a shared pool sees.
        return (
            f"{self.name}-c{self.n_cores}"
            f"-d{self.overdecomposition}-F{self.lb_interval}"
        )

    def _checkpoint_params(self):
        return {
            "overdecomposition": self.overdecomposition,
            "lb_interval": self.lb_interval,
            "stats_s_per_vp": self.stats_s_per_vp,
        }

    def _impl_config(self):
        strategy = self.strategy
        if isinstance(strategy, MeteredLB):
            strategy = strategy.inner  # metrics wrapper, not part of identity
        return super()._impl_config().with_params(
            overdecomposition=self.overdecomposition,
            lb_interval=self.lb_interval,
            strategy=type(strategy).__name__,
            stats_s_per_vp=self.stats_s_per_vp,
        )

    def lb_hook(self, comm, cart, state, t):
        state.extra["load"] = state.extra.get("load", 0) + len(state.particles)
        # A straggler flag forces an off-interval migrate() round.
        if not self._lb_due(state, t, self.lb_interval):
            return
        subgrid_cells = self._my_subgrid_cells(cart, state)
        load = float(state.extra["load"])
        state.extra["load"] = 0
        # With a warmed-up straggler watch, report measured VP step seconds
        # instead of accumulated particle counts: a VP pinned to a slowed
        # core then looks heavy and the balancer moves work off that core.
        watch = self._watch()
        if watch is not None and watch.ready():
            load = watch.load(comm.world_rank, load)
        report = yield from migrate(
            comm,
            load,
            vp_state_bytes(
                state.particles,
                subgrid_cells,
                particle_byte_scale=self.cost.particle_byte_scale,
                cell_byte_scale=self.cost.cell_byte_scale,
            ),
            self.strategy,
            self.n_cores,
            stats_s_per_vp=self.stats_s_per_vp,
            topology=VpTopology(cart.dims),
        )
        state.extra["migrations"] = state.extra.get("migrations", 0) + report.migrated
        if comm.rank == 0 and report.migrated:
            if self.tracer is not None:
                from repro.instrument import LbEvent

                self.tracer.record_event(
                    LbEvent(step=t, kind="migrate", moved=report.migrated)
                )
            if self.metrics is not None:
                self.metrics.counter("lb.migrated_vps").inc(report.migrated)
                self.metrics.counter("lb.migrated_bytes").inc(report.moved_bytes)

    @staticmethod
    def _my_subgrid_cells(cart, state) -> int:
        cx, cy = cart.coords
        return state.partition.block_cells(cx, cy)
