"""``mpi-2d-LB``: application-specific diffusion load balancing (§IV-B).

Extends the baseline 2D decomposition with the paper's two-phase diffusion
scheme, restricted by default to the x direction — the configuration the
paper selected for its experiments, justified because the §III-E1 particle
cloud drifts along x.  The two-phase (x then y) variant is available via
``axes="xy"`` (and ``axes="y"`` for a rotated distribution).

Every ``lb_interval`` steps:

1. each column of processors sums its particle count (reduction over the
   column communicator);
2. the per-column totals are allgathered along each processor row, and every
   rank evaluates the same pure diffusion rule
   (:func:`repro.parallel.diffusion.diffuse_splits`) — so all ranks agree on
   the new split vector;
3. donated border cell-columns are "shipped" to the x-neighbors (the cost
   model charges the subgrid bytes; the mesh content itself is implicit) and
   the particles falling in them are re-routed with the standard exchange.

Tunables (``lb_interval``, ``threshold_fraction``, ``border_width``)
correspond to the paper's frequency / tau / border-width triple, which it
notes must be co-tuned.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.base import (
    TAG_SUBGRID,
    ParallelPICBase,
    exchange_particles,
)
from repro.parallel.diffusion import default_threshold, diffuse_splits
from repro.runtime.errors import RuntimeConfigError
from repro.runtime.reduce_ops import SUM


class Mpi2dLbPIC(ParallelPICBase):
    """Diffusion-balanced parallel implementation."""

    name = "mpi-2d-LB"

    def __init__(
        self,
        spec,
        n_cores,
        *,
        lb_interval: int = 50,
        threshold_fraction: float = 0.1,
        border_width: int = 1,
        axes: str = "x",
        min_width: int = 1,
        machine=None,
        cost=None,
        dims=None,
        tracer=None,
        span_tracer=None,
        metrics=None,
        executor=None,
        resilience=None,
        work_rates=None,
    ):
        super().__init__(
            spec, n_cores, machine=machine, cost=cost, dims=dims, tracer=tracer,
            span_tracer=span_tracer, metrics=metrics, executor=executor,
            resilience=resilience, work_rates=work_rates,
        )
        if lb_interval < 1:
            raise RuntimeConfigError("lb_interval must be >= 1")
        if axes not in ("x", "y", "xy"):
            raise RuntimeConfigError("axes must be 'x', 'y' or 'xy'")
        if border_width < 1:
            raise RuntimeConfigError("border_width must be >= 1")
        if not 0 < threshold_fraction:
            raise RuntimeConfigError("threshold_fraction must be positive")
        self.lb_interval = lb_interval
        self.threshold_fraction = threshold_fraction
        self.border_width = border_width
        self.axes = axes
        self.min_width = min_width

    # ------------------------------------------------------------------
    def _engine_tag(self) -> str:
        # The diffusion tunables distinguish co-scheduled LB runs sharing
        # one worker pool.
        return (
            f"{self.name}-c{self.n_cores}"
            f"-F{self.lb_interval}-b{self.border_width}-{self.axes}"
        )

    def setup_hook(self, comm, cart, state):
        # Column communicator: ranks sharing my processor-column index cx
        # (used for the per-column load reduction).  Row communicator: one
        # rank per column, ordered by cx (used to allgather column loads).
        state.extra["col_comm"] = yield cart.sub_y()
        state.extra["row_comm"] = yield cart.sub_x()

    def _checkpoint_params(self):
        return {
            "lb_interval": self.lb_interval,
            "threshold_fraction": self.threshold_fraction,
            "border_width": self.border_width,
            "axes": self.axes,
            "min_width": self.min_width,
        }

    def _impl_config(self):
        base = super()._impl_config()
        return base.with_params(
            lb_interval=self.lb_interval,
            threshold_fraction=self.threshold_fraction,
            border_width=self.border_width,
            axes=self.axes,
            min_width=self.min_width,
        )

    def lb_hook(self, comm, cart, state, t):
        # A straggler flag from the resilience watch forces an off-interval
        # diffusion round (see ParallelPICBase._lb_due).
        if not self._lb_due(state, t, self.lb_interval):
            return
        state.extra["lb_step"] = t
        if "x" in self.axes and cart.px > 1:
            yield from self._balance_axis(comm, cart, state, axis=0)
        if "y" in self.axes and cart.py > 1:
            yield from self._balance_axis(comm, cart, state, axis=1)

    # ------------------------------------------------------------------
    def _balance_axis(self, comm, cart, state, axis: int):
        """One diffusion step along ``axis`` (0 = x, 1 = y)."""
        cost = self.cost
        if axis == 0:
            along_comm = state.extra["col_comm"]   # sums over my column
            across_comm = state.extra["row_comm"]  # gathers across columns
            splits = state.partition.xsplits
            my_index = cart.coords[0]
            lo, hi = state.partition.y_range(cart.coords[1])
        else:
            along_comm = state.extra["row_comm"]
            across_comm = state.extra["col_comm"]
            splits = state.partition.ysplits
            my_index = cart.coords[1]
            lo, hi = state.partition.x_range(cart.coords[0])
        span = hi - lo  # my block extent perpendicular to the balanced axis

        # Default load: particle count.  With a warmed-up straggler watch,
        # use measured per-rank step seconds instead — a perturbed (slow)
        # rank then weighs more than its particle count says, so diffusion
        # converges to a time-balanced rather than count-balanced split.
        my_load = float(len(state.particles))
        watch = self._watch()
        if watch is not None and watch.ready():
            my_load = watch.load(comm.world_rank, my_load)
        block_load = yield along_comm.allreduce(my_load, op=SUM)
        loads = yield across_comm.allgather(block_load)
        loads = np.asarray(loads, dtype=np.float64)
        tau = default_threshold(float(loads.sum()), len(loads), self.threshold_fraction)
        new_splits = diffuse_splits(
            loads, splits, tau, self.border_width, self.min_width
        )
        if np.array_equal(new_splits, splits):
            return

        # Ship donated border subgrids to the axis neighbors.  The mesh
        # charges are implicit (column parity), but the paper's code moves
        # the stored grid, so we charge the equivalent bytes and handling.
        delta_lo = int(new_splits[my_index] - splits[my_index])
        delta_hi = int(new_splits[my_index + 1] - splits[my_index + 1])
        to_prev = max(0, delta_lo) * span
        from_prev = max(0, -delta_lo) * span
        to_next = max(0, -delta_hi) * span
        from_next = max(0, delta_hi) * span

        handled = to_prev + from_prev + to_next + from_next
        if handled:
            yield comm.compute(cost.subgrid_migration_time(handled))
        src_prev, dst_next = cart.shift(axis, 1)
        src_next, dst_prev = cart.shift(axis, -1)
        yield comm.sendrecv(
            None, dst=dst_prev, src=src_next,
            sendtag=TAG_SUBGRID + axis, recvtag=TAG_SUBGRID + axis,
            nbytes=cost.subgrid_wire_bytes(to_prev),
        )
        yield comm.sendrecv(
            None, dst=dst_next, src=src_prev,
            sendtag=TAG_SUBGRID + 2 + axis, recvtag=TAG_SUBGRID + 2 + axis,
            nbytes=cost.subgrid_wire_bytes(to_next),
        )

        if axis == 0:
            state.partition = state.partition.with_xsplits(new_splits)
        else:
            state.partition = state.partition.with_ysplits(new_splits)
        if cart.rank == 0:
            moved_cols = int(np.abs(new_splits - splits).sum())
            if self.tracer is not None:
                from repro.instrument import LbEvent

                self.tracer.record_event(
                    LbEvent(step=state.extra.get("lb_step", -1), kind="diffusion",
                            moved=moved_cols, detail=f"axis={axis}")
                )
            if self.metrics is not None:
                self.metrics.counter("lb.diffusion_rounds").inc()
                self.metrics.counter("lb.boundary_cols_moved").inc(moved_cols)
            if self.span_tracer is not None:
                self.span_tracer.instant(
                    "diffusion_lb", "lb", comm.world_rank, comm.core(),
                    comm.wtime(), axis=axis, moved_cols=moved_cols,
                )
        state.particles = yield from exchange_particles(
            comm, cart, state.partition, self.mesh, state.particles, cost,
            scratch=state.scratch,
        )
