"""The ``mpi-2d`` baseline: static 2D decomposition, no load balancing (§IV-A).

Processors form a near-square ``Px x Py`` grid; each owns one rectangular
block of the mesh for the whole run and pushes the particles residing in it.
After every push, particles that left the block are sent to their new owner.
Simple and perfectly adequate for uniform particle distributions — and the
performance victim of every skewed one, which is exactly the role it plays
in the paper's experiments.
"""

from __future__ import annotations

from repro.parallel.base import ParallelPICBase


class Mpi2dPIC(ParallelPICBase):
    """Baseline parallel implementation without load balancing."""

    name = "mpi-2d"

    def _engine_tag(self) -> str:
        # The baseline has no LB tunables: cores and grid shape are the
        # whole identity of a run within an engine group.
        dims = self.dims_override
        shape = f"-{dims[0]}x{dims[1]}" if dims is not None else ""
        return f"{self.name}-c{self.n_cores}{shape}"
