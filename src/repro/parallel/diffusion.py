"""Diffusion-based load balancing decisions (paper §IV-B).

The scheme follows Cybenko-style diffusion: each pair of adjacent processor
columns compares workloads (particle counts) and, when the difference
exceeds a threshold ``tau``, the loaded side donates ``width`` border cell
columns — moving the shared split — to its neighbor.  The decision function
here is *pure*: given the per-column loads and the current split vector it
returns the new split vector.  Every rank evaluates it on identical inputs
(an allgather of column loads), so all ranks agree on the new partition
without a central coordinator, while the decision itself remains the local
pairwise rule of the paper's Fig. 3.

The same function serves the x direction (per processor column) and, in the
two-phase variant, the y direction (per processor row).
"""

from __future__ import annotations

import numpy as np


def diffuse_splits(
    loads: np.ndarray,
    splits: np.ndarray,
    threshold: float,
    width: int,
    min_width: int = 1,
) -> np.ndarray:
    """One diffusion step over the interior boundaries of a split vector.

    Parameters
    ----------
    loads:
        Workload (particle count) per block, length ``P``.
    splits:
        Current boundaries, length ``P + 1`` (monotone, fixed endpoints).
    threshold:
        Minimum load difference (``tau``) that triggers a donation.
    width:
        Border width ``w``: cell columns moved per triggered boundary.
    min_width:
        Blocks never shrink below this many cell columns.

    Decisions for all boundaries are taken against the *pre-step* loads
    (Jacobi-style), so *whether* a boundary moves and its uncapped donation
    never depend on traversal order.  The width clamping, however, is
    evaluated **left to right against the partially-updated split vector**,
    and that order is pinned API behavior (golden traces depend on it):

    * a boundary moving *left* measures its room against the already-updated
      position of its left neighbor, so a block squeezed from both sides
      (boundary ``b`` moved right, boundary ``b + 1`` moving left) can never
      be clamped below ``min_width`` — the second clamp sees the first move;
    * a boundary moving *right* measures its room against the not-yet-updated
      position of its right neighbor, so it donates conservatively even when
      that neighbor is itself about to move right and free more room.

    Both effects are exercised by explicit hand-computed cases in
    tests/parallel/test_diffusion.py (TestTraversalOrder); changing the
    traversal order would silently re-partition every LB run, so it must
    fail those tests first.
    """
    loads = np.asarray(loads, dtype=np.float64)
    splits = np.asarray(splits, dtype=np.int64)
    p = len(loads)
    if len(splits) != p + 1:
        raise ValueError(f"{p} loads need {p + 1} splits, got {len(splits)}")
    if width < 1:
        raise ValueError("border width must be at least 1")
    if min_width < 1:
        raise ValueError("min_width must be at least 1")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")

    new = splits.copy()
    widths = np.diff(splits)
    for b in range(1, p):  # interior boundary between blocks b-1 and b
        left, right = loads[b - 1], loads[b]
        diff = left - right
        if diff > threshold:
            # Left block donates its rightmost columns: boundary moves left.
            donate = _donation(diff, left, widths[b - 1], width)
            room = new[b] - new[b - 1] - min_width
            new[b] -= min(donate, max(0, room))
        elif -diff > threshold:
            # Right block donates its leftmost columns: boundary moves right.
            donate = _donation(-diff, right, widths[b], width)
            room = new[b + 1] - new[b] - min_width
            new[b] += min(donate, max(0, room))
    return new


def _donation(load_diff: float, donor_load: float, donor_width: int, width: int) -> int:
    """Columns the donor gives up: enough to halve the difference, capped.

    The donor's average load per cell column estimates how much load each
    donated column carries; donating ``diff / 2`` worth of columns moves the
    pair toward balance without overshooting (overshoot makes the boundary
    oscillate and churns particles — visible as extra exchange traffic when
    the cap ``width`` is large relative to the block).
    """
    if donor_load <= 0 or donor_width <= 0:
        return 1
    per_column = donor_load / donor_width
    needed = int(round(load_diff / 2.0 / per_column))
    return max(1, min(width, needed))


def default_threshold(total_load: float, blocks: int, fraction: float = 0.1) -> float:
    """The default trigger: ``fraction`` of the ideal per-block load."""
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    return fraction * total_load / blocks


def imbalance_ratio(loads: np.ndarray) -> float:
    """Max-over-mean load ratio; 1.0 is perfectly balanced."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
