"""The paper's three parallel PIC PRK reference implementations (§IV).

* :class:`repro.parallel.mpi2d.Mpi2dPIC` — static 2D block decomposition,
  no load balancing (the baseline, §IV-A).
* :class:`repro.parallel.mpi2d_lb.Mpi2dLbPIC` — application-specific
  diffusion load balancing on the 2D decomposition (§IV-B).
* :class:`repro.parallel.ampi.AmpiPIC` — AMPI-style over-decomposition into
  virtual processors with runtime-orchestrated load balancing (§IV-C).

All three run on the simulated MPI runtime, push real particles, and finish
with the §III-D verification, so a communication bug in any of them fails
tests rather than just skewing timings.
"""

from repro.parallel.base import ParallelResult, RankReturn
from repro.parallel.mpi2d import Mpi2dPIC
from repro.parallel.mpi2d_lb import Mpi2dLbPIC
from repro.parallel.ampi import AmpiPIC

__all__ = ["ParallelResult", "RankReturn", "Mpi2dPIC", "Mpi2dLbPIC", "AmpiPIC"]
