"""Shared machinery of the parallel PIC PRK implementations.

:class:`ParallelPICBase` implements the complete SPMD life cycle of §IV-A —
deterministic decomposition-independent initialization, the per-step
push/exchange loop, event handling, and the final distributed verification —
and exposes two hooks that the load-balanced variants override:

* :meth:`ParallelPICBase.setup_hook` — once, after topology creation;
* :meth:`ParallelPICBase.lb_hook` — after each step's particle exchange, may
  return a new partition (and must then re-route particles).

Particle exchange is the multi-hop x-then-y routing described in DESIGN.md:
each iteration forwards misplaced particles one processor column/row toward
their owner (periodic, shorter direction), then an allreduce checks global
settlement.  For the paper's workloads (``2k+1`` smaller than any block
width) a single iteration suffices, reproducing the baseline's
nearest-neighbor communication structure.

Hot-path note (docs/performance.md): the exchange mutates the rank's
:class:`ParticleArray` in place (``compact`` / ``extend_packed``) and packs
departures into per-rank reused wire buffers (:class:`ExchangeScratch`), so
a settled step — the common case — performs zero full-population array
allocations.  None of this changes simulated time, message counts or
payloads: the golden-trace and differential suites pin that byte-for-byte.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.ampi import pup
from repro.core import events as ev
from repro.core import verification
from repro.core.initialization import initialize
from repro.core.mesh import Mesh
from repro.core.particles import PARTICLE_RECORD_FIELDS, ParticleArray
from repro.core.spec import InjectionEvent, PICSpec
from repro.decomp.grid import factor_2d, grid_fits_mesh
from repro.decomp.partition import BlockPartition
from repro.runtime.cart import CartComm
from repro.runtime.comm import Comm
from repro.runtime.costmodel import CostModel
from repro.runtime.errors import RuntimeConfigError
from repro.runtime.executor import PushTask
from repro.runtime.machine import MachineModel
from repro.runtime.reduce_ops import MAX, SUM
from repro.runtime.scheduler import Scheduler
from repro.config.runspec import (
    CostConfig,
    ExecutorConfig,
    ImplConfig,
    MachineConfig,
    ResilienceSpec,
    RunSpec,
)
from repro.resilience.checkpoint import spec_to_dict

# Message tags of the particle-exchange protocol.
TAG_X_RIGHT = 101
TAG_X_LEFT = 102
TAG_Y_UP = 103
TAG_Y_DOWN = 104
TAG_SUBGRID = 110


@dataclass
class RankReturn:
    """Per-rank results returned from the SPMD program."""

    final_particles: int
    max_particles: int
    pushes: int
    verification: verification.VerificationResult


@dataclass
class ParallelResult:
    """Aggregated outcome of one parallel PIC run."""

    implementation: str
    n_ranks: int
    n_cores: int
    verification: verification.VerificationResult
    #: Simulated execution time in seconds (max over rank clocks).
    total_time: float
    rank_times: list[float]
    rank_returns: list[RankReturn]
    messages_sent: int
    bytes_sent: int
    collectives: int
    #: Final particle count per physical core (AMPI sums co-located VPs).
    particles_per_core: dict[int, int] = field(default_factory=dict)
    #: Final rank -> core mapping (changes from the initial one only when a
    #: VP runtime migrated ranks; used by locality analyses).
    final_rank_to_core: list[int] = field(default_factory=list)

    @property
    def max_particles_per_core(self) -> int:
        """The §V-B imbalance statistic."""
        return max(self.particles_per_core.values(), default=0)

    @property
    def ideal_particles_per_core(self) -> float:
        total = sum(self.particles_per_core.values())
        return total / max(1, self.n_cores)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.implementation}: T={self.total_time:.4f}s on "
            f"{self.n_cores} cores, {self.verification}"
        )


class ParallelPICBase:
    """Common driver: subclasses choose topology, mapping and balancing."""

    name = "base"

    def __init__(
        self,
        spec: PICSpec,
        n_cores: int,
        *,
        machine: MachineModel | None = None,
        cost: CostModel | None = None,
        dims: tuple[int, int] | None = None,
        tracer=None,
        span_tracer=None,
        metrics=None,
        executor=None,
        resilience=None,
        work_rates=None,
    ):
        if n_cores <= 0:
            raise RuntimeConfigError("need at least one core")
        self.spec = spec
        self.n_cores = n_cores
        self.machine = machine or MachineModel()
        self.cost = cost or CostModel(machine=self.machine)
        self.mesh = Mesh(spec.cells, spec.h, spec.q)
        #: Optional explicit processor grid, e.g. ``(P, 1)`` for the paper's
        #: Fig. 3 1D block-column decomposition; default is near-square.
        self.dims_override = dims
        #: Optional :class:`repro.instrument.TraceCollector` — observes
        #: per-step loads without perturbing simulated time.
        self.tracer = tracer
        #: Optional :class:`repro.instrument.Tracer` — receives fine-grained
        #: spans (compute/comm/wait/collective) from the scheduler.
        self.span_tracer = span_tracer
        #: Optional :class:`repro.instrument.MetricsRegistry` — counters,
        #: gauges and histograms fed by every layer of the run.
        self.metrics = metrics
        #: Optional compute-execution backend
        #: (:mod:`repro.runtime.executor`); ``None`` lets the scheduler fall
        #: back to the env-configured process default.
        self.executor = executor
        #: Optional :class:`repro.resilience.ResilienceConfig` — fault
        #: plan, straggler watch, checkpointer, recovery policy, resume
        #: snapshot.  Unlike the instrument hooks, an attached fault plan
        #: or checkpointer perturbs simulated time (deterministically).
        self.resilience = resilience
        #: Optional :class:`repro.runtime.costmodel.WorkRateMeter` with
        #: measured per-rank pushes/sec (fed by an executor's ``work_meter``
        #: or seeded directly).  Deliberately *not* part of the RunSpec:
        #: rates are measurements of the host, not identity of the run.
        #: When set, the scheduler scales each rank's modelled push charge
        #: by its measured slowdown, so a mixed compiled/python fleet shows
        #: up as a real, LB-correctable simulated imbalance.
        self.work_rates = work_rates

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of SPMD ranks (== cores for MPI, cores * d for AMPI)."""
        return self.n_cores

    def initial_rank_to_core(self) -> list[int]:
        """Initial rank -> core pinning (identity for plain MPI)."""
        return list(range(self.n_ranks))

    def setup_hook(self, comm: Comm, cart: CartComm, state: "_RankState"):
        """Per-rank setup after topology creation (generator; may yield)."""
        return
        yield  # pragma: no cover - makes this a generator

    def lb_hook(self, comm: Comm, cart: CartComm, state: "_RankState", t: int):
        """Load-balancing hook after the step-``t`` exchange (generator)."""
        return
        yield  # pragma: no cover - makes this a generator

    def per_step_overhead(self) -> float:
        """Extra per-rank seconds charged every step (AMPI VP scheduling)."""
        return 0.0

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def _engine_tag(self) -> str:
        """Default engine id for this driver when run inside a group."""
        return f"{self.name}-c{self.n_cores}"

    def run(self) -> ParallelResult:
        """Build the engine and drive it to completion (the classic API)."""
        engine = self.build_engine()
        try:
            return engine.run()
        except BaseException:
            # Error paths (deadlock, rank failure) must not leak a
            # lazily-acquired default executor's worker pool.
            engine.close()
            raise

    def close(self) -> None:
        """Release run resources (idempotent).

        Closes the scheduler side of any engine this driver built (which
        reaps a lazily-acquired default executor's workers); an executor
        passed to the constructor belongs to its caller and is untouched.
        """
        engine = getattr(self, "_engine", None)
        if engine is not None:
            engine.close()

    def __enter__(self) -> "ParallelPICBase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def build_engine(self, *, engine_id: str | None = None):
        """Construct a bound :class:`~repro.runtime.engine.SimEngine`.

        Everything :meth:`run` historically did up to (not including) the
        scheduler loop: decomposition, resume/checkpoint resolution,
        initial particle placement, scheduler construction and per-rank
        program creation.  The returned engine is ready to ``tick()``,
        ``run()`` or ``pause()``; its ``result()`` is the driver's
        :class:`ParallelResult`.
        """
        if self.dims_override is not None:
            dims = tuple(self.dims_override)
            if dims[0] * dims[1] != self.n_ranks:
                raise RuntimeConfigError(
                    f"dims {dims} do not cover {self.n_ranks} ranks"
                )
        else:
            dims = factor_2d(self.n_ranks)
        if not grid_fits_mesh(self.spec.cells, *dims):
            raise RuntimeConfigError(
                f"{dims} processor grid does not fit a {self.spec.cells}^2 mesh"
            )
        partition0 = BlockPartition.uniform(self.spec.cells, *dims)

        res = self.resilience
        snapshot = res.resume if res is not None else None
        checkpointer = res.checkpointer if res is not None else None
        start_step = 0
        if snapshot is not None:
            snapshot.check_compatible(self.name, self.n_ranks, self.n_cores)
            start_step = snapshot.next_step
            # Per-rank state comes out of the snapshot blobs; skip the
            # (possibly expensive) global initialization entirely.
            locals0 = [ParticleArray.empty(0) for _ in range(self.n_ranks)]
        else:
            locals0 = self._initial_locals(partition0)
        if checkpointer is not None:
            checkpointer.meta = self._snapshot_meta(dims)
        injections = self._materialize_injections()

        scheduler = Scheduler(
            self.n_ranks,
            machine=self.machine,
            cost=self.cost,
            rank_to_core=self.initial_rank_to_core(),
            tracer=self.span_tracer,
            metrics=self.metrics,
            executor=self.executor,
            resilience=res.runtime_hook() if res is not None else None,
            work_rates=self.work_rates,
        )
        # Measured backend rates are diagnostic context for the straggler
        # watch: flagging still happens on observed busy seconds, but the
        # watch records *why* the fleet is skewed (and by how much).
        if self.work_rates is not None and res is not None and res.watch is not None:
            res.watch.note_backend_rates(self.work_rates.rates())
        # Per-step load sampling backs both the explicit TraceCollector and
        # the imbalance histogram of the metrics registry.
        sampler = self.tracer
        if sampler is None and self.metrics is not None:
            from repro.instrument import TraceCollector

            sampler = TraceCollector()
        programs = [
            self._make_program(
                dims, partition0, locals0[r], injections, sampler,
                start_step=start_step, snapshot=snapshot,
                checkpointer=checkpointer,
            )
            for r in range(self.n_ranks)
        ]
        from repro.runtime.engine import SimEngine

        self._engine = SimEngine(
            scheduler,
            programs,
            engine_id=engine_id if engine_id is not None else self._engine_tag(),
            checkpointer=checkpointer,
            finalize=lambda spmd: self._finalize(spmd, scheduler, sampler),
        )
        return self._engine

    def _finalize(self, spmd, scheduler, sampler) -> ParallelResult:
        """Assemble the driver-level result from a finished SPMD run."""
        returns: list[RankReturn] = spmd.returns
        per_core: dict[int, int] = {}
        for r, ret in enumerate(returns):
            core = scheduler.rank_to_core[r]
            per_core[core] = per_core.get(core, 0) + ret.final_particles
        self._record_summary_metrics(spmd, scheduler, sampler, per_core)
        return ParallelResult(
            implementation=self.name,
            n_ranks=self.n_ranks,
            n_cores=self.n_cores,
            verification=returns[0].verification,
            total_time=spmd.total_time,
            rank_times=spmd.times,
            rank_returns=returns,
            messages_sent=spmd.messages_sent,
            bytes_sent=spmd.bytes_sent,
            collectives=spmd.collectives,
            particles_per_core=per_core,
            final_rank_to_core=list(scheduler.rank_to_core),
        )

    def _record_summary_metrics(self, spmd, scheduler, sampler, per_core) -> None:
        """Fill the registry's run-level gauges/histograms (observational)."""
        m = self.metrics
        if m is None:
            return
        m.gauge("run.total_time_s").set(spmd.total_time)
        rank_time = m.histogram("run.rank_time_s")
        for t in spmd.times:
            rank_time.observe(t)
        total = spmd.total_time
        busy = m.histogram("core.busy_fraction")
        for core in range(self.n_cores):
            busy.observe(
                scheduler.core_busy.get(core, 0.0) / total if total > 0 else 0.0
            )
        if per_core:
            ideal = sum(per_core.values()) / self.n_cores
            if ideal > 0:
                m.gauge("run.imbalance_final").set(max(per_core.values()) / ideal)
        if sampler is not None:
            imbalance = m.histogram("step.imbalance_ratio")
            for value in sampler.imbalance_series():
                imbalance.observe(float(value))

    # ------------------------------------------------------------------
    # Initialization (decomposition-independent)
    # ------------------------------------------------------------------
    def _initial_locals(self, partition: BlockPartition) -> list[ParticleArray]:
        """Initialize the global population once and slice it by owner."""
        particles = initialize(self.spec, self.mesh)
        if len(particles) == 0:
            return [ParticleArray.empty(0) for _ in range(self.n_ranks)]
        owner = partition.owner_rank(
            particles.cell_columns(self.mesh), particles.cell_rows(self.mesh)
        )
        order = np.argsort(owner, kind="stable")
        sorted_owner = owner[order]
        bounds = np.searchsorted(sorted_owner, np.arange(self.n_ranks + 1))
        return [
            particles.select(order[bounds[r] : bounds[r + 1]])
            for r in range(self.n_ranks)
        ]

    def _materialize_injections(self) -> dict[int, ParticleArray]:
        """Pre-build the shared (read-only) particle list of each injection."""
        out: dict[int, ParticleArray] = {}
        for idx, event in enumerate(self.spec.events):
            if isinstance(event, InjectionEvent):
                out[idx] = ev.materialize_injection(self.spec, self.mesh, event, idx)
        return out

    # ------------------------------------------------------------------
    # The SPMD program
    # ------------------------------------------------------------------
    def _make_program(
        self, dims, partition0, local0, injections, sampler=None,
        *, start_step=0, snapshot=None, checkpointer=None,
    ):
        spec = self.spec
        mesh = self.mesh
        cost = self.cost
        overhead = self.per_step_overhead()

        def program(comm: Comm):
            cart = yield comm.create_cart(dims)
            state = _RankState(partition=partition0, particles=local0)
            state.rng = np.random.default_rng([spec.seed, 7771, comm.world_rank])
            yield from self.setup_hook(comm, cart, state)
            if snapshot is not None:
                # Setup (cart creation, sub-communicators) replays from
                # clock zero; the barrier then lets the first resumed rank
                # reinstate the captured global clocks/counters before any
                # post-resume op dispatches.
                yield comm.barrier()
                self._restore_rank(comm, snapshot, state)

            for t in range(start_step, spec.steps):
                comm.annotate_step(t)
                if ev.has_events_at(spec, t):
                    yield from self._apply_events(comm, cart, state, t, injections)
                n_local = len(state.particles)
                step_cost = cost.push_time(n_local) + overhead
                # The push is dispatched as a task descriptor instead of run
                # inline: the scheduler batches all ranks parked here in the
                # same step and hands them to the executor backend, which
                # may fuse the kernel calls or fan them out across worker
                # processes (bitwise-identical either way — see
                # repro.runtime.executor).
                yield comm.compute(
                    step_cost, task=PushTask(mesh, state.particles, spec.dt)
                )
                state.pushes += n_local
                state.particles = yield from exchange_particles(
                    comm, cart, state.partition, mesh, state.particles, cost,
                    scratch=state.scratch,
                )
                yield from self.lb_hook(comm, cart, state, t)
                if len(state.particles) > state.max_particles:
                    state.max_particles = len(state.particles)
                if sampler is not None:
                    sampler.record(cart.rank, t, len(state.particles), comm.core())
                if checkpointer is not None and checkpointer.due(t):
                    yield from self._checkpoint_step(comm, state, t, checkpointer)

            return (yield from self._verify(comm, state))

        return program

    # ------------------------------------------------------------------
    # Resilience plumbing (checkpoint/restart, straggler-forced LB)
    # ------------------------------------------------------------------
    def _watch(self):
        """The run's :class:`~repro.resilience.StragglerWatch`, if any."""
        return self.resilience.watch if self.resilience is not None else None

    def _lb_due(self, state: "_RankState", t: int, interval: int) -> bool:
        """Is a load-balancing round due after step ``t``?

        True on the regular ``interval`` schedule, and additionally when the
        straggler watch flagged a rank since the last handled round.  Every
        rank reaches the same verdict: flags at steps ``<= t`` are complete
        and identical across ranks once step ``t``'s settlement allreduce
        has run, and the ``lb_forced`` bookkeeping advances in lockstep.
        """
        due = (t + 1) % interval == 0
        watch = self._watch()
        if watch is None:
            return due
        last = state.extra.get("lb_forced", -1)
        if due:
            state.extra["lb_forced"] = t
        elif watch.straggler_pending(last, t):
            state.extra["lb_forced"] = t
            due = True
        return due

    def _pack_rank(self, state: "_RankState") -> bytes:
        """This rank's PUP blob: particles, RNG, partition, counters."""
        counters = {
            "removed_ids": state.removed_ids,
            "max_particles": state.max_particles,
            "pushes": state.pushes,
            # Numeric hook bookkeeping (LB accumulators, forced-round
            # cursors); communicators and scratch are rebuilt on resume.
            "extra": {
                k: v
                for k, v in state.extra.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            },
        }
        return pup.pack_vp(
            state.particles,
            rng=state.rng,
            partition=state.partition,
            counters=counters,
        )

    def _checkpoint_step(self, comm: Comm, state: "_RankState", t: int, ckpt):
        """End-of-step checkpoint round (generator; consistent cut)."""
        blob = self._pack_rank(state)
        yield comm.compute(ckpt.write_seconds(len(blob)))
        yield comm.barrier()
        ckpt.contribute(comm._scheduler, comm.world_rank, t, blob, self.n_ranks)

    def _restore_rank(self, comm: Comm, snapshot, state: "_RankState") -> None:
        """Reinstate this rank's state from its snapshot blob (post-barrier)."""
        snapshot.apply_global(comm._scheduler)
        vp = pup.unpack_vp(snapshot.blobs[comm.world_rank])
        state.particles = vp.particles
        if vp.partition is not None:
            state.partition = vp.partition
        state.removed_ids = int(vp.counters.get("removed_ids", 0))
        state.max_particles = int(vp.counters.get("max_particles", len(vp.particles)))
        state.pushes = int(vp.counters.get("pushes", 0))
        state.extra.update(vp.counters.get("extra", {}))
        if vp.rng_state is not None:
            state.rng = pup.rng_from_state(vp.rng_state)

    def _checkpoint_params(self) -> dict:
        """Implementation tunables stored in checkpoint metadata."""
        return {}

    # ------------------------------------------------------------------
    # RunSpec derivation / construction
    # ------------------------------------------------------------------
    def _impl_config(self) -> ImplConfig:
        """This driver's impl section; subclasses add their tunables."""
        return ImplConfig(
            name=self.name,
            cores=self.n_cores,
            dims=None if self.dims_override is None else tuple(self.dims_override),
        )

    def runspec(self) -> RunSpec:
        """The declarative :class:`~repro.config.runspec.RunSpec` equivalent
        to this driver instance.

        Derived from live state — the same constructor arguments always
        yield the same RunSpec (and hence the same ``spec_hash()``), no
        matter whether the driver was built by hand, by the CLI or by
        :func:`repro.config.build.build_impl`.  The executor section is
        left at "inherit" (it is not part of the spec's identity: backends
        are bitwise-equivalent).
        """
        res = self.resilience
        resilience = ResilienceSpec(
            faults=None if res is None or res.plan is None else res.plan.to_dict(),
            watch=None if res is None or res.watch is None
            else res.watch.params_dict(),
            recovery=None if res is None or res.recovery is None
            else asdict(res.recovery),
            checkpoint_every=0 if res is None or res.checkpointer is None
            else res.checkpointer.every,
            checkpoint_dir="checkpoints" if res is None or res.checkpointer is None
            else res.checkpointer.directory,
        )
        return RunSpec(
            workload=self.spec,
            impl=self._impl_config(),
            machine=MachineConfig.from_model(self.machine),
            cost=CostConfig.from_model(self.cost),
            executor=ExecutorConfig(),
            resilience=resilience,
        )

    @classmethod
    def from_runspec(cls, rs: RunSpec, **hooks):
        """Build the driver a RunSpec describes (see ``repro.config.build``).

        ``hooks`` forwards ``tracer``/``span_tracer``/``metrics``/
        ``executor``/``resume``.  Dispatches on ``rs.impl.name`` — calling
        this on a subclass whose name differs from the spec's is an error.
        """
        from repro.config.build import build_impl

        impl = build_impl(rs, **hooks)
        if cls is not ParallelPICBase and not isinstance(impl, cls):
            raise RuntimeConfigError(
                f"runspec names impl {rs.impl.name!r}, not a {cls.__name__}"
            )
        return impl

    def _snapshot_meta(self, dims) -> dict:
        """Checkpoint ``meta`` block: everything resume needs to rebuild us.

        Carries both the legacy loose keys (impl/spec/params/...) and the
        embedded RunSpec identity document plus its content hash — the
        ``resume`` subcommand validates a requested spec against
        ``runspec_hash`` instead of trusting the loose metadata.
        """
        res = self.resilience
        rs = self.runspec()
        return {
            "impl": self.name,
            "n_cores": self.n_cores,
            "dims": list(dims),
            "spec": spec_to_dict(self.spec),
            "cost": {"particle_push_s": self.cost.particle_push_s},
            "params": self._checkpoint_params(),
            "runspec": rs.identity_dict(),
            "runspec_hash": rs.spec_hash(),
            "resilience": {
                "plan": None
                if res is None or res.plan is None
                else res.plan.to_dict(),
                "watch": None
                if res is None or res.watch is None
                else res.watch.params_dict(),
                "recovery": None
                if res is None or res.recovery is None
                else asdict(res.recovery),
                "checkpoint_every": 0
                if res is None or res.checkpointer is None
                else res.checkpointer.every,
            },
        }

    def _apply_events(self, comm, cart: CartComm, state: "_RankState", t, injections):
        """Fire the step's events; injected particles filter by ownership."""
        spec, mesh, cost = self.spec, self.mesh, self.cost
        moved = 0
        for idx, event in enumerate(spec.events):
            if event.step != t:
                continue
            if isinstance(event, InjectionEvent):
                newp = injections[idx]
                owner = state.partition.owner_rank(
                    newp.cell_columns(mesh), newp.cell_rows(mesh)
                )
                mine = newp.select(owner == cart.rank)
                if len(mine):
                    state.particles.extend(mine)
                    moved += len(mine)
                    if self.metrics is not None:
                        self.metrics.counter("particles.injected").inc(len(mine))
            else:
                mask = ev.removal_mask(event, mesh, state.particles)
                n_gone = int(mask.sum())
                if n_gone:
                    state.removed_ids += int(
                        np.sum(state.particles.pid[mask], dtype=np.int64)
                    )
                    state.particles.compact(~mask)
                    moved += n_gone
                    if self.metrics is not None:
                        self.metrics.counter("particles.removed").inc(n_gone)
        if moved:
            yield comm.compute(cost.pack_time(moved))

    def _verify(self, comm, state: "_RankState"):
        spec, mesh = self.spec, self.mesh
        particles = state.particles
        if len(particles):
            local_err = float(
                verification.position_errors(mesh, particles, spec.steps).max()
            )
        else:
            local_err = 0.0
        g_err = yield comm.allreduce(local_err, op=MAX)
        g_ids = yield comm.allreduce(particles.id_checksum(), op=SUM)
        g_count = yield comm.allreduce(len(particles), op=SUM)
        g_removed = yield comm.allreduce(state.removed_ids, op=SUM)
        expected = verification.expected_checksum(spec, g_removed)
        result = verification.verify_distributed(
            mesh,
            particles,
            spec.steps,
            expected,
            global_max_error=g_err,
            global_count=g_count,
            global_id_sum=g_ids,
        )
        return RankReturn(
            final_particles=len(particles),
            max_particles=state.max_particles,
            pushes=state.pushes,
            verification=result,
        )


@dataclass
class _RankState:
    """Mutable per-rank simulation state threaded through the hooks."""

    partition: BlockPartition
    particles: ParticleArray
    removed_ids: int = 0
    max_particles: int = 0
    pushes: int = 0
    #: Per-rank RNG stream, seeded from (spec.seed, rank) and checkpointed
    #: via the PUP blob so resumed runs continue the identical sequence.
    rng: Any = None
    #: Reusable exchange buffers (wire + range-test scratch) for this rank.
    scratch: "ExchangeScratch" = field(default_factory=lambda: ExchangeScratch())
    #: Scratch slot for subclass hooks (sub-communicators, LB bookkeeping).
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.max_particles = len(self.particles)


# ----------------------------------------------------------------------
# Particle exchange
# ----------------------------------------------------------------------
class ExchangeScratch:
    """Per-rank reusable buffers backing the zero-churn particle exchange.

    One instance per SPMD rank (a field of :class:`_RankState`) — the
    exchange generator yields control mid-flight, so a module-level
    singleton would be clobbered by interleaved ranks.  Holds:

    * four wire buffers, one per (axis, direction), that departures are
      packed into with :meth:`ParticleArray.pack_into`.  A receiver copies
      the payload out of the sender's buffer (``extend_packed``) before
      joining the settlement allreduce, and the sender's next write to the
      same buffer happens only after that allreduce — so reuse across hops
      and steps never aliases an in-flight message;
    * integer / float / bool scratch for the settled fast path: cell
      indices and ownership range tests are computed with ``out=`` into
      these, so a step in which no particle migrates allocates nothing.
    """

    def __init__(self) -> None:
        self._wire: dict[tuple[int, int], np.ndarray] = {}
        self._idx = np.empty(0, dtype=np.int64)
        self._flt = np.empty(0, dtype=np.float64)
        self._outx = np.empty(0, dtype=bool)
        self._outy = np.empty(0, dtype=bool)
        self._tmpb = np.empty(0, dtype=bool)

    def wire(self, axis: int, direction: int, n: int) -> np.ndarray:
        """The ``(capacity, 11)`` wire buffer for one axis/direction."""
        buf = self._wire.get((axis, direction))
        if buf is None or buf.shape[0] < n:
            cap = max(n, 2 * (buf.shape[0] if buf is not None else 0), 16)
            buf = np.empty((cap, PARTICLE_RECORD_FIELDS), dtype=np.float64)
            self._wire[(axis, direction)] = buf
        return buf

    def _ensure(self, n: int) -> None:
        if len(self._idx) < n:
            cap = max(n, 2 * len(self._idx), 16)
            self._idx = np.empty(cap, dtype=np.int64)
            self._flt = np.empty(cap, dtype=np.float64)
            self._outx = np.empty(cap, dtype=bool)
            self._outy = np.empty(cap, dtype=bool)
            self._tmpb = np.empty(cap, dtype=bool)

    def cells_into(self, coord: np.ndarray, mesh: Mesh) -> np.ndarray:
        """``mesh.cell_of(coord)`` computed into reused scratch (same values)."""
        n = len(coord)
        self._ensure(n)
        f = self._flt[:n]
        idx = self._idx[:n]
        np.divide(coord, mesh.h, out=f)
        np.floor(f, out=f)
        np.copyto(idx, f, casting="unsafe")
        # np.mod is an identity for indices already in [0, cells); positions
        # are wrapped, so the floor can only escape that range through the
        # ``x/h == cells`` rounding edge — pay the integer mod only then.
        if n and (int(idx.max()) >= mesh.cells or int(idx.min()) < 0):
            np.mod(idx, mesh.cells, out=idx)
        return idx

    def out_of_range(self, axis: int, idx, lo: int, hi: int) -> np.ndarray:
        """Flags (into reused scratch) of cell indices outside ``[lo, hi)``."""
        n = len(idx)
        out = (self._outx if axis == 0 else self._outy)[:n]
        tmp = self._tmpb[:n]
        np.less(idx, lo, out=out)
        np.greater_equal(idx, hi, out=tmp)
        np.logical_or(out, tmp, out=out)
        return out


def exchange_particles(
    comm: Comm,
    cart: CartComm,
    partition: BlockPartition,
    mesh: Mesh,
    particles: ParticleArray,
    cost: CostModel,
    scratch: ExchangeScratch | None = None,
):
    """Route particles to their owning rank (generator; returns the new set).

    Each iteration performs one hop of x routing (both directions) and one
    hop of y routing, then checks global settlement with an allreduce.
    Routing direction per particle is the shorter periodic way around.

    ``particles`` is mutated in place (compact + extend into its pooled
    backing storage) and also returned, preserving the original
    return-the-new-set contract.  On the common settled path — nothing
    leaves or arrives — the ownership check is a range test against the
    rank's own block bounds written into ``scratch``, and the hop allocates
    no full-population arrays at all; per-particle owner indices are only
    computed on the migration path.
    """
    my_px, my_py = cart.coords
    px, py = cart.px, cart.py
    if scratch is None:
        scratch = ExchangeScratch()
    x_lo, x_hi = partition.x_range(my_px)
    y_lo, y_hi = partition.y_range(my_py)
    while True:
        # A "clean" hop moved nothing in or out, so that axis's range-test
        # flags in ``scratch`` are known all-False for the current set and
        # the settlement count below can skip recomputing them.
        x_clean = y_clean = False
        if px > 1:
            particles, x_clean = yield from _route_axis(
                comm, cart, particles, mesh, cost, scratch,
                splits=partition.xsplits, lo=x_lo, hi=x_hi,
                my_index=my_px, n_index=px, axis=0,
                tag_fwd=TAG_X_RIGHT, tag_bwd=TAG_X_LEFT,
            )
        if py > 1:
            particles, y_clean = yield from _route_axis(
                comm, cart, particles, mesh, cost, scratch,
                splits=partition.ysplits, lo=y_lo, hi=y_hi,
                my_index=my_py, n_index=py, axis=1,
                tag_fwd=TAG_Y_UP, tag_bwd=TAG_Y_DOWN,
            )
            if not y_clean:
                x_clean = False  # the y hop changed the particle set
        misplaced = _count_misplaced(
            cart, partition, mesh, particles,
            scratch=scratch, x_clean=x_clean, y_clean=y_clean,
        )
        total = yield comm.allreduce(misplaced, op=SUM)
        if total == 0:
            return particles


def _count_misplaced(
    cart, partition, mesh, particles, *,
    scratch: ExchangeScratch | None = None,
    x_clean: bool = False,
    y_clean: bool = False,
) -> int:
    """Number of local particles whose owning rank is not ``cart.rank``.

    A particle is misplaced iff its cell column is outside the rank's
    x-range or its cell row is outside the y-range — exactly
    ``owner_rank != cart.rank`` for a Cartesian-product partition, without
    materializing per-particle owner indices.  With ``scratch`` the tests
    run allocation-free; an axis already proven clean is skipped.
    """
    n = len(particles)
    if n == 0:
        return 0
    if scratch is None:
        owner = partition.owner_rank(
            particles.cell_columns(mesh), particles.cell_rows(mesh)
        )
        return int(np.count_nonzero(owner != cart.rank))
    my_px, my_py = cart.coords
    bad_x = bad_y = None
    if cart.px > 1 and not x_clean:
        lo, hi = partition.x_range(my_px)
        bad_x = scratch.out_of_range(
            0, scratch.cells_into(particles.x, mesh), lo, hi
        )
    if cart.py > 1 and not y_clean:
        lo, hi = partition.y_range(my_py)
        bad_y = scratch.out_of_range(
            1, scratch.cells_into(particles.y, mesh), lo, hi
        )
    if bad_x is not None and bad_y is not None:
        np.logical_or(bad_x, bad_y, out=bad_x)
        return int(np.count_nonzero(bad_x))
    if bad_x is not None:
        return int(np.count_nonzero(bad_x))
    if bad_y is not None:
        return int(np.count_nonzero(bad_y))
    return 0


#: Shared zero-particle wire buffer (read-only by convention).
_EMPTY_BUF = np.empty((0, PARTICLE_RECORD_FIELDS), dtype=np.float64)


def _route_axis(
    comm, cart, particles, mesh, cost, scratch,
    *, splits, lo, hi, my_index, n_index, axis, tag_fwd, tag_bwd,
):
    """One forwarding hop along one axis (generator).

    Returns ``(particles, clean)``: ``clean`` means nothing moved in or
    out, so the axis range-test flags left in ``scratch`` are still valid
    (and all ``False``) for the returned set.  The sequence of simulated
    events — pack compute, the two sendrecvs, unpack compute — and their
    costs/payloads are identical to the historical copy-based hop.
    """
    n = len(particles)
    n_fwd = n_bwd = 0
    go_fwd = go_bwd = None
    coord = particles.x if axis == 0 else particles.y
    if n:
        idx = scratch.cells_into(coord, mesh)
        if int(np.count_nonzero(scratch.out_of_range(axis, idx, lo, hi))):
            # Migration path: someone is off-block, so compute per-particle
            # owner indices and the shorter periodic direction.
            owner = np.searchsorted(splits, idx, side="right") - 1
            dist = (owner - my_index) % n_index
            go_fwd = (dist > 0) & (dist <= n_index // 2)
            go_bwd = dist > n_index // 2
            n_fwd = int(np.count_nonzero(go_fwd))
            n_bwd = int(np.count_nonzero(go_bwd))

    fwd_buf = (
        particles.pack_into(go_fwd, scratch.wire(axis, 1, n_fwd))
        if n_fwd else _EMPTY_BUF
    )
    bwd_buf = (
        particles.pack_into(go_bwd, scratch.wire(axis, -1, n_bwd))
        if n_bwd else _EMPTY_BUF
    )
    n_out = n_fwd + n_bwd
    if n_out:
        yield comm.compute(cost.pack_time(n_out))

    src_bwd, dst_fwd = cart.shift(axis, 1)
    src_fwd, dst_bwd = cart.shift(axis, -1)
    from_bwd = yield comm.sendrecv(
        fwd_buf, dst=dst_fwd, src=src_bwd, sendtag=tag_fwd, recvtag=tag_fwd,
        nbytes=cost.particle_wire_bytes(fwd_buf.nbytes),
    )
    from_fwd = yield comm.sendrecv(
        bwd_buf, dst=dst_bwd, src=src_fwd, sendtag=tag_bwd, recvtag=tag_bwd,
        nbytes=cost.particle_wire_bytes(bwd_buf.nbytes),
    )

    n_in = len(from_bwd) + len(from_fwd)
    if n_in == 0 and n_out == 0:
        return particles, True
    if n_in:
        yield comm.compute(cost.pack_time(n_in))
    if n_out:
        # Explicit kept set: historically this mask was only bound when a
        # count happened to be non-zero and the no-op path returned early.
        keep = ~(go_fwd | go_bwd)
        particles.compact(keep)
    # Arrival order matches the old [kept, from_bwd, from_fwd] concatenation.
    particles.extend_packed(from_bwd)
    particles.extend_packed(from_fwd)
    return particles, False
