"""AMPI/Charm++-like runtime substrate (paper §IV-C substitute).

Adaptive MPI runs each MPI rank as a migratable user-level thread (virtual
processor, VP) and over-decomposes the problem into ``d`` VPs per physical
core; the Charm++ load balancer periodically migrates VPs between cores.

In this reproduction a VP is simply a rank of the simulated runtime whose
core assignment can change at run time.  This package provides:

* :mod:`repro.ampi.loadbalancer` — the strategy zoo (GreedyTransferLB — the
  paper's "most loaded to least loaded" choice — plus GreedyLB, RefineLB,
  NullLB);
* :mod:`repro.ampi.pup` — PUP-style sizing of migratable VP state;
* :mod:`repro.ampi.runtime` — the ``migrate()`` collective that gathers VP
  loads, runs a strategy, re-maps VPs to cores and charges migration costs.
"""

from repro.ampi.loadbalancer import (
    GreedyLB,
    GreedyTransferLB,
    HintedTransferLB,
    LoadBalancer,
    NullLB,
    RefineLB,
    VpTopology,
    locality_score,
)
from repro.ampi.pup import vp_state_bytes
from repro.ampi.runtime import migrate

__all__ = [
    "GreedyLB",
    "GreedyTransferLB",
    "HintedTransferLB",
    "LoadBalancer",
    "NullLB",
    "RefineLB",
    "VpTopology",
    "locality_score",
    "vp_state_bytes",
    "migrate",
]
