"""The ``migrate()`` collective — the simulated ``MPI_Migrate`` of AMPI.

Calling :func:`migrate` from every VP's program triggers one load-balancing
round: VP loads and PUP state sizes are gathered, a strategy computes the
new VP->core mapping, VPs are re-pinned, and costs are charged —

* a centralized bookkeeping cost proportional to the VP count (the Charm++
  LB gathers statistics on one PE and broadcasts decisions), plus
* for each migrated VP, the transfer time of its PUP'd state between the
  old and new core at the machine's tier costs.

Everything after the collective simply runs with the new mapping: messages
between VPs are priced by their (possibly new) cores, so locality loss from
careless migration shows up as higher per-step communication time without
any further modelling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ampi.loadbalancer import LoadBalancer
from repro.runtime.comm import Comm

#: Centralized LB bookkeeping seconds per VP per invocation (statistics
#: collection, strategy evaluation, decision broadcast).
DEFAULT_STATS_S_PER_VP: float = 4.0e-6


@dataclass(frozen=True)
class MigrationReport:
    """Summary of one load-balancing round (same object on every VP)."""

    migrated: int
    moved_bytes: int

    @property
    def any_moved(self) -> bool:
        return self.migrated > 0


def migrate(
    comm: Comm,
    load: float,
    state_bytes: int,
    strategy: LoadBalancer,
    n_cores: int,
    stats_s_per_vp: float = DEFAULT_STATS_S_PER_VP,
    topology=None,
):
    """Collective load-balancing round; resumes with a MigrationReport.

    Must be yielded by every VP of ``comm``::

        report = yield from migrate(comm, my_load, my_bytes, GreedyLB(), P)

    ``load`` is this VP's measured work since the previous round (the
    runtime's heuristic that "the past can be used as a predictor for the
    future", §II); ``state_bytes`` is the PUP'd size of the VP.
    """

    def _rebalance(values, ctx):
        n = len(values)
        loads = [v[0] for v in values]
        sizes = [v[1] for v in values]
        mapping = [ctx.core_of(i) for i in range(n)]
        new_mapping = strategy.rebalance(loads, mapping, n_cores, topology=topology)

        stats_cost = stats_s_per_vp * n
        migrated = 0
        moved_bytes = 0
        for vp in range(n):
            old, new = mapping[vp], new_mapping[vp]
            ctx.add_time(vp, stats_cost)
            if old == new:
                continue
            migrated += 1
            moved_bytes += sizes[vp]
            # Wire transfer plus PUP on both endpoints (pack at the source,
            # unpack + thread/communicator rebuild at the destination) — the
            # PUP rate, not the link, dominates real AMPI migration.
            transfer = ctx.machine.transfer_time(old, new, sizes[vp])
            pup = 2.0 * sizes[vp] / ctx.cost.pup_bandwidth
            ctx.add_time(vp, transfer + pup)
            ctx.set_core(vp, new)
        report = MigrationReport(migrated=migrated, moved_bytes=moved_bytes)
        return [report] * n

    report = yield comm.user_collective((float(load), int(state_bytes)), _rebalance)
    return report
