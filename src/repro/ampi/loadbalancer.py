"""Load-balancing strategies for the AMPI-like runtime.

Each strategy maps VP loads to a new VP->core assignment.  All are
*locality-agnostic*, like the Charm++ balancers the paper exercised: they
look only at scalar loads, never at which VPs communicate — which is
precisely the weakness the paper's strong-scaling experiment exposes
(§V-B: "the runtime does not restrict the migration to the VPs owning the
subgrids on the borders of the subdomains").

Strategies are pure: ``rebalance(loads, mapping, n_cores)`` returns the new
mapping without mutating inputs, so the runtime can compare old and new to
compute migration volume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Protocol, Sequence


@dataclass(frozen=True)
class VpTopology:
    """Cartesian neighbor structure of the virtual processors.

    Strategies that want to preserve locality (the paper's closing remark:
    "even a diffusion based AMPI load balancer would not preserve the
    compactness of the subdomains unless it is properly hinted") receive
    this as the hint.  ``dims`` is the VP grid ``(Px, Py)`` with row-major
    ranks, periodic in both directions — matching
    :class:`repro.runtime.cart.CartComm`.
    """

    dims: tuple[int, int]

    @property
    def n_vps(self) -> int:
        return self.dims[0] * self.dims[1]

    def neighbors(self, vp: int) -> list[int]:
        """The four Cartesian neighbors of a VP (periodic, de-duplicated)."""
        px, py = self.dims
        cx, cy = vp // py, vp % py
        out = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            n = ((cx + dx) % px) * py + (cy + dy) % py
            if n != vp and n not in out:
                out.append(n)
        return out


class LoadBalancer(Protocol):
    """Strategy interface.

    ``topology`` is an optional locality hint; locality-agnostic strategies
    (all the stock Charm++-style ones) ignore it.
    """

    name: str

    def rebalance(
        self,
        loads: Sequence[float],
        mapping: Sequence[int],
        n_cores: int,
        topology: VpTopology | None = None,
    ) -> list[int]:
        """Return the new VP->core mapping."""
        ...


def _core_loads(loads: Sequence[float], mapping: Sequence[int], n_cores: int) -> list[float]:
    out = [0.0] * n_cores
    for vp, core in enumerate(mapping):
        out[core] += loads[vp]
    return out


def _validate(loads, mapping, n_cores) -> None:
    if len(loads) != len(mapping):
        raise ValueError("loads and mapping must have equal length")
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    for core in mapping:
        if not 0 <= core < n_cores:
            raise ValueError(f"mapping references core {core} outside 0..{n_cores - 1}")


@dataclass(frozen=True)
class NullLB:
    """Never migrates (the 'LB disabled' control)."""

    name: str = "NullLB"

    def rebalance(self, loads, mapping, n_cores, topology=None):
        _validate(loads, mapping, n_cores)
        return list(mapping)


@dataclass(frozen=True)
class GreedyLB:
    """Charm++-style GreedyLB: full reassignment, heaviest VP first.

    Ignores current placement entirely, so it achieves near-perfect balance
    at the price of migrating almost every VP — maximal locality
    destruction, maximal migration volume.
    """

    name: str = "GreedyLB"

    def rebalance(self, loads, mapping, n_cores, topology=None):
        _validate(loads, mapping, n_cores)
        order = sorted(range(len(loads)), key=lambda vp: (-loads[vp], vp))
        heap = [(0.0, core) for core in range(n_cores)]
        heapq.heapify(heap)
        new_mapping = [0] * len(loads)
        for vp in order:
            load, core = heapq.heappop(heap)
            new_mapping[vp] = core
            heapq.heappush(heap, (load + loads[vp], core))
        return new_mapping


@dataclass(frozen=True)
class GreedyTransferLB:
    """The paper's choice: migrate VPs from the most to the least loaded core.

    Iteratively moves the lightest adequate VP off the most loaded core onto
    the least loaded one, stopping when the transfer would overshoot (or a
    move budget is reached).  Keeps most placements intact — far less
    migration volume than :class:`GreedyLB`, at the price of a coarser
    balance.
    """

    name: str = "GreedyTransferLB"
    #: Stop when max core load is within this factor of the mean.
    tolerance: float = 1.05
    #: Upper bound on migrations per invocation, as a fraction of VP count.
    max_moves_fraction: float = 0.25

    def rebalance(self, loads, mapping, n_cores, topology=None):
        _validate(loads, mapping, n_cores)
        new_mapping = list(mapping)
        core_load = _core_loads(loads, new_mapping, n_cores)
        by_core: list[list[int]] = [[] for _ in range(n_cores)]
        for vp, core in enumerate(new_mapping):
            by_core[core].append(vp)

        n_vps = len(loads)
        total = sum(loads)
        mean = total / n_cores
        max_moves = max(1, int(self.max_moves_fraction * n_vps))
        for _ in range(max_moves):
            src = max(range(n_cores), key=lambda c: (core_load[c], c))
            dst = min(range(n_cores), key=lambda c: (core_load[c], c))
            if core_load[src] <= self.tolerance * mean:
                break
            gap = core_load[src] - core_load[dst]
            # Heaviest VP on src that still helps: moving it must not make
            # dst heavier than src was (no oscillation).
            candidates = [vp for vp in by_core[src] if loads[vp] > 0 and loads[vp] < gap]
            if not candidates:
                break
            vp = max(candidates, key=lambda v: (loads[v], -v))
            by_core[src].remove(vp)
            by_core[dst].append(vp)
            core_load[src] -= loads[vp]
            core_load[dst] += loads[vp]
            new_mapping[vp] = dst
        return new_mapping


@dataclass(frozen=True)
class RefineLB:
    """Charm++-style RefineLB: trim only the cores above threshold.

    Like :class:`GreedyTransferLB` but moves the *lightest* helpful VP each
    time, minimizing per-move disruption; intended for incremental touch-ups
    between rarer full rebalances.
    """

    name: str = "RefineLB"
    overload_tolerance: float = 1.1

    def rebalance(self, loads, mapping, n_cores, topology=None):
        _validate(loads, mapping, n_cores)
        new_mapping = list(mapping)
        core_load = _core_loads(loads, new_mapping, n_cores)
        by_core: list[list[int]] = [[] for _ in range(n_cores)]
        for vp, core in enumerate(new_mapping):
            by_core[core].append(vp)
        mean = sum(loads) / n_cores
        limit = self.overload_tolerance * mean
        for _ in range(len(loads)):
            src = max(range(n_cores), key=lambda c: (core_load[c], c))
            if core_load[src] <= limit:
                break
            dst = min(range(n_cores), key=lambda c: (core_load[c], c))
            candidates = [
                vp
                for vp in by_core[src]
                if loads[vp] > 0 and core_load[dst] + loads[vp] <= limit
            ]
            if not candidates:
                break
            vp = min(candidates, key=lambda v: (loads[v], v))
            by_core[src].remove(vp)
            by_core[dst].append(vp)
            core_load[src] -= loads[vp]
            core_load[dst] += loads[vp]
            new_mapping[vp] = dst
        return new_mapping


@dataclass(frozen=True)
class HintedTransferLB:
    """Locality-hinted transfer balancer (the paper's suggested fix).

    §V-B closes: "Even a diffusion based AMPI load balancer would not
    preserve the compactness of the subdomains unless it is properly
    hinted."  This strategy is that hinted balancer: it moves VPs from the
    most loaded core like :class:`GreedyTransferLB`, but

    * it only offers *border* VPs — those with at least one Cartesian
      neighbor already living on another core — keeping each core's
      subdomain compact (interior VPs never become remote islands), and
    * among admissible destinations it prefers the core hosting the most
      neighbors of the moved VP, so donated VPs land next to their
      communication partners.

    Without a topology hint it degrades gracefully to plain
    :class:`GreedyTransferLB` behaviour.
    """

    name: str = "HintedTransferLB"
    tolerance: float = 1.05
    max_moves_fraction: float = 0.25

    def rebalance(self, loads, mapping, n_cores, topology=None):
        _validate(loads, mapping, n_cores)
        new_mapping = list(mapping)
        core_load = _core_loads(loads, new_mapping, n_cores)
        by_core: list[list[int]] = [[] for _ in range(n_cores)]
        for vp, core in enumerate(new_mapping):
            by_core[core].append(vp)

        neighbor_lists = (
            [topology.neighbors(vp) for vp in range(len(loads))]
            if topology is not None
            else None
        )
        mean = sum(loads) / n_cores
        max_moves = max(1, int(self.max_moves_fraction * len(loads)))
        for _ in range(max_moves):
            src = max(range(n_cores), key=lambda c: (core_load[c], c))
            if core_load[src] <= self.tolerance * mean:
                break
            # Any underloaded core is an admissible destination; the
            # affinity preference picks among them, and an overshoot guard
            # below keeps the pair from oscillating.
            admissible = [
                c for c in range(n_cores) if c != src and core_load[c] < mean
            ]
            if not admissible:
                break

            def is_border(vp: int) -> bool:
                if neighbor_lists is None:
                    return True
                return any(new_mapping[n] != src for n in neighbor_lists[vp])

            dst_default = min(admissible, key=lambda c: (core_load[c], c))
            gap = core_load[src] - core_load[dst_default]
            helpful = [
                vp for vp in by_core[src] if loads[vp] > 0 and loads[vp] < gap
            ]
            candidates = [vp for vp in helpful if is_border(vp)]
            if not candidates:
                # A core owning a borderless (self-contained) region -- e.g.
                # everything at startup -- has no compactness to preserve:
                # fall back to any helpful VP.
                candidates = helpful
            if not candidates:
                break
            vp = max(candidates, key=lambda v: (loads[v], -v))
            if neighbor_lists is None:
                dst = dst_default
            else:
                # Prefer the admissible core hosting the most neighbors.
                def affinity(c: int) -> tuple:
                    hosted = sum(1 for n in neighbor_lists[vp] if new_mapping[n] == c)
                    return (-hosted, core_load[c], c)

                dst = min(admissible, key=affinity)
                # Overshoot guard: never leave the destination heavier than
                # the source was.
                if core_load[dst] + loads[vp] >= core_load[src]:
                    dst = dst_default
            by_core[src].remove(vp)
            by_core[dst].append(vp)
            core_load[src] -= loads[vp]
            core_load[dst] += loads[vp]
            new_mapping[vp] = dst
        return new_mapping


@dataclass(frozen=True)
class MeteredLB:
    """Decorator strategy: observes any inner balancer through a registry.

    Delegates ``rebalance`` unchanged and records, per invocation, the
    number of VPs moved and (when a topology hint is available) the
    locality score of the resulting mapping.  Purely observational, so a
    metered run is bit-identical to an unmetered one.  ``metrics`` is any
    object with the :class:`repro.instrument.MetricsRegistry` interface
    (duck-typed to avoid an import cycle).
    """

    inner: LoadBalancer
    metrics: object

    @property
    def name(self) -> str:
        return f"Metered({self.inner.name})"

    def rebalance(self, loads, mapping, n_cores, topology=None):
        new_mapping = self.inner.rebalance(
            loads, mapping, n_cores, topology=topology
        )
        moved = sum(1 for old, new in zip(mapping, new_mapping) if old != new)
        self.metrics.counter("lb.strategy_invocations").inc()
        self.metrics.histogram("lb.moves_per_round").observe(moved)
        if topology is not None:
            self.metrics.gauge("lb.locality_score").set(
                locality_score(new_mapping, topology)
            )
        return new_mapping


def locality_score(mapping: Sequence[int], topology: VpTopology) -> float:
    """Fraction of VP neighbor pairs co-located on one core (1.0 = compact).

    The quantity the paper argues locality-agnostic balancers destroy; used
    by the hinted-balancer ablation and the instrumentation layer.
    """
    pairs = 0
    local = 0
    for vp in range(topology.n_vps):
        for n in topology.neighbors(vp):
            if n > vp:
                pairs += 1
                if mapping[vp] == mapping[n]:
                    local += 1
    return local / pairs if pairs else 1.0
