"""PUP (pack/unpack) serialization and sizing for VP state.

AMPI migrates a VP either with isomalloc (move the whole heap) or with
user-provided pack/unpack (PUP) routines that serialize exactly the live
state; the paper chose PUP "because it yields higher performance".  This
module provides both halves of that story:

* :func:`vp_state_bytes` — the byte count the migration *cost model*
  charges (particles + stored subgrid + fixed footprint);
* :func:`pack_vp` / :func:`unpack_vp` — a real, byte-exact PUP routine
  over the VP's live state: the particle buffer, the per-VP RNG stream,
  the ownership cache (the partition's clean-axis split vectors) and the
  driver's bookkeeping counters.  The checkpoint/restart subsystem
  (:mod:`repro.resilience.checkpoint`) stores one packed blob per rank.

The format is canonical — sorted-key JSON header plus the raw float64
particle buffer — so ``pack_vp(unpack_vp(b)...) == b`` holds bytewise,
which is what lets resumed runs and checkpoint files be compared for
bit-identity.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.particles import PARTICLE_RECORD_FIELDS, ParticleArray
from repro.decomp.partition import BlockPartition

#: Fixed per-VP overhead bytes: thread stack, communicator state, buffers.
VP_FIXED_BYTES: int = 16 * 1024

#: Stored bytes per mesh cell of the VP's subgrid (charge value at each
#: point, as the reference implementation stores it).
BYTES_PER_CELL: int = 8

#: On-wire PUP blob format: magic, version, little-endian lengths.
PUP_MAGIC: bytes = b"VPUP"
PUP_VERSION: int = 2


def vp_state_bytes(
    particles: ParticleArray,
    subgrid_cells: int,
    *,
    particle_byte_scale: float = 1.0,
    cell_byte_scale: float = 1.0,
) -> int:
    """Bytes a PUP routine serializes when migrating this VP.

    The byte scales let scaled-down benchmark workloads price the state at
    the paper's full-scale volume (see repro.bench.workloads).
    """
    if subgrid_cells < 0:
        raise ValueError("subgrid_cells must be non-negative")
    return (
        VP_FIXED_BYTES
        + int(particles.nbytes * particle_byte_scale)
        + int(subgrid_cells * cell_byte_scale) * BYTES_PER_CELL
    )


@dataclass
class VpState:
    """Decoded contents of one PUP blob (see :func:`unpack_vp`)."""

    particles: ParticleArray
    rng_state: dict | None = None
    partition: BlockPartition | None = None
    counters: dict[str, Any] = field(default_factory=dict)


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a NumPy generator from a ``bit_generator.state`` dict."""
    bit_cls = getattr(np.random, state["bit_generator"])
    gen = np.random.Generator(bit_cls())
    gen.bit_generator.state = state
    return gen


def _canonical_rng_state(rng) -> dict | None:
    if rng is None:
        return None
    state = rng.bit_generator.state if hasattr(rng, "bit_generator") else rng
    # JSON round-trips lose nothing: PCG64/Philox state dicts hold Python
    # ints and strings only.
    return json.loads(json.dumps(state))


def pack_vp(
    particles: ParticleArray,
    *,
    rng=None,
    partition: BlockPartition | None = None,
    counters: dict[str, Any] | None = None,
) -> bytes:
    """Serialize one VP's live state to a canonical byte string.

    ``rng`` may be a :class:`numpy.random.Generator` or an already-extracted
    ``bit_generator.state`` dict.  ``counters`` must be JSON-serializable
    (the driver's removed-id sum, push counts, LB accumulators...).
    """
    header = {
        "n": len(particles),
        "rng": _canonical_rng_state(rng),
        "partition": None
        if partition is None
        else {
            "cells": int(partition.cells),
            "xsplits": [int(v) for v in partition.xsplits],
            "ysplits": [int(v) for v in partition.ysplits],
        },
        "counters": counters or {},
    }
    hjson = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    body = particles.pack().tobytes()
    return PUP_MAGIC + struct.pack("<HI", PUP_VERSION, len(hjson)) + hjson + body


def unpack_vp(blob: bytes) -> VpState:
    """Inverse of :func:`pack_vp`; raises ``ValueError`` on malformed blobs."""
    if blob[:4] != PUP_MAGIC:
        raise ValueError("not a PUP blob (bad magic)")
    version, hlen = struct.unpack_from("<HI", blob, 4)
    if version != PUP_VERSION:
        raise ValueError(f"unsupported PUP version {version}")
    off = 4 + 6
    header = json.loads(blob[off : off + hlen].decode("utf-8"))
    off += hlen
    n = int(header["n"])
    expect = n * PARTICLE_RECORD_FIELDS * 8
    body = blob[off:]
    if len(body) != expect:
        raise ValueError(
            f"PUP blob truncated: {len(body)} particle bytes, expected {expect}"
        )
    buf = np.frombuffer(body, dtype="<f8").reshape(n, PARTICLE_RECORD_FIELDS)
    particles = ParticleArray.from_packed(buf.copy())
    part = None
    if header["partition"] is not None:
        p = header["partition"]
        part = BlockPartition(
            int(p["cells"]),
            np.asarray(p["xsplits"], dtype=np.int64),
            np.asarray(p["ysplits"], dtype=np.int64),
        )
    return VpState(
        particles=particles,
        rng_state=header["rng"],
        partition=part,
        counters=header["counters"],
    )
