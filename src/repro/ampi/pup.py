"""PUP-style state sizing for VP migration.

AMPI migrates a VP either with isomalloc (move the whole heap) or with
user-provided pack/unpack (PUP) routines that serialize exactly the live
state; the paper chose PUP "because it yields higher performance".  The
byte count a PUP routine would produce is what the migration cost model
needs: the VP's particle buffer plus its stored subgrid plus a fixed stack/
bookkeeping footprint.
"""

from __future__ import annotations

from repro.core.particles import ParticleArray

#: Fixed per-VP overhead bytes: thread stack, communicator state, buffers.
VP_FIXED_BYTES: int = 16 * 1024

#: Stored bytes per mesh cell of the VP's subgrid (charge value at each
#: point, as the reference implementation stores it).
BYTES_PER_CELL: int = 8


def vp_state_bytes(
    particles: ParticleArray,
    subgrid_cells: int,
    *,
    particle_byte_scale: float = 1.0,
    cell_byte_scale: float = 1.0,
) -> int:
    """Bytes a PUP routine serializes when migrating this VP.

    The byte scales let scaled-down benchmark workloads price the state at
    the paper's full-scale volume (see repro.bench.workloads).
    """
    if subgrid_cells < 0:
        raise ValueError("subgrid_cells must be non-negative")
    return (
        VP_FIXED_BYTES
        + int(particles.nbytes * particle_byte_scale)
        + int(subgrid_cells * cell_byte_scale) * BYTES_PER_CELL
    )
