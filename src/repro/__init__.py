"""repro: a reproduction of the PIC Parallel Research Kernel (IPDPS 2016).

The package implements, in pure Python + NumPy:

* :mod:`repro.core` — the PIC PRK specification: mesh, particles, force and
  integration kernel, controllable initial distributions, injection/removal
  events and the O(1)-per-particle self-verification.
* :mod:`repro.runtime` — a deterministic simulated MPI runtime (message
  matching, collectives, Cartesian communicators) with per-rank virtual
  clocks driven by a hierarchical machine/cost model.
* :mod:`repro.decomp` — 2D block domain decomposition with movable
  boundaries.
* :mod:`repro.parallel` — the paper's three reference implementations:
  ``mpi-2d`` (static, no load balancing), ``mpi-2d-LB`` (diffusion-based
  application-specific load balancing) and ``ampi`` (over-decomposed virtual
  processors balanced by the runtime).
* :mod:`repro.ampi` — the AMPI/Charm++-like virtual-processor runtime with a
  zoo of load balancers.
* :mod:`repro.bench` — the harness that regenerates the paper's figures.
"""

from repro.core import (
    Distribution,
    InjectionEvent,
    Mesh,
    ParticleArray,
    PICSpec,
    Region,
    RemovalEvent,
    SerialResult,
    SerialSimulation,
    run_serial,
)

__version__ = "1.0.0"

__all__ = [
    "Distribution",
    "InjectionEvent",
    "Mesh",
    "ParticleArray",
    "PICSpec",
    "Region",
    "RemovalEvent",
    "SerialResult",
    "SerialSimulation",
    "run_serial",
    "__version__",
]
