"""The computational kernel of the PIC PRK (paper §III-B).

Each time step every particle interacts with the four fixed charges at the
corners of the mesh cell containing it (Fig. 1 right).  The total Coulomb
force yields the acceleration (``ke/m = 1``), and the particle state is
advanced with the second-order scheme of Eqs. 1-2:

    x(t+dt) = x(t) + v(t) dt + a(t) dt^2 / 2
    v(t+dt) = v(t) + a(t) dt

Numerical-exactness note
------------------------
The self-verification of §III-D relies on particles staying *exactly* on the
horizontal axis of symmetry of a cell row.  We therefore accumulate the four
corner contributions pairwise — (bottom-left + top-left) then (bottom-right +
top-right).  For a particle with relative ordinate exactly ``h/2`` the two
members of each pair are bitwise mirror images in y, so the vertical force
cancels *exactly* in IEEE-754 arithmetic, the vertical velocity never picks
up rounding noise, and the particle ordinate remains exact for any number of
steps.  (The horizontal component only needs to be accurate to round-off; the
verification tolerance is 1e-5.)
"""

from __future__ import annotations

import numpy as np

from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray


def _corner_force(dx, dy, qprod):
    """Coulomb force components of one corner charge.

    ``dx, dy`` are the displacement components from the corner to the
    particle; ``qprod`` is the product of corner charge and particle charge
    (positive product = repulsive force along ``(dx, dy)``).
    Returns ``(qprod * dx / r^3, qprod * dy / r^3)``.
    """
    r2 = dx * dx + dy * dy
    f_over_r = qprod / (r2 * np.sqrt(r2))
    return f_over_r * dx, f_over_r * dy


def compute_acceleration(
    mesh: Mesh,
    x: np.ndarray,
    y: np.ndarray,
    q: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Acceleration of particles at ``(x, y)`` with charges ``q``.

    Positions must already lie in ``[0, L)``.  Returns ``(ax, ay)``; since
    ``ke/m = 1`` the force numbers are accelerations directly.
    """
    h = mesh.h
    cx = np.floor(x / h)
    cy = np.floor(y / h)
    rx = x - cx * h
    ry = y - cy * h

    # Columns alternate +q/-q; positions lie in [0, L) so cx is already in
    # [0, cells) and the right corner cx+1 at most equals cells, whose parity
    # matches column 0 because the cell count is even.
    parity = cx.astype(np.int64) & 1
    q_left = np.where(parity == 0, mesh.q, -mesh.q)
    ql = q * q_left
    qr = -ql  # the right corners sit in the adjacent (opposite-sign) column

    # Accumulate pairwise per column: (0,0)+(0,h), then (h,0)+(h,h).  The
    # dy values ry and ry - h are exact mirrors when ry == h/2, so each
    # pair's y-forces cancel *bitwise* and particles stay exactly on the
    # cell's axis of symmetry.
    f00x, f00y = _corner_force(rx, ry, ql)
    f01x, f01y = _corner_force(rx, ry - h, ql)
    f10x, f10y = _corner_force(rx - h, ry, qr)
    f11x, f11y = _corner_force(rx - h, ry - h, qr)
    ax = (f00x + f01x) + (f10x + f11x)
    ay = (f00y + f01y) + (f10y + f11y)
    return ax, ay


def advance(mesh: Mesh, particles: ParticleArray, dt: float) -> None:
    """Advance all particles one time step in place (Eqs. 1-2).

    Positions are wrapped back into the periodic domain after the update.
    """
    if len(particles) == 0:
        return
    ax, ay = compute_acceleration(mesh, particles.x, particles.y, particles.q)
    half_dt2 = 0.5 * dt * dt
    particles.x += particles.vx * dt + ax * half_dt2
    particles.y += particles.vy * dt + ay * half_dt2
    particles.vx += ax * dt
    particles.vy += ay * dt
    np.mod(particles.x, mesh.L, out=particles.x)
    np.mod(particles.y, mesh.L, out=particles.y)


def flops_per_particle_step() -> int:
    """Approximate floating-point operations per particle per step.

    Used by the compute cost model: 4 corner interactions at roughly 12 flops
    each (sub, mul, add, sqrt, div, two fused accumulates per component) plus
    the integration update.  The exact figure does not matter — only that
    compute time scales linearly in local particle count, which is the
    property the paper's load-imbalance analysis (Eq. 7-8) is built on.
    """
    return 4 * 12 + 12
