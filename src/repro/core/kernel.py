"""The computational kernel of the PIC PRK (paper §III-B).

Each time step every particle interacts with the four fixed charges at the
corners of the mesh cell containing it (Fig. 1 right).  The total Coulomb
force yields the acceleration (``ke/m = 1``), and the particle state is
advanced with the second-order scheme of Eqs. 1-2:

    x(t+dt) = x(t) + v(t) dt + a(t) dt^2 / 2
    v(t+dt) = v(t) + a(t) dt

Numerical-exactness note
------------------------
The self-verification of §III-D relies on particles staying *exactly* on the
horizontal axis of symmetry of a cell row.  We therefore accumulate the four
corner contributions pairwise — (bottom-left + top-left) then (bottom-right +
top-right).  For a particle with relative ordinate exactly ``h/2`` the two
members of each pair are bitwise mirror images in y, so the vertical force
cancels *exactly* in IEEE-754 arithmetic, the vertical velocity never picks
up rounding noise, and the particle ordinate remains exact for any number of
steps.  (The horizontal component only needs to be accurate to round-off; the
verification tolerance is 1e-5.)

Fused hot path
--------------
:func:`advance` fuses the acceleration and the integrator around a reused
scratch workspace (:class:`KernelWorkspace`): every intermediate lives in a
preallocated buffer written with ``out=``, so a steady-state step performs
zero temporary allocations.  The *sequence of elementwise floating-point
operations is identical* to the readable reference implementation
(:func:`advance_reference`): IEEE-754 arithmetic is deterministic per
operation, so supplying ``out=`` buffers cannot change a single bit of the
result, and in particular the pairwise accumulation that §III-D's
axis-of-symmetry exactness argument relies on is preserved.  The test
``tests/core/test_kernel_fused.py`` pins the two paths bitwise against each
other.
"""

from __future__ import annotations

import numpy as np

from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray


def _corner_force(dx, dy, qprod):
    """Coulomb force components of one corner charge.

    ``dx, dy`` are the displacement components from the corner to the
    particle; ``qprod`` is the product of corner charge and particle charge
    (positive product = repulsive force along ``(dx, dy)``).
    Returns ``(qprod * dx / r^3, qprod * dy / r^3)``.
    """
    r2 = dx * dx + dy * dy
    f_over_r = qprod / (r2 * np.sqrt(r2))
    return f_over_r * dx, f_over_r * dy


def compute_acceleration(
    mesh: Mesh,
    x: np.ndarray,
    y: np.ndarray,
    q: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Acceleration of particles at ``(x, y)`` with charges ``q``.

    Positions must already lie in ``[0, L)``.  Returns ``(ax, ay)``; since
    ``ke/m = 1`` the force numbers are accelerations directly.
    """
    h = mesh.h
    cx = np.floor(x / h)
    cy = np.floor(y / h)
    rx = x - cx * h
    ry = y - cy * h

    # Columns alternate +q/-q; positions lie in [0, L) so cx is already in
    # [0, cells) and the right corner cx+1 at most equals cells, whose parity
    # matches column 0 because the cell count is even.
    parity = cx.astype(np.int64) & 1
    q_left = np.where(parity == 0, mesh.q, -mesh.q)
    ql = q * q_left
    qr = -ql  # the right corners sit in the adjacent (opposite-sign) column

    # Accumulate pairwise per column: (0,0)+(0,h), then (h,0)+(h,h).  The
    # dy values ry and ry - h are exact mirrors when ry == h/2, so each
    # pair's y-forces cancel *bitwise* and particles stay exactly on the
    # cell's axis of symmetry.
    f00x, f00y = _corner_force(rx, ry, ql)
    f01x, f01y = _corner_force(rx, ry - h, ql)
    f10x, f10y = _corner_force(rx - h, ry, qr)
    f11x, f11y = _corner_force(rx - h, ry - h, qr)
    ax = (f00x + f01x) + (f10x + f11x)
    ay = (f00y + f01y) + (f10y + f11y)
    return ax, ay


#: Particles per cache block of the fused push.  The 14 scratch rows of one
#: block occupy ``14 * 16384 * 8 B ≈ 1.8 MB`` — sized to stay resident in a
#: per-core L2 cache, so the ~50 elementwise passes of a push read and write
#: hot lines instead of streaming full-population temporaries through DRAM.
#: Chunking an elementwise computation does not change a single result bit.
KERNEL_BLOCK = 16384


class KernelWorkspace:
    """Reused scratch buffers for the fused particle push.

    Holds one ``(rows, capacity)`` float64 block; :meth:`rows` returns
    length-``n`` row views.  Capacity is bounded by :data:`KERNEL_BLOCK`
    (the push iterates larger populations in cache-sized chunks), so the
    workspace is small, never shrunk, and a steady-state step loop
    allocates nothing.  The module keeps one shared instance —
    :func:`advance` never yields control mid-push, so a single workspace is
    safe for any number of simulated ranks interleaved by the scheduler.
    """

    N_ROWS = 14
    N_BOOL_ROWS = 2

    def __init__(self) -> None:
        self._block = np.empty((self.N_ROWS, 0), dtype=np.float64)
        self._bools = np.empty((self.N_BOOL_ROWS, 0), dtype=bool)

    def rows(self, n: int) -> list[np.ndarray]:
        if self._block.shape[1] < n:
            self._block = np.empty(
                (self.N_ROWS, max(n, 2 * self._block.shape[1])), dtype=np.float64
            )
        return [self._block[i, :n] for i in range(self.N_ROWS)]

    def bool_rows(self, n: int) -> list[np.ndarray]:
        if self._bools.shape[1] < n:
            self._bools = np.empty(
                (self.N_BOOL_ROWS, max(n, 2 * self._bools.shape[1])), dtype=bool
            )
        return [self._bools[i, :n] for i in range(self.N_BOOL_ROWS)]


_WORKSPACE = KernelWorkspace()


def _corner_force_into(dx, dy, qprod, r2, f, fx_out, fy_out) -> None:
    """:func:`_corner_force` with every intermediate written into scratch.

    Performs the identical op sequence — ``r2 = dx*dx + dy*dy``,
    ``f = qprod / (r2 * sqrt(r2))``, ``fx = f*dx``, ``fy = f*dy`` — so the
    results match the reference bitwise.
    """
    np.multiply(dx, dx, out=r2)
    np.multiply(dy, dy, out=f)
    np.add(r2, f, out=r2)
    np.sqrt(r2, out=f)
    np.multiply(r2, f, out=f)
    np.divide(qprod, f, out=f)
    np.multiply(f, dx, out=fx_out)
    np.multiply(f, dy, out=fy_out)


def advance(
    mesh: Mesh,
    particles: ParticleArray,
    dt: float,
    workspace: KernelWorkspace | None = None,
) -> None:
    """Advance all particles one time step in place (Eqs. 1-2).

    Positions are wrapped back into the periodic domain after the update.
    Fused implementation: bitwise-identical to :func:`advance_reference`
    but allocation-free once the workspace is warm, and processed in
    :data:`KERNEL_BLOCK`-sized chunks so the scratch stays cache-resident.
    """
    advance_arrays(
        mesh, particles.x, particles.y, particles.vx, particles.vy,
        particles.q, dt, workspace=workspace,
    )


def advance_arrays(
    mesh: Mesh,
    x: np.ndarray,
    y: np.ndarray,
    vx: np.ndarray,
    vy: np.ndarray,
    q: np.ndarray,
    dt: float,
    workspace: KernelWorkspace | None = None,
) -> None:
    """Array-level push: :func:`advance` on bare field segments.

    The executor backends' entry point (:mod:`repro.runtime.executor`):
    it takes plain ndarrays instead of a :class:`ParticleArray`, so callers
    can drive it over *any* contiguous segment — a rank's slice, a fused
    concatenation of several ranks' slices, or a shared-memory view inside
    a worker process.  Re-entrant when each caller supplies its own
    ``workspace`` (worker processes must: the module singleton is only safe
    within one process because the push never yields).  All arguments are
    picklable (the mesh is a frozen dataclass of scalars), but workers
    rebuild views from shared-memory descriptors rather than pickling
    arrays — see :func:`repro.runtime.executor._worker_main`.

    Chunking is per :data:`KERNEL_BLOCK` and elementwise, so segment
    boundaries never change a result bit.
    """
    n = len(x)
    if n == 0:
        return
    ws = workspace if workspace is not None else _WORKSPACE
    if n <= KERNEL_BLOCK:
        _advance_block(mesh, x, y, vx, vy, q, dt, ws)
        return
    for i in range(0, n, KERNEL_BLOCK):
        s = slice(i, min(i + KERNEL_BLOCK, n))
        _advance_block(mesh, x[s], y[s], vx[s], vy[s], q[s], dt, ws)


def _advance_block(mesh, x, y, vx, vy, q, dt, ws) -> None:
    """Fused push of one cache-sized block (mutates x/y/vx/vy in place)."""
    cell, sgn, rx, ry, rxm, rym, ql, qr, axl, ayl, ax, ay, t0, t1 = ws.rows(
        len(x)
    )
    h = mesh.h
    exact_h = h == 1.0  # division/multiplication by 1.0 are bitwise no-ops

    # cx = floor(x / h); column parity decides the left-corner charge sign.
    if exact_h:
        np.floor(x, out=cell)
    else:
        np.divide(x, h, out=cell)
        np.floor(cell, out=cell)
    # q_left = where(cx odd, -q, +q) == (1 - 2*(cx mod 2)) * q: the parity
    # term is exactly 0.0 or 1.0, so the product is a bitwise sign flip.
    np.mod(cell, 2.0, out=sgn)
    np.multiply(sgn, -2.0, out=sgn)
    np.add(sgn, 1.0, out=sgn)
    np.multiply(sgn, mesh.q, out=sgn)
    np.multiply(q, sgn, out=ql)
    np.negative(ql, out=qr)
    # rx = x - cx*h, ry = y - cy*h (cell-relative position).
    if not exact_h:
        np.multiply(cell, h, out=cell)
    np.subtract(x, cell, out=rx)
    if exact_h:
        np.floor(y, out=cell)
    else:
        np.divide(y, h, out=cell)
        np.floor(cell, out=cell)
        np.multiply(cell, h, out=cell)
    np.subtract(y, cell, out=ry)
    np.subtract(rx, h, out=rxm)
    np.subtract(ry, h, out=rym)

    # Pairwise per-column accumulation (see the exactness note above):
    # (0,0)+(0,h) into (axl, ayl), then (h,0)+(h,h) into (ax, ay).
    _corner_force_into(rx, ry, ql, t0, t1, axl, ayl)
    _corner_force_into(rx, rym, ql, t0, t1, cell, sgn)
    np.add(axl, cell, out=axl)
    np.add(ayl, sgn, out=ayl)
    _corner_force_into(rxm, ry, qr, t0, t1, ax, ay)
    _corner_force_into(rxm, rym, qr, t0, t1, cell, sgn)
    np.add(ax, cell, out=ax)
    np.add(ay, sgn, out=ay)
    np.add(axl, ax, out=ax)
    np.add(ayl, ay, out=ay)

    # Integrator (Eqs. 1-2), same op order as the reference.
    half_dt2 = 0.5 * dt * dt
    np.multiply(vx, dt, out=t0)
    np.multiply(ax, half_dt2, out=t1)
    np.add(t0, t1, out=t0)
    np.add(x, t0, out=x)
    np.multiply(vy, dt, out=t0)
    np.multiply(ay, half_dt2, out=t1)
    np.add(t0, t1, out=t0)
    np.add(y, t0, out=y)
    np.multiply(ax, dt, out=t0)
    np.add(vx, t0, out=vx)
    np.multiply(ay, dt, out=t0)
    np.add(vy, t0, out=vy)
    # Periodic wrap.  ``np.mod(v, L)`` returns ``v`` bit-for-bit whenever
    # ``0 <= v < L`` (fmod of a smaller magnitude is exact), so the costly
    # mod pass is applied only to the few particles that left the domain.
    L = mesh.L
    esc, tmp = ws.bool_rows(len(x))
    for pos in (x, y):
        np.less(pos, 0.0, out=esc)
        np.greater_equal(pos, L, out=tmp)
        np.logical_or(esc, tmp, out=esc)
        if esc.any():
            pos[esc] = np.mod(pos[esc], L)


def advance_reference(mesh: Mesh, particles: ParticleArray, dt: float) -> None:
    """Readable reference push: the specification :func:`advance` must match.

    Allocates ~15 temporaries per call; kept for the differential tests and
    as the "before" side of the wall-clock perf harness
    (:mod:`repro.bench.perf`).
    """
    if len(particles) == 0:
        return
    ax, ay = compute_acceleration(mesh, particles.x, particles.y, particles.q)
    half_dt2 = 0.5 * dt * dt
    particles.x += particles.vx * dt + ax * half_dt2
    particles.y += particles.vy * dt + ay * half_dt2
    particles.vx += ax * dt
    particles.vy += ay * dt
    np.mod(particles.x, mesh.L, out=particles.x)
    np.mod(particles.y, mesh.L, out=particles.y)


def flops_per_particle_step() -> int:
    """Approximate floating-point operations per particle per step.

    Used by the compute cost model: 4 corner interactions at roughly 12 flops
    each (sub, mul, add, sqrt, div, two fused accumulates per component) plus
    the integration update.  The exact figure does not matter — only that
    compute time scales linearly in local particle count, which is the
    property the paper's load-imbalance analysis (Eq. 7-8) is built on.
    """
    return 4 * 12 + 12
