"""Particle injection and removal events (paper §III-E5).

Events perturb the workload abruptly at a chosen time step, stressing the
adaptiveness of a load-balancing strategy.  Both kinds are implemented so
that their effect is *deterministic and decomposition-independent*:

* Injections materialize the complete list of new particles from a seed
  derived from ``(spec.seed, event index)``; a parallel rank simply filters
  the list to its subdomain, so every decomposition creates identical
  particles with identical ids.
* Removals select victims by a hash of the particle id, so the set of
  removed particles does not depend on which rank happens to own them.

Injected particles follow the standard placement rules (cell centres, Eq. 3
charges), so they remain analytically verifiable; their ``birth`` field
records the injection step so Eqs. 5-6 are evaluated with the correct
participation count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mesh import Mesh
from repro.core.initialization import per_particle_speeds, place_particles
from repro.core.particles import ParticleArray
from repro.core.spec import InjectionEvent, PICSpec, RemovalEvent

#: Knuth's multiplicative hash constant; used to pick removal victims
#: pseudo-randomly but decomposition-independently.
_HASH_MULT = np.int64(2654435761)
_HASH_MOD = np.int64(2**31 - 1)


@dataclass(frozen=True)
class EventOutcome:
    """Bookkeeping from applying one event locally.

    ``added_ids_sum``/``removed_ids_sum`` feed the global id-checksum update;
    ``added``/``removed`` are the local particle-count deltas.
    """

    added: int = 0
    removed: int = 0
    added_ids_sum: int = 0
    removed_ids_sum: int = 0


def injection_base_id(spec: PICSpec, event_index: int) -> int:
    """First particle id used by injection event ``event_index``.

    Ids must be globally unique and decomposition-independent: the initial
    population uses ``1..n``; each injection event gets the next contiguous
    block, in event order.
    """
    next_id = spec.n_particles + 1
    for i, ev in enumerate(spec.events):
        if i == event_index:
            return next_id
        if isinstance(ev, InjectionEvent):
            next_id += ev.count
    raise IndexError(f"event index {event_index} out of range")


def materialize_injection(
    spec: PICSpec,
    mesh: Mesh,
    event: InjectionEvent,
    event_index: int,
) -> ParticleArray:
    """Create the full particle list for one injection event.

    The list is identical for every caller (serial driver or any rank of any
    decomposition); ranks filter it to their subdomain afterwards.
    """
    rng = np.random.default_rng((spec.seed, 7919, event_index))
    region = event.region
    cols = rng.integers(region.x_lo, region.x_hi, size=event.count, dtype=np.int64)
    rows = rng.integers(region.y_lo, region.y_hi, size=event.count, dtype=np.int64)
    start_id = injection_base_id(spec, event_index)
    pids = np.arange(start_id, start_id + event.count, dtype=np.int64)
    k, m = per_particle_speeds(spec, pids)
    return place_particles(
        mesh,
        cols,
        rows,
        dt=spec.dt,
        k=k,
        m_vertical=m,
        start_id=start_id,
        birth=event.step,
    )


def removal_mask(
    event: RemovalEvent,
    mesh: Mesh,
    particles: ParticleArray,
) -> np.ndarray:
    """Boolean mask of local particles removed by ``event``.

    Membership is evaluated on the particle's *current* cell.  When
    ``fraction < 1`` the victims are chosen by hashing the particle id, so the
    selection is identical regardless of decomposition.
    """
    cx = particles.cell_columns(mesh)
    cy = particles.cell_rows(mesh)
    mask = event.region.contains(cx, cy)
    if event.fraction < 1.0:
        hashed = (particles.pid * _HASH_MULT) % _HASH_MOD
        mask &= hashed.astype(np.float64) / float(_HASH_MOD) < event.fraction
    return mask


def apply_events_locally(
    spec: PICSpec,
    mesh: Mesh,
    particles: ParticleArray,
    step: int,
    *,
    in_subdomain=None,
) -> tuple[ParticleArray, EventOutcome]:
    """Apply all events scheduled at ``step`` to a local particle set.

    ``in_subdomain`` is an optional predicate ``(cell_col, cell_row) -> mask``
    restricting injected particles to the caller's subdomain (parallel
    drivers pass their partition test; the serial driver passes ``None`` to
    keep everything).

    Events fire *before* the particle push of the step they are scheduled on,
    so an event at step ``t'`` affects pushes ``t', t'+1, ...`` and an
    injected particle participates in ``T - t'`` pushes.
    """
    total = EventOutcome()
    added = 0
    removed = 0
    added_ids = 0
    removed_ids = 0
    for idx, ev in enumerate(spec.events):
        if ev.step != step:
            continue
        if isinstance(ev, InjectionEvent):
            newp = materialize_injection(spec, mesh, ev, idx)
            if in_subdomain is not None:
                keep = in_subdomain(newp.cell_columns(mesh), newp.cell_rows(mesh))
                newp = newp.select(keep)
            if len(newp):
                added += len(newp)
                added_ids += newp.id_checksum()
                particles = particles.append(newp)
        else:
            mask = removal_mask(ev, mesh, particles)
            n_gone = int(mask.sum())
            if n_gone:
                removed += n_gone
                removed_ids += int(np.sum(particles.pid[mask], dtype=np.int64))
                particles = particles.select(~mask)
    if added or removed:
        total = EventOutcome(
            added=added,
            removed=removed,
            added_ids_sum=added_ids,
            removed_ids_sum=removed_ids,
        )
    return particles, total


def has_events_at(spec: PICSpec, step: int) -> bool:
    """True when any event is scheduled at ``step``."""
    return any(ev.step == step for ev in spec.events)
