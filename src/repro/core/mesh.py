"""The fixed background mesh of the PIC PRK (paper §III-B/C).

The simulation domain is an ``L x L`` square with periodic boundaries in both
directions, discretized into square cells of size ``h x h``.  Mesh *points*
carry fixed charges in an alternating column pattern: points whose discrete
x-index is even carry ``+q``, odd columns carry ``-q`` (Fig. 2).

Because the pattern is fully determined by column parity, the mesh charge
field never needs to be materialized: :meth:`Mesh.point_charge` computes it on
the fly.  This keeps the memory footprint O(1) even for the paper's
11,998 x 11,998 weak-scaling grid, while the byte size a *stored* charge grid
would occupy is still reported via :meth:`Mesh.stored_bytes_for_cells` so the
communication cost model can account for subgrid migration exactly as the
paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Mesh:
    """Periodic square mesh with alternating-by-column point charges.

    Parameters
    ----------
    cells:
        Number of cells per side (``c`` in the paper); must be even so that
        the alternating charge pattern is consistent across the periodic seam.
    h:
        Cell edge length.
    q:
        Magnitude of the fixed charge at each mesh point.
    """

    cells: int
    h: float = 1.0
    q: float = 1.0

    def __post_init__(self) -> None:
        if self.cells <= 0 or self.cells % 2:
            raise ValueError(
                f"cells must be positive and even (got {self.cells}); an odd "
                "cell count breaks the alternating charge pattern at the "
                "periodic boundary"
            )
        if self.h <= 0:
            raise ValueError("h must be positive")
        if self.q <= 0:
            raise ValueError("q must be positive")

    @property
    def L(self) -> float:
        """Domain edge length."""
        return self.cells * self.h

    @property
    def n_points(self) -> int:
        """Number of distinct mesh points (periodic, so cells**2)."""
        return self.cells * self.cells

    # ------------------------------------------------------------------
    # Charges
    # ------------------------------------------------------------------
    def point_charge(self, i):
        """Charge at mesh points with discrete x-index ``i`` (vectorized).

        Even columns carry ``+q``, odd columns ``-q`` (§III-C).  ``i`` may be
        any integer array; it is wrapped periodically first.
        """
        i = np.asarray(i)
        return np.where((i % self.cells) % 2 == 0, self.q, -self.q)

    def column_sign(self, i):
        """``+1`` for even columns, ``-1`` for odd ones (vectorized)."""
        i = np.asarray(i)
        return np.where((i % self.cells) % 2 == 0, 1.0, -1.0)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def wrap_position(self, pos):
        """Map physical coordinates into ``[0, L)`` (periodic boundaries)."""
        return np.mod(pos, self.L)

    def wrap_cell(self, c):
        """Map cell indices into ``[0, cells)`` (periodic boundaries)."""
        return np.mod(c, self.cells)

    def cell_of(self, coord):
        """Discrete cell index of physical coordinate(s), wrapped periodically.

        Positions exactly on a cell boundary belong to the cell on their
        right/top, matching the convention of the reference PRK.
        """
        idx = np.floor(np.asarray(coord) / self.h).astype(np.int64)
        return np.mod(idx, self.cells)

    def cell_center_y(self, j):
        """Ordinate of the horizontal axis of symmetry of cell row ``j``."""
        return (np.asarray(j, dtype=np.float64) + 0.5) * self.h

    def stored_bytes_for_cells(self, n_cells: int, bytes_per_point: int = 8) -> int:
        """Bytes a materialized charge grid would use for ``n_cells`` cells.

        Used by the cost model to charge for subgrid migration during load
        balancing, as the paper's implementations physically move their grid
        storage along with ownership.
        """
        return int(n_cells) * bytes_per_point

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh(cells={self.cells}, h={self.h}, q={self.q})"
