"""Serial reference implementation of the PIC PRK.

This is the "paper and pencil" kernel executed on one processor: initialize,
loop ``T`` time steps (events fire before the push of their step), verify.
It is the ground truth every parallel implementation is compared against in
the test suite, and the baseline for the paper's speedup numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import events as ev
from repro.core import kernel, verification
from repro.core.initialization import initialize
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.spec import PICSpec


@dataclass
class SerialResult:
    """Outcome of a serial run."""

    particles: ParticleArray
    verification: verification.VerificationResult
    steps: int
    removed_ids_sum: int
    #: Number of particles pushed, summed over all steps (work measure).
    particle_pushes: int


@dataclass
class SerialSimulation:
    """Single-process PIC PRK driver.

    Example
    -------
    >>> from repro.core.spec import PICSpec, Distribution
    >>> spec = PICSpec(cells=64, n_particles=1000, steps=10,
    ...                distribution=Distribution.GEOMETRIC, r=0.99)
    >>> result = SerialSimulation(spec).run()
    >>> result.verification.ok
    True
    """

    spec: PICSpec
    mesh: Mesh = field(init=False)
    particles: ParticleArray = field(init=False)

    def __post_init__(self) -> None:
        self.mesh = Mesh(self.spec.cells, self.spec.h, self.spec.q)
        self.particles = initialize(self.spec, self.mesh)

    # ------------------------------------------------------------------
    def step(self, t: int) -> int:
        """Apply events for step ``t`` and push all particles once.

        Returns the summed ids of particles removed at this step (0 when no
        removal fired), so the caller can maintain the expected checksum.
        """
        removed_ids = 0
        if ev.has_events_at(self.spec, t):
            self.particles, outcome = ev.apply_events_locally(
                self.spec, self.mesh, self.particles, t
            )
            removed_ids = outcome.removed_ids_sum
        kernel.advance(self.mesh, self.particles, self.spec.dt)
        return removed_ids

    def run(self) -> SerialResult:
        """Run all ``spec.steps`` time steps and verify."""
        removed_ids_sum = 0
        pushes = 0
        for t in range(self.spec.steps):
            removed_ids_sum += self.step(t)
            pushes += len(self.particles)
        expected = verification.expected_checksum(self.spec, removed_ids_sum)
        result = verification.verify(
            self.mesh, self.particles, self.spec.steps, expected
        )
        return SerialResult(
            particles=self.particles,
            verification=result,
            steps=self.spec.steps,
            removed_ids_sum=removed_ids_sum,
            particle_pushes=pushes,
        )


def run_serial(spec: PICSpec) -> SerialResult:
    """Convenience wrapper: build and run a :class:`SerialSimulation`."""
    return SerialSimulation(spec).run()


def serial_work_profile(spec: PICSpec) -> np.ndarray:
    """Particles per cell column at initialization (load-imbalance preview).

    Useful for plotting the §III-E distributions and for tests asserting the
    geometric-ratio property of Eq. 8.
    """
    mesh = Mesh(spec.cells, spec.h, spec.q)
    particles = initialize(spec, mesh)
    cols = particles.cell_columns(mesh)
    return np.bincount(cols, minlength=spec.cells)
