"""Statistical diagnostics — and why the PRK does not rely on them.

The paper (§III-C) observes that "statistical methods typically used for
the verification of PIC codes are not rigorous enough for the PRK".  This
module implements those typical methods — population moments, kinetic
energy, spatial histograms — both as genuinely useful run diagnostics and
as the foil for a test demonstrating the paper's point: a single-particle
error that the exact §III-D verification flags immediately can leave every
statistical indicator within its noise tolerance
(``tests/core/test_diagnostics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray


@dataclass(frozen=True)
class PopulationStats:
    """Aggregate statistics of a particle population."""

    count: int
    mean_x: float
    mean_y: float
    var_x: float
    var_y: float
    kinetic_energy: float
    total_charge: float

    def close_to(self, other: "PopulationStats", rtol: float = 1e-3) -> bool:
        """Whether two snapshots agree within a statistical tolerance.

        ``rtol`` mirrors the loose thresholds statistical PIC verifications
        use — they must absorb discretization noise, so they cannot be
        tight.
        """
        if self.count != other.count:
            return False

        def ok(a: float, b: float) -> bool:
            scale = max(abs(a), abs(b), 1e-12)
            return abs(a - b) / scale <= rtol

        return all(
            ok(getattr(self, f), getattr(other, f))
            for f in ("mean_x", "mean_y", "var_x", "var_y", "kinetic_energy", "total_charge")
        )


def population_stats(particles: ParticleArray) -> PopulationStats:
    """Compute the classic statistical-verification quantities."""
    n = len(particles)
    if n == 0:
        return PopulationStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ke = 0.5 * float(np.sum(particles.vx**2 + particles.vy**2))
    return PopulationStats(
        count=n,
        mean_x=float(particles.x.mean()),
        mean_y=float(particles.y.mean()),
        var_x=float(particles.x.var()),
        var_y=float(particles.y.var()),
        kinetic_energy=ke,
        total_charge=float(particles.q.sum()),
    )


def column_histogram(mesh: Mesh, particles: ParticleArray) -> np.ndarray:
    """Particles per cell column — the spatial load profile."""
    if len(particles) == 0:
        return np.zeros(mesh.cells, dtype=np.int64)
    return np.bincount(particles.cell_columns(mesh), minlength=mesh.cells)


def histogram_l1_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized L1 distance between two load profiles (0 = identical)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("histograms must have equal shape")
    total = max(a.sum(), b.sum(), 1.0)
    return float(np.abs(a - b).sum() / total)


def imbalance_over_columns(mesh: Mesh, particles: ParticleArray) -> float:
    """Max-over-mean of the per-column load (1.0 = perfectly flat)."""
    hist = column_histogram(mesh, particles).astype(np.float64)
    mean = hist.mean()
    if mean == 0:
        return 1.0
    return float(hist.max() / mean)
