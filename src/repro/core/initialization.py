"""Initial particle distributions for the PIC PRK (paper §III-C/E).

Particles are always placed at cell centres ``((i + 1/2) h, (j + 1/2) h)``:
the relative abscissa ``x_pi = h/2`` makes the per-step displacement exact in
finite-precision arithmetic (§III-C), and the ordinate puts the particle on
the horizontal axis of symmetry of its cell, which zeroes the vertical force
component bitwise (see :mod:`repro.core.kernel`).

A distribution is described by a per-cell-column weight profile ``w(i)``;
:func:`integer_counts` converts weights into integer particle counts that sum
exactly to ``n`` (largest-remainder apportionment), and rows within a column
are drawn from a seeded generator so initialization is deterministic and
independent of the parallel decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray, assign_charges
from repro.core.spec import Distribution, PICSpec, Region


def integer_counts(weights: np.ndarray, n: int) -> np.ndarray:
    """Apportion ``n`` items over bins proportionally to ``weights``.

    Uses the largest-remainder method so the result sums to exactly ``n``.
    Ties in the fractional parts are broken by bin index, which keeps the
    apportionment fully deterministic.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if n == 0:
        return np.zeros(len(weights), dtype=np.int64)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    # Normalize before scaling: dividing by a subnormal total (or scaling a
    # huge n/total ratio) must not overflow to inf.
    ideal = (weights / total) * n
    base = np.floor(ideal).astype(np.int64)
    remainder = n - int(base.sum())
    if remainder > 0:
        frac = ideal - base
        # argsort is stable, so equal fractions go to lower indices first.
        order = np.argsort(-frac, kind="stable")
        base[order[:remainder]] += 1
    return base


# ----------------------------------------------------------------------
# Column weight profiles (§III-E)
# ----------------------------------------------------------------------
def geometric_weights(cells: int, r: float) -> np.ndarray:
    """``w(i) = r**i`` — the skewed distribution of §III-E1.

    Computed in log space to avoid under/overflow for extreme ``r`` and large
    meshes; only the *relative* weights matter for apportionment.
    """
    if r <= 0:
        raise ValueError("geometric ratio r must be positive")
    i = np.arange(cells, dtype=np.float64)
    logw = i * np.log(r)
    logw -= logw.max()
    return np.exp(logw)


def sinusoidal_weights(cells: int) -> np.ndarray:
    """``w(i) = 1 + cos(2 pi i / (c - 1))`` — §III-E2."""
    i = np.arange(cells, dtype=np.float64)
    return 1.0 + np.cos(2.0 * np.pi * i / (cells - 1))


def linear_weights(cells: int, alpha: float, beta: float) -> np.ndarray:
    """``w(i) = beta - alpha * i / (c - 1)`` — §III-E3."""
    i = np.arange(cells, dtype=np.float64)
    w = beta - alpha * i / (cells - 1)
    if np.any(w < 0):
        raise ValueError("linear weights must be non-negative (beta >= alpha)")
    return w


def column_weights(spec: PICSpec) -> np.ndarray:
    """Weight profile for the spec's distribution over cell columns."""
    c = spec.cells
    dist = spec.distribution
    if dist is Distribution.GEOMETRIC:
        return geometric_weights(c, spec.r)
    if dist is Distribution.SINUSOIDAL:
        return sinusoidal_weights(c)
    if dist is Distribution.LINEAR:
        return linear_weights(c, spec.alpha, spec.beta)
    if dist is Distribution.UNIFORM:
        return np.ones(c, dtype=np.float64)
    if dist is Distribution.PATCH:
        assert spec.patch is not None
        w = np.zeros(c, dtype=np.float64)
        w[spec.patch.x_lo : spec.patch.x_hi] = 1.0
        return w
    raise ValueError(f"unknown distribution {dist!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def speed_choice(pids: np.ndarray, choices) -> np.ndarray:
    """Deterministic per-particle pick from ``choices`` keyed by id.

    ``choices[(pid - 1) % len(choices)]`` — independent of decomposition
    and of the order particles were created in, so parallel runs assign
    identical speeds.
    """
    choices = np.asarray(choices, dtype=np.int64)
    return choices[(np.asarray(pids, dtype=np.int64) - 1) % len(choices)]


def place_particles(
    mesh: Mesh,
    cell_col: np.ndarray,
    cell_row: np.ndarray,
    *,
    dt: float,
    k,
    m_vertical,
    start_id: int,
    birth: int = 0,
) -> ParticleArray:
    """Create fully-initialized particles in the given cells.

    ``cell_col``/``cell_row`` are integer arrays of equal length.  Ids are
    assigned consecutively starting at ``start_id``.  Charges follow Eq. 3
    with sign chosen by birth-column parity (all particles drift in +x);
    initial velocity is ``(0, m_vertical * h / dt)`` per Eq. 4.  ``k`` and
    ``m_vertical`` may be scalars or per-particle integer arrays (§III-E's
    charge/velocity variation facility).
    """
    cell_col = np.asarray(cell_col, dtype=np.int64)
    cell_row = np.asarray(cell_row, dtype=np.int64)
    n = len(cell_col)
    p = ParticleArray.empty(n)
    h = mesh.h
    k = np.asarray(k, dtype=np.int64)
    m_vertical = np.asarray(m_vertical, dtype=np.int64)
    p.x[:] = (cell_col + 0.5) * h
    p.y[:] = (cell_row + 0.5) * h
    p.vx[:] = 0.0
    p.vy[:] = m_vertical * h / dt
    p.q[:] = assign_charges(mesh, dt, cell_col, k)
    p.pid[:] = np.arange(start_id, start_id + n, dtype=np.int64)
    p.x0[:] = p.x
    p.y0[:] = p.y
    p.kdisp[:] = 2 * k + 1  # all particles drift rightward (see assign_charges)
    p.mdisp[:] = m_vertical
    p.birth[:] = birth
    return p


def per_particle_speeds(spec: PICSpec, pids: np.ndarray):
    """Resolve the (k, m) values for the given particle ids."""
    k = speed_choice(pids, spec.k_choices) if spec.k_choices else spec.k
    m = speed_choice(pids, spec.m_choices) if spec.m_choices else spec.m_vertical
    return k, m


def initialize(spec: PICSpec, mesh: Mesh | None = None) -> ParticleArray:
    """Create the initial particle population for ``spec``.

    Deterministic for a fixed ``spec.seed`` and independent of any parallel
    decomposition: parallel drivers call this (or an equivalent stream) and
    keep only the particles falling inside their subdomain.
    """
    if mesh is None:
        mesh = Mesh(spec.cells, spec.h, spec.q)
    weights = column_weights(spec)
    counts = integer_counts(weights, spec.n_particles)
    rng = np.random.default_rng(spec.seed)

    cols = np.repeat(np.arange(spec.cells, dtype=np.int64), counts)
    if spec.distribution is Distribution.PATCH:
        assert spec.patch is not None
        rows = rng.integers(spec.patch.y_lo, spec.patch.y_hi, size=len(cols), dtype=np.int64)
    else:
        rows = rng.integers(0, spec.cells, size=len(cols), dtype=np.int64)

    if spec.rotate90:
        # Apply the density profile along rows instead of columns: swap the
        # roles of the generated coordinates.  Charge signs still follow the
        # (new) column parity so the drift remains +x.
        cols, rows = rows, cols

    pids = np.arange(1, len(cols) + 1, dtype=np.int64)
    k, m = per_particle_speeds(spec, pids)
    return place_particles(
        mesh,
        cols,
        rows,
        dt=spec.dt,
        k=k,
        m_vertical=m,
        start_id=1,
        birth=0,
    )
