"""Problem specification for the PIC PRK (paper §III).

:class:`PICSpec` gathers every knob the paper-and-pencil specification
exposes: the mesh geometry, the number of particles and time steps, the
initial particle distribution and its parameters, the horizontal drift
multiplier ``k`` and vertical velocity multiplier ``m``, and any particle
injection/removal events.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Sequence

from repro.constants import DEFAULT_DT, DEFAULT_H, DEFAULT_Q


class Distribution(str, Enum):
    """Initial particle distributions supported by the PRK (§III-E)."""

    #: Exponential/geometric column distribution ``p(i) = A * r**i`` (§III-E1).
    GEOMETRIC = "geometric"
    #: Sinusoidal column distribution (§III-E2).
    SINUSOIDAL = "sinusoidal"
    #: Linear column distribution with slope controls ``alpha, beta`` (§III-E3).
    LINEAR = "linear"
    #: Uniform distribution restricted to a rectangular subdomain (§III-E4).
    PATCH = "patch"
    #: Degenerate geometric distribution with ``r = 1``: uniform everywhere.
    UNIFORM = "uniform"


@dataclass(frozen=True)
class Region:
    """A rectangular, axis-aligned region of the simulation domain.

    Bounds are expressed in *cell* indices: the region covers cell columns
    ``[x_lo, x_hi)`` and cell rows ``[y_lo, y_hi)``.
    """

    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    def __post_init__(self) -> None:
        if self.x_lo < 0 or self.y_lo < 0:
            raise ValueError(f"region bounds must be non-negative, got {self}")
        if self.x_hi <= self.x_lo or self.y_hi <= self.y_lo:
            raise ValueError(f"region must be non-empty, got {self}")

    @property
    def n_cells(self) -> int:
        return (self.x_hi - self.x_lo) * (self.y_hi - self.y_lo)

    def contains(self, cx, cy):
        """Vectorized membership test for cell coordinates ``(cx, cy)``."""
        return (
            (cx >= self.x_lo)
            & (cx < self.x_hi)
            & (cy >= self.y_lo)
            & (cy < self.y_hi)
        )


@dataclass(frozen=True)
class InjectionEvent:
    """Inject ``count`` particles uniformly into ``region`` at step ``step``.

    Injected particles obey the same placement rules as initial particles
    (cell-centre ordinate offset ``h/2``, charge per Eq. 3) so the analytic
    verification still applies to them, with a participation count equal to
    the number of remaining steps (§III-E5).
    """

    step: int
    region: Region
    count: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("injection step must be >= 0")
        if self.count <= 0:
            raise ValueError("injection count must be positive")


@dataclass(frozen=True)
class RemovalEvent:
    """Remove all particles inside ``region`` at step ``step`` (§III-E5).

    Setting ``fraction`` below 1.0 removes only that (deterministically
    chosen) fraction of the resident particles, which allows milder load
    shocks to be synthesized.
    """

    step: int
    region: Region
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("removal step must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("removal fraction must be in (0, 1]")


@dataclass(frozen=True)
class PICSpec:
    """Full specification of one PIC PRK problem instance.

    Parameters mirror §III of the paper:

    ``cells``
        Number of mesh cells per side; the domain is ``L x L`` with
        ``L = cells * h``.  Must be even so that periodic wrap-around does not
        break the alternating column-charge pattern (§III-C).
    ``n_particles``
        Initial particle count ``n``.
    ``steps``
        Number of discrete time steps ``T``.
    ``k``
        Horizontal drift multiplier: particle charges are odd multiples
        ``(2k+1) * q_pi``, so each particle crosses ``2k+1`` cells per step.
    ``m_vertical``
        Vertical velocity multiplier ``m`` of Eq. 4: initial velocity
        ``v0 = m * h / dt`` in the y direction.
    ``distribution`` and distribution parameters
        Which initial distribution of §III-E to use and its shape knobs.
    ``events``
        Optional injection/removal events (§III-E5).
    """

    cells: int
    n_particles: int
    steps: int
    k: int = 0
    m_vertical: int = 0
    distribution: Distribution = Distribution.GEOMETRIC
    #: Geometric-distribution ratio ``r`` (§III-E1); ``r = 1`` is uniform.
    r: float = 0.999
    #: Linear-distribution coefficients (§III-E3).
    alpha: float = 1.0
    beta: float = 3.0
    #: Patch subdomain for :attr:`Distribution.PATCH`.
    patch: Region | None = None
    #: Optional per-particle speed mixes (§III-E: "facilities for varying
    #: the initial particle distributions/charges/velocities").  When set,
    #: particle ``pid`` uses ``k_choices[(pid - 1) % len]`` instead of ``k``
    #: (and likewise for ``m_choices``/``m_vertical``) — deterministic by
    #: id, hence decomposition-independent, and each particle still
    #: verifies against its own recorded displacement.
    k_choices: tuple[int, ...] | None = None
    m_choices: tuple[int, ...] | None = None
    #: Rotate the particle distribution by 90 degrees: the density profile is
    #: applied along cell *rows* instead of columns (§III-E1 notes this
    #: defeats a fixed 1D block-row decomposition).
    rotate90: bool = False
    h: float = DEFAULT_H
    dt: float = DEFAULT_DT
    q: float = DEFAULT_Q
    seed: int = 42
    events: tuple[InjectionEvent | RemovalEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.cells <= 0 or self.cells % 2 != 0:
            raise ValueError(
                f"cells must be a positive even number (got {self.cells}); the "
                "paper requires L to be an even multiple of h"
            )
        if self.n_particles < 0:
            raise ValueError("n_particles must be non-negative")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.k < 0:
            raise ValueError("k must be non-negative")
        if self.k_choices is not None and (
            len(self.k_choices) == 0 or any(k < 0 for k in self.k_choices)
        ):
            raise ValueError("k_choices must be a non-empty tuple of k >= 0")
        if self.m_choices is not None and len(self.m_choices) == 0:
            raise ValueError("m_choices must be non-empty when given")
        if self.h <= 0 or self.dt <= 0 or self.q <= 0:
            raise ValueError("h, dt and q must be positive")
        if self.distribution is Distribution.PATCH and self.patch is None:
            raise ValueError("PATCH distribution requires a patch region")
        if self.patch is not None and (
            self.patch.x_hi > self.cells or self.patch.y_hi > self.cells
        ):
            raise ValueError("patch region exceeds the mesh")
        if self.distribution is Distribution.GEOMETRIC and self.r <= 0:
            raise ValueError("geometric ratio r must be positive")
        if self.distribution is Distribution.LINEAR:
            # p(i) ~ beta - alpha * i / (c - 1) must stay non-negative.
            if self.beta < 0 or self.beta - self.alpha < 0:
                raise ValueError(
                    "linear distribution requires beta >= alpha >= 0 so that "
                    "the density is non-negative over all columns"
                )
        for ev in self.events:
            if ev.step >= self.steps:
                raise ValueError(
                    f"event at step {ev.step} is outside the simulation "
                    f"(steps={self.steps})"
                )
            if ev.region.x_hi > self.cells or ev.region.y_hi > self.cells:
                raise ValueError("event region exceeds the mesh")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def L(self) -> float:
        """Physical domain edge length ``L = cells * h``."""
        return self.cells * self.h

    @property
    def drift_cells_per_step(self) -> int:
        """Horizontal cells crossed per time step, ``2k + 1``."""
        return 2 * self.k + 1

    @property
    def vertical_cells_per_step(self) -> int:
        """Vertical cells crossed per time step, ``m``."""
        return self.m_vertical

    def with_events(self, events: Sequence[InjectionEvent | RemovalEvent]) -> "PICSpec":
        """Return a copy of this spec with the given event list."""
        return replace(self, events=tuple(events))

    def scaled(self, particle_factor: float = 1.0, step_factor: float = 1.0) -> "PICSpec":
        """Return a down/up-scaled copy, used by the benchmark presets."""
        return replace(
            self,
            n_particles=max(1, int(round(self.n_particles * particle_factor))),
            steps=max(1, int(round(self.steps * step_factor))),
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by the bench harness)."""
        bits = [
            f"{self.cells}x{self.cells} cells",
            f"{self.n_particles} particles",
            f"{self.steps} steps",
            f"dist={self.distribution.value}",
        ]
        if self.distribution is Distribution.GEOMETRIC:
            bits.append(f"r={self.r}")
        if self.k:
            bits.append(f"k={self.k}")
        if self.m_vertical:
            bits.append(f"m={self.m_vertical}")
        if self.events:
            bits.append(f"{len(self.events)} events")
        return ", ".join(bits)


# ----------------------------------------------------------------------
# Canonical (de)serialization — shared by checkpoint metadata
# (repro.resilience.checkpoint) and the RunSpec config layer
# (repro.config.runspec).
# ----------------------------------------------------------------------
def spec_to_dict(spec: PICSpec) -> dict:
    """JSON-safe dict with every field present (the canonical form)."""
    doc = dataclasses.asdict(spec)
    doc["distribution"] = spec.distribution.value
    if spec.patch is not None:
        doc["patch"] = dataclasses.asdict(spec.patch)
    events = []
    for ev in spec.events:
        d = dataclasses.asdict(ev)
        d["kind"] = "inject" if isinstance(ev, InjectionEvent) else "remove"
        events.append(d)
    doc["events"] = events
    for key in ("k_choices", "m_choices"):
        if doc.get(key) is not None:
            doc[key] = list(doc[key])
    return doc


def spec_from_dict(doc: dict) -> PICSpec:
    """Inverse of :func:`spec_to_dict`; unknown fields raise ``ValueError``."""
    doc = dict(doc)
    allowed = {f.name for f in dataclasses.fields(PICSpec)}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise ValueError(
            f"unknown workload field(s) {unknown}; allowed: {sorted(allowed)}"
        )
    doc["distribution"] = Distribution(doc.get("distribution", "geometric"))
    if doc.get("patch") is not None:
        doc["patch"] = Region(**doc["patch"])
    events = []
    for d in doc.get("events", ()):
        d = dict(d)
        kind = d.pop("kind")
        if kind not in ("inject", "remove"):
            raise ValueError(f"unknown event kind {kind!r}")
        d["region"] = Region(**d["region"])
        events.append(InjectionEvent(**d) if kind == "inject" else RemovalEvent(**d))
    doc["events"] = tuple(events)
    for key in ("k_choices", "m_choices"):
        if doc.get(key) is not None:
            doc[key] = tuple(doc[key])
    return PICSpec(**doc)


def validated_even_cells(cells: int) -> int:
    """Round ``cells`` up to the next even number (helper for workload gen)."""
    return cells if cells % 2 == 0 else cells + 1


def paper_grid_for_cores(cells_per_core: int, cores: int) -> int:
    """Choose an even per-side cell count with ~``cells_per_core * cores`` cells."""
    side = int(math.sqrt(cells_per_core * cores))
    return validated_even_cells(max(2, side))
