"""Particle storage and charge assignment for the PIC PRK.

Particles are stored in structure-of-arrays form (:class:`ParticleArray`) so
the force/integration kernel can be fully vectorized.  Besides the dynamic
state (position, velocity, charge) each particle carries the metadata the
self-verification of §III-D needs:

``pid``
    Unique id in ``1..n`` (checksum ``n (n+1) / 2`` detects lost/duplicated
    particles after communication).
``x0, y0``
    Initial position.
``kdisp``
    Signed horizontal displacement per step in *cells*: ``sign * (2k+1)``,
    where the sign is the direction the particle drifts (decided by the
    column parity of its birth cell, §III-E1).
``mdisp``
    Vertical displacement per step in cells (the ``m`` of Eq. 4).
``birth``
    Step index at which the particle entered the simulation (0 for initial
    particles, ``t'`` for injected ones), so Eqs. 5-6 can be evaluated with
    the correct participation count.

For communication, particles are packed into a flat ``(n, 11)`` float64
buffer (:func:`ParticleArray.pack` / :func:`ParticleArray.from_packed`);
integer fields round-trip exactly for any realistic problem size (ids below
2**53).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import PARTICLE_RECORD_FIELDS
from repro.core.mesh import Mesh

_FIELDS = ("x", "y", "vx", "vy", "q", "pid", "x0", "y0", "kdisp", "mdisp", "birth")
assert len(_FIELDS) == PARTICLE_RECORD_FIELDS


@dataclass
class ParticleArray:
    """Structure-of-arrays particle container.

    All arrays share the same length.  Mutating methods operate in place
    where possible; selection methods return new containers holding copies
    (so the originals can be compacted independently).
    """

    x: np.ndarray
    y: np.ndarray
    vx: np.ndarray
    vy: np.ndarray
    q: np.ndarray
    pid: np.ndarray
    x0: np.ndarray
    y0: np.ndarray
    kdisp: np.ndarray
    mdisp: np.ndarray
    birth: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.x)
        for name in _FIELDS:
            arr = getattr(self, name)
            if len(arr) != n:
                raise ValueError(
                    f"field {name!r} has length {len(arr)}, expected {n}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, arrays: list[np.ndarray]) -> "ParticleArray":
        """Fast constructor for internal hot paths.

        Bypasses the dataclass __init__ (and its per-field length check):
        callers guarantee ``arrays`` holds the 11 fields in ``_FIELDS``
        order with equal lengths and correct dtypes.
        """
        self = object.__new__(cls)
        d = self.__dict__
        for name, arr in zip(_FIELDS, arrays):
            d[name] = arr
        return self

    @classmethod
    def empty(cls, n: int = 0) -> "ParticleArray":
        """An all-zeros container with ``n`` slots."""
        return cls._raw(
            [np.zeros(n, dtype=np.float64) for _ in range(5)]
            + [np.zeros(n, dtype=np.int64)]
            + [np.zeros(n, dtype=np.float64) for _ in range(2)]
            + [np.zeros(n, dtype=np.int64) for _ in range(3)]
        )

    @classmethod
    def concatenate(cls, parts: list["ParticleArray"]) -> "ParticleArray":
        """Concatenate several containers into a new one."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return cls.empty(0)
        if len(parts) == 1:
            return parts[0].copy()
        return cls._raw(
            [
                np.concatenate([getattr(p, name) for p in parts])
                for name in _FIELDS
            ]
        )

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.x)

    def copy(self) -> "ParticleArray":
        return ParticleArray._raw([getattr(self, name).copy() for name in _FIELDS])

    def select(self, mask_or_index) -> "ParticleArray":
        """Return a new container holding the selected particles (copies)."""
        return ParticleArray._raw(
            [
                np.ascontiguousarray(getattr(self, name)[mask_or_index])
                for name in _FIELDS
            ]
        )

    def append(self, other: "ParticleArray") -> "ParticleArray":
        """Return the concatenation of ``self`` and ``other``."""
        return ParticleArray.concatenate([self, other])

    # ------------------------------------------------------------------
    # Communication packing
    # ------------------------------------------------------------------
    def pack(self, mask_or_index=None) -> np.ndarray:
        """Pack (a subset of) the particles into a flat float64 buffer.

        The result has shape ``(n_selected, 11)`` and can be transmitted as a
        contiguous byte buffer, mirroring how the MPI implementations of the
        paper ship particle structs.
        """
        if mask_or_index is None:
            cols = [getattr(self, name) for name in _FIELDS]
            n = len(self)
        else:
            cols = [getattr(self, name)[mask_or_index] for name in _FIELDS]
            n = len(cols[0])
        out = np.empty((n, PARTICLE_RECORD_FIELDS), dtype=np.float64)
        for j, col in enumerate(cols):
            out[:, j] = col
        return out

    @classmethod
    def from_packed(cls, buf: np.ndarray) -> "ParticleArray":
        """Inverse of :meth:`pack`."""
        buf = np.asarray(buf, dtype=np.float64)
        if buf.size == 0:
            return cls.empty(0)
        if buf.ndim != 2 or buf.shape[1] != PARTICLE_RECORD_FIELDS:
            raise ValueError(
                f"packed particle buffer must be (n, {PARTICLE_RECORD_FIELDS}), "
                f"got shape {buf.shape}"
            )
        arrays = []
        for j, name in enumerate(_FIELDS):
            col = np.ascontiguousarray(buf[:, j])
            if name in ("pid", "kdisp", "mdisp", "birth"):
                col = col.astype(np.int64)
            arrays.append(col)
        return cls._raw(arrays)

    @property
    def nbytes(self) -> int:
        """Total payload bytes (used by the communication cost model)."""
        return len(self) * PARTICLE_RECORD_FIELDS * 8

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def cell_columns(self, mesh: Mesh) -> np.ndarray:
        """Cell column index of each particle."""
        return mesh.cell_of(self.x)

    def cell_rows(self, mesh: Mesh) -> np.ndarray:
        """Cell row index of each particle."""
        return mesh.cell_of(self.y)

    def id_checksum(self) -> int:
        """Sum of particle ids (int); compared against the analytic total."""
        return int(np.sum(self.pid, dtype=np.int64))


# ----------------------------------------------------------------------
# Charge assignment (Eq. 3)
# ----------------------------------------------------------------------
def charge_magnitude(mesh: Mesh, dt: float, rel_x: float = 0.5) -> float:
    """Base particle charge magnitude ``q_pi`` of Eq. 3.

    For a particle at relative abscissa ``rel_x * h`` on the horizontal axis
    of symmetry of a cell, Eq. 3 chooses ``q_pi`` so the particle crosses
    exactly one cell per step when starting from rest:

    ``q_pi = h / (dt^2 * q * (cos(theta)/d1^2 + cos(phi)/d2^2))``

    with ``d1 = sqrt(h^2/4 + x^2)``, ``d2 = sqrt(h^2/4 + (h-x)^2)``,
    ``cos(theta) = x/d1`` and ``cos(phi) = (h-x)/d2`` where ``x = rel_x * h``.
    """
    h = mesh.h
    if not 0.0 < rel_x < 1.0:
        raise ValueError("rel_x must lie strictly inside the cell")
    x = rel_x * h
    d1 = np.sqrt(h * h / 4.0 + x * x)
    d2 = np.sqrt(h * h / 4.0 + (h - x) * (h - x))
    cos_theta = x / d1
    cos_phi = (h - x) / d2
    denom = dt * dt * mesh.q * (cos_theta / (d1 * d1) + cos_phi / (d2 * d2))
    return float(h / denom)


def assign_charges(
    mesh: Mesh,
    dt: float,
    cell_col: np.ndarray,
    k,
    rel_x: float = 0.5,
) -> np.ndarray:
    """Vectorized particle charge assignment (§III-E1).

    Particles born in an even cell column receive ``+(2k+1) q_pi``, those in
    an odd column ``-(2k+1) q_pi``.  With the alternating mesh pattern this
    makes *every* particle drift in the positive x direction at ``2k+1``
    cells per step, which is what the closed-form verification of Eq. 5
    assumes.  ``k`` may be a scalar or a per-particle integer array.
    """
    q_pi = charge_magnitude(mesh, dt, rel_x)
    sign = mesh.column_sign(cell_col)
    k = np.asarray(k)
    return sign * (2 * k + 1) * q_pi
