"""Particle storage and charge assignment for the PIC PRK.

Particles are stored in structure-of-arrays form (:class:`ParticleArray`) so
the force/integration kernel can be fully vectorized.  Besides the dynamic
state (position, velocity, charge) each particle carries the metadata the
self-verification of §III-D needs:

``pid``
    Unique id in ``1..n`` (checksum ``n (n+1) / 2`` detects lost/duplicated
    particles after communication).
``x0, y0``
    Initial position.
``kdisp``
    Signed horizontal displacement per step in *cells*: ``sign * (2k+1)``,
    where the sign is the direction the particle drifts (decided by the
    column parity of its birth cell, §III-E1).
``mdisp``
    Vertical displacement per step in cells (the ``m`` of Eq. 4).
``birth``
    Step index at which the particle entered the simulation (0 for initial
    particles, ``t'`` for injected ones), so Eqs. 5-6 can be evaluated with
    the correct participation count.

For communication, particles are packed into a flat ``(n, 11)`` float64
buffer (:func:`ParticleArray.pack` / :func:`ParticleArray.from_packed`);
integer fields round-trip exactly for any realistic problem size (ids below
2**53).

Storage model (capacity-managed)
--------------------------------
Each field attribute is a length-``n`` *view* into a backing array whose
capacity may exceed ``n``.  The in-place mutators — :meth:`compact`,
:meth:`extend`, :meth:`extend_packed` — resize the views without
reallocating the backing store (growing it with amortized doubling only
when capacity is exhausted), so a steady-state simulation loop performs no
per-step full-population allocations.  The copy-based API
(:meth:`select` / :meth:`append` / :meth:`pack`) is retained; the in-place
methods are element-for-element equivalent to it (see
tests/core/test_particles_pooled.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import PARTICLE_RECORD_FIELDS
from repro.core.mesh import Mesh

_FIELDS = ("x", "y", "vx", "vy", "q", "pid", "x0", "y0", "kdisp", "mdisp", "birth")
assert len(_FIELDS) == PARTICLE_RECORD_FIELDS

#: Fields stored as int64 (round-tripped through float64 on the wire).
INT_FIELDS = frozenset({"pid", "kdisp", "mdisp", "birth"})
#: Minimum backing capacity allocated when an empty container first grows.
_MIN_GROW = 16


@dataclass
class ParticleArray:
    """Structure-of-arrays particle container.

    All arrays share the same length.  Mutating methods operate in place
    where possible; selection methods return new containers holding copies
    (so the originals can be compacted independently).

    The field attributes are views of the logical length ``n`` into backing
    arrays of capacity ``>= n`` (see module docstring).  In-place arithmetic
    on the fields (``p.x += ...``) works as usual; code that needs to grow or
    shrink the container must go through :meth:`extend` /
    :meth:`extend_packed` / :meth:`compact` so the views stay consistent.
    """

    x: np.ndarray
    y: np.ndarray
    vx: np.ndarray
    vy: np.ndarray
    q: np.ndarray
    pid: np.ndarray
    x0: np.ndarray
    y0: np.ndarray
    kdisp: np.ndarray
    mdisp: np.ndarray
    birth: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.x)
        for name in _FIELDS:
            arr = getattr(self, name)
            if len(arr) != n:
                raise ValueError(
                    f"field {name!r} has length {len(arr)}, expected {n}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, arrays: list[np.ndarray]) -> "ParticleArray":
        """Fast constructor for internal hot paths.

        Bypasses the dataclass __init__ (and its per-field length check):
        callers guarantee ``arrays`` holds the 11 fields in ``_FIELDS``
        order with equal lengths and correct dtypes.
        """
        self = object.__new__(cls)
        d = self.__dict__
        for name, arr in zip(_FIELDS, arrays):
            d[name] = arr
        return self

    @classmethod
    def empty(cls, n: int = 0) -> "ParticleArray":
        """An all-zeros container with ``n`` slots."""
        return cls._raw(
            [np.zeros(n, dtype=np.float64) for _ in range(5)]
            + [np.zeros(n, dtype=np.int64)]
            + [np.zeros(n, dtype=np.float64) for _ in range(2)]
            + [np.zeros(n, dtype=np.int64) for _ in range(3)]
        )

    @classmethod
    def concatenate(
        cls, parts: list["ParticleArray"], *, copy: bool = True
    ) -> "ParticleArray":
        """Concatenate several containers into a new one.

        With ``copy=False`` a single surviving input is returned *as is*
        (no defensive copy) — the fast path for callers that immediately
        discard their inputs, e.g. the particle exchange.
        """
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return cls.empty(0)
        if len(parts) == 1:
            return parts[0] if not copy else parts[0].copy()
        return cls._raw(
            [
                np.concatenate([getattr(p, name) for p in parts])
                for name in _FIELDS
            ]
        )

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.x)

    def copy(self) -> "ParticleArray":
        return ParticleArray._raw([getattr(self, name).copy() for name in _FIELDS])

    def select(self, mask_or_index) -> "ParticleArray":
        """Return a new container holding the selected particles (copies)."""
        return ParticleArray._raw(
            [
                np.ascontiguousarray(getattr(self, name)[mask_or_index])
                for name in _FIELDS
            ]
        )

    def append(self, other: "ParticleArray") -> "ParticleArray":
        """Return the concatenation of ``self`` and ``other``."""
        return ParticleArray.concatenate([self, other])

    # ------------------------------------------------------------------
    # Capacity-managed in-place mutation
    # ------------------------------------------------------------------
    def _backing(self) -> list[np.ndarray]:
        """The backing arrays (field views are prefixes of these).

        Lazily initialized: a container built from plain arrays starts with
        capacity == length, and only acquires headroom on first growth.
        """
        store = self.__dict__.get("_store")
        if store is None:
            store = [getattr(self, name) for name in _FIELDS]
            self.__dict__["_store"] = store
        return store

    @property
    def capacity(self) -> int:
        """Current backing capacity (slots available without reallocating)."""
        return len(self._backing()[0])

    @property
    def generation(self) -> int:
        """Backing-store generation counter.

        Bumped every time the backing arrays are *replaced* — capacity
        growth in :meth:`reserve` or a :meth:`rebase_backing` — i.e.
        whenever the field base pointers may have moved.  ``(container
        identity, generation)`` is therefore a complete, O(1) validity
        key for caches that hold pointers into the backing stores, such
        as the process executor's dispatch plan: the in-place mutators
        (:meth:`compact` / :meth:`extend` / :meth:`extend_packed`)
        re-slice the field views every call but leave the generation
        alone unless they had to grow.
        """
        return self.__dict__.get("_gen", 0)

    def _set_length(self, n: int) -> None:
        """Point every field view at ``backing[:n]``."""
        d = self.__dict__
        for name, arr in zip(_FIELDS, self._backing()):
            d[name] = arr[:n]

    def reserve(self, n_needed: int) -> None:
        """Grow the backing store to hold at least ``n_needed`` particles.

        Amortized doubling: each reallocation at least doubles capacity, so a
        sequence of ``extend`` calls costs O(total) copies overall.  Logical
        content and length are unchanged.
        """
        store = self._backing()
        cap = len(store[0])
        if cap >= n_needed:
            return
        new_cap = max(n_needed, 2 * cap, _MIN_GROW)
        n = len(self)
        d = self.__dict__
        d["_gen"] = d.get("_gen", 0) + 1
        alloc = d.get("_allocator")
        for i, name in enumerate(_FIELDS):
            if alloc is None:
                grown = np.empty(new_cap, dtype=store[i].dtype)
            else:
                grown = alloc(new_cap, store[i].dtype)
            grown[:n] = d[name]
            store[i] = grown
            d[name] = grown[:n]

    def rebase_backing(self, alloc) -> None:
        """Move the backing store into allocator-provided memory.

        ``alloc(capacity, dtype)`` must return a writable 1-D array of that
        capacity — e.g. :meth:`repro.runtime.executor.ShmArena.alloc`, which
        hands out ``multiprocessing.shared_memory`` views so worker
        processes can operate on the fields zero-copy.  Current contents
        are copied once; the allocator is remembered, so later
        :meth:`reserve` growth stays inside allocator memory and the
        container never silently migrates back to private pages.
        """
        store = self._backing()
        cap = len(store[0])
        n = len(self)
        d = self.__dict__
        d["_allocator"] = alloc
        d["_gen"] = d.get("_gen", 0) + 1
        for i, name in enumerate(_FIELDS):
            moved = alloc(cap, store[i].dtype)
            moved[:n] = d[name]
            store[i] = moved
            d[name] = moved[:n]

    def compact(self, keep) -> None:
        """Keep only the particles selected by boolean mask ``keep``, in place.

        A stable partition: survivors retain their relative order, matching
        ``select(keep)``.  The backing store is not reallocated; when every
        particle survives this is a no-op (no copies, no allocations).
        """
        n = len(self)
        k = int(np.count_nonzero(keep))
        if k == n:
            return
        store = self._backing()
        d = self.__dict__
        for i, name in enumerate(_FIELDS):
            # RHS fancy indexing materializes the survivors first, so the
            # overlapping in-place assignment is safe.
            store[i][:k] = d[name][keep]
            d[name] = store[i][:k]

    def extend(self, other: "ParticleArray") -> None:
        """Append ``other``'s particles in place (equivalent to ``append``)."""
        m = len(other)
        if m == 0:
            return
        n = len(self)
        self.reserve(n + m)
        store = self._backing()
        d = self.__dict__
        for i, name in enumerate(_FIELDS):
            store[i][n : n + m] = getattr(other, name)
            d[name] = store[i][: n + m]

    def extend_packed(self, buf: np.ndarray) -> None:
        """Append particles from a packed ``(m, 11)`` wire buffer, in place.

        Equivalent to ``append(from_packed(buf))`` — the int64 fields are
        recovered by the same float64 -> int64 cast — but copies each column
        exactly once, straight into the backing store.
        """
        buf = np.asarray(buf)
        m = buf.shape[0]
        if m == 0:
            return
        if buf.ndim != 2 or buf.shape[1] != PARTICLE_RECORD_FIELDS:
            raise ValueError(
                f"packed particle buffer must be (n, {PARTICLE_RECORD_FIELDS}), "
                f"got shape {buf.shape}"
            )
        n = len(self)
        self.reserve(n + m)
        store = self._backing()
        d = self.__dict__
        for i, name in enumerate(_FIELDS):
            # Assignment casts float64 -> int64 the same way .astype does.
            store[i][n : n + m] = buf[:, i]
            d[name] = store[i][: n + m]

    def pack_into(self, mask_or_index, out: np.ndarray) -> np.ndarray:
        """Pack the selected particles into a caller-owned wire buffer.

        ``out`` must be a float64 array of shape ``(cap, 11)`` with
        ``cap >= n_selected``; the filled prefix ``out[:n_selected]`` is
        returned (a view).  Element-for-element equivalent to :meth:`pack`,
        but reuses the destination instead of allocating it.
        """
        d = self.__dict__
        k = None
        for j, name in enumerate(_FIELDS):
            col = d[name][mask_or_index]
            if k is None:
                k = len(col)
                if out.shape[0] < k or out.shape[1] != PARTICLE_RECORD_FIELDS:
                    raise ValueError(
                        f"wire buffer {out.shape} too small for {k} particles"
                    )
            out[:k, j] = col
        return out[: k or 0]

    # ------------------------------------------------------------------
    # Communication packing
    # ------------------------------------------------------------------
    def pack(self, mask_or_index=None) -> np.ndarray:
        """Pack (a subset of) the particles into a flat float64 buffer.

        The result has shape ``(n_selected, 11)`` and can be transmitted as a
        contiguous byte buffer, mirroring how the MPI implementations of the
        paper ship particle structs.
        """
        if mask_or_index is None:
            cols = [getattr(self, name) for name in _FIELDS]
            n = len(self)
        else:
            cols = [getattr(self, name)[mask_or_index] for name in _FIELDS]
            n = len(cols[0])
        out = np.empty((n, PARTICLE_RECORD_FIELDS), dtype=np.float64)
        for j, col in enumerate(cols):
            out[:, j] = col
        return out

    @classmethod
    def from_packed(cls, buf: np.ndarray) -> "ParticleArray":
        """Inverse of :meth:`pack`."""
        buf = np.asarray(buf, dtype=np.float64)
        if buf.size == 0:
            return cls.empty(0)
        if buf.ndim != 2 or buf.shape[1] != PARTICLE_RECORD_FIELDS:
            raise ValueError(
                f"packed particle buffer must be (n, {PARTICLE_RECORD_FIELDS}), "
                f"got shape {buf.shape}"
            )
        arrays = []
        for j, name in enumerate(_FIELDS):
            col = np.ascontiguousarray(buf[:, j])
            if name in ("pid", "kdisp", "mdisp", "birth"):
                col = col.astype(np.int64)
            arrays.append(col)
        return cls._raw(arrays)

    @property
    def nbytes(self) -> int:
        """Total payload bytes (used by the communication cost model)."""
        return len(self) * PARTICLE_RECORD_FIELDS * 8

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def cell_columns(self, mesh: Mesh) -> np.ndarray:
        """Cell column index of each particle."""
        return mesh.cell_of(self.x)

    def cell_rows(self, mesh: Mesh) -> np.ndarray:
        """Cell row index of each particle."""
        return mesh.cell_of(self.y)

    def id_checksum(self) -> int:
        """Sum of particle ids (int); compared against the analytic total."""
        return int(np.sum(self.pid, dtype=np.int64))


# ----------------------------------------------------------------------
# Charge assignment (Eq. 3)
# ----------------------------------------------------------------------
def charge_magnitude(mesh: Mesh, dt: float, rel_x: float = 0.5) -> float:
    """Base particle charge magnitude ``q_pi`` of Eq. 3.

    For a particle at relative abscissa ``rel_x * h`` on the horizontal axis
    of symmetry of a cell, Eq. 3 chooses ``q_pi`` so the particle crosses
    exactly one cell per step when starting from rest:

    ``q_pi = h / (dt^2 * q * (cos(theta)/d1^2 + cos(phi)/d2^2))``

    with ``d1 = sqrt(h^2/4 + x^2)``, ``d2 = sqrt(h^2/4 + (h-x)^2)``,
    ``cos(theta) = x/d1`` and ``cos(phi) = (h-x)/d2`` where ``x = rel_x * h``.
    """
    h = mesh.h
    if not 0.0 < rel_x < 1.0:
        raise ValueError("rel_x must lie strictly inside the cell")
    x = rel_x * h
    d1 = np.sqrt(h * h / 4.0 + x * x)
    d2 = np.sqrt(h * h / 4.0 + (h - x) * (h - x))
    cos_theta = x / d1
    cos_phi = (h - x) / d2
    denom = dt * dt * mesh.q * (cos_theta / (d1 * d1) + cos_phi / (d2 * d2))
    return float(h / denom)


def assign_charges(
    mesh: Mesh,
    dt: float,
    cell_col: np.ndarray,
    k,
    rel_x: float = 0.5,
) -> np.ndarray:
    """Vectorized particle charge assignment (§III-E1).

    Particles born in an even cell column receive ``+(2k+1) q_pi``, those in
    an odd column ``-(2k+1) q_pi``.  With the alternating mesh pattern this
    makes *every* particle drift in the positive x direction at ``2k+1``
    cells per step, which is what the closed-form verification of Eq. 5
    assumes.  ``k`` may be a scalar or a per-particle integer array.
    """
    q_pi = charge_magnitude(mesh, dt, rel_x)
    sign = mesh.column_sign(cell_col)
    k = np.asarray(k)
    return sign * (2 * k + 1) * q_pi
