"""Core PIC PRK: specification, kernel, initialization, verification.

This subpackage is the paper's primary contribution — the paper-and-pencil
specification of §III turned into executable, vectorized Python.
"""

from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray, assign_charges, charge_magnitude
from repro.core.kernel import advance, compute_acceleration
from repro.core.initialization import initialize, integer_counts, column_weights
from repro.core.simulation import SerialSimulation, SerialResult, run_serial
from repro.core.spec import (
    Distribution,
    InjectionEvent,
    PICSpec,
    Region,
    RemovalEvent,
)
from repro.core.verification import (
    VerificationResult,
    expected_checksum,
    expected_final_positions,
    initial_checksum,
    verify,
)

__all__ = [
    "Mesh",
    "ParticleArray",
    "assign_charges",
    "charge_magnitude",
    "advance",
    "compute_acceleration",
    "initialize",
    "integer_counts",
    "column_weights",
    "SerialSimulation",
    "SerialResult",
    "run_serial",
    "Distribution",
    "InjectionEvent",
    "PICSpec",
    "Region",
    "RemovalEvent",
    "VerificationResult",
    "expected_checksum",
    "expected_final_positions",
    "initial_checksum",
    "verify",
]
