"""Compiled (numba) backend for the fused particle-push hot loop.

:func:`repro.core.kernel.advance_arrays` is the repo's hottest code: a
blocked numpy implementation that tops out around 15-16M pushes/sec per
core because every step still pays ~50 ufunc dispatches per block.  This
module provides a drop-in compiled implementation of the same loop — one
``numba.njit`` function, ``cache=True`` so the JIT cost is paid once per
machine, ``fastmath`` **off** so no algebraic rewrites are licensed — that
is *bitwise identical* to the numpy path.

Why bitwise identity holds (and is enforced, not assumed — see
``tests/core/backend_conformance.py`` and
``tests/core/test_kernel_backend_properties.py``):

* Without ``fastmath``, numba emits no LLVM fast-math/contract flags, so
  ``rx*rx + ry*ry`` cannot be contracted into an FMA; every ``+ - * /``
  is an individually rounded IEEE-754 double op, exactly like numpy's.
* The scalar loop reproduces the reference *operation order*: pairwise
  corner accumulation ``(f00 + f01) + (f10 + f11)`` (which preserves the
  §III-D exact vertical-force cancellation at ``ry == h/2``), the
  left-associated integrator ``x + (vx*dt + ax*half_dt2)``, and
  ``half_dt2 = 0.5*dt*dt`` evaluated left to right.
* ``math.sqrt``/``np.sqrt`` and ``np.floor`` lower to ``llvm.sqrt`` /
  ``llvm.floor`` — correctly rounded / exact, same results as numpy.
* numba's float ``%`` implements Python modulo semantics (fmod plus sign
  adjustment), which matches ``np.mod`` bit-for-bit, including the
  ``+0.0`` result on an exact-zero remainder; and ``np.mod(v, L) == v``
  for ``0 <= v < L``, so the conditional wrap below agrees with the
  reference's unconditional ``np.mod``.

Everything here degrades gracefully when numba is absent (it is an
optional dependency, installed via the ``repro[compiled]`` extra):
``HAVE_NUMBA`` is False, requesting ``kernel_backend=compiled`` raises
:class:`CompiledKernelUnavailable` naming the extra, and ``auto`` falls
back to the python backend with a single logged notice.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.core.mesh import Mesh

__all__ = [
    "KERNEL_BACKENDS",
    "DEFAULT_KERNEL_BACKEND",
    "COMPILED_EXTRA",
    "HAVE_NUMBA",
    "CompiledKernelUnavailable",
    "resolve_backend",
    "advance_arrays_compiled",
    "advance_compiled",
    "warmup",
]

#: The values ``RunSpec.executor.kernel_backend`` / ``--kernel-backend`` /
#: ``REPRO_KERNEL_BACKEND`` may take.  ``auto`` resolves to ``compiled``
#: when numba is importable and ``python`` otherwise.
KERNEL_BACKENDS = ("python", "compiled", "auto")

DEFAULT_KERNEL_BACKEND = "auto"

#: pip-install target that provides the compiled backend.
COMPILED_EXTRA = "repro[compiled]"

logger = logging.getLogger(__name__)

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the numba-less path is the tested one
    numba = None
    HAVE_NUMBA = False


class CompiledKernelUnavailable(RuntimeError):
    """``kernel_backend=compiled`` was requested but numba is not installed.

    Deliberately *not* a :class:`repro.config.ConfigError` subclass — the
    core package must stay importable without the config layer — but the
    CLI catches it alongside ConfigError for a clean exit-2 diagnostic.
    """

    def __init__(self, detail: str = "") -> None:
        msg = (
            "kernel_backend='compiled' requires numba, which is not "
            f"installed; pip install '{COMPILED_EXTRA}' to get it, or use "
            "kernel_backend='auto' to fall back to the python kernel"
        )
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


_FALLBACK_LOGGED = False


def resolve_backend(name: str | None) -> str:
    """Resolve a backend request to a concrete backend: python or compiled.

    ``auto`` (and None) picks ``compiled`` when numba is importable and
    otherwise falls back to ``python``, logging the fallback once per
    process.  An explicit ``compiled`` without numba raises
    :class:`CompiledKernelUnavailable` — asking for something that cannot
    run must be loud, only *auto* may degrade silently.
    """
    global _FALLBACK_LOGGED
    if name is None:
        name = DEFAULT_KERNEL_BACKEND
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(choose from {', '.join(KERNEL_BACKENDS)})"
        )
    if name == "python":
        return "python"
    if name == "compiled":
        if not HAVE_NUMBA:
            raise CompiledKernelUnavailable()
        return "compiled"
    # auto
    if HAVE_NUMBA:
        return "compiled"
    if not _FALLBACK_LOGGED:
        logger.info(
            "kernel_backend=auto: numba not installed, using the python "
            "kernel (pip install '%s' for the compiled backend)",
            COMPILED_EXTRA,
        )
        _FALLBACK_LOGGED = True
    return "python"


if HAVE_NUMBA:  # pragma: no cover - requires the [compiled] extra

    @numba.njit(cache=True, fastmath=False, nogil=True)
    def _advance_numba(x, y, vx, vy, q, dt, h, mesh_q, L):
        # Scalar transliteration of kernel._advance_block /
        # kernel.advance_reference.  Operation ORDER is load-bearing:
        # every grouping below mirrors the numpy reference so each
        # intermediate rounds identically (module docstring has the full
        # bitwise argument).
        half_dt2 = 0.5 * dt * dt
        for i in range(x.shape[0]):
            xi = x[i]
            yi = y[i]
            cx = np.floor(xi / h)
            cy = np.floor(yi / h)
            rx = xi - cx * h
            ry = yi - cy * h
            # Charge parity: even columns attract left, odd repel.
            if (int(cx) & 1) == 0:
                ql = q[i] * mesh_q
            else:
                ql = q[i] * (-mesh_q)
            qr = -ql
            rxm = rx - h
            rym = ry - h
            r2 = rx * rx + ry * ry
            f = ql / (r2 * np.sqrt(r2))
            f00x = f * rx
            f00y = f * ry
            r2 = rx * rx + rym * rym
            f = ql / (r2 * np.sqrt(r2))
            f01x = f * rx
            f01y = f * rym
            r2 = rxm * rxm + ry * ry
            f = qr / (r2 * np.sqrt(r2))
            f10x = f * rxm
            f10y = f * ry
            r2 = rxm * rxm + rym * rym
            f = qr / (r2 * np.sqrt(r2))
            f11x = f * rxm
            f11y = f * rym
            ax = (f00x + f01x) + (f10x + f11x)
            ay = (f00y + f01y) + (f10y + f11y)
            xi = xi + (vx[i] * dt + ax * half_dt2)
            yi = yi + (vy[i] * dt + ay * half_dt2)
            vx[i] = vx[i] + ax * dt
            vy[i] = vy[i] + ay * dt
            if xi < 0.0 or xi >= L:
                xi = xi % L
            if yi < 0.0 or yi >= L:
                yi = yi % L
            x[i] = xi
            y[i] = yi


def advance_arrays_compiled(mesh, x, y, vx, vy, q, dt, workspace=None):
    """Compiled drop-in for :func:`repro.core.kernel.advance_arrays`.

    Same signature (``workspace`` is accepted and ignored — the compiled
    loop needs no scratch rows), same in-place semantics, bitwise-equal
    results.  Raises :class:`CompiledKernelUnavailable` without numba.
    """
    if not HAVE_NUMBA:
        raise CompiledKernelUnavailable("advance_arrays_compiled called")
    if x.shape[0] == 0:
        return
    _advance_numba(
        x, y, vx, vy, q,
        float(dt), float(mesh.h), float(mesh.q), float(mesh.L),
    )


def advance_compiled(mesh, particles, dt, workspace=None):
    """Compiled drop-in for :func:`repro.core.kernel.advance`."""
    advance_arrays_compiled(
        mesh, particles.x, particles.y, particles.vx, particles.vy,
        particles.q, dt, workspace,
    )


def warmup(backend: str, n: int = 256) -> float:
    """Force JIT compilation of the hot loop; returns the wall seconds spent.

    Worker processes call this before their ready handshake so the (first
    ever per machine, thanks to ``cache=True``) compilation latency lands
    in ``jit_warmup_s`` / ``pool_startup_s`` — never inside a timed step.
    For the python backend this is a no-op returning 0.0.
    """
    if backend != "compiled":
        return 0.0
    t0 = time.perf_counter()
    mesh = Mesh(cells=4)
    rng = np.random.default_rng(0)
    x = rng.uniform(0.1, mesh.L - 0.1, n)
    y = rng.uniform(0.1, mesh.L - 0.1, n)
    vx = np.zeros(n)
    vy = np.zeros(n)
    q = np.ones(n)
    advance_arrays_compiled(mesh, x, y, vx, vy, q, 1e-3)
    return time.perf_counter() - t0
