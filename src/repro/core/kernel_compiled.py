"""Compiled (numba) backend for the fused particle-push hot loop.

:func:`repro.core.kernel.advance_arrays` is the repo's hottest code: a
blocked numpy implementation that tops out around 15-16M pushes/sec per
core because every step still pays ~50 ufunc dispatches per block.  This
module provides a drop-in compiled implementation of the same loop — one
``numba.njit`` function, ``cache=True`` so the JIT cost is paid once per
machine, ``fastmath`` **off** so no algebraic rewrites are licensed — that
is *bitwise identical* to the numpy path.

Why bitwise identity holds (and is enforced, not assumed — see
``tests/core/backend_conformance.py`` and
``tests/core/test_kernel_backend_properties.py``):

* Without ``fastmath``, numba emits no LLVM fast-math/contract flags, so
  ``rx*rx + ry*ry`` cannot be contracted into an FMA; every ``+ - * /``
  is an individually rounded IEEE-754 double op, exactly like numpy's.
* The scalar loop reproduces the reference *operation order*: pairwise
  corner accumulation ``(f00 + f01) + (f10 + f11)`` (which preserves the
  §III-D exact vertical-force cancellation at ``ry == h/2``), the
  left-associated integrator ``x + (vx*dt + ax*half_dt2)``, and
  ``half_dt2 = 0.5*dt*dt`` evaluated left to right.
* ``math.sqrt``/``np.sqrt`` and ``np.floor`` lower to ``llvm.sqrt`` /
  ``llvm.floor`` — correctly rounded / exact, same results as numpy.
* numba's float ``%`` implements Python modulo semantics (fmod plus sign
  adjustment), which matches ``np.mod`` bit-for-bit, including the
  ``+0.0`` result on an exact-zero remainder; and ``np.mod(v, L) == v``
  for ``0 <= v < L``, so the conditional wrap below agrees with the
  reference's unconditional ``np.mod``.

Everything here degrades gracefully when numba is absent (it is an
optional dependency, installed via the ``repro[compiled]`` extra):
``HAVE_NUMBA`` is False, requesting ``kernel_backend=compiled`` raises
:class:`CompiledKernelUnavailable` naming the extra, and ``auto`` falls
back to the python backend with a single logged notice.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.core.mesh import Mesh

__all__ = [
    "KERNEL_BACKENDS",
    "DEFAULT_KERNEL_BACKEND",
    "COMPILED_EXTRA",
    "HAVE_NUMBA",
    "PARALLEL_CHUNK",
    "CompiledKernelUnavailable",
    "resolve_backend",
    "advance_arrays_compiled",
    "advance_compiled",
    "advance_arrays_parallel",
    "advance_parallel",
    "warmup",
]

#: The values ``RunSpec.executor.kernel_backend`` / ``--kernel-backend`` /
#: ``REPRO_KERNEL_BACKEND`` may take.  ``auto`` resolves to ``compiled``
#: when numba is importable and ``python`` otherwise — never to
#: ``compiled-parallel``, which must be an explicit opt-in (its threads
#: would silently oversubscribe hosts already running process workers).
KERNEL_BACKENDS = ("python", "compiled", "compiled-parallel", "auto")

#: Fixed chunk width of the ``compiled-parallel`` prange loop.  Chunk
#: boundaries depend only on this constant and the array length — never on
#: the thread count — and the kernel is elementwise (no cross-particle
#: reduction), so the parallel backend is bitwise identical to the scalar
#: one on any host.
PARALLEL_CHUNK = 16384

DEFAULT_KERNEL_BACKEND = "auto"

#: pip-install target that provides the compiled backend.
COMPILED_EXTRA = "repro[compiled]"

logger = logging.getLogger(__name__)

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the numba-less path is the tested one
    numba = None
    HAVE_NUMBA = False


class CompiledKernelUnavailable(RuntimeError):
    """``kernel_backend=compiled`` was requested but numba is not installed.

    Deliberately *not* a :class:`repro.config.ConfigError` subclass — the
    core package must stay importable without the config layer — but the
    CLI catches it alongside ConfigError for a clean exit-2 diagnostic.
    """

    def __init__(self, detail: str = "", backend: str = "compiled") -> None:
        msg = (
            f"kernel_backend='{backend}' requires numba, which is not "
            f"installed; pip install '{COMPILED_EXTRA}' to get it, or use "
            "kernel_backend='auto' to fall back to the python kernel"
        )
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


_FALLBACK_LOGGED = False


def resolve_backend(name: str | None) -> str:
    """Resolve a backend request to a concrete backend.

    Concrete backends are ``python``, ``compiled`` and
    ``compiled-parallel``.  ``auto`` (and None) picks ``compiled`` when
    numba is importable and otherwise falls back to ``python``, logging
    the fallback once per process.  An explicit ``compiled`` or
    ``compiled-parallel`` without numba raises
    :class:`CompiledKernelUnavailable` — asking for something that cannot
    run must be loud, only *auto* may degrade silently.
    """
    global _FALLBACK_LOGGED
    if name is None:
        name = DEFAULT_KERNEL_BACKEND
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(choose from {', '.join(KERNEL_BACKENDS)})"
        )
    if name == "python":
        return "python"
    if name in ("compiled", "compiled-parallel"):
        if not HAVE_NUMBA:
            raise CompiledKernelUnavailable(backend=name)
        return name
    # auto
    if HAVE_NUMBA:
        return "compiled"
    if not _FALLBACK_LOGGED:
        logger.info(
            "kernel_backend=auto: numba not installed, using the python "
            "kernel (pip install '%s' for the compiled backend)",
            COMPILED_EXTRA,
        )
        _FALLBACK_LOGGED = True
    return "python"


if HAVE_NUMBA:  # pragma: no cover - requires the [compiled] extra

    @numba.njit(cache=True, fastmath=False, nogil=True)
    def _advance_numba(x, y, vx, vy, q, dt, h, mesh_q, L):
        # Scalar transliteration of kernel._advance_block /
        # kernel.advance_reference.  Operation ORDER is load-bearing:
        # every grouping below mirrors the numpy reference so each
        # intermediate rounds identically (module docstring has the full
        # bitwise argument).
        half_dt2 = 0.5 * dt * dt
        for i in range(x.shape[0]):
            xi = x[i]
            yi = y[i]
            cx = np.floor(xi / h)
            cy = np.floor(yi / h)
            rx = xi - cx * h
            ry = yi - cy * h
            # Charge parity: even columns attract left, odd repel.
            if (int(cx) & 1) == 0:
                ql = q[i] * mesh_q
            else:
                ql = q[i] * (-mesh_q)
            qr = -ql
            rxm = rx - h
            rym = ry - h
            r2 = rx * rx + ry * ry
            f = ql / (r2 * np.sqrt(r2))
            f00x = f * rx
            f00y = f * ry
            r2 = rx * rx + rym * rym
            f = ql / (r2 * np.sqrt(r2))
            f01x = f * rx
            f01y = f * rym
            r2 = rxm * rxm + ry * ry
            f = qr / (r2 * np.sqrt(r2))
            f10x = f * rxm
            f10y = f * ry
            r2 = rxm * rxm + rym * rym
            f = qr / (r2 * np.sqrt(r2))
            f11x = f * rxm
            f11y = f * rym
            ax = (f00x + f01x) + (f10x + f11x)
            ay = (f00y + f01y) + (f10y + f11y)
            xi = xi + (vx[i] * dt + ax * half_dt2)
            yi = yi + (vy[i] * dt + ay * half_dt2)
            vx[i] = vx[i] + ax * dt
            vy[i] = vy[i] + ay * dt
            if xi < 0.0 or xi >= L:
                xi = xi % L
            if yi < 0.0 or yi >= L:
                yi = yi % L
            x[i] = xi
            y[i] = yi

    @numba.njit(parallel=True, cache=True, fastmath=False, nogil=True)
    def _advance_numba_parallel(x, y, vx, vy, q, dt, h, mesh_q, L):
        # Same scalar body as _advance_numba, prange'd over fixed-width
        # index chunks.  The body is a verbatim copy rather than a shared
        # helper: the push is elementwise, so the only thing that could
        # break bitwise identity is the loop structure itself, and keeping
        # the scalar text literally identical makes that auditable by
        # diffing the two functions.  Chunk boundaries are a pure function
        # of (n, PARALLEL_CHUNK) — thread count never enters.
        half_dt2 = 0.5 * dt * dt
        n = x.shape[0]
        n_chunks = (n + PARALLEL_CHUNK - 1) // PARALLEL_CHUNK
        for c in numba.prange(n_chunks):
            lo = c * PARALLEL_CHUNK
            hi = min(lo + PARALLEL_CHUNK, n)
            for i in range(lo, hi):
                xi = x[i]
                yi = y[i]
                cx = np.floor(xi / h)
                cy = np.floor(yi / h)
                rx = xi - cx * h
                ry = yi - cy * h
                # Charge parity: even columns attract left, odd repel.
                if (int(cx) & 1) == 0:
                    ql = q[i] * mesh_q
                else:
                    ql = q[i] * (-mesh_q)
                qr = -ql
                rxm = rx - h
                rym = ry - h
                r2 = rx * rx + ry * ry
                f = ql / (r2 * np.sqrt(r2))
                f00x = f * rx
                f00y = f * ry
                r2 = rx * rx + rym * rym
                f = ql / (r2 * np.sqrt(r2))
                f01x = f * rx
                f01y = f * rym
                r2 = rxm * rxm + ry * ry
                f = qr / (r2 * np.sqrt(r2))
                f10x = f * rxm
                f10y = f * ry
                r2 = rxm * rxm + rym * rym
                f = qr / (r2 * np.sqrt(r2))
                f11x = f * rxm
                f11y = f * rym
                ax = (f00x + f01x) + (f10x + f11x)
                ay = (f00y + f01y) + (f10y + f11y)
                xi = xi + (vx[i] * dt + ax * half_dt2)
                yi = yi + (vy[i] * dt + ay * half_dt2)
                vx[i] = vx[i] + ax * dt
                vy[i] = vy[i] + ay * dt
                if xi < 0.0 or xi >= L:
                    xi = xi % L
                if yi < 0.0 or yi >= L:
                    yi = yi % L
                x[i] = xi
                y[i] = yi


def advance_arrays_compiled(mesh, x, y, vx, vy, q, dt, workspace=None):
    """Compiled drop-in for :func:`repro.core.kernel.advance_arrays`.

    Same signature (``workspace`` is accepted and ignored — the compiled
    loop needs no scratch rows), same in-place semantics, bitwise-equal
    results.  Raises :class:`CompiledKernelUnavailable` without numba.
    """
    if not HAVE_NUMBA:
        raise CompiledKernelUnavailable("advance_arrays_compiled called")
    if x.shape[0] == 0:
        return
    _advance_numba(
        x, y, vx, vy, q,
        float(dt), float(mesh.h), float(mesh.q), float(mesh.L),
    )


def advance_compiled(mesh, particles, dt, workspace=None):
    """Compiled drop-in for :func:`repro.core.kernel.advance`."""
    advance_arrays_compiled(
        mesh, particles.x, particles.y, particles.vx, particles.vy,
        particles.q, dt, workspace,
    )


def advance_arrays_parallel(mesh, x, y, vx, vy, q, dt, workspace=None):
    """Thread-parallel drop-in for :func:`repro.core.kernel.advance_arrays`.

    Same contract as :func:`advance_arrays_compiled`; the prange loop
    splits the particle index range into fixed :data:`PARALLEL_CHUNK`-wide
    chunks, so results are bitwise identical to the scalar backends
    regardless of the host's thread count.
    """
    if not HAVE_NUMBA:
        raise CompiledKernelUnavailable(
            "advance_arrays_parallel called", backend="compiled-parallel"
        )
    if x.shape[0] == 0:
        return
    _advance_numba_parallel(
        x, y, vx, vy, q,
        float(dt), float(mesh.h), float(mesh.q), float(mesh.L),
    )


def advance_parallel(mesh, particles, dt, workspace=None):
    """Thread-parallel drop-in for :func:`repro.core.kernel.advance`."""
    advance_arrays_parallel(
        mesh, particles.x, particles.y, particles.vx, particles.vy,
        particles.q, dt, workspace,
    )


def warmup(backend: str, n: int = 256) -> float:
    """Force JIT compilation of the hot loop; returns the wall seconds spent.

    Worker processes call this before their ready handshake so the (first
    ever per machine, thanks to ``cache=True``) compilation latency lands
    in ``jit_warmup_s`` / ``pool_startup_s`` — never inside a timed step.
    For the python backend this is a no-op returning 0.0.
    """
    if backend not in ("compiled", "compiled-parallel"):
        return 0.0
    t0 = time.perf_counter()
    mesh = Mesh(cells=4)
    rng = np.random.default_rng(0)
    x = rng.uniform(0.1, mesh.L - 0.1, n)
    y = rng.uniform(0.1, mesh.L - 0.1, n)
    vx = np.zeros(n)
    vy = np.zeros(n)
    q = np.ones(n)
    if backend == "compiled":
        advance_arrays_compiled(mesh, x, y, vx, vy, q, 1e-3)
    else:
        advance_arrays_parallel(mesh, x, y, vx, vy, q, 1e-3)
    return time.perf_counter() - t0
