"""Self-verification of the PIC PRK (paper §III-D).

Thanks to the constrained initialization (§III-C), every particle's final
position has a closed form:

    x_s = (x_0 + sign(a_x0) * (2k+1) * s * h)  mod L        (Eq. 5)
    y_s = (y_0 + m * h * s)                    mod L        (Eq. 6)

with ``s`` the number of time steps the particle participated in.  The charge
assignment of :func:`repro.core.particles.assign_charges` makes every
particle drift in the +x direction, and each particle stores its signed
per-step displacement ``kdisp`` (= ``sign * (2k+1)``) and ``mdisp`` (= ``m``)
explicitly, so the check is O(1) per particle and trivially parallel.

A second, integer-exact test guards against lost or duplicated particles:
the checksum of the unique particle ids must equal the analytically known
total (``n (n+1) / 2`` when no injection/removal happened, otherwise adjusted
by the event bookkeeping).  A single particle mis-communicated in a single
step fails the position test; a particle dropped during an exchange or
migration fails the checksum test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VERIFICATION_EPSILON
from repro.core.mesh import Mesh
from repro.core.particles import ParticleArray
from repro.core.spec import InjectionEvent, PICSpec, RemovalEvent


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of the §III-D verification."""

    positions_ok: bool
    checksum_ok: bool
    max_abs_error: float
    n_particles: int
    id_checksum: int
    expected_checksum: int

    @property
    def ok(self) -> bool:
        return self.positions_ok and self.checksum_ok

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.ok else "FAIL"
        return (
            f"verification {status}: n={self.n_particles}, "
            f"max|err|={self.max_abs_error:.3e}, "
            f"checksum={self.id_checksum} (expected {self.expected_checksum})"
        )


def expected_final_positions(
    mesh: Mesh, particles: ParticleArray, total_steps: int
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form final coordinates (Eqs. 5-6) for every particle.

    Each particle participated in ``total_steps - birth`` pushes.
    """
    s = (total_steps - particles.birth).astype(np.float64)
    if np.any(s < 0):
        raise ValueError("particle birth step exceeds total_steps")
    xs = np.mod(particles.x0 + particles.kdisp * s * mesh.h, mesh.L)
    ys = np.mod(particles.y0 + particles.mdisp * s * mesh.h, mesh.L)
    return xs, ys


def position_errors(
    mesh: Mesh, particles: ParticleArray, total_steps: int
) -> np.ndarray:
    """Periodic-aware absolute error of each particle vs the closed form."""
    xs, ys = expected_final_positions(mesh, particles, total_steps)
    ex = np.abs(particles.x - xs)
    ey = np.abs(particles.y - ys)
    # A particle sitting at coordinate ~0 may legitimately be reported at ~L.
    ex = np.minimum(ex, mesh.L - ex)
    ey = np.minimum(ey, mesh.L - ey)
    return np.maximum(ex, ey)


def initial_checksum(n_particles: int) -> int:
    """Checksum of ids ``1..n``: ``n (n+1) / 2``."""
    return n_particles * (n_particles + 1) // 2


def expected_checksum(spec: PICSpec, removed_ids_sum: int = 0) -> int:
    """Analytic id checksum after all of the spec's injections.

    Injection ids are contiguous blocks (see :mod:`repro.core.events`), so
    their contribution is closed-form.  Removals depend on which particles
    happened to sit in the removal region, so callers must supply the summed
    ids of removed particles (each driver accumulates this while applying
    events; parallel drivers reduce it globally).
    """
    total = initial_checksum(spec.n_particles)
    next_id = spec.n_particles + 1
    for ev in spec.events:
        if isinstance(ev, InjectionEvent):
            first, last = next_id, next_id + ev.count - 1
            total += (first + last) * ev.count // 2
            next_id += ev.count
        else:
            assert isinstance(ev, RemovalEvent)
    return total - removed_ids_sum


def verify(
    mesh: Mesh,
    particles: ParticleArray,
    total_steps: int,
    expected_ids: int,
    epsilon: float = VERIFICATION_EPSILON,
) -> VerificationResult:
    """Run the full §III-D verification on a (gathered) particle set."""
    if len(particles) == 0:
        max_err = 0.0
        positions_ok = True
    else:
        errors = position_errors(mesh, particles, total_steps)
        max_err = float(errors.max())
        positions_ok = bool(max_err <= epsilon)
    checksum = particles.id_checksum()
    return VerificationResult(
        positions_ok=positions_ok,
        checksum_ok=(checksum == expected_ids),
        max_abs_error=max_err,
        n_particles=len(particles),
        id_checksum=checksum,
        expected_checksum=expected_ids,
    )


def verify_distributed(
    mesh: Mesh,
    local_particles: ParticleArray,
    total_steps: int,
    expected_ids: int,
    *,
    global_max_error: float,
    global_count: int,
    global_id_sum: int,
    epsilon: float = VERIFICATION_EPSILON,
) -> VerificationResult:
    """Assemble a verification result from already-reduced global statistics.

    Parallel drivers compute the local maximum position error and local id
    sum, reduce them (MAX / SUM), and call this on every rank; the arguments
    besides ``local_particles`` are the *reduced* values.
    """
    del local_particles  # locals already folded into the reductions
    return VerificationResult(
        positions_ok=bool(global_max_error <= epsilon),
        checksum_ok=(global_id_sum == expected_ids),
        max_abs_error=float(global_max_error),
        n_particles=int(global_count),
        id_checksum=int(global_id_sum),
        expected_checksum=int(expected_ids),
    )
