"""Command-line interface for the PIC PRK.

Subcommands::

    pic-prk serial  --cells 128 --particles 20000 --steps 100 --dist geometric --r 0.97
    pic-prk run     --impl mpi-2d-LB --cores 24 --cells 288 --particles 24000 --steps 150
    pic-prk trace   --impl ampi --cores 16 --steps 160            # imbalance timeline
    pic-prk trace   --impl ampi --cores 16 --out traces/          # + trace.json etc.
    pic-prk figures fig5 fig6l fig6r fig7                         # regenerate figures

``trace --out DIR`` additionally records fine-grained spans and metrics and
writes ``trace.json`` (Chrome/Perfetto format — open at ui.perfetto.dev),
``timeline.txt`` (plain-text per-rank span listing) and ``metrics.json``
(every counter/gauge/histogram) into DIR; see docs/observability.md.

(Equivalently: ``python -m repro.cli ...``.)  All runs end with the PRK's
exact self-verification; a failing run exits non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.core.simulation import run_serial
from repro.core.spec import Distribution, PICSpec, Region
from repro.instrument import (
    MetricsRegistry,
    TraceCollector,
    Tracer,
    render_imbalance_timeline,
    render_metrics_summary,
    render_rank_timeline,
    write_chrome_trace,
    write_metrics,
)
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel


def _add_spec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cells", type=int, default=128, help="mesh cells per side (even)")
    p.add_argument("--particles", type=int, default=20_000)
    p.add_argument("--steps", type=int, default=100)
    p.add_argument(
        "--dist",
        choices=[d.value for d in Distribution],
        default=Distribution.GEOMETRIC.value,
    )
    p.add_argument("--r", type=float, default=0.97, help="geometric ratio")
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--beta", type=float, default=3.0)
    p.add_argument(
        "--patch", type=int, nargs=4, metavar=("XLO", "XHI", "YLO", "YHI"),
        help="patch region in cells (for --dist patch)",
    )
    p.add_argument("--k", type=int, default=0, help="drift multiplier: 2k+1 cells/step")
    p.add_argument("--m", type=int, default=0, help="vertical cells per step")
    p.add_argument("--rotate90", action="store_true")
    p.add_argument("--seed", type=int, default=42)


def _spec_from(args: argparse.Namespace) -> PICSpec:
    return PICSpec(
        cells=args.cells,
        n_particles=args.particles,
        steps=args.steps,
        distribution=Distribution(args.dist),
        r=args.r,
        alpha=args.alpha,
        beta=args.beta,
        patch=Region(*args.patch) if args.patch else None,
        k=args.k,
        m_vertical=args.m,
        rotate90=args.rotate90,
        seed=args.seed,
    )


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--impl", choices=["mpi-2d", "mpi-2d-LB", "ampi"], default="mpi-2d")
    p.add_argument("--cores", type=int, default=24)
    p.add_argument("--push-ns", type=float, default=3500.0,
                   help="modelled particle push time in nanoseconds")
    p.add_argument("--lb-interval", type=int, default=2)
    p.add_argument("--border-width", type=int, default=3)
    p.add_argument("--threshold", type=float, default=0.02)
    p.add_argument("--axes", choices=["x", "y", "xy"], default="x")
    p.add_argument("--overdecomposition", "-d", type=int, default=8)
    p.add_argument("--ampi-interval", type=int, default=25)


def _build_impl(args: argparse.Namespace, tracer=None, span_tracer=None, metrics=None):
    machine = MachineModel()
    cost = CostModel(machine=machine, particle_push_s=args.push_ns * 1e-9)
    spec = _spec_from(args)
    common = dict(
        machine=machine, cost=cost, tracer=tracer,
        span_tracer=span_tracer, metrics=metrics,
    )
    if args.impl == "mpi-2d":
        return Mpi2dPIC(spec, args.cores, **common)
    if args.impl == "mpi-2d-LB":
        return Mpi2dLbPIC(
            spec, args.cores,
            lb_interval=args.lb_interval,
            border_width=args.border_width,
            threshold_fraction=args.threshold,
            axes=args.axes,
            **common,
        )
    return AmpiPIC(
        spec, args.cores,
        overdecomposition=args.overdecomposition,
        lb_interval=args.ampi_interval,
        **common,
    )


def cmd_serial(args: argparse.Namespace) -> int:
    result = run_serial(_spec_from(args))
    print(f"spec: {_spec_from(args).describe()}")
    print(result.verification)
    print(f"particle pushes: {result.particle_pushes:,}")
    return 0 if result.verification.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    impl = _build_impl(args)
    result = impl.run()
    print(f"spec: {impl.spec.describe()}")
    print(
        f"{result.implementation} on {result.n_cores} simulated cores: "
        f"{result.total_time:.4f}s simulated"
    )
    print(
        f"max particles/core {result.max_particles_per_core} "
        f"(ideal {result.ideal_particles_per_core:.0f}), "
        f"messages {result.messages_sent}, bytes {result.bytes_sent}"
    )
    print(result.verification)
    return 0 if result.verification.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    tracer = TraceCollector()
    spans = Tracer() if args.out else None
    metrics = MetricsRegistry() if args.out else None
    impl = _build_impl(args, tracer=tracer, span_tracer=spans, metrics=metrics)
    result = impl.run()
    print(render_imbalance_timeline(tracer))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        trace_path = os.path.join(args.out, "trace.json")
        timeline_path = os.path.join(args.out, "timeline.txt")
        metrics_path = os.path.join(args.out, "metrics.json")
        write_chrome_trace(spans, trace_path)
        with open(timeline_path, "w", encoding="utf-8") as fh:
            fh.write(render_rank_timeline(spans))
            fh.write("\n")
        write_metrics(metrics, metrics_path)
        print(render_metrics_summary(metrics))
        print(f"wrote {trace_path} (open at https://ui.perfetto.dev)")
        print(f"wrote {timeline_path}")
        print(f"wrote {metrics_path}")
    print(result.verification)
    return 0 if result.verification.ok else 1


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench.figures import main as figures_main

    return figures_main([*args.names, "--out", args.out])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pic-prk", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serial", help="run and verify the serial kernel")
    _add_spec_args(p)
    p.set_defaults(fn=cmd_serial)

    p = sub.add_parser("run", help="run one parallel implementation")
    _add_spec_args(p)
    _add_parallel_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "trace",
        help="run with tracing: imbalance timeline, plus span trace + "
        "metrics dumps with --out",
    )
    _add_spec_args(p)
    _add_parallel_args(p)
    p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also record spans + metrics and write trace.json "
        "(Chrome/Perfetto), timeline.txt and metrics.json into DIR",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("names", nargs="+", choices=["fig5", "fig6l", "fig6r", "fig7"])
    p.add_argument("--out", default="benchmarks/results")
    p.set_defaults(fn=cmd_figures)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
