"""Command-line interface for the PIC PRK.

Subcommands::

    pic-prk serial  --cells 128 --particles 20000 --steps 100 --dist geometric --r 0.97
    pic-prk run     --impl mpi-2d-LB --cores 24 --cells 288 --particles 24000 --steps 150
    pic-prk trace   --impl ampi --cores 16 --steps 160            # imbalance timeline
    pic-prk trace   --impl ampi --cores 16 --out traces/          # + trace.json etc.
    pic-prk figures fig5 fig6l fig6r fig7                         # regenerate figures
    pic-prk perf    --preset smoke                                # wall-clock speedups
    pic-prk run     --impl ampi --faults plan.json --checkpoint-every 25
    pic-prk resume  --from checkpoints/ckpt_step000050.ckpt       # continue a run
    pic-prk resilience --preset smoke                             # straggler bench

``run`` and ``perf`` accept ``--profile``: the command runs under cProfile
and the top 20 functions by cumulative time are printed afterwards — the
quickest way to see where the harness's wall-clock time goes.

``trace --out DIR`` additionally records fine-grained spans and metrics and
writes ``trace.json`` (Chrome/Perfetto format — open at ui.perfetto.dev),
``timeline.txt`` (plain-text per-rank span listing) and ``metrics.json``
(every counter/gauge/histogram) into DIR; see docs/observability.md.

(Equivalently: ``python -m repro.cli ...``.)  All runs end with the PRK's
exact self-verification; a failing run exits non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.core.simulation import run_serial
from repro.core.spec import Distribution, PICSpec, Region
from repro.instrument import (
    ExecutorTrace,
    MetricsRegistry,
    TraceCollector,
    Tracer,
    render_imbalance_timeline,
    render_metrics_summary,
    render_rank_timeline,
    write_chrome_trace,
    write_executor_trace,
    write_metrics,
)
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel


def _add_spec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cells", type=int, default=128, help="mesh cells per side (even)")
    p.add_argument("--particles", type=int, default=20_000)
    p.add_argument("--steps", type=int, default=100)
    p.add_argument(
        "--dist",
        choices=[d.value for d in Distribution],
        default=Distribution.GEOMETRIC.value,
    )
    p.add_argument("--r", type=float, default=0.97, help="geometric ratio")
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--beta", type=float, default=3.0)
    p.add_argument(
        "--patch", type=int, nargs=4, metavar=("XLO", "XHI", "YLO", "YHI"),
        help="patch region in cells (for --dist patch)",
    )
    p.add_argument("--k", type=int, default=0, help="drift multiplier: 2k+1 cells/step")
    p.add_argument("--m", type=int, default=0, help="vertical cells per step")
    p.add_argument("--rotate90", action="store_true")
    p.add_argument("--seed", type=int, default=42)


def _spec_from(args: argparse.Namespace) -> PICSpec:
    return PICSpec(
        cells=args.cells,
        n_particles=args.particles,
        steps=args.steps,
        distribution=Distribution(args.dist),
        r=args.r,
        alpha=args.alpha,
        beta=args.beta,
        patch=Region(*args.patch) if args.patch else None,
        k=args.k,
        m_vertical=args.m,
        rotate90=args.rotate90,
        seed=args.seed,
    )


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--impl", choices=["mpi-2d", "mpi-2d-LB", "ampi"], default="mpi-2d")
    p.add_argument("--cores", type=int, default=24)
    p.add_argument("--push-ns", type=float, default=3500.0,
                   help="modelled particle push time in nanoseconds")
    p.add_argument("--lb-interval", type=int, default=2)
    p.add_argument("--border-width", type=int, default=3)
    p.add_argument("--threshold", type=float, default=0.02)
    p.add_argument("--axes", choices=["x", "y", "xy"], default="x")
    p.add_argument("--overdecomposition", "-d", type=int, default=8)
    p.add_argument("--ampi-interval", type=int, default=25)
    p.add_argument(
        "--executor",
        choices=["serial", "batched", "process"],
        default=os.environ.get("REPRO_EXECUTOR", "serial"),
        help="compute-execution backend for the particle push "
        "(default from REPRO_EXECUTOR, else serial)",
    )
    p.add_argument(
        "--workers", type=int,
        default=int(os.environ.get("REPRO_WORKERS") or 0),
        help="worker processes for --executor process "
        "(0 = one per host core; default from REPRO_WORKERS)",
    )


def _add_resilience_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="activate a deterministic fault plan (see docs/resilience.md); "
        "also arms the straggler watch and a default recovery policy",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint the full simulation state every N steps (0 = off)",
    )
    p.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        help="directory for checkpoint files (default: checkpoints)",
    )


def _n_ranks_from(args: argparse.Namespace) -> int:
    if args.impl == "ampi":
        return args.cores * args.overdecomposition
    return args.cores


def _resilience_from(args: argparse.Namespace):
    """Build the ResilienceConfig selected by the CLI flags (or None)."""
    faults = getattr(args, "faults", None)
    every = getattr(args, "checkpoint_every", 0)
    if not faults and every <= 0:
        return None
    from repro.resilience import (
        Checkpointer,
        FaultPlan,
        RecoveryPolicy,
        ResilienceConfig,
        StragglerWatch,
    )

    plan = watch = recovery = checkpointer = None
    if faults:
        plan = FaultPlan.load(faults)
        watch = StragglerWatch(_n_ranks_from(args))
        recovery = RecoveryPolicy()
    if every > 0:
        checkpointer = Checkpointer(args.checkpoint_dir, every=every)
    return ResilienceConfig(
        plan=plan, watch=watch, checkpointer=checkpointer, recovery=recovery,
    )


def _executor_from(args: argparse.Namespace, exec_tracer=None):
    """Build the compute-execution backend selected by ``--executor``.

    The caller owns the instance and must ``close()`` it after the run
    (only the process backend holds real resources — a worker pool and
    shared-memory segments).
    """
    from repro.runtime.executor import make_executor

    return make_executor(
        getattr(args, "executor", "serial"),
        workers=getattr(args, "workers", 0),
        exec_tracer=exec_tracer,
    )


def _build_impl(
    args: argparse.Namespace,
    tracer=None,
    span_tracer=None,
    metrics=None,
    executor=None,
    resilience=None,
):
    machine = MachineModel()
    cost = CostModel(machine=machine, particle_push_s=args.push_ns * 1e-9)
    spec = _spec_from(args)
    common = dict(
        machine=machine, cost=cost, tracer=tracer,
        span_tracer=span_tracer, metrics=metrics, executor=executor,
        resilience=resilience,
    )
    if args.impl == "mpi-2d":
        return Mpi2dPIC(spec, args.cores, **common)
    if args.impl == "mpi-2d-LB":
        return Mpi2dLbPIC(
            spec, args.cores,
            lb_interval=args.lb_interval,
            border_width=args.border_width,
            threshold_fraction=args.threshold,
            axes=args.axes,
            **common,
        )
    return AmpiPIC(
        spec, args.cores,
        overdecomposition=args.overdecomposition,
        lb_interval=args.ampi_interval,
        **common,
    )


def _maybe_profile(args: argparse.Namespace, fn):
    """Run ``fn`` — under cProfile, printing the top 20, if ``--profile``."""
    if not getattr(args, "profile", False):
        return fn()
    import cProfile
    import pstats

    prof = cProfile.Profile()
    rc = prof.runcall(fn)
    print("\n--- cProfile: top 20 by cumulative time ---")
    pstats.Stats(prof).sort_stats("cumulative").print_stats(20)
    return rc


def cmd_serial(args: argparse.Namespace) -> int:
    result = run_serial(_spec_from(args))
    print(f"spec: {_spec_from(args).describe()}")
    print(result.verification)
    print(f"particle pushes: {result.particle_pushes:,}")
    return 0 if result.verification.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False) and args.executor == "process":
        print(
            "error: --profile cannot observe worker processes; cProfile only "
            "sees the parent, so the profile would be misleading. Use "
            "--executor serial (or batched) to profile, or drop --profile "
            "to measure the process backend (see docs/performance.md).",
            file=sys.stderr,
        )
        return 2
    executor = _executor_from(args)
    resilience = _resilience_from(args)
    impl = _build_impl(args, executor=executor, resilience=resilience)
    try:
        result = _maybe_profile(args, impl.run)
    finally:
        executor.close()
    print(f"spec: {impl.spec.describe()}")
    print(
        f"{result.implementation} on {result.n_cores} simulated cores: "
        f"{result.total_time:.4f}s simulated"
    )
    print(
        f"max particles/core {result.max_particles_per_core} "
        f"(ideal {result.ideal_particles_per_core:.0f}), "
        f"messages {result.messages_sent}, bytes {result.bytes_sent}"
    )
    _report_resilience(resilience)
    print(result.verification)
    return 0 if result.verification.ok else 1


def _report_resilience(resilience) -> None:
    if resilience is None:
        return
    if resilience.watch is not None and resilience.watch.stragglers():
        print(f"stragglers still flagged: {resilience.watch.stragglers()}")
    ck = resilience.checkpointer
    if ck is not None and ck.last_path is not None:
        print(f"latest checkpoint: {ck.last_path}")


def cmd_trace(args: argparse.Namespace) -> int:
    tracer = TraceCollector()
    spans = Tracer() if args.out else None
    metrics = MetricsRegistry() if args.out else None
    exec_spans = (
        ExecutorTrace() if args.out and args.executor == "process" else None
    )
    executor = _executor_from(args, exec_tracer=exec_spans)
    resilience = _resilience_from(args)
    impl = _build_impl(
        args, tracer=tracer, span_tracer=spans, metrics=metrics,
        executor=executor, resilience=resilience,
    )
    try:
        result = impl.run()
    finally:
        executor.close()
    print(render_imbalance_timeline(tracer))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        trace_path = os.path.join(args.out, "trace.json")
        timeline_path = os.path.join(args.out, "timeline.txt")
        metrics_path = os.path.join(args.out, "metrics.json")
        write_chrome_trace(spans, trace_path)
        with open(timeline_path, "w", encoding="utf-8") as fh:
            fh.write(render_rank_timeline(spans))
            fh.write("\n")
        write_metrics(metrics, metrics_path)
        print(render_metrics_summary(metrics))
        print(f"wrote {trace_path} (open at https://ui.perfetto.dev)")
        print(f"wrote {timeline_path}")
        print(f"wrote {metrics_path}")
        if exec_spans is not None:
            exec_path = os.path.join(args.out, "executor_trace.json")
            write_executor_trace(exec_spans, exec_path)
            print(f"wrote {exec_path} (wall-clock worker spans)")
    print(result.verification)
    return 0 if result.verification.ok else 1


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench import perf

    print(f"wall-clock perf suite (preset={args.preset}):")
    doc = _maybe_profile(args, lambda: perf.run_suite(args.preset))
    if args.out:
        perf.save_bench(doc, args.out)
        print(f"wrote {args.out}")
    failures = perf.check_gates(doc)
    if args.baseline:
        failures += perf.check_regression(
            doc, perf.load_bench(args.baseline), args.tolerance
        )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


def _impl_from_snapshot(snapshot, args: argparse.Namespace):
    """Rebuild the implementation recorded in a checkpoint's meta block."""
    from repro.resilience import (
        Checkpointer,
        FaultPlan,
        RecoveryPolicy,
        ResilienceConfig,
        StragglerWatch,
        spec_from_dict,
    )

    meta = snapshot.meta
    spec = spec_from_dict(meta["spec"])
    machine = MachineModel()
    cost = CostModel(
        machine=machine, particle_push_s=meta["cost"]["particle_push_s"]
    )
    rmeta = meta.get("resilience", {})
    plan = watch = recovery = checkpointer = None
    if rmeta.get("plan") is not None:
        plan = FaultPlan.from_dict(rmeta["plan"])
    if rmeta.get("watch") is not None:
        watch = StragglerWatch(snapshot.n_ranks, **rmeta["watch"])
    if rmeta.get("recovery") is not None:
        recovery = RecoveryPolicy(**rmeta["recovery"])
    every = int(rmeta.get("checkpoint_every", 0))
    if every > 0:
        checkpointer = Checkpointer(args.checkpoint_dir, every=every)
    resilience = ResilienceConfig(
        plan=plan, watch=watch, checkpointer=checkpointer,
        recovery=recovery, resume=snapshot,
    )

    executor = _executor_from(args)
    params = meta.get("params", {})
    common = dict(
        machine=machine, cost=cost, dims=tuple(meta["dims"]),
        executor=executor, resilience=resilience,
    )
    impl_name = meta.get("impl")
    if impl_name == "mpi-2d":
        impl = Mpi2dPIC(spec, meta["n_cores"], **common)
    elif impl_name == "mpi-2d-LB":
        impl = Mpi2dLbPIC(spec, meta["n_cores"], **params, **common)
    elif impl_name == "ampi":
        impl = AmpiPIC(spec, meta["n_cores"], **params, **common)
    else:
        raise SystemExit(f"checkpoint names unknown implementation {impl_name!r}")
    return impl, executor, resilience


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.resilience import Snapshot

    snapshot = Snapshot.load(getattr(args, "from"))
    impl, executor, resilience = _impl_from_snapshot(snapshot, args)
    print(
        f"resuming {impl.name} at step {snapshot.next_step}/{impl.spec.steps} "
        f"({snapshot.n_ranks} ranks on {impl.n_cores} cores)"
    )
    try:
        result = impl.run()
    finally:
        executor.close()
    print(
        f"{result.implementation} on {result.n_cores} simulated cores: "
        f"{result.total_time:.4f}s simulated"
    )
    _report_resilience(resilience)
    print(result.verification)
    return 0 if result.verification.ok else 1


def cmd_resilience(args: argparse.Namespace) -> int:
    from repro.bench import resilience as bench_resilience

    print(f"resilience straggler bench (preset={args.preset}):")
    doc = bench_resilience.run_suite(args.preset)
    if args.out:
        bench_resilience.save_bench(doc, args.out)
        print(f"wrote {args.out}")
    failures = bench_resilience.check_gates(doc)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench.figures import main as figures_main

    return figures_main([*args.names, "--out", args.out])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pic-prk", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serial", help="run and verify the serial kernel")
    _add_spec_args(p)
    p.set_defaults(fn=cmd_serial)

    p = sub.add_parser("run", help="run one parallel implementation")
    _add_spec_args(p)
    _add_parallel_args(p)
    _add_resilience_args(p)
    p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 20 by cumulative time",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "trace",
        help="run with tracing: imbalance timeline, plus span trace + "
        "metrics dumps with --out",
    )
    _add_spec_args(p)
    _add_parallel_args(p)
    _add_resilience_args(p)
    p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also record spans + metrics and write trace.json "
        "(Chrome/Perfetto), timeline.txt and metrics.json into DIR",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "perf",
        help="measure wall-clock speedups of the hot path vs its legacy "
        "implementation and write BENCH_wallclock.json",
    )
    p.add_argument("--preset", choices=["full", "smoke"], default="full")
    p.add_argument(
        "--out", default="benchmarks/BENCH_wallclock.json", metavar="FILE",
        help="output JSON (empty string to skip writing)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="prior BENCH_wallclock.json to gate speedup ratios against",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative speedup-ratio drop vs --baseline",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 20 by cumulative time",
    )
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser(
        "resume",
        help="continue a checkpointed run bitwise-identically to the "
        "uninterrupted one",
    )
    p.add_argument(
        "--from", required=True, metavar="FILE.ckpt",
        help="checkpoint file written by --checkpoint-every",
    )
    p.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        help="directory for the checkpoints the resumed run keeps taking",
    )
    p.add_argument(
        "--executor", choices=["serial", "batched", "process"],
        default=os.environ.get("REPRO_EXECUTOR", "serial"),
    )
    p.add_argument(
        "--workers", type=int,
        default=int(os.environ.get("REPRO_WORKERS") or 0),
    )
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser(
        "resilience",
        help="measure how much of a straggler-induced slowdown each "
        "implementation recovers and write BENCH_resilience.json",
    )
    p.add_argument("--preset", choices=["full", "smoke"], default="full")
    p.add_argument(
        "--out", default="benchmarks/BENCH_resilience.json", metavar="FILE",
        help="output JSON (empty string to skip writing)",
    )
    p.set_defaults(fn=cmd_resilience)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("names", nargs="+", choices=["fig5", "fig6l", "fig6r", "fig7"])
    p.add_argument("--out", default="benchmarks/results")
    p.set_defaults(fn=cmd_figures)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
